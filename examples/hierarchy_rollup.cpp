// Scenario: roll-up and drill-down along dimension hierarchies (Section 2
// of the paper: day -> month -> year on time, partkey -> brand on part).
// Materializes views over hierarchy attributes of the extended TPC-D
// schema, then walks the classic OLAP session: yearly totals, drill into
// one year by month, roll up parts to brands, and resolve key values to
// names through the dimension tables.
//
// Build & run:  ./build/examples/hierarchy_rollup

#include <filesystem>
#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "engine/cubetree_engine.h"
#include "engine/dimensions.h"
#include "olap/cube_builder.h"
#include "storage/buffer_pool.h"
#include "tpcd/dbgen.h"

using namespace cubetree;

namespace {

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef v;
  v.id = id;
  v.attrs = std::move(attrs);
  return v;
}

}  // namespace

int main() {
  InitLogLevelFromEnv();
  std::error_code ec;
  std::filesystem::remove_all("hierarchy_data", ec);
  ec.clear();
  std::filesystem::create_directories("hierarchy_data", ec);
  if (ec) {
    std::fprintf(stderr, "mkdir hierarchy_data: %s\n", ec.message().c_str());
    return 1;
  }

  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = 0.01;
  tpcd::Generator generator(gen_options);
  CubeSchema schema = generator.MakeExtendedSchema();
  BufferPool pool(2048);

  // Views along the time and part hierarchies.
  std::vector<ViewDef> views = {
      MakeView(1, {tpcd::kBrand, tpcd::kMonth, tpcd::kYear}),
      MakeView(2, {tpcd::kBrand, tpcd::kYear}),
      MakeView(3, {tpcd::kBrand}),
      MakeView(4, {tpcd::kYear}),
      MakeView(5, {}),
  };

  CubeBuilder::Options build_options;
  build_options.temp_dir = "hierarchy_data";
  CubeBuilder builder(schema, build_options);
  auto facts = generator.BaseFacts(/*extended_attrs=*/true);
  auto data_result = builder.ComputeAll(views, facts.get(), "hier");
  if (!data_result.ok()) {
    std::fprintf(stderr, "compute: %s\n",
                 data_result.status().ToString().c_str());
    return 1;
  }
  auto data = std::move(data_result).value();
  std::printf("computed %zu hierarchy views (%llu pipelined, no re-sort, "
              "thanks to suffix-compatible pack orders)\n",
              views.size(),
              static_cast<unsigned long long>(builder.pipelined_views()));

  CubetreeEngine::Options engine_options;
  engine_options.dir = "hierarchy_data";
  auto engine_result = CubetreeEngine::Create(schema, engine_options, &pool);
  if (!engine_result.ok()) return 1;
  auto engine = std::move(engine_result).value();
  if (!engine->Load(views, data.get()).ok()) return 1;
  if (Status destroyed = data->Destroy(); !destroyed.ok()) {
    std::fprintf(stderr, "cleanup: %s\n", destroyed.ToString().c_str());
    return 1;
  }

  auto dims_result = DimensionTables::Load("hierarchy_data", generator,
                                           &pool);
  if (!dims_result.ok()) return 1;
  auto dims = std::move(dims_result).value();
  std::printf("dimension tables: %.1f MiB (part/supplier/customer)\n\n",
              dims->TotalBytes() / 1048576.0);

  auto run = [&](const SliceQuery& query, const char* title,
                 size_t max_rows) {
    auto result = engine->Execute(query, nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   result.status().ToString().c_str());
      return;
    }
    result->SortRows();
    std::printf("%s\n", title);
    for (size_t i = 0; i < result->rows.size() && i < max_rows; ++i) {
      const ResultRow& row = result->rows[i];
      std::printf("  ");
      for (Coord c : row.group) std::printf("%-4u ", c);
      std::printf(" sum=%-8lld avg=%.1f\n",
                  static_cast<long long>(row.agg.sum), row.agg.Avg());
    }
    if (result->rows.size() > max_rows) {
      std::printf("  ... (%zu rows)\n", result->rows.size());
    }
    std::printf("\n");
  };

  // 1. Top of the hierarchy: total quantity per year.
  SliceQuery per_year;
  per_year.node_mask = 1u << tpcd::kYear;
  per_year.attrs = {tpcd::kYear};
  per_year.bindings = {std::nullopt};
  run(per_year, "Total quantity per year (roll-up top):", 10);

  // 2. Drill-down: year 3, per month — answered from V{brand,month,year}
  //    with on-the-fly re-aggregation over brand.
  SliceQuery per_month;
  per_month.node_mask = (1u << tpcd::kYear) | (1u << tpcd::kMonth);
  per_month.attrs = {tpcd::kYear, tpcd::kMonth};
  per_month.bindings = {Coord{3}, std::nullopt};
  run(per_month, "Drill-down: year 3 by month:", 12);

  // 3. Roll-up along the part hierarchy: top 5 brands of year 3, with
  //    names resolved from the part dimension's brand naming.
  SliceQuery per_brand;
  per_brand.node_mask = (1u << tpcd::kBrand) | (1u << tpcd::kYear);
  per_brand.attrs = {tpcd::kBrand, tpcd::kYear};
  per_brand.bindings = {std::nullopt, Coord{3}};
  auto brands = engine->Execute(per_brand, nullptr);
  if (!brands.ok()) return 1;
  std::sort(brands->rows.begin(), brands->rows.end(),
            [](const ResultRow& a, const ResultRow& b) {
              return a.agg.sum > b.agg.sum;
            });
  std::printf("Top brands in year 3:\n");
  for (size_t i = 0; i < brands->rows.size() && i < 5; ++i) {
    std::printf("  Brand#%02u  sum=%lld\n", brands->rows[i].group[0],
                static_cast<long long>(brands->rows[i].agg.sum));
  }

  // 4. The dimension tables resolve keys to full descriptions.
  auto part = dims->GetPart(42);
  auto supplier = dims->GetSupplier(7);
  if (part.ok() && supplier.ok()) {
    std::printf("\ndimension lookups (O(1), dense keys):\n");
    std::printf("  part 42: %s, brand %u, type %u, container %s\n",
                part->name.c_str(), part->brand, part->type,
                part->container.c_str());
    std::printf("  supplier 7: %s, phone %s\n", supplier->name.c_str(),
                supplier->phone.c_str());
  }
  return 0;
}
