// Scenario: a "view advisor" session. Given a warehouse's grouping
// attributes and table statistics, enumerate the Data Cube lattice,
// estimate per-node sizes, run the GHRU97 1-greedy selection under
// different structure budgets, and show how SelectMapping would lay the
// chosen views out as Cubetrees — the planning workflow a DBA runs before
// materializing anything.
//
// Build & run:  ./build/examples/view_advisor

#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "cubetree/select_mapping.h"
#include "olap/lattice.h"
#include "olap/selection.h"

using namespace cubetree;

int main() {
  InitLogLevelFromEnv();
  // A retail warehouse with four grouping attributes.
  CubeSchema schema;
  schema.attr_names = {"product", "store", "customer", "month"};
  schema.attr_domains = {50000, 200, 80000, 36};
  schema.measure_name = "revenue";
  const uint64_t fact_rows = 20000000;

  CubeLattice lattice(schema);
  lattice.EstimateRowCounts(fact_rows);

  std::printf("Data Cube lattice over %zu attributes (%zu nodes, "
              "%llu slice-query types):\n",
              schema.num_attrs(), lattice.num_nodes(),
              static_cast<unsigned long long>(
                  lattice.NumSliceQueryTypes()));
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const LatticeNode& node = lattice.node(i);
    std::string name = "{";
    for (size_t a = 0; a < node.attrs.size(); ++a) {
      if (a) name += ",";
      name += schema.attr_names[node.attrs[a]];
    }
    name += "}";
    std::printf("  %-40s ~%llu rows\n", name.c_str(),
                static_cast<unsigned long long>(node.row_count));
  }

  for (size_t budget : {5, 9, 14}) {
    GreedyOptions options;
    options.max_structures = budget;
    auto result = GreedySelect(lattice, options);
    if (!result.ok()) {
      std::fprintf(stderr, "selection: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n=== budget: %zu structures ===\n", budget);
    uint64_t total_rows = 0;
    for (const ViewDef& view : result->views) {
      auto node = lattice.NodeForMask(view.AttrMask());
      if (node.ok()) total_rows += (*node)->row_count;
      std::printf("  view  %s\n", view.Name(schema).c_str());
    }
    for (const IndexDef& index : result->indices) {
      std::printf("  index %s on view mask %u\n",
                  index.Name(schema).c_str(), index.view_id);
    }
    std::printf("  (~%llu materialized tuples)\n",
                static_cast<unsigned long long>(total_rows));

    ForestPlan plan = SelectMapping(result->views);
    std::printf("  SelectMapping lays the views out as %zu cubetree(s):\n",
                plan.trees.size());
    for (size_t t = 0; t < plan.trees.size(); ++t) {
      std::printf("    R%zu (%u-dimensional):", t + 1, plan.trees[t].dims);
      for (uint32_t vid : plan.trees[t].view_ids) {
        for (const ViewDef& v : result->views) {
          if (v.id == vid) std::printf(" %s", v.Name(schema).c_str());
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\nEach view occupies a contiguous run of leaves in its "
              "tree; no tree holds two views of the same arity.\n");
  return 0;
}
