// ctfsck: offline consistency checker for Cubetree stores, built on the
// src/check invariant-checker framework. It validates packed R-tree files,
// whole forests (manifest + SelectMapping + every tree), write-ahead logs
// and B+-tree index files, and reports every violated invariant it can
// find instead of stopping at the first.
//
// Usage: see PrintHelp() below (ctfsck --help).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "check/checkers.h"
#include "common/logging.h"
#include "check/invariant_checker.h"
#include "cubetree/forest.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"

using namespace cubetree;

namespace {

// Exit codes (also documented in --help and DESIGN.md).
constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWarnings = 2;
constexpr int kExitMissing = 3;
constexpr int kExitIo = 4;
constexpr int kExitUsage = 64;

void PrintHelp(std::FILE* out) {
  std::fprintf(
      out,
      "ctfsck — offline invariant checker for Cubetree stores\n"
      "\n"
      "usage:\n"
      "  ctfsck [options] tree <file.ctr>        check one packed R-tree\n"
      "  ctfsck [options] forest <dir> <name>    check a whole forest\n"
      "  ctfsck [options] wal <file.wal>         check a write-ahead log\n"
      "  ctfsck [options] btree <file.ctb>       check a B+-tree index\n"
      "  ctfsck                                  self-demo on a fresh "
      "forest\n"
      "\n"
      "options:\n"
      "  --deep            read every page: MBR containment, pack order,\n"
      "                    fill factors, compression round-trips, CRCs\n"
      "                    (default: metadata-level checks only)\n"
      "  --checksums       verify every page of each tree file against its\n"
      "                    .crc sidecar. Findings: checksum-mismatch /\n"
      "                    checksum-sidecar / checksum-count (errors,\n"
      "                    exit 1), checksum-missing (warning, exit 2)\n"
      "  --json            emit the report as JSON on stdout\n"
      "  --stats           dump the process metrics registry (buffer pool\n"
      "                    hits, pages touched, ...) to stderr on exit\n"
      "  --pool-pages=N    buffer-pool capacity in pages (default 1024)\n"
      "  --failpoints      list every registered fault-injection point and\n"
      "                    exit (see CUBETREE_FAILPOINTS below)\n"
      "  --help            this text\n"
      "\n"
      "exit codes:\n"
      "  0   clean — no warnings, no errors\n"
      "  1   at least one invariant violation (severity error)\n"
      "  2   warnings only\n"
      "  3   target file or forest does not exist\n"
      "  4   I/O failure while checking\n"
      "  64  usage error\n");
}

struct CliOptions {
  bool deep = false;
  bool checksums = false;
  bool json = false;
  bool stats = false;
  size_t pool_pages = 1024;
};

// Dumps the metrics registry on every exit path once --stats armed it.
// Goes to stderr so the --json report on stdout stays machine-parseable.
struct StatsDumper {
  bool enabled = false;
  ~StatsDumper() {
    if (!enabled) return;
    std::fprintf(stderr, "%s",
                 obs::MetricsRegistry::Instance().DumpText().c_str());
  }
};

/// Runs one checker, prints the report, and maps the outcome to an exit
/// code. A non-OK Run() means the check could not execute at all.
int RunChecker(Checker* checker, const CliOptions& cli) {
  CheckReport report;
  Status status = checker->Run(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "ctfsck: %s check could not run: %s\n",
                 checker->name().c_str(), status.ToString().c_str());
    return status.IsNotFound() ? kExitMissing : kExitIo;
  }
  if (cli.json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::printf("%s", report.ToString().c_str());
  }
  if (report.errors() > 0) return kExitErrors;
  if (report.warnings() > 0) return kExitWarnings;
  return kExitClean;
}

int ListFailpoints() {
  std::printf(
      "Registered fault-injection points (arm via CUBETREE_FAILPOINTS):\n"
      "\n"
      "  CUBETREE_FAILPOINTS='name=ACTION[(MAX)][@HIT][;name=...]'\n"
      "  ACTION: error | torn | crash | throw | bitflip | corrupt_page |\n"
      "          enospc | short_write\n"
      "  @HIT:   trigger on the Nth hit of the point (default 1)\n"
      "  (MAX):  stay armed for MAX triggers (default: unlimited)\n"
      "\n");
  for (const FaultInjector::PointInfo& point :
       FaultInjector::Instance().RegisteredPoints()) {
    std::printf("  %-26s %s\n", point.name, point.description);
  }
  return kExitClean;
}

int SelfDemo(const CliOptions& cli) {
  std::printf("ctfsck self-demo: building a small forest first...\n");
  std::error_code ec;
  std::filesystem::remove_all("ctfsck_demo", ec);
  ec.clear();
  std::filesystem::create_directories("ctfsck_demo", ec);
  if (ec) {
    std::fprintf(stderr, "ctfsck: mkdir ctfsck_demo: %s\n",
                 ec.message().c_str());
    return kExitIo;
  }
  BufferPool pool(cli.pool_pages);
  CubetreeForest::Options options;
  options.dir = "ctfsck_demo";
  options.name = "demo";
  auto forest_result = CubetreeForest::Create(options, &pool);
  if (!forest_result.ok()) {
    std::fprintf(stderr, "ctfsck: demo create failed: %s\n",
                 forest_result.status().ToString().c_str());
    return kExitIo;
  }
  auto forest = std::move(forest_result).value();
  // One arity-1 view with ascending keys — already in pack order.
  struct Provider : CubetreeForest::ViewDataProvider {
    Result<std::unique_ptr<RecordStream>> OpenViewStream(
        const ViewDef& view) override {
      std::vector<char> flat;
      std::vector<char> rec(ViewRecordBytes(view.arity()));
      for (Coord x = 1; x <= 500; ++x) {
        Coord coords[kMaxDims] = {x};
        EncodeViewRecord(rec.data(), coords, view.arity(), AggValue{x, 1});
        flat.insert(flat.end(), rec.begin(), rec.end());
      }
      return std::unique_ptr<RecordStream>(new MemoryRecordStream(
          std::move(flat), ViewRecordBytes(view.arity())));
    }
  } provider;
  ViewDef v;
  v.id = 1;
  v.attrs = {0};
  Status built = forest->Build({v}, &provider);
  if (!built.ok()) {
    std::fprintf(stderr, "ctfsck: demo build failed: %s\n",
                 built.ToString().c_str());
    return kExitIo;
  }
  forest.reset();
  CheckOptions check_options;
  check_options.deep = true;  // The demo always shows the deep checks.
  check_options.checksums = true;
  ForestChecker checker("ctfsck_demo", "demo", &pool, check_options);
  return RunChecker(&checker, cli);
}

}  // namespace

int main(int argc, char** argv) {
  cubetree::InitLogLevelFromEnv();
  CliOptions cli;
  StatsDumper stats_dumper;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(stdout);
      return kExitClean;
    } else if (arg == "--failpoints") {
      return ListFailpoints();
    } else if (arg == "--deep") {
      cli.deep = true;
    } else if (arg == "--checksums") {
      cli.checksums = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--stats") {
      cli.stats = true;
      stats_dumper.enabled = true;
    } else if (arg.rfind("--pool-pages=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long n =
          std::strtoull(arg.c_str() + std::strlen("--pool-pages="), &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "ctfsck: bad --pool-pages value: %s\n",
                     arg.c_str());
        return kExitUsage;
      }
      cli.pool_pages = static_cast<size_t>(n);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "ctfsck: unknown option %s\n", arg.c_str());
      PrintHelp(stderr);
      return kExitUsage;
    } else {
      args.push_back(std::move(arg));
    }
  }

  CheckOptions check_options;
  check_options.deep = cli.deep;
  check_options.checksums = cli.checksums;

  if (args.empty()) return SelfDemo(cli);

  const std::string& cmd = args[0];
  if (cmd != "tree" && cmd != "forest" && cmd != "wal" && cmd != "btree") {
    std::fprintf(stderr, "ctfsck: unknown subcommand %s\n", cmd.c_str());
    PrintHelp(stderr);
    return kExitUsage;
  }

  // File-based subcommands: distinguish "not there" (exit 3) from "there
  // but unreadable" (exit 4) up front.
  if (args.size() == 2 && ::access(args[1].c_str(), F_OK) != 0) {
    std::fprintf(stderr, "ctfsck: %s: no such file\n", args[1].c_str());
    return kExitMissing;
  }

  if (args[0] == "tree" && args.size() == 2) {
    RTreeChecker checker(args[1], check_options);
    return RunChecker(&checker, cli);
  }
  if (args[0] == "forest" && args.size() == 3) {
    BufferPool pool(cli.pool_pages);
    ForestChecker checker(args[1], args[2], &pool, check_options);
    return RunChecker(&checker, cli);
  }
  if (args[0] == "wal" && args.size() == 2) {
    WalChecker checker(args[1]);
    return RunChecker(&checker, cli);
  }
  if (args[0] == "btree" && args.size() == 2) {
    BTreeChecker checker(args[1], check_options);
    return RunChecker(&checker, cli);
  }

  PrintHelp(stderr);
  return kExitUsage;
}
