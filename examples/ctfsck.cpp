// ctfsck: offline consistency checker for Cubetree files and forests.
// Given a .ctr file it validates one packed tree; given a forest manifest
// directory+name it opens the whole forest and validates every tree
// (internal MBR containment, global pack order, single-view leaves,
// point-count agreement with the metadata).
//
// Usage:
//   ctfsck tree <path/to/file.ctr>
//   ctfsck forest <dir> <name>

#include <cstdio>
#include <cstring>

#include "cubetree/forest.h"
#include "rtree/packed_rtree.h"
#include "storage/buffer_pool.h"

using namespace cubetree;

namespace {

int CheckTree(const char* path) {
  BufferPool pool(1024);
  auto tree_result = PackedRTree::Open(path, &pool);
  if (!tree_result.ok()) {
    std::fprintf(stderr, "ctfsck: cannot open %s: %s\n", path,
                 tree_result.status().ToString().c_str());
    return 2;
  }
  auto tree = std::move(tree_result).value();
  std::printf("%s: dims=%u height=%u points=%llu leaf_pages=%u "
              "size=%llu bytes\n",
              path, tree->dims(), tree->height(),
              static_cast<unsigned long long>(tree->num_points()),
              tree->num_leaf_pages(),
              static_cast<unsigned long long>(tree->FileSizeBytes()));
  Status status = tree->Validate();
  if (!status.ok()) {
    std::fprintf(stderr, "ctfsck: INVALID: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("ctfsck: OK\n");
  return 0;
}

int CheckForest(const char* dir, const char* name) {
  BufferPool pool(1024);
  CubetreeForest::Options options;
  options.dir = dir;
  options.name = name;
  auto forest_result = CubetreeForest::Open(options, &pool);
  if (!forest_result.ok()) {
    std::fprintf(stderr, "ctfsck: cannot open forest: %s\n",
                 forest_result.status().ToString().c_str());
    return 2;
  }
  auto forest = std::move(forest_result).value();
  std::printf("forest %s/%s: %zu tree(s), %llu points, %llu bytes\n", dir,
              name, forest->num_trees(),
              static_cast<unsigned long long>(forest->TotalPoints()),
              static_cast<unsigned long long>(forest->TotalSizeBytes()));
  int bad = 0;
  for (size_t t = 0; t < forest->num_trees(); ++t) {
    Cubetree* tree = forest->tree(t);
    std::printf("  R%zu (%s): %llu points ... ", t + 1,
                tree->rtree()->path().c_str(),
                static_cast<unsigned long long>(
                    tree->rtree()->num_points()));
    Status status = tree->rtree()->Validate();
    if (status.ok()) {
      std::printf("OK\n");
    } else {
      std::printf("INVALID: %s\n", status.ToString().c_str());
      ++bad;
    }
  }
  if (bad > 0) {
    std::fprintf(stderr, "ctfsck: %d tree(s) failed validation\n", bad);
    return 1;
  }
  std::printf("ctfsck: forest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "tree") == 0) {
    return CheckTree(argv[2]);
  }
  if (argc == 4 && std::strcmp(argv[1], "forest") == 0) {
    return CheckForest(argv[2], argv[3]);
  }
  // With no arguments, self-demonstrate on a freshly built forest.
  if (argc == 1) {
    std::printf("ctfsck self-demo: building a small forest first...\n");
    (void)system("rm -rf ctfsck_demo && mkdir -p ctfsck_demo");
    BufferPool pool(256);
    CubetreeForest::Options options;
    options.dir = "ctfsck_demo";
    options.name = "demo";
    auto forest = std::move(CubetreeForest::Create(options, &pool).value());
    // One arity-1 view with ascending keys — already in pack order.
    struct Provider : CubetreeForest::ViewDataProvider {
      Result<std::unique_ptr<RecordStream>> OpenViewStream(
          const ViewDef& view) override {
        std::vector<char> flat;
        std::vector<char> rec(ViewRecordBytes(view.arity()));
        for (Coord x = 1; x <= 500; ++x) {
          Coord coords[kMaxDims] = {x};
          EncodeViewRecord(rec.data(), coords, view.arity(),
                           AggValue{x, 1});
          flat.insert(flat.end(), rec.begin(), rec.end());
        }
        return std::unique_ptr<RecordStream>(new MemoryRecordStream(
            std::move(flat), ViewRecordBytes(view.arity())));
      }
    } provider;
    ViewDef v;
    v.id = 1;
    v.attrs = {0};
    if (!forest->Build({v}, &provider).ok()) return 1;
    return CheckForest("ctfsck_demo", "demo");
  }
  std::fprintf(stderr,
               "usage: ctfsck tree <file.ctr> | ctfsck forest <dir> "
               "<name>\n");
  return 2;
}
