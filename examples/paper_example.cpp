// Reproduces the worked examples of the paper:
//  * Tables 1-4: the data of views V8{partkey} and V9{suppkey,custkey} and
//    their pack-order sorting.
//  * Figure 8: the content of Cubetree R3{x,y} holding both views with a
//    fan-out of 3 — printed leaf by leaf from the real packed file.
//  * Figures 6/7: the Section 2.4 view set and its SelectMapping
//    allocation onto three Cubetrees.
//  * Figure 4's queries Q1/Q2 answered as slices of the index space.

#include <filesystem>
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "cubetree/cubetree.h"
#include "cubetree/select_mapping.h"
#include "rtree/packed_rtree.h"
#include "storage/buffer_pool.h"
#include "tpcd/dbgen.h"

using namespace cubetree;

namespace {

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef v;
  v.id = id;
  v.attrs = std::move(attrs);
  return v;
}

PointRecord MakePoint(uint32_t view, std::vector<Coord> coords,
                      int64_t sum) {
  PointRecord rec;
  rec.view_id = view;
  for (size_t i = 0; i < coords.size(); ++i) rec.coords[i] = coords[i];
  rec.agg = AggValue{sum, 1};
  return rec;
}

}  // namespace

int main() {
  InitLogLevelFromEnv();
  std::error_code ec;
  std::filesystem::remove_all("paper_example_data", ec);
  ec.clear();
  std::filesystem::create_directories("paper_example_data", ec);
  if (ec) {
    std::fprintf(stderr, "mkdir paper_example_data: %s\n", ec.message().c_str());
    return 1;
  }

  // --- Tables 1 and 2: view V8{partkey} -------------------------------
  std::printf("Table 1 (data for view V8):\n  partkey  sum(quantity)\n");
  const std::vector<std::pair<Coord, int64_t>> v8 = {
      {4, 15}, {2, 84}, {3, 67}, {1, 102}, {6, 42}, {5, 24}};
  for (const auto& [p, sum] : v8) {
    std::printf("  %7u  %13lld\n", p, static_cast<long long>(sum));
  }
  std::vector<PointRecord> points;
  for (const auto& [p, sum] : v8) points.push_back(MakePoint(8, {p}, sum));

  // --- Tables 3 and 4: view V9{suppkey,custkey} ------------------------
  std::printf("\nTable 3 (data for view V9):\n"
              "  suppkey  custkey  sum(quantity)\n");
  const std::vector<std::tuple<Coord, Coord, int64_t>> v9 = {
      {3, 1, 2}, {1, 1, 24}, {1, 3, 11}, {3, 3, 17}, {2, 1, 6}};
  for (const auto& [s, c, sum] : v9) {
    std::printf("  %7u  %7u  %13lld\n", s, c, static_cast<long long>(sum));
  }
  for (const auto& [s, c, sum] : v9) points.push_back(MakePoint(9, {s, c},
                                                               sum));

  // Pack order: sorted by (y, x) — Tables 2 and 4.
  std::sort(points.begin(), points.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return PackOrderCompare(a.coords, b.coords, 2) < 0;
            });
  std::printf("\nTables 2 and 4 (points sorted in (y,x) pack order):\n");
  for (const PointRecord& rec : points) {
    std::printf("  {%u,%u} -> %lld\n", rec.coords[0], rec.coords[1],
                static_cast<long long>(rec.agg.sum));
  }

  // --- Figure 8: pack both views into R3{x,y} with fan-out 3 -----------
  BufferPool pool(64);
  RTreeOptions options;
  options.dims = 2;
  options.max_leaf_entries = 3;
  options.max_internal_entries = 3;
  VectorPointSource source(points);
  auto arity = [](uint32_t view) -> uint8_t { return view == 8 ? 1 : 2; };
  auto tree_result = PackedRTree::Build("paper_example_data/r3.ctr", options,
                                        &pool, &source, arity);
  if (!tree_result.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 tree_result.status().ToString().c_str());
    return 1;
  }
  auto rtree = std::move(tree_result).value();
  std::printf("\nFigure 8 (Cubetree R3, fan-out 3, height %u):\n",
              rtree->height());
  // Print leaves exactly as stored: V8 leaves carry 1 coordinate per
  // entry (compressed), V9 leaves carry 2.
  {
    auto scanner = rtree->ScanAll();
    const PointRecord* rec = nullptr;
    uint32_t current_view = 0;
    int leaf_slot = 0;
    while (true) {
      if (!scanner.Next(&rec).ok()) return 1;
      if (rec == nullptr) break;
      if (rec->view_id != current_view || leaf_slot == 3) {
        if (rec->view_id != current_view) {
          std::printf("  -- leaves of %s (%s)\n",
                      rec->view_id == 8 ? "V8" : "V9",
                      rec->view_id == 8
                          ? "compressed: x coordinate only"
                          : "x,y coordinates");
        }
        std::printf("  leaf:");
        current_view = rec->view_id;
        leaf_slot = 0;
      }
      if (rec->view_id == 8) {
        std::printf(" (%u,%lld)", rec->coords[0],
                    static_cast<long long>(rec->agg.sum));
      } else {
        std::printf(" (%u,%u,%lld)", rec->coords[0], rec->coords[1],
                    static_cast<long long>(rec->agg.sum));
      }
      if (++leaf_slot == 3) std::printf("\n");
    }
    std::printf("\n");
  }

  // --- Figure 4: queries as slices of the index space ------------------
  Cubetree cubetree({MakeView(8, {0}), MakeView(9, {1, 2})},
                    std::move(rtree));
  std::printf("\nQ1-style query on V9: total sales per supplier to "
              "customer C=1 (plane y=1):\n");
  Status st = cubetree.QuerySlice(
      9, {std::nullopt, Coord{1}},
      [](const Coord* coords, const AggValue& agg) {
        std::printf("  suppkey %u -> %lld\n", coords[0],
                    static_cast<long long>(agg.sum));
      });
  if (!st.ok()) return 1;

  // --- Figures 6 and 7: the Section 2.4 allocation ---------------------
  tpcd::Generator generator(tpcd::TpcdOptions{});
  CubeSchema ext = generator.MakeExtendedSchema();
  std::vector<ViewDef> fig6 = {
      MakeView(1, {tpcd::kBrand}),
      MakeView(2, {tpcd::kSuppkey, tpcd::kPartkey}),
      MakeView(3, {tpcd::kBrand, tpcd::kSuppkey, tpcd::kCustkey,
                   tpcd::kMonth}),
      MakeView(4, {tpcd::kPartkey, tpcd::kSuppkey, tpcd::kCustkey,
                   tpcd::kYear}),
      MakeView(5, {tpcd::kPartkey, tpcd::kCustkey, tpcd::kYear}),
      MakeView(6, {tpcd::kCustkey}),
      MakeView(7, {tpcd::kCustkey, tpcd::kPartkey}),
      MakeView(8, {tpcd::kPartkey}),
      MakeView(9, {tpcd::kSuppkey, tpcd::kCustkey}),
  };
  ForestPlan plan = SelectMapping(fig6);
  std::printf("\nFigure 7 (SelectMapping of the Figure 6 views):\n");
  for (size_t t = 0; t < plan.trees.size(); ++t) {
    std::printf("  R%zu{%ud}:", t + 1, plan.trees[t].dims);
    for (uint32_t vid : plan.trees[t].view_ids) {
      for (const ViewDef& v : fig6) {
        if (v.id == vid) std::printf(" V%u=%s", vid, v.Name(ext).c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("\n(paper: R1 = {V3,V5,V2,V1}, R2 = {V4,V7,V6}, "
              "R3 = {V9,V8})\n");
  return 0;
}
