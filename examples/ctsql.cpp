// ctsql: an interactive (or piped) SQL shell over a Cubetree warehouse —
// the "clean and transparent SQL interface" the paper's Datablade exposed
// through IUS. On startup it generates TPC-D data, materializes the
// paper's view configuration into a forest, and then answers slice
// queries typed one per line.
//
// Usage:  ./build/examples/ctsql [scale_factor]   (reads queries on stdin)
//
//   ctsql> SELECT partkey, SUM(quantity) FROM sales
//          WHERE suppkey = 3 GROUP BY partkey
//   ctsql> SELECT custkey, SUM(quantity) FROM sales
//          WHERE partkey BETWEEN 10 AND 20 GROUP BY custkey
//   ctsql> \plan SELECT ...     (show the access path, not the rows)
//   ctsql> \trace               (show the last query's span tree)
//   ctsql> \workload            (live workload profile of this session)
//   ctsql> \quit

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/query_parser.h"
#include "engine/warehouse.h"
#include "obs/trace.h"
#include "obs/workload.h"

using namespace cubetree;

namespace {

// Strict scale-factor parse: the whole argument must be a positive number.
// A typo'd argument silently becoming SF=0 would "succeed" with an empty
// warehouse, so reject garbage loudly instead (exit 2, usage-error style).
double ParseScaleFactor(const char* arg) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || value <= 0) {
    std::fprintf(stderr, "ctsql: invalid scale factor '%s' (want a positive "
                 "number, e.g. 0.01)\n", arg);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  WarehouseOptions options;
  options.scale_factor = argc > 1 ? ParseScaleFactor(argv[1]) : 0.01;
  options.dir = "ctsql_data";
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
  if (ec) {
    std::fprintf(stderr, "ctsql: cannot clear %s: %s\n", options.dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  // Trace every query so \trace always has something to show; CUBETREE_TRACE
  // / CUBETREE_SLOW_QUERY_US (applied when Instance() first runs) can
  // further arm the slow-query log.
  obs::Tracer::Instance().Enable(true);
  // Live workload profiler behind \workload: the engine feeds it a record
  // per query (alongside CUBETREE_QUERY_LOG when that env var is set).
  obs::WorkloadProfiler profiler;
  obs::WorkloadProfiler::SetDefault(&profiler);

  std::printf("ctsql: loading TPC-D at SF=%.3f...\n", options.scale_factor);
  auto warehouse_result = Warehouse::Create(options);
  if (!warehouse_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 warehouse_result.status().ToString().c_str());
    return 1;
  }
  auto warehouse = std::move(warehouse_result).value();
  auto load = warehouse->LoadCubetrees();
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.status().ToString().c_str());
    return 1;
  }
  const CubeSchema& schema = warehouse->schema();
  std::printf("ready: table `sales` with attributes partkey(1..%u), "
              "suppkey(1..%u), custkey(1..%u), measure `quantity`.\n",
              schema.attr_domains[0], schema.attr_domains[1],
              schema.attr_domains[2]);
  std::printf("Predicates: '=' and BETWEEN. \\plan prefix shows the access "
              "path. \\trace shows the last query's spans. \\workload "
              "profiles the session. \\quit exits.\n\n");

  std::string line;
  while (true) {
    std::printf("ctsql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\trace") {
      auto last = obs::Tracer::Instance().LastTrace();
      if (last == nullptr) {
        std::printf("no trace yet: run a query first.\n");
      } else {
        std::printf("%s", last->DebugString().c_str());
      }
      continue;
    }
    if (line == "\\workload") {
      if (profiler.records() == 0) {
        std::printf("no queries profiled yet: run a query first.\n");
      } else {
        std::fputs(profiler.ReportText().c_str(), stdout);
      }
      continue;
    }
    bool plan_only = false;
    if (line.rfind("\\plan ", 0) == 0) {
      plan_only = true;
      line = line.substr(6);
    }
    QueryExecStats stats;
    Timer timer;
    {
      // One trace covers parse + execute; the engine's own TraceScope
      // nests inside it, so \trace shows a "parse" phase too.
      obs::TraceScope trace("ctsql.query", nullptr);
      auto parsed = [&] {
        obs::Span parse_span("parse");
        return ParseSliceQuery(line, schema);
      }();
      if (!parsed.ok()) {
        std::printf("error: %s\n", parsed.status().ToString().c_str());
        continue;
      }
      auto result = warehouse->cubetrees()->Execute(parsed->query, &stats);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        continue;
      }
      const double ms = timer.ElapsedSeconds() * 1000;
      if (plan_only) {
        std::printf("plan: %s  (%llu tuples examined, %llu pages)\n",
                    stats.plan.c_str(),
                    static_cast<unsigned long long>(stats.tuples_accessed),
                    static_cast<unsigned long long>(stats.pages_accessed));
        continue;
      }
      result->SortRows();
      // Header.
      for (uint32_t attr : result->group_attrs) {
        std::printf("%-10s ", schema.attr_names[attr].c_str());
      }
      switch (parsed->fn) {
        case AggFn::kSum:
          std::printf("%-12s\n", "sum");
          break;
        case AggFn::kCount:
          std::printf("%-12s\n", "count");
          break;
        case AggFn::kAvg:
          std::printf("%-12s\n", "avg");
          break;
      }
      const size_t limit = 20;
      for (size_t i = 0; i < result->rows.size() && i < limit; ++i) {
        const ResultRow& row = result->rows[i];
        for (Coord c : row.group) std::printf("%-10u ", c);
        switch (parsed->fn) {
          case AggFn::kSum:
            std::printf("%-12lld\n", static_cast<long long>(row.agg.sum));
            break;
          case AggFn::kCount:
            std::printf("%-12u\n", row.agg.count);
            break;
          case AggFn::kAvg:
            std::printf("%-12.2f\n", row.agg.Avg());
            break;
        }
      }
      if (result->rows.size() > limit) {
        std::printf("... (%zu rows)\n", result->rows.size());
      }
      std::printf("%zu row(s) in %.2f ms  [%s]\n\n", result->rows.size(), ms,
                  stats.plan.c_str());
    }
  }
  obs::WorkloadProfiler::SetDefault(nullptr);
  std::printf("\nbye.\n");
  return 0;
}
