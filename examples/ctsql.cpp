// ctsql: an interactive (or piped) SQL shell over a Cubetree warehouse —
// the "clean and transparent SQL interface" the paper's Datablade exposed
// through IUS. On startup it generates TPC-D data, materializes the
// paper's view configuration into a forest, and then answers slice
// queries typed one per line.
//
// Usage:  ./build/examples/ctsql [scale_factor]   (reads queries on stdin)
//
//   ctsql> SELECT partkey, SUM(quantity) FROM sales
//          WHERE suppkey = 3 GROUP BY partkey
//   ctsql> SELECT custkey, SUM(quantity) FROM sales
//          WHERE partkey BETWEEN 10 AND 20 GROUP BY custkey
//   ctsql> \plan SELECT ...     (show the access path, not the rows)
//   ctsql> \quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/timer.h"
#include "engine/query_parser.h"
#include "engine/warehouse.h"

using namespace cubetree;

int main(int argc, char** argv) {
  WarehouseOptions options;
  options.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.01;
  options.dir = "ctsql_data";
  (void)system(("rm -rf " + options.dir).c_str());

  std::printf("ctsql: loading TPC-D at SF=%.3f...\n", options.scale_factor);
  auto warehouse_result = Warehouse::Create(options);
  if (!warehouse_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 warehouse_result.status().ToString().c_str());
    return 1;
  }
  auto warehouse = std::move(warehouse_result).value();
  auto load = warehouse->LoadCubetrees();
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.status().ToString().c_str());
    return 1;
  }
  const CubeSchema& schema = warehouse->schema();
  std::printf("ready: table `sales` with attributes partkey(1..%u), "
              "suppkey(1..%u), custkey(1..%u), measure `quantity`.\n",
              schema.attr_domains[0], schema.attr_domains[1],
              schema.attr_domains[2]);
  std::printf("Predicates: '=' and BETWEEN. \\plan prefix shows the access "
              "path. \\quit exits.\n\n");

  std::string line;
  while (true) {
    std::printf("ctsql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    bool plan_only = false;
    if (line.rfind("\\plan ", 0) == 0) {
      plan_only = true;
      line = line.substr(6);
    }
    auto parsed = ParseSliceQuery(line, schema);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    QueryExecStats stats;
    Timer timer;
    auto result = warehouse->cubetrees()->Execute(parsed->query, &stats);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    const double ms = timer.ElapsedSeconds() * 1000;
    if (plan_only) {
      std::printf("plan: %s  (%llu tuples examined, %llu pages)\n",
                  stats.plan.c_str(),
                  static_cast<unsigned long long>(stats.tuples_accessed),
                  static_cast<unsigned long long>(stats.pages_accessed));
      continue;
    }
    result->SortRows();
    // Header.
    for (uint32_t attr : result->group_attrs) {
      std::printf("%-10s ", schema.attr_names[attr].c_str());
    }
    switch (parsed->fn) {
      case AggFn::kSum:
        std::printf("%-12s\n", "sum");
        break;
      case AggFn::kCount:
        std::printf("%-12s\n", "count");
        break;
      case AggFn::kAvg:
        std::printf("%-12s\n", "avg");
        break;
    }
    const size_t limit = 20;
    for (size_t i = 0; i < result->rows.size() && i < limit; ++i) {
      const ResultRow& row = result->rows[i];
      for (Coord c : row.group) std::printf("%-10u ", c);
      switch (parsed->fn) {
        case AggFn::kSum:
          std::printf("%-12lld\n", static_cast<long long>(row.agg.sum));
          break;
        case AggFn::kCount:
          std::printf("%-12u\n", row.agg.count);
          break;
        case AggFn::kAvg:
          std::printf("%-12.2f\n", row.agg.Avg());
          break;
      }
    }
    if (result->rows.size() > limit) {
      std::printf("... (%zu rows)\n", result->rows.size());
    }
    std::printf("%zu row(s) in %.2f ms  [%s]\n\n", result->rows.size(), ms,
                stats.plan.c_str());
  }
  std::printf("\nbye.\n");
  return 0;
}
