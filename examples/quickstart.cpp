// Quickstart: materialize three ROLAP aggregate views of a tiny sales fact
// table into a forest of Cubetrees, run slice queries against them (one
// through the SQL parser), and apply a bulk-incremental update.
//
// Build & run:  ./build/examples/quickstart

#include <filesystem>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "cubetree/forest.h"
#include "engine/cubetree_engine.h"
#include "engine/query_parser.h"
#include "olap/cube_builder.h"
#include "storage/buffer_pool.h"

using namespace cubetree;

namespace {

/// A tiny in-memory fact table: (partkey, suppkey, custkey) -> quantity.
std::vector<FactTuple> MakeFacts(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<FactTuple> facts;
  for (int i = 0; i < n; ++i) {
    FactTuple t;
    t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(50));  // part
    t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(10));  // supplier
    t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(30));  // customer
    t.measure = static_cast<int64_t>(1 + rng.Uniform(20));
    facts.push_back(t);
  }
  return facts;
}

class Facts : public FactProvider {
 public:
  explicit Facts(std::vector<FactTuple> tuples)
      : tuples_(std::move(tuples)) {}
  Result<std::unique_ptr<FactSource>> Open() override {
    return std::unique_ptr<FactSource>(new VectorFactSource(&tuples_));
  }

 private:
  std::vector<FactTuple> tuples_;
};

#define CHECK_OK(expr)                                               \
  do {                                                               \
    ::cubetree::Status _st = (expr);                                 \
    if (!_st.ok()) {                                                 \
      std::fprintf(stderr, "error: %s\n", _st.ToString().c_str());   \
      return 1;                                                      \
    }                                                                \
  } while (0)

}  // namespace

int main() {
  InitLogLevelFromEnv();
  std::error_code ec;
  std::filesystem::remove_all("quickstart_data", ec);
  ec.clear();
  std::filesystem::create_directories("quickstart_data", ec);
  if (ec) {
    std::fprintf(stderr, "mkdir quickstart_data: %s\n", ec.message().c_str());
    return 1;
  }

  // 1. Describe the grouping attributes of the warehouse.
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {50, 10, 30};
  schema.measure_name = "quantity";

  // 2. Pick the views to materialize. The projection-list order is the
  //    coordinate-axis order inside a Cubetree.
  ViewDef top;        // V{partkey,suppkey,custkey}
  top.id = 1;
  top.attrs = {0, 1, 2};
  ViewDef by_part;    // V{partkey}
  by_part.id = 2;
  by_part.attrs = {0};
  ViewDef grand;      // V{none}: the single super-aggregate.
  grand.id = 3;
  grand.attrs = {};
  std::vector<ViewDef> views = {top, by_part, grand};

  // 3. Compute the views from the fact stream (sort-based, from the
  //    smallest parent) and bulk-load the forest through the engine.
  BufferPool pool(1024);
  CubeBuilder::Options build_options;
  build_options.temp_dir = "quickstart_data";
  CubeBuilder builder(schema, build_options);
  Facts facts(MakeFacts(20000, 7));
  auto data_result = builder.ComputeAll(views, &facts, "base");
  if (!data_result.ok()) {
    std::fprintf(stderr, "compute: %s\n",
                 data_result.status().ToString().c_str());
    return 1;
  }
  auto data = std::move(data_result).value();

  CubetreeEngine::Options engine_options;
  engine_options.dir = "quickstart_data";
  auto engine_result = CubetreeEngine::Create(schema, engine_options, &pool);
  if (!engine_result.ok()) return 1;
  auto engine = std::move(engine_result).value();
  CHECK_OK(engine->Load(views, data.get()));
  CHECK_OK(data->Destroy());

  std::printf("forest: %zu cubetree(s), %llu points, %llu bytes\n",
              engine->forest()->num_trees(),
              static_cast<unsigned long long>(
                  engine->forest()->TotalPoints()),
              static_cast<unsigned long long>(engine->StorageBytes()));

  // 4. Ask a question in SQL. The engine routes it to the best view (here:
  //    a slice of the top Cubetree) and prints one row per group.
  auto parsed_result = ParseSliceQuery(
      "SELECT partkey, SUM(quantity) FROM sales WHERE suppkey = 3 "
      "GROUP BY partkey",
      schema);
  if (!parsed_result.ok()) return 1;
  QueryExecStats stats;
  auto answer = engine->Execute(parsed_result->query, &stats);
  if (!answer.ok()) return 1;
  answer->SortRows();
  std::printf("\nTotal quantity per part from supplier 3 (plan: %s):\n",
              stats.plan.c_str());
  for (size_t i = 0; i < answer->rows.size() && i < 5; ++i) {
    std::printf("  partkey %-4u sum %lld\n", answer->rows[i].group[0],
                static_cast<long long>(answer->rows[i].agg.sum));
  }
  std::printf("  ... (%zu groups total)\n", answer->rows.size());

  // 5. New day, new data: compute the delta views and merge-pack. The
  //    forest is rebuilt with sequential I/O only; queries keep working.
  Facts delta(MakeFacts(2000, 8));
  auto delta_result = builder.ComputeAll(views, &delta, "delta");
  if (!delta_result.ok()) return 1;
  auto delta_views = std::move(delta_result).value();
  CHECK_OK(engine->ApplyDelta(delta_views.get()));
  CHECK_OK(delta_views->Destroy());

  auto grand_total = ParseSliceQuery("SELECT SUM(quantity) FROM sales",
                                     schema);
  if (!grand_total.ok()) return 1;
  auto total = engine->Execute(grand_total->query, nullptr);
  if (!total.ok()) return 1;
  std::printf("\nafter merge-pack update: grand total quantity = %lld "
              "over %u facts\n",
              static_cast<long long>(total->rows[0].agg.sum),
              total->rows[0].agg.count);
  return 0;
}
