// Scenario: the nightly refresh cycle of a TPC-D-shaped warehouse — the
// workload the paper's introduction motivates. Loads the Cubetree
// configuration once, then simulates a week of daily 2% increments: each
// night the new facts are aggregated, sorted, and merge-packed into the
// forest, and a few dashboard queries run against the fresh data.
//
// Build & run:  ./build/examples/warehouse_refresh [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "engine/warehouse.h"

using namespace cubetree;

int main(int argc, char** argv) {
  WarehouseOptions options;
  options.scale_factor = argc > 1 ? std::atof(argv[1]) : 0.02;
  options.dir = "warehouse_refresh_data";
  options.increment_fraction = 0.02;  // Daily 2% instead of the bench 10%.
  (void)system(("rm -rf " + options.dir).c_str());

  auto warehouse_result = Warehouse::Create(options);
  if (!warehouse_result.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 warehouse_result.status().ToString().c_str());
    return 1;
  }
  auto warehouse = std::move(warehouse_result).value();

  std::printf("Initial load: %llu facts into %zu views "
              "(+%zu replicas)...\n",
              static_cast<unsigned long long>(
                  warehouse->generator().NumBaseLineitems()),
              warehouse->selected_views().size(),
              warehouse->cubetree_views().size() -
                  warehouse->selected_views().size());
  auto load = warehouse->LoadCubetrees();
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::printf("  loaded in %.2fs wall; forest = %.1f MiB, %llu points\n",
              load->TotalWallSeconds(),
              warehouse->cubetrees()->StorageBytes() / 1048576.0,
              static_cast<unsigned long long>(
                  warehouse->cubetrees()->forest()->TotalPoints()));

  SliceQueryGenerator gen = warehouse->MakeQueryGenerator(99);
  for (uint32_t day = 0; day < 7; ++day) {
    auto update = warehouse->UpdateCubetrees(day);
    if (!update.ok()) {
      std::fprintf(stderr, "day %u: %s\n", day,
                   update.status().ToString().c_str());
      return 1;
    }
    // Morning dashboard: a few slices over the fresh data.
    Timer timer;
    uint64_t rows = 0;
    for (int q = 0; q < 25; ++q) {
      SliceQuery query = gen.UniformOverLattice(
          warehouse->lattice(), /*exclude_unbound=*/true,
          /*skip_none_node=*/true);
      auto result = warehouse->cubetrees()->Execute(query, nullptr);
      if (!result.ok()) return 1;
      rows += result->rows.size();
    }
    std::printf("day %u: merge-pack %.3fs wall (%llu seq / %llu rand page "
                "writes), 25 queries in %.3fs (%llu rows)\n",
                day + 1, update->wall_seconds,
                static_cast<unsigned long long>(
                    update->io.sequential_writes),
                static_cast<unsigned long long>(update->io.random_writes),
                timer.ElapsedSeconds(),
                static_cast<unsigned long long>(rows));
  }

  std::printf("\nafter a week: forest = %.1f MiB, %llu points — no "
              "down-time window needed beyond each merge-pack\n",
              warehouse->cubetrees()->StorageBytes() / 1048576.0,
              static_cast<unsigned long long>(
                  warehouse->cubetrees()->forest()->TotalPoints()));
  return 0;
}
