// Scenario: the nightly refresh cycle of a TPC-D-shaped warehouse — the
// workload the paper's introduction motivates. Loads the Cubetree
// configuration once, then simulates a week of daily 2% increments: each
// night the new facts are aggregated, sorted, and merge-packed into the
// forest, and a few dashboard queries run against the fresh data.
//
// If a previous run left a forest behind — say it was crashed mid-refresh
// via CUBETREE_FAILPOINTS='forest.manifest.rename=crash@2' — the program
// recovers it instead of reloading: the refresh journal is replayed,
// half-built files are reclaimed, and the dashboard queries run against
// whichever generation the crash left committed.
//
// If the volume fills mid-week (simulate with
// CUBETREE_FAILPOINTS='disk.preflight=enospc'), the refresh is refused
// with a typed StorageFull before any byte is written — the dashboard
// keeps serving the committed generation — and the program reclaims dead
// files and retries, the same loop an operator runs after freeing space.
// CUBETREE_DISK_RESERVE_BYTES sets the free-space floor the preflight
// protects (default 16 MiB).
//
// With --online, the dashboard does not wait for the nightly window:
// reader threads keep querying (each under a 50 ms deadline) while every
// merge-pack runs. Each query pins one committed forest generation, so it
// sees entirely-pre- or entirely-post-refresh data — never a mix — and
// the files of replaced generations are reclaimed only after the last
// query pinning them finishes.
//
// Build & run:
//   ./build/examples/warehouse_refresh [scale_factor] [--online] [--stats]
//                                      [--stats-format=<text|json|prometheus>]
//                                      [--trace=<path>]
//
// --stats dumps the process-wide metrics registry (query latency, buffer
// pool hit rates, sorter spills, refresh publish latency, ...) on exit;
// --stats-format selects text (default), json, or the Prometheus text
// exposition. Set CUBETREE_QUERY_LOG=<path> to also write one JSONL record
// per dashboard query (analyze with ctstat).
// --trace=<path> records every refresh and query as a span tree and writes
// the whole ring as Chrome trace-event JSON (open in Perfetto or
// chrome://tracing) on exit.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/query_context.h"
#include "common/timer.h"
#include "engine/warehouse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scrub/scrubber.h"
#include "storage/page_manager.h"

using namespace cubetree;

namespace {

/// Reopen a crashed store: crash-consistent recovery plus a dashboard
/// round to prove the forest is serving again.
int RecoverAndQuery(Warehouse* warehouse) {
  std::printf("Found an existing forest — recovering instead of "
              "reloading...\n");
  ForestRecoveryReport report;
  auto recovered = warehouse->RecoverCubetrees(0, &report);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report.ToString().c_str());
  std::printf("  recovered in %.3fs wall; forest = %.1f MiB, %llu points\n",
              recovered->wall_seconds,
              warehouse->cubetrees()->StorageBytes() / 1048576.0,
              static_cast<unsigned long long>(
                  warehouse->cubetrees()->forest()->TotalPoints()));
  SliceQueryGenerator gen = warehouse->MakeQueryGenerator(99);
  uint64_t rows = 0;
  for (int q = 0; q < 25; ++q) {
    SliceQuery query = gen.UniformOverLattice(
        warehouse->lattice(), /*exclude_unbound=*/true,
        /*skip_none_node=*/true);
    auto result = warehouse->cubetrees()->Execute(query, nullptr);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    rows += result->rows.size();
  }
  std::printf("  25 dashboard queries answered (%llu rows) — rerun after "
              "'rm -rf warehouse_refresh_data' for a fresh week\n",
              static_cast<unsigned long long>(rows));
  return 0;
}

/// --online: a week of refreshes with the dashboard never pausing. Reader
/// threads execute deadlined queries continuously; each night's
/// merge-pack commits a new generation underneath them.
int OnlineWeek(Warehouse* warehouse) {
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> missed_deadline{0};
  std::atomic<uint64_t> failed{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SliceQueryGenerator gen = warehouse->MakeQueryGenerator(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        SliceQuery query = gen.UniformOverLattice(
            warehouse->lattice(), /*exclude_unbound=*/true,
            /*skip_none_node=*/true);
        QueryContext ctx =
            QueryContext::WithTimeout(std::chrono::milliseconds(50));
        auto result = warehouse->cubetrees()->Execute(query, nullptr, &ctx);
        if (result.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else if (result.status().IsDeadlineExceeded()) {
          missed_deadline.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  int exit_code = 0;
  for (uint32_t day = 0; day < 7 && exit_code == 0; ++day) {
    const uint64_t before = answered.load(std::memory_order_relaxed);
    auto update = warehouse->UpdateCubetrees(day);
    if (!update.ok()) {
      std::fprintf(stderr, "day %u: %s\n", day,
                   update.status().ToString().c_str());
      exit_code = 1;
      break;
    }
    const ForestGcStats gc = warehouse->cubetrees()->forest()->GcStats();
    std::printf(
        "day %u: merge-pack %.3fs wall with %llu dashboard queries served "
        "during it; generation %llu live, %llu retired file(s) awaiting "
        "readers, %llu reclaimed so far\n",
        day + 1, update->wall_seconds,
        static_cast<unsigned long long>(
            answered.load(std::memory_order_relaxed) - before),
        static_cast<unsigned long long>(gc.live_epoch),
        static_cast<unsigned long long>(gc.unreclaimed_files),
        static_cast<unsigned long long>(gc.reclaimed_files));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const ForestGcStats gc = warehouse->cubetrees()->forest()->GcStats();
  std::printf(
      "\nonline week done: %llu queries answered, %llu missed their 50ms "
      "deadline, %llu failed; %llu generation file(s) reclaimed, %llu still "
      "pinned\n",
      static_cast<unsigned long long>(answered.load()),
      static_cast<unsigned long long>(missed_deadline.load()),
      static_cast<unsigned long long>(failed.load()),
      static_cast<unsigned long long>(gc.reclaimed_files),
      static_cast<unsigned long long>(gc.unreclaimed_files));
  return failed.load() == 0 ? exit_code : 1;
}

}  // namespace

// Dumps the metrics registry on every exit path once --stats armed it.
// --stats-format selects the rendering: text (default), json, or
// prometheus (scrape-ready text exposition).
struct StatsDumper {
  bool enabled = false;
  std::string format = "text";
  ~StatsDumper() {
    if (!enabled) return;
    auto& registry = obs::MetricsRegistry::Instance();
    if (format == "json") {
      std::printf("\n%s\n", registry.DumpJson(2).c_str());
    } else if (format == "prometheus") {
      std::printf("\n%s", registry.DumpPrometheus().c_str());
    } else {
      std::printf("\n%s", registry.DumpText().c_str());
    }
  }
};

// Writes the tracer's whole ring as one Chrome trace-event file on every
// exit path once --trace=<path> armed it.
struct TraceDumper {
  std::string path;
  ~TraceDumper() {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
      return;
    }
    out << obs::Tracer::Instance().ExportAllJson().Dump(2) << "\n";
    std::printf("trace written to %s\n", path.c_str());
  }
};

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  WarehouseOptions options;
  StatsDumper stats;
  TraceDumper trace;
  bool online = false;
  double scale_factor = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--online") == 0) {
      online = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats.enabled = true;
    } else if (std::strncmp(argv[i], "--stats-format=", 15) == 0) {
      stats.enabled = true;
      stats.format = argv[i] + 15;
      if (stats.format != "text" && stats.format != "json" &&
          stats.format != "prometheus") {
        std::fprintf(stderr,
                     "warehouse_refresh: --stats-format wants text, json or "
                     "prometheus\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace.path = argv[i] + 8;
      if (trace.path.empty()) {
        std::fprintf(stderr, "warehouse_refresh: --trace needs a path\n");
        return 2;
      }
      obs::Tracer::Instance().Enable(true);
    } else {
      // Positional scale factor: the whole argument must parse as a
      // positive number (a typo becoming SF=0 would silently load an
      // empty warehouse).
      char* end = nullptr;
      scale_factor = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || scale_factor <= 0) {
        std::fprintf(stderr,
                     "warehouse_refresh: invalid argument '%s' (want "
                     "--online, --stats, --stats-format=<f>, --trace=<path> "
                     "or a positive scale factor)\n",
                     argv[i]);
        return 2;
      }
    }
  }
  options.scale_factor = scale_factor;
  options.dir = "warehouse_refresh_data";
  options.increment_fraction = 0.02;  // Daily 2% instead of the bench 10%.
  const bool resume = FileExists(options.dir + "/cbt.manifest");
  if (!resume) {
    // No committed forest to resume: clear any stale partial state.
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
    if (ec) {
      std::fprintf(stderr, "warehouse_refresh: cannot clear %s: %s\n",
                   options.dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  auto warehouse_result = Warehouse::Create(options);
  if (!warehouse_result.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 warehouse_result.status().ToString().c_str());
    return 1;
  }
  auto warehouse = std::move(warehouse_result).value();
  if (resume) return RecoverAndQuery(warehouse.get());

  std::printf("Initial load: %llu facts into %zu views "
              "(+%zu replicas)...\n",
              static_cast<unsigned long long>(
                  warehouse->generator().NumBaseLineitems()),
              warehouse->selected_views().size(),
              warehouse->cubetree_views().size() -
                  warehouse->selected_views().size());
  auto load = warehouse->LoadCubetrees();
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.status().ToString().c_str());
    return 1;
  }
  std::printf("  loaded in %.2fs wall; forest = %.1f MiB, %llu points\n",
              load->TotalWallSeconds(),
              warehouse->cubetrees()->StorageBytes() / 1048576.0,
              static_cast<unsigned long long>(
                  warehouse->cubetrees()->forest()->TotalPoints()));

  // CUBETREE_SCRUB_ENABLE=1 turns on the background integrity scrubber:
  // it re-reads every page of the live generation between refreshes
  // (throttled by CUBETREE_SCRUB_RATE, paced by CUBETREE_SCRUB_INTERVAL_MS)
  // and repairs anything it quarantines from the sort-order replicas.
  CubetreeEngine* engine = warehouse->cubetrees();
  std::unique_ptr<Scrubber> scrubber = Scrubber::CreateFromEnv(
      engine->forest(), [engine] { return engine->RepairFromReplicas(); });
  if (scrubber != nullptr) {
    // Disk-full wiring: while the engine is degraded read-only, scrub
    // passes keep detecting and quarantining corruption but skip the
    // repair rebuild (it would write a fresh generation into a full
    // volume). The hook resumes repairs when space returns.
    Scrubber* scrub = scrubber.get();
    engine->degraded()->SetOnModeChange(
        [scrub](bool read_only) { scrub->SetRepairPaused(read_only); });
    scrubber->Start();
    std::printf("  background scrubber running (CUBETREE_SCRUB_*)\n");
  }

  if (online) {
    const int rc = OnlineWeek(warehouse.get());
    if (rc != 0) return rc;
  } else {
    SliceQueryGenerator gen = warehouse->MakeQueryGenerator(99);
    for (uint32_t day = 0; day < 7; ++day) {
      auto update = warehouse->UpdateCubetrees(day);
      if (!update.ok() && update.status().IsStorageFull()) {
        // The volume is (or is predicted to become) full. The old
        // generation keeps serving the dashboard; reclaim any dead files
        // a previous refresh left behind and retry once — the same loop
        // an operator runs after freeing space (retriable, typed error).
        std::printf("day %u: %s\n  reclaiming dead space and retrying...\n",
                    day + 1, update.status().ToString().c_str());
        const uint64_t reclaimed = engine->forest()->ReclaimSpace();
        std::printf("  reclaimed %llu byte(s)\n",
                    static_cast<unsigned long long>(reclaimed));
        update = warehouse->UpdateCubetrees(day);
      }
      if (!update.ok()) {
        std::fprintf(stderr, "day %u: %s\n", day,
                     update.status().ToString().c_str());
        return 1;
      }
      // Morning dashboard: a few slices over the fresh data.
      Timer timer;
      uint64_t rows = 0;
      for (int q = 0; q < 25; ++q) {
        SliceQuery query = gen.UniformOverLattice(
            warehouse->lattice(), /*exclude_unbound=*/true,
            /*skip_none_node=*/true);
        auto result = warehouse->cubetrees()->Execute(query, nullptr);
        if (!result.ok()) return 1;
        rows += result->rows.size();
      }
      std::printf("day %u: merge-pack %.3fs wall (%llu seq / %llu rand "
                  "page writes), 25 queries in %.3fs (%llu rows)\n",
                  day + 1, update->wall_seconds,
                  static_cast<unsigned long long>(
                      update->io.sequential_writes),
                  static_cast<unsigned long long>(update->io.random_writes),
                  timer.ElapsedSeconds(),
                  static_cast<unsigned long long>(rows));
    }
  }

  std::printf("\nafter a week: forest = %.1f MiB, %llu points — no "
              "down-time window needed beyond each merge-pack\n",
              warehouse->cubetrees()->StorageBytes() / 1048576.0,
              static_cast<unsigned long long>(
                  warehouse->cubetrees()->forest()->TotalPoints()));
  return 0;
}
