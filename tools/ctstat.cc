// ctstat — offline workload-observability toolkit over the durable query
// log (CUBETREE_QUERY_LOG). Two subcommands:
//
//   ctstat check <log-path>
//     Validates every record in every on-disk segment of the rotating log
//     (oldest first) against the strict QueryLogRecord schema. Prints a
//     per-segment line count and exits 1 when any complete line fails to
//     parse — CI uses this to catch schema drift. A torn final line (crash
//     mid-append) is reported but is NOT an error.
//
//   ctstat report <log-path> [--json]
//     Runs the workload profiler over the log: per-view and per-outcome
//     latency distributions, top-K heavy-hitter query shapes, and the
//     replica-miss table (which extra sort order would have served each
//     miss, with estimated pages saved). --json emits the machine-readable
//     report document instead of text.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/query_log.h"
#include "obs/workload.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ctstat check <log-path>\n"
               "       ctstat report <log-path> [--json]\n");
  return 2;
}

int RunCheck(const std::string& path) {
  const std::vector<std::string> segments = cubetree::obs::QueryLog::Segments(path);
  if (segments.empty()) {
    std::fprintf(stderr, "ctstat: no log segments at %s\n", path.c_str());
    return 1;
  }
  uint64_t total_lines = 0;
  uint64_t total_torn = 0;
  uint64_t total_invalid = 0;
  for (const std::string& segment : segments) {
    cubetree::obs::QueryLogReadStats stats;
    uint64_t invalid = 0;
    cubetree::Status s = cubetree::obs::ForEachLogLine(
        segment,
        [&](const std::string& line) {
          auto doc = cubetree::obs::JsonValue::Parse(line);
          if (!doc.ok()) {
            ++invalid;
            return;
          }
          auto record = cubetree::obs::QueryLogRecord::FromJson(*doc);
          if (!record.ok()) ++invalid;
        },
        &stats);
    if (!s.ok()) {
      std::fprintf(stderr, "ctstat: %s: %s\n", segment.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("%s: %llu records, %llu invalid, %llu torn\n", segment.c_str(),
                static_cast<unsigned long long>(stats.lines - invalid),
                static_cast<unsigned long long>(invalid),
                static_cast<unsigned long long>(stats.torn));
    total_lines += stats.lines;
    total_torn += stats.torn;
    total_invalid += invalid;
  }
  std::printf("total: %llu records, %llu invalid, %llu torn\n",
              static_cast<unsigned long long>(total_lines - total_invalid),
              static_cast<unsigned long long>(total_invalid),
              static_cast<unsigned long long>(total_torn));
  if (total_invalid > 0) {
    std::fprintf(stderr, "ctstat: %llu invalid record(s)\n",
                 static_cast<unsigned long long>(total_invalid));
    return 1;
  }
  return 0;
}

int RunReport(const std::string& path, bool json) {
  cubetree::obs::WorkloadProfiler profiler;
  cubetree::Status s = profiler.AddLog(path);
  if (!s.ok()) {
    std::fprintf(stderr, "ctstat: %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (profiler.records() == 0 && profiler.invalid_records() == 0) {
    std::fprintf(stderr, "ctstat: no records at %s\n", path.c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", profiler.ReportJson().Dump(2).c_str());
  } else {
    std::fputs(profiler.ReportText().c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  if (cmd == "check") {
    if (argc != 3) return Usage();
    return RunCheck(path);
  }
  if (cmd == "report") {
    bool json = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        json = true;
      } else {
        return Usage();
      }
    }
    return RunReport(path, json);
  }
  return Usage();
}
