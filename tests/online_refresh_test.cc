// Online-refresh concurrency suite: generation snapshots, epoch-based file
// reclamation, query deadlines/cancellation, admission control, the shared
// process memory budget — and a multithreaded stress harness racing reader
// threads against a stream of refresh cycles with failpoints armed.
//
// The stress tests carry the suite's core invariant: a pinned snapshot is
// a single committed generation, so every view's total count inside one
// snapshot advances in lockstep (the base plus the same number of whole
// refresh cycles). A reader that ever observes views from two different
// generations — or a torn, mid-refresh state — breaks the lockstep and
// fails loudly. Run under TSan via CUBETREE_SANITIZE=thread.

#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/query_context.h"
#include "cubetree/cubetree.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "engine/admission.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

using Clock = std::chrono::steady_clock;

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef view;
  view.id = id;
  view.attrs = std::move(attrs);
  return view;
}

/// The paper's running example: V1{partkey,suppkey}, V2{suppkey,custkey},
/// V3{partkey}, V4{} — two trees after SelectMapping.
std::vector<ViewDef> PaperViews() {
  return {MakeView(1, {0, 1}), MakeView(2, {1, 2}), MakeView(3, {0}),
          MakeView(4, {})};
}

/// In-memory ViewDataProvider (same idiom as the crash-recovery suite).
class VectorViewProvider : public CubetreeForest::ViewDataProvider {
 public:
  void Add(const ViewDef& view, std::vector<Coord> coords, AggValue agg) {
    auto& rows = data_[view.id];
    std::vector<char> rec(ViewRecordBytes(view.arity()));
    coords.resize(kMaxDims, 0);
    EncodeViewRecord(rec.data(), coords.data(), view.arity(), agg);
    rows.push_back(std::move(rec));
  }

  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    auto rows = data_[view.id];  // Copy.
    const uint8_t arity = view.arity();
    std::sort(rows.begin(), rows.end(),
              [arity](const std::vector<char>& a, const std::vector<char>& b) {
                return ViewRecordCompare(a.data(), b.data(), arity) < 0;
              });
    std::vector<char> flat;
    for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());
    return std::unique_ptr<RecordStream>(
        new MemoryRecordStream(std::move(flat), ViewRecordBytes(arity)));
  }

 private:
  std::map<uint32_t, std::vector<std::vector<char>>> data_;
};

constexpr uint64_t kBaseCount = 12;   // Per-view total count after Build.
constexpr uint64_t kCycleCount = 8;   // Added to every view per cycle.

/// Base load: 12 rows (total count 12) in every view, including the
/// arity-0 view, so the lockstep invariant starts from equal counts.
void FillBase(VectorViewProvider* p, const std::vector<ViewDef>& views) {
  for (uint32_t k = 1; k <= kBaseCount; ++k) {
    p->Add(views[0], {k, 1}, AggValue{int64_t(k), 1});
    p->Add(views[1], {1, k}, AggValue{int64_t(k * 2), 1});
    p->Add(views[2], {k}, AggValue{int64_t(k * 3), 1});
  }
  p->Add(views[3], {}, AggValue{77, kBaseCount});
}

/// Refresh cycle `c` (1-based): 8 rows with cycle-unique keys in every
/// keyed view plus count-8 in the arity-0 view. Keys never collide across
/// cycles or with the base, so each applied cycle raises every view's
/// total count by exactly kCycleCount — the lockstep invariant.
void FillCycle(VectorViewProvider* p, const std::vector<ViewDef>& views,
               uint32_t cycle) {
  for (uint32_t j = 1; j <= kCycleCount; ++j) {
    const Coord key = 1000 + (cycle - 1) * kCycleCount + j;
    p->Add(views[0], {key, 2}, AggValue{int64_t(key), 1});
    p->Add(views[1], {2, key}, AggValue{int64_t(key), 1});
    p->Add(views[2], {key}, AggValue{int64_t(key), 1});
  }
  p->Add(views[3], {}, AggValue{int64_t(cycle), kCycleCount});
}

CubetreeForest::Options ForestOptions(const std::string& dir) {
  CubetreeForest::Options options;
  options.dir = dir;
  options.name = "f";
  return options;
}

/// Total count per view, read strictly through `snap` (never through the
/// forest's live generation).
Status CountAll(const ForestSnapshot& snap, const std::vector<ViewDef>& views,
                std::vector<uint64_t>* out) {
  out->assign(views.size(), 0);
  for (size_t i = 0; i < views.size(); ++i) {
    CT_ASSIGN_OR_RETURN(Cubetree * tree, snap.TreeForView(views[i].id));
    std::vector<std::optional<Coord>> open(views[i].arity(), std::nullopt);
    CT_RETURN_NOT_OK(tree->QuerySlice(
        views[i].id, open, [&](const Coord*, const AggValue& agg) {
          (*out)[i] += agg.count;
        }));
  }
  return Status::OK();
}

/// Tree/delta files of forest "f" present in `dir` (names like f_t0_g1.ctr).
std::vector<std::string> ForestDataFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return files;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("f_t", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".ctr") {
      files.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

class OnlineRefreshTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
  }
};

// --- Snapshot isolation & epoch-based reclamation -----------------------

TEST_F(OnlineRefreshTest, SnapshotIsolatedFromFullRefresh) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));

  ForestSnapshot old_snap = forest->AcquireSnapshot();
  ASSERT_TRUE(old_snap.valid());
  const uint64_t old_epoch = old_snap.epoch();
  std::vector<uint64_t> counts;
  ASSERT_OK(CountAll(old_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount);

  const auto files_before = ForestDataFiles(dir);
  VectorViewProvider delta;
  FillCycle(&delta, views, 1);
  ASSERT_OK(forest->ApplyDelta(&delta));

  // The new generation serves new totals; the pinned one is unchanged.
  ForestSnapshot new_snap = forest->AcquireSnapshot();
  EXPECT_GT(new_snap.epoch(), old_epoch);
  ASSERT_OK(CountAll(new_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount + kCycleCount);
  ASSERT_OK(CountAll(old_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount);

  // The replaced generation's files are retired but still on disk: the
  // pinned epoch defers their unlink.
  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.live_epoch, new_snap.epoch());
  EXPECT_EQ(gc.pinned_epochs, 1u);
  EXPECT_EQ(gc.unreclaimed_files, files_before.size());
  EXPECT_EQ(gc.reclaimed_files, 0u);
  auto files_during = ForestDataFiles(dir);
  for (const std::string& f : files_before) {
    EXPECT_TRUE(std::find(files_during.begin(), files_during.end(), f) !=
                files_during.end())
        << f << " deleted while a snapshot pinned its generation";
  }

  // Dropping the last pin reclaims exactly the replaced files.
  new_snap.Release();
  old_snap.Release();
  gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 0u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);
  EXPECT_EQ(gc.reclaimed_files, files_before.size());
  auto files_after = ForestDataFiles(dir);
  for (const std::string& f : files_before) {
    EXPECT_TRUE(std::find(files_after.begin(), files_after.end(), f) ==
                files_after.end())
        << f << " still on disk after its last pinning epoch died";
  }
}

TEST_F(OnlineRefreshTest, SnapshotSurvivesManyRefreshCyclesAndCompact) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));

  ForestSnapshot pinned = forest->AcquireSnapshot();
  const size_t num_trees = ForestDataFiles(dir).size();

  for (uint32_t c = 1; c <= 3; ++c) {
    VectorViewProvider delta;
    FillCycle(&delta, views, c);
    ASSERT_OK(forest->ApplyDelta(&delta));
  }
  VectorViewProvider partial;
  FillCycle(&partial, views, 4);
  ASSERT_OK(forest->ApplyDeltaPartial(&partial));
  ASSERT_OK(forest->Compact());

  // The pinned generation still answers with its original totals.
  std::vector<uint64_t> counts;
  ASSERT_OK(CountAll(pinned, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount);
  ForestSnapshot live = forest->AcquireSnapshot();
  ASSERT_OK(CountAll(live, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount + 4 * kCycleCount);
  live.Release();

  // Intermediate generations were never pinned: their files are already
  // reclaimed even while the first snapshot stays alive. Only the pinned
  // generation's files and the live set remain.
  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 1u);
  EXPECT_EQ(gc.unreclaimed_files, num_trees);
  EXPECT_EQ(ForestDataFiles(dir).size(), 2 * num_trees);

  pinned.Release();
  gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 0u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);
  EXPECT_EQ(ForestDataFiles(dir).size(), num_trees);
}

TEST_F(OnlineRefreshTest, PartialRefreshSharesMainTreeFiles) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));

  ForestSnapshot old_snap = forest->AcquireSnapshot();
  VectorViewProvider delta;
  FillCycle(&delta, views, 1);
  ASSERT_OK(forest->ApplyDeltaPartial(&delta));

  // A partial refresh only adds delta trees: the main files are shared
  // between the old and new generations, so nothing is retired.
  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 1u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);

  std::vector<uint64_t> counts;
  ASSERT_OK(CountAll(old_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount);
  ForestSnapshot new_snap = forest->AcquireSnapshot();
  ASSERT_OK(CountAll(new_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount + kCycleCount);

  old_snap.Release();
  gc = forest->GcStats();
  EXPECT_EQ(gc.reclaimed_files, 0u);  // Shared files must survive.
  ASSERT_OK(CountAll(new_snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount + kCycleCount);
}

// --- Deadlines & cancellation -------------------------------------------

TEST_F(OnlineRefreshTest, DeadlineBoundsQueryUnderStorageStall) {
  const std::string dir = MakeTestDir("online");
  {
    BufferPool pool(256);
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Create(ForestOptions(dir), &pool));
    const auto views = PaperViews();
    VectorViewProvider base;
    FillBase(&base, views);
    ASSERT_OK(forest->Build(views, &base));
  }
  // Reopen cold so the scan must hit the (now always-failing) read path.
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Open(ForestOptions(dir), &pool));
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error"));
  PageManager::SetReadRetryPolicy(4, 2000);

  const auto timeout = std::chrono::milliseconds(100);
  QueryContext ctx = QueryContext::WithTimeout(timeout);
  QueryContext::Scope scope(&ctx);
  const auto start = Clock::now();
  ForestSnapshot snap = forest->AcquireSnapshot();
  std::vector<uint64_t> counts;
  const Status status = CountAll(snap, PaperViews(), &counts);
  const auto elapsed = Clock::now() - start;

  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  // Acceptance bound: a deadlined query returns within 2x its deadline
  // even when storage stalls, because the retry loop's backoff is clipped
  // to the remaining time and every page touch re-checks the context.
  EXPECT_LE(elapsed, 2 * timeout)
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
             .count()
      << "ms for a 100ms deadline";
}

TEST_F(OnlineRefreshTest, CancelUnblocksStalledQueryFromAnotherThread) {
  const std::string dir = MakeTestDir("online");
  {
    BufferPool pool(256);
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Create(ForestOptions(dir), &pool));
    const auto views = PaperViews();
    VectorViewProvider base;
    FillBase(&base, views);
    ASSERT_OK(forest->Build(views, &base));
  }
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Open(ForestOptions(dir), &pool));
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error"));
  // Effectively unbounded retries: only the cancel can end the query.
  PageManager::SetReadRetryPolicy(1000000, 500);

  QueryContext ctx;
  Status status;
  std::thread worker([&] {
    QueryContext::Scope scope(&ctx);
    ForestSnapshot snap = forest->AcquireSnapshot();
    std::vector<uint64_t> counts;
    status = CountAll(snap, PaperViews(), &counts);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto cancel_time = Clock::now();
  ctx.Cancel();
  worker.join();
  const auto latency = Clock::now() - cancel_time;

  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_LE(latency, std::chrono::seconds(2));
}

// --- Admission control ---------------------------------------------------

TEST_F(OnlineRefreshTest, AdmissionShedsCheapestUnderOverload) {
  AdmissionController::Options options;
  options.max_concurrent = 1;
  options.max_queued = 2;
  AdmissionController gate(options);

  ASSERT_OK_AND_ASSIGN(AdmissionTicket running, gate.Admit(100, nullptr));

  Status cheap_status, mid_status, pricey_status;
  std::thread cheap([&] {
    auto r = gate.Admit(10, nullptr);
    cheap_status = r.status();
  });
  std::thread mid([&] {
    auto r = gate.Admit(50, nullptr);
    mid_status = r.status();
  });
  for (int i = 0; i < 2000 && gate.queued() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(gate.queued(), 2);

  // Queue full + this arrival is the cheapest of all: rejected with a
  // retriable hint, nothing already queued loses its place.
  auto rejected = gate.Admit(5, nullptr);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_TRUE(rejected.status().IsRetriable());
  EXPECT_NE(rejected.status().ToString().find("retry-after-ms"),
            std::string::npos)
      << rejected.status().ToString();

  // Queue full + a pricier arrival: the cheapest waiter (cost 10) is shed
  // to make room.
  std::thread pricey([&] {
    auto r = gate.Admit(200, nullptr);
    pricey_status = r.status();
  });
  cheap.join();
  EXPECT_TRUE(cheap_status.IsResourceExhausted()) << cheap_status.ToString();
  EXPECT_TRUE(cheap_status.IsRetriable());

  // Draining the running query admits the survivors in FIFO order.
  running.Release();
  mid.join();
  pricey.join();
  EXPECT_OK(mid_status);
  EXPECT_OK(pricey_status);

  const AdmissionController::Stats stats = gate.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(gate.active(), 0);
  EXPECT_EQ(gate.queued(), 0);
}

TEST_F(OnlineRefreshTest, AdmissionQueueRespectsDeadlineAndCancel) {
  AdmissionController::Options options;
  options.max_concurrent = 1;
  options.max_queued = 4;
  AdmissionController gate(options);
  ASSERT_OK_AND_ASSIGN(AdmissionTicket running, gate.Admit(100, nullptr));

  // Deadline expires while queued.
  QueryContext deadline_ctx =
      QueryContext::WithTimeout(std::chrono::milliseconds(50));
  const auto start = Clock::now();
  auto timed_out = gate.Admit(10, &deadline_ctx);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded())
      << timed_out.status().ToString();
  EXPECT_LE(Clock::now() - start, std::chrono::milliseconds(1000));

  // Cancelled from another thread while queued.
  QueryContext cancel_ctx;
  Status cancelled_status;
  std::thread waiter([&] {
    auto r = gate.Admit(10, &cancel_ctx);
    cancelled_status = r.status();
  });
  for (int i = 0; i < 2000 && gate.queued() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cancel_ctx.Cancel();
  waiter.join();
  EXPECT_TRUE(cancelled_status.IsCancelled()) << cancelled_status.ToString();

  const AdmissionController::Stats stats = gate.stats();
  EXPECT_EQ(stats.deadline_exits, 2u);
  EXPECT_EQ(gate.queued(), 0);
}

// Regression: the max_queued check (and the retry-after hint) used to read
// the raw queue_.size(), which still counts "zombie" entries — waiters
// already admitted by ReleaseSlot (or shed) whose threads have not woken
// to unlink themselves yet. In the window right after a Release, a new
// arrival saw a full queue and was spuriously rejected even though the
// effective depth was zero. The controller now tracks the effective depth
// separately; this loop hammers exactly that window and must never see a
// ResourceExhausted.
TEST_F(OnlineRefreshTest, AdmissionZombieWaitersDoNotCountAgainstQueue) {
  AdmissionController::Options options;
  options.max_concurrent = 1;
  options.max_queued = 1;
  AdmissionController gate(options);

  int spurious_rejections = 0;
  for (int round = 0; round < 50; ++round) {
    ASSERT_OK_AND_ASSIGN(AdmissionTicket holder, gate.Admit(100, nullptr));
    Status waiter_status;
    std::thread waiter([&] {
      auto r = gate.Admit(10, nullptr);
      waiter_status = r.status();
      if (r.ok()) r->Release();
    });
    for (int i = 0; i < 2000 && gate.queued() < 1; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(gate.queued(), 1);

    // Hand the slot to the waiter; its queue entry lingers until its
    // thread wakes. Arriving right now must not be rejected: nothing is
    // effectively queued, and this arrival is cheaper than the zombie
    // (the buggy path would shed-or-reject it against the stale entry).
    holder.Release();
    QueryContext ctx = QueryContext::WithTimeout(std::chrono::milliseconds(100));
    auto arrival = gate.Admit(5, &ctx);
    if (arrival.ok()) {
      arrival->Release();
    } else if (arrival.status().IsResourceExhausted()) {
      ++spurious_rejections;
    }
    // DeadlineExceeded is fine: it means we queued (not rejected) and the
    // waiter still held the slot when the clock ran out.
    waiter.join();
    EXPECT_OK(waiter_status);
  }
  EXPECT_EQ(spurious_rejections, 0);
  EXPECT_EQ(gate.stats().rejected, 0u);
  EXPECT_EQ(gate.active(), 0);
  EXPECT_EQ(gate.queued(), 0);
}

// --- Metrics under concurrency -------------------------------------------
//
// The obs registry is bumped from query, refresh and buffer-pool threads
// simultaneously; this runs the whole surface (registration, recording,
// snapshotting) under TSan via the suite's `concurrency` label.
TEST_F(OnlineRefreshTest, MetricsRegistryIsThreadSafeUnderLoad) {
  auto& reg = obs::MetricsRegistry::Instance();
  obs::Counter* counter = reg.GetCounter("online_test.metrics_counter");
  obs::Gauge* gauge = reg.GetGauge("online_test.metrics_gauge");
  obs::Histogram* hist = reg.GetHistogram("online_test.metrics_hist");
  counter->Reset();
  gauge->Reset();
  hist->Reset();

  constexpr int kWriters = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      // Also race first-use registration of per-thread names against the
      // established pointers.
      obs::Counter* own = reg.GetCounter("online_test.metrics_counter");
      for (int i = 0; i < kPerThread; ++i) {
        own->Increment();
        gauge->Add(t % 2 == 0 ? 1 : -1);
        hist->Record(static_cast<uint64_t>(i % 1000 + 1));
      }
    });
  }
  // A reader snapshots concurrently — dumps must not tear or crash.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::JsonValue snap = reg.SnapshotJson();
      EXPECT_NE(snap.Find("counters"), nullptr);
      (void)reg.DumpText();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(hist->max(), 1000u);
}

// --- Shared memory budget ------------------------------------------------

TEST_F(OnlineRefreshTest, SorterSpillsEarlierUnderBudgetPressure) {
  const std::string dir = MakeTestDir("online");
  constexpr size_t kRecordSize = 64;
  constexpr int kRecords = 1000;
  auto key_less = [](const char* a, const char* b) {
    uint64_t ka, kb;
    std::memcpy(&ka, a, sizeof(ka));
    std::memcpy(&kb, b, sizeof(kb));
    return ka < kb;
  };
  auto add_all = [&](ExternalSorter* sorter) -> Status {
    char rec[kRecordSize] = {};
    for (int i = 0; i < kRecords; ++i) {
      const uint64_t key = static_cast<uint64_t>(kRecords - i);
      std::memcpy(rec, &key, sizeof(key));
      CT_RETURN_NOT_OK(sorter->Add(rec));
    }
    return Status::OK();
  };

  // Unbudgeted: 1000 * 64B fits the nominal 1 MB buffer, no spill.
  ExternalSorter::Options plain;
  plain.record_size = kRecordSize;
  plain.memory_budget_bytes = 1 << 20;
  plain.temp_dir = dir;
  ExternalSorter unbudgeted(plain, key_less);
  ASSERT_OK(add_all(&unbudgeted));
  EXPECT_EQ(unbudgeted.num_runs(), 0u);

  // Same sort under memory pressure: the process budget only has 8 KB
  // left, so the sorter takes the smaller buffer and spills runs instead
  // of failing — and still produces the same sorted output.
  MemoryBudget budget(1 << 20);
  ASSERT_OK(budget.TryReserve((1 << 20) - 8192, "test hog"));
  ExternalSorter::Options squeezed = plain;
  squeezed.process_budget = &budget;
  {
    ExternalSorter sorter(squeezed, key_less);
    ASSERT_OK(add_all(&sorter));
    EXPECT_GT(sorter.num_runs(), 0u);
    ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
    uint64_t prev = 0, n = 0;
    while (true) {
      const char* rec_out = nullptr;
      ASSERT_OK(stream->Next(&rec_out));
      if (rec_out == nullptr) break;
      uint64_t key;
      std::memcpy(&key, rec_out, sizeof(key));
      EXPECT_GT(key, prev);
      prev = key;
      ++n;
    }
    EXPECT_EQ(n, static_cast<uint64_t>(kRecords));
  }
  // The sorter's reservation is returned when it dies.
  EXPECT_EQ(budget.used(), (1u << 20) - 8192);
}

TEST_F(OnlineRefreshTest, SorterRejectsRetriablyWhenBudgetExhausted) {
  const std::string dir = MakeTestDir("online");
  MemoryBudget budget(4096);
  ASSERT_OK(budget.TryReserve(4096, "test hog"));

  ExternalSorter::Options options;
  options.record_size = 64;
  options.temp_dir = dir;
  options.process_budget = &budget;
  ExternalSorter sorter(options, [](const char*, const char*) {
    return false;
  });
  char rec[64] = {};
  const Status status = sorter.Add(rec);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_TRUE(status.IsRetriable());
  EXPECT_NE(status.ToString().find("retry-after-ms"), std::string::npos)
      << status.ToString();
}

TEST_F(OnlineRefreshTest, BufferPoolDegradesToEvictionUnderBudget) {
  const std::string dir = MakeTestDir("online");
  ASSERT_OK_AND_ASSIGN(auto file,
                       PageManager::Create(dir + "/pages.pg"));
  // Budget covers two frames; the pool would happily hold eight.
  MemoryBudget budget(2 * kPageSize);
  BufferPool pool(8, &budget);

  ASSERT_OK_AND_ASSIGN(PageHandle h1, pool.New(file.get()));
  ASSERT_OK_AND_ASSIGN(PageHandle h2, pool.New(file.get()));
  const PageId id1 = h1.id();

  // Both charged frames pinned + budget refuses a third: hard failure,
  // reported retriably so the caller can shed load instead of growing.
  auto denied = pool.New(file.get());
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsResourceExhausted())
      << denied.status().ToString();
  EXPECT_TRUE(denied.status().IsRetriable());

  // With an unpinned frame available the pool degrades to eviction and
  // stays inside its two-frame budget footprint.
  h1.Release();
  ASSERT_OK_AND_ASSIGN(PageHandle h3, pool.New(file.get()));
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_EQ(budget.used(), 2 * kPageSize);

  // The evicted page is still readable (was written back on eviction).
  h3.Release();
  ASSERT_OK_AND_ASSIGN(PageHandle h1_again, pool.Fetch(file.get(), id1));
  h1_again.Release();
  h2.Release();
}

// --- The stress harness --------------------------------------------------

/// >= 8 reader threads race >= 20 refresh cycles (full, partial, compact)
/// with a transient read failpoint re-armed every cycle. Every reader
/// iteration pins one snapshot and checks the lockstep invariant: all four
/// views report base + k whole cycles, for one k, monotonically
/// non-decreasing per reader. Readers alternate plain and deadlined
/// contexts; deadline/cancel/IO outcomes are tolerated, torn states and
/// cross-generation mixes are not.
void RunReadersVsRefreshStress(unsigned refresh_threads) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(512);
  CubetreeForest::Options forest_options = ForestOptions(dir);
  forest_options.refresh_threads = refresh_threads;
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(forest_options, &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));
  const size_t num_trees = ForestDataFiles(dir).size();

  constexpr int kReaders = 8;
  constexpr uint32_t kCycles = 24;
  // Generous retry ceiling so each cycle's 4-shot transient failpoint is
  // always absorbed by the page-read retry loop.
  PageManager::SetReadRetryPolicy(8, 50);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> good_reads{0};
  std::atomic<uint64_t> tolerated_reads{0};
  std::vector<std::string> reader_errors(kReaders);

  auto reader = [&](int r) {
    uint64_t last_k = 0;
    uint64_t iter = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++iter;
      // Every fourth iteration runs under a tight deadline to exercise
      // the context checks on hit and miss paths concurrently.
      std::optional<QueryContext> ctx;
      if (iter % 4 == 0) {
        ctx.emplace(
            QueryContext::WithTimeout(std::chrono::milliseconds(20)));
      }
      QueryContext::Scope scope(ctx.has_value() ? &*ctx : nullptr);
      ForestSnapshot snap = forest->AcquireSnapshot();
      std::vector<uint64_t> counts;
      const Status status = CountAll(snap, views, &counts);
      if (!status.ok()) {
        if (status.IsDeadlineExceeded() || status.IsCancelled() ||
            status.IsRetriable() || status.IsIOError()) {
          tolerated_reads.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (reader_errors[r].empty()) {
          reader_errors[r] = "read failed: " + status.ToString();
        }
        return;
      }
      // Lockstep invariant: one committed generation, never a mix.
      std::string bad;
      for (size_t i = 1; i < counts.size(); ++i) {
        if (counts[i] != counts[0]) bad = "views disagree";
      }
      if (counts[0] < kBaseCount ||
          (counts[0] - kBaseCount) % kCycleCount != 0) {
        bad = "count is not base + whole cycles";
      }
      const uint64_t k = (counts[0] - kBaseCount) / kCycleCount;
      if (bad.empty() && k < last_k) bad = "snapshot went backwards";
      if (bad.empty() && k > kCycles) bad = "more cycles than applied";
      if (!bad.empty()) {
        if (reader_errors[r].empty()) {
          reader_errors[r] = bad + " at epoch " +
                             std::to_string(snap.epoch()) + ": " +
                             std::to_string(counts[0]) + "/" +
                             std::to_string(counts[1]) + "/" +
                             std::to_string(counts[2]) + "/" +
                             std::to_string(counts[3]);
        }
        return;
      }
      last_k = k;
      good_reads.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) readers.emplace_back(reader, r);

  // The refresh stream: mostly full merge-pack refreshes, a partial every
  // fifth cycle, a compaction after each partial. A fresh 4-shot transient
  // read fault is armed each cycle, so both refresh builds and concurrent
  // reader scans keep tripping (and absorbing) injected errors.
  std::string refresh_error;
  for (uint32_t c = 1; c <= kCycles && refresh_error.empty(); ++c) {
    EXPECT_OK(FaultInjector::Instance().Arm("storage.page.read",
                                            "error(4)@7"));
    VectorViewProvider delta;
    FillCycle(&delta, views, c);
    Status applied;
    if (c % 5 == 0) {
      applied = forest->ApplyDeltaPartial(&delta);
      if (applied.ok()) applied = forest->Compact();
    } else {
      applied = forest->ApplyDelta(&delta);
    }
    if (!applied.ok()) {
      refresh_error =
          "cycle " + std::to_string(c) + ": " + applied.ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  FaultInjector::Instance().DisarmAll();

  EXPECT_TRUE(refresh_error.empty()) << refresh_error;
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(reader_errors[r].empty())
        << "reader " << r << ": " << reader_errors[r];
  }
  EXPECT_GE(good_reads.load(), static_cast<uint64_t>(kReaders));

  // Quiesced end state: the final generation serves base + all cycles...
  ForestSnapshot final_snap = forest->AcquireSnapshot();
  std::vector<uint64_t> counts;
  ASSERT_OK(CountAll(final_snap, views, &counts));
  for (uint64_t c : counts) {
    EXPECT_EQ(c, kBaseCount + kCycles * kCycleCount);
  }
  final_snap.Release();

  // ...every retired epoch died with its readers, and no retired file
  // leaked to disk: exactly the live tree set remains.
  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 0u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);
  EXPECT_GT(gc.reclaimed_files, 0u);
  EXPECT_EQ(ForestDataFiles(dir).size(), num_trees);
}

TEST_F(OnlineRefreshTest, StressReadersVsRefreshWithFailpoints) {
  RunReadersVsRefreshStress(1);
}

// The same harness with the refresh worker pool on: each cycle's
// merge-packs run on 4 workers while the readers hammer snapshots and the
// transient read failpoint keeps tripping inside the workers. Lockstep,
// cleanup and GC invariants are identical — parallelism must be
// unobservable except in wall time.
TEST_F(OnlineRefreshTest, StressReadersVsParallelRefreshWithFailpoints) {
  RunReadersVsRefreshStress(4);
}

/// Readers holding snapshots across whole refresh cycles (long-running
/// "dashboard" scans): pins outlive several generations and reclamation
/// happens strictly after the last release, never under a reader.
TEST_F(OnlineRefreshTest, StressLongPinsDeferReclamation) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(512);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));
  const size_t num_trees = ForestDataFiles(dir).size();

  constexpr int kReaders = 8;
  constexpr uint32_t kCycles = 20;
  std::atomic<bool> stop{false};
  std::vector<std::string> reader_errors(kReaders);

  // Each reader pins a snapshot, re-reads it several times (its totals
  // must never move), releases, and re-pins a fresh one.
  auto reader = [&](int r) {
    while (!stop.load(std::memory_order_relaxed)) {
      ForestSnapshot snap = forest->AcquireSnapshot();
      std::vector<uint64_t> first, again;
      for (int pass = 0; pass < 3; ++pass) {
        std::vector<uint64_t>* out = pass == 0 ? &first : &again;
        const Status status = CountAll(snap, views, out);
        if (!status.ok()) {
          if (reader_errors[r].empty()) {
            reader_errors[r] = status.ToString();
          }
          return;
        }
        if (pass > 0 && again != first) {
          if (reader_errors[r].empty()) {
            reader_errors[r] = "pinned snapshot changed between passes";
          }
          return;
        }
      }
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) readers.emplace_back(reader, r);

  std::string refresh_error;
  for (uint32_t c = 1; c <= kCycles && refresh_error.empty(); ++c) {
    VectorViewProvider delta;
    FillCycle(&delta, views, c);
    const Status applied = forest->ApplyDelta(&delta);
    if (!applied.ok()) {
      refresh_error =
          "cycle " + std::to_string(c) + ": " + applied.ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_TRUE(refresh_error.empty()) << refresh_error;
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(reader_errors[r].empty())
        << "reader " << r << ": " << reader_errors[r];
  }

  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 0u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);
  EXPECT_EQ(ForestDataFiles(dir).size(), num_trees);
}

// Regression for the raw-pointer accessor dangle: tree() / TreeForView()
// used to hand out a Cubetree* into the live generation, which a
// concurrent refresh could retire and destroy mid-query (nothing pinned
// the generation for the caller). The accessors now return shared
// ownership: a handle acquired just before a refresh keeps its
// generation's tree alive — and its possibly-unlinked file readable —
// for as long as the caller holds it. Run under TSan via
// CUBETREE_SANITIZE=thread: with the raw accessors this races on freed
// Cubetree state.
TEST_F(OnlineRefreshTest, TreeAccessorHandlesSurviveConcurrentRefresh) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(512);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));

  constexpr int kAccessors = 4;
  constexpr uint32_t kCycles = 16;
  std::atomic<bool> stop{false};
  std::vector<std::string> errors(kAccessors);

  auto accessor = [&](int r) {
    uint64_t last_k = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Hold a handle to every tree across the whole iteration; a refresh
      // may retire their generation at any point in between.
      std::vector<std::shared_ptr<Cubetree>> held;
      for (size_t t = 0; t < forest->num_trees(); ++t) {
        held.push_back(forest->tree(t));
      }
      auto tree_result = forest->TreeForView(views[0].id);
      if (!tree_result.ok()) {
        if (errors[r].empty()) errors[r] = tree_result.status().ToString();
        return;
      }
      std::shared_ptr<Cubetree> tree = *std::move(tree_result);
      uint64_t count = 0;
      std::vector<std::optional<Coord>> open(views[0].arity(), std::nullopt);
      const Status status = tree->QuerySlice(
          views[0].id, open,
          [&count](const Coord*, const AggValue& agg) { count += agg.count; });
      if (!status.ok()) {
        if (errors[r].empty()) errors[r] = status.ToString();
        return;
      }
      // The handle serves one committed generation: base + whole cycles,
      // never torn, never going backwards across fresh handles.
      std::string bad;
      if (count < kBaseCount || (count - kBaseCount) % kCycleCount != 0) {
        bad = "count is not base + whole cycles: " + std::to_string(count);
      }
      const uint64_t k = (count - kBaseCount) / kCycleCount;
      if (bad.empty() && k < last_k) bad = "fresh handle went backwards";
      if (!bad.empty()) {
        if (errors[r].empty()) errors[r] = bad;
        return;
      }
      last_k = k;
      // Metadata reads through the held handles: with raw pointers these
      // would touch freed memory once the generation is reclaimed.
      uint64_t points = 0;
      for (const auto& h : held) points += h->rtree()->num_points();
      if (points == 0) {
        if (errors[r].empty()) errors[r] = "held handles lost their points";
        return;
      }
    }
  };

  std::vector<std::thread> accessors;
  accessors.reserve(kAccessors);
  for (int r = 0; r < kAccessors; ++r) accessors.emplace_back(accessor, r);

  std::string refresh_error;
  for (uint32_t c = 1; c <= kCycles && refresh_error.empty(); ++c) {
    VectorViewProvider delta;
    FillCycle(&delta, views, c);
    const Status applied = forest->ApplyDelta(&delta);
    if (!applied.ok()) {
      refresh_error = "cycle " + std::to_string(c) + ": " + applied.ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : accessors) t.join();

  EXPECT_TRUE(refresh_error.empty()) << refresh_error;
  for (int r = 0; r < kAccessors; ++r) {
    EXPECT_TRUE(errors[r].empty()) << "accessor " << r << ": " << errors[r];
  }
  // With every handle dropped, all retired generations reclaim fully.
  ForestGcStats gc = forest->GcStats();
  EXPECT_EQ(gc.pinned_epochs, 0u);
  EXPECT_EQ(gc.unreclaimed_files, 0u);
}

// A failing worker inside the parallel merge-pack fan-out must cancel its
// siblings, surface the root cause (never a secondary Cancelled status),
// sweep every partial pack across all workers, and leave the published
// generation serving — so a disarm-and-retry then succeeds cleanly.
TEST_F(OnlineRefreshTest, ParallelRefreshAbortSweepsAllWorkerPartials) {
  const std::string dir = MakeTestDir("online");
  BufferPool pool(256);
  CubetreeForest::Options options = ForestOptions(dir);
  options.refresh_threads = 4;
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(options, &pool));
  const auto views = PaperViews();
  VectorViewProvider base;
  FillBase(&base, views);
  ASSERT_OK(forest->Build(views, &base));
  const auto files_before = ForestDataFiles(dir);

  ASSERT_OK(FaultInjector::Instance().Arm("forest.refresh.build", "error"));
  VectorViewProvider delta;
  FillCycle(&delta, views, 1);
  const Status failed = forest->ApplyDelta(&delta);
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(failed.IsCancelled()) << failed.ToString();
  FaultInjector::Instance().DisarmAll();

  // No partial pack leaked from any worker; the old generation serves.
  EXPECT_EQ(ForestDataFiles(dir), files_before);
  ForestSnapshot snap = forest->AcquireSnapshot();
  std::vector<uint64_t> counts;
  ASSERT_OK(CountAll(snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount);
  snap.Release();

  // The failure was transient: the same delta applies on retry.
  ASSERT_OK(forest->ApplyDelta(&delta));
  snap = forest->AcquireSnapshot();
  ASSERT_OK(CountAll(snap, views, &counts));
  for (uint64_t c : counts) EXPECT_EQ(c, kBaseCount + kCycleCount);
  snap.Release();
}

// N concurrent sorters arbitrated by one process budget. The capacity
// covers three full 32 KB buffers and then exactly the 4 KB floor, so the
// fourth sorter degrades to earlier spilling rather than failing; the
// background-spill replacement buffers are mostly denied (the budget is
// nearly full), exercising the synchronous-degrade path under contention.
// Nothing may deadlock, every sorter must produce its complete sorted
// output, and every reserved byte must return to the budget.
TEST_F(OnlineRefreshTest, ConcurrentSortersShareBudgetWithoutDeadlock) {
  const std::string dir = MakeTestDir("online");
  constexpr int kSorters = 4;
  constexpr size_t kRecordSize = 64;
  constexpr int kRecords = 1024;  // 64 KB per sorter: everyone spills.
  MemoryBudget budget(100 * 1024);

  auto key_less = [](const char* a, const char* b) {
    uint64_t ka, kb;
    std::memcpy(&ka, a, sizeof(ka));
    std::memcpy(&kb, b, sizeof(kb));
    return ka < kb;
  };

  std::vector<std::unique_ptr<ExternalSorter>> sorters;
  for (int i = 0; i < kSorters; ++i) {
    ExternalSorter::Options options;
    options.record_size = kRecordSize;
    options.memory_budget_bytes = 32 * 1024;
    options.temp_dir = dir;
    options.process_budget = &budget;
    options.spill_threads = 2;
    options.merge_read_ahead = true;
    sorters.push_back(std::make_unique<ExternalSorter>(options, key_less));
  }
  // Deterministic construction-order grants: 32 KB x3, then the floor.
  EXPECT_EQ(budget.used(), 3u * 32 * 1024 + 64 * kRecordSize);

  std::vector<std::string> errors(kSorters);
  std::vector<std::thread> threads;
  threads.reserve(kSorters);
  for (int i = 0; i < kSorters; ++i) {
    threads.emplace_back([&, i] {
      ExternalSorter* sorter = sorters[i].get();
      char rec[kRecordSize] = {};
      for (int r = 0; r < kRecords; ++r) {
        // Descending, sorter-unique keys: worst case for run generation.
        const uint64_t key =
            static_cast<uint64_t>(kRecords - r) * kSorters + i;
        std::memcpy(rec, &key, sizeof(key));
        const Status status = sorter->Add(rec);
        if (!status.ok()) {
          errors[i] = "add: " + status.ToString();
          return;
        }
      }
      auto stream = sorter->Finish();
      if (!stream.ok()) {
        errors[i] = "finish: " + stream.status().ToString();
        return;
      }
      uint64_t prev = 0, n = 0;
      while (true) {
        const char* out = nullptr;
        const Status status = (*stream)->Next(&out);
        if (!status.ok()) {
          errors[i] = "drain: " + status.ToString();
          return;
        }
        if (out == nullptr) break;
        uint64_t key;
        std::memcpy(&key, out, sizeof(key));
        if (key <= prev) {
          errors[i] = "out of order at record " + std::to_string(n);
          return;
        }
        prev = key;
        ++n;
      }
      if (n != static_cast<uint64_t>(kRecords)) {
        errors[i] = "lost records: " + std::to_string(n);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kSorters; ++i) {
    EXPECT_TRUE(errors[i].empty()) << "sorter " << i << ": " << errors[i];
    EXPECT_GT(sorters[i]->num_runs(), 0u);
  }
  sorters.clear();
  EXPECT_EQ(budget.used(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent tracing stress: many threads build and publish span trees
// into the bounded ring while readers export concurrently, with the
// slow-trace log's CAS rate limiter armed. Run under TSan via
// CUBETREE_SANITIZE=thread to prove Publish/LastTrace/AllTraces and
// MaybeLogSlowTrace are race-free.

TEST(TraceConcurrencyTest, ManyThreadsTraceAndExportConcurrently) {
  constexpr int kWriters = 8;
  constexpr int kTracesPerWriter = 64;

  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Clear();
  tracer.Enable(true);
  // Arm the slow-trace path so every publish exercises the rate-limiter
  // CAS; the sink only counts, contention is the point.
  std::atomic<uint64_t> slow_lines{0};
  tracer.SetSlowTraceSinkForTest(
      [&slow_lines](const std::string&) {
        slow_lines.fetch_add(1, std::memory_order_relaxed);
      });
  tracer.SetSlowTraceThresholdMicros(0);
  tracer.SetSlowTraceLogIntervalMillis(0);

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    // Keep snapshotting the ring while writers publish into it.
    while (!stop.load(std::memory_order_relaxed)) {
      auto last = tracer.LastTrace();
      if (last != nullptr) {
        EXPECT_FALSE(last->spans().empty());
        (void)last->TraceEventsJson();
      }
      (void)tracer.ExportAllJson();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kTracesPerWriter; ++i) {
        obs::TraceScope root("stress.query");
        ASSERT_TRUE(root.active());
        root.Annotate("writer", static_cast<uint64_t>(w));
        {
          obs::Span descent("rtree.descent");
          obs::NotePageRead();
          {
            obs::Span scan("rtree.scan");
            obs::NotePageRead();
            obs::NotePoolHit();
            scan.Annotate("points", static_cast<uint64_t>(i));
          }
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  // 512 publishes into a 128-slot ring: full, newest-first retention.
  auto all = tracer.AllTraces();
  EXPECT_EQ(all.size(), tracer.capacity());
  for (const auto& trace : all) {
    ASSERT_EQ(trace->spans().size(), 3u);
    EXPECT_EQ(trace->spans()[0].name, "stress.query");
    EXPECT_EQ(trace->spans()[0].parent, -1);
    EXPECT_EQ(trace->spans()[1].parent, 0);
    EXPECT_EQ(trace->spans()[2].parent, 1);
    // Attribution went to the innermost open span, one read each on
    // descent and scan, never double-counted.
    EXPECT_EQ(trace->spans()[1].pages_read, 1u);
    EXPECT_EQ(trace->spans()[2].pages_read, 1u);
    EXPECT_EQ(trace->spans()[2].pool_hits, 1u);
  }
  // Rate limiter let at least one line through and lost none to races:
  // every publish either emitted or was suppressed (interval 0 means the
  // only suppressions come from same-microsecond collisions).
  EXPECT_GE(slow_lines.load(), 1u);

  tracer.SetSlowTraceThresholdMicros(-1);
  tracer.SetSlowTraceSinkForTest(nullptr);
  tracer.Enable(false);
  tracer.Clear();
}

}  // namespace
}  // namespace cubetree
