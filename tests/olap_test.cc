#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "olap/cube_builder.h"
#include "olap/lattice.h"
#include "olap/query_model.h"
#include "olap/selection.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

CubeSchema SmallSchema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {40, 10, 25};
  return schema;
}

/// TPC-D SF=1 statistics (the paper's experiment).
CubeSchema TpcdSf1Schema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {200000, 10000, 150000};
  return schema;
}

TEST(LatticeTest, EnumeratesAllNodes) {
  CubeSchema schema = SmallSchema();
  CubeLattice lattice(schema);
  EXPECT_EQ(lattice.num_nodes(), 8u);
  EXPECT_EQ(lattice.top_mask(), 0b111u);
  ASSERT_OK_AND_ASSIGN(const LatticeNode* node, lattice.NodeForMask(0b101));
  EXPECT_EQ(node->attrs, (std::vector<uint32_t>{0, 2}));
  EXPECT_FALSE(lattice.NodeForMask(0b10000).ok());
}

TEST(LatticeTest, SliceQueryTypeCountMatchesPaper) {
  // The paper counts 27 slice-query types over the 3-attribute lattice.
  CubeLattice lattice(SmallSchema());
  EXPECT_EQ(lattice.NumSliceQueryTypes(), 27u);
}

TEST(LatticeTest, ParentMasks) {
  CubeLattice lattice(SmallSchema());
  auto parents = lattice.ParentMasks(0b001);
  std::sort(parents.begin(), parents.end());
  EXPECT_EQ(parents, (std::vector<uint32_t>{0b011, 0b101}));
  EXPECT_TRUE(lattice.ParentMasks(0b111).empty());
}

TEST(LatticeTest, CardenasEstimates) {
  CubeLattice lattice(SmallSchema());
  lattice.EstimateRowCounts(100000);
  // Dense node: ~every combination appears. 40*10*25 = 10000 << 100k.
  ASSERT_OK_AND_ASSIGN(const LatticeNode* top, lattice.NodeForMask(0b111));
  EXPECT_NEAR(static_cast<double>(top->row_count), 10000.0, 100.0);
  // Singleton nodes saturate their domains.
  ASSERT_OK_AND_ASSIGN(const LatticeNode* p, lattice.NodeForMask(0b001));
  EXPECT_EQ(p->row_count, 40u);
  // The none node is a single row.
  ASSERT_OK_AND_ASSIGN(const LatticeNode* none, lattice.NodeForMask(0));
  EXPECT_EQ(none->row_count, 1u);
}

TEST(LatticeTest, SparseRegimeEstimateApproachesFactCount) {
  CubeLattice lattice(TpcdSf1Schema());
  lattice.EstimateRowCounts(6001215);
  ASSERT_OK_AND_ASSIGN(const LatticeNode* top, lattice.NodeForMask(0b111));
  // 2e5 * 1e4 * 1.5e5 cells >> 6M rows: nearly every row its own group.
  EXPECT_GT(top->row_count, 5900000u);
  EXPECT_LE(top->row_count, 6001215u);
}

TEST(LatticeTest, SetRowCountOverrides) {
  CubeLattice lattice(SmallSchema());
  ASSERT_OK(lattice.SetRowCount(0b011, 1234));
  ASSERT_OK_AND_ASSIGN(const LatticeNode* node, lattice.NodeForMask(0b011));
  EXPECT_EQ(node->row_count, 1234u);
  EXPECT_FALSE(lattice.SetRowCount(0b100000, 1).ok());
}

// --- Greedy selection ----------------------------------------------------

TEST(SelectionTest, ReproducesPaperSelectionOnTpcdStats) {
  // With TPC-D SF=1 statistics the 1-greedy must reproduce the paper's
  // sets: V = {psc, ps, c, s, p, none}, I = {I_csp, I_pcs, I_spc}.
  CubeSchema schema = TpcdSf1Schema();
  CubeLattice lattice(schema);
  lattice.EstimateRowCounts(6001215);
  // TPC-D association: each part has 4 suppliers, so |ps| = 800k (the
  // Cardenas estimate over independent draws would overshoot).
  ASSERT_OK(lattice.SetRowCount(0b011, 800000));

  GreedyOptions options;
  options.max_structures = 9;
  ASSERT_OK_AND_ASSIGN(SelectionResult result,
                       GreedySelect(lattice, options));

  std::vector<uint32_t> view_masks;
  for (const ViewDef& v : result.views) view_masks.push_back(v.AttrMask());
  EXPECT_EQ(view_masks,
            (std::vector<uint32_t>{0b111, 0b011, 0b100, 0b010, 0b001, 0}))
      << "expected pick order: psc, ps, c, s, p, none";

  ASSERT_EQ(result.indices.size(), 3u);
  std::set<std::vector<uint32_t>> index_keys;
  for (const IndexDef& index : result.indices) {
    EXPECT_EQ(index.view_id, 0b111u) << "all indices are on the top view";
    index_keys.insert(index.key_attrs);
  }
  // I_csp, I_pcs, I_spc: {custkey,suppkey,partkey}, {partkey,custkey,
  // suppkey}, {suppkey,partkey,custkey}.
  EXPECT_TRUE(index_keys.count({2, 1, 0}));
  EXPECT_TRUE(index_keys.count({0, 2, 1}));
  EXPECT_TRUE(index_keys.count({1, 0, 2}));
}

TEST(SelectionTest, TopViewAlwaysFirst) {
  CubeLattice lattice(SmallSchema());
  lattice.EstimateRowCounts(5000);
  GreedyOptions options;
  options.max_structures = 3;
  ASSERT_OK_AND_ASSIGN(SelectionResult result,
                       GreedySelect(lattice, options));
  ASSERT_FALSE(result.views.empty());
  EXPECT_EQ(result.views[0].AttrMask(), lattice.top_mask());
  EXPECT_EQ(result.picks.size(), 3u);
}

TEST(SelectionTest, BenefitsDecreaseAcrossPicks) {
  CubeLattice lattice(TpcdSf1Schema());
  lattice.EstimateRowCounts(6001215);
  GreedyOptions options;
  options.max_structures = 9;
  ASSERT_OK_AND_ASSIGN(SelectionResult result,
                       GreedySelect(lattice, options));
  for (size_t i = 2; i < result.picks.size(); ++i) {
    EXPECT_LE(result.picks[i].benefit, result.picks[i - 1].benefit * 1.001)
        << "pick " << i;
  }
}

TEST(SelectionTest, NoIndicesWhenDisabled) {
  CubeLattice lattice(TpcdSf1Schema());
  lattice.EstimateRowCounts(6001215);
  ASSERT_OK(lattice.SetRowCount(0b011, 800000));
  GreedyOptions options;
  options.max_structures = 9;
  options.include_indices = false;
  ASSERT_OK_AND_ASSIGN(SelectionResult result,
                       GreedySelect(lattice, options));
  EXPECT_TRUE(result.indices.empty());
  EXPECT_GE(result.views.size(), 6u);
}

TEST(SelectionTest, StopsWhenBenefitExhausted) {
  CubeSchema schema;
  schema.attr_names = {"a"};
  schema.attr_domains = {10};
  CubeLattice lattice(schema);
  lattice.EstimateRowCounts(100);
  GreedyOptions options;
  options.max_structures = 50;
  ASSERT_OK_AND_ASSIGN(SelectionResult result,
                       GreedySelect(lattice, options));
  // Tiny lattice: far fewer than 50 useful structures exist.
  EXPECT_LT(result.picks.size(), 10u);
}

TEST(SelectionTest, IndexNamesReadable) {
  CubeSchema schema = SmallSchema();
  IndexDef index;
  index.key_attrs = {2, 1, 0};
  EXPECT_EQ(index.Name(schema), "I{custkey,suppkey,partkey}");
}

// --- Cube builder --------------------------------------------------------

class CubeBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("cubebuild");
    schema_ = SmallSchema();
    // A deterministic small fact table.
    Rng rng(21);
    for (int i = 0; i < 4000; ++i) {
      FactTuple t;
      t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(40));
      t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(10));
      t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(25));
      t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
      facts_.push_back(t);
    }
  }

  class Provider : public FactProvider {
   public:
    explicit Provider(const std::vector<FactTuple>* facts) : facts_(facts) {}
    Result<std::unique_ptr<FactSource>> Open() override {
      ++opens_;
      return std::unique_ptr<FactSource>(new VectorFactSource(facts_));
    }
    int opens_ = 0;

   private:
    const std::vector<FactTuple>* facts_;
  };

  /// Reference aggregation of the fact table for one view.
  std::map<std::vector<Coord>, AggValue> Reference(const ViewDef& view) {
    std::map<std::vector<Coord>, AggValue> groups;
    for (const FactTuple& t : facts_) {
      std::vector<Coord> key;
      for (uint32_t a : view.attrs) key.push_back(t.attr_values[a]);
      AggValue& agg = groups[key];
      agg.sum += t.measure;
      agg.count += 1;
    }
    return groups;
  }

  ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
    ViewDef v;
    v.id = id;
    v.attrs = std::move(attrs);
    return v;
  }

  Result<std::unique_ptr<ComputedViews>> Compute(
      const std::vector<ViewDef>& views, Provider* provider) {
    CubeBuilder::Options options;
    options.temp_dir = dir_;
    options.sort_budget_bytes = 1 << 16;  // Force external sorting.
    CubeBuilder builder(schema_, options);
    return builder.ComputeAll(views, provider, "t");
  }

  /// Drains a computed view's spool into a map for comparison.
  std::map<std::vector<Coord>, AggValue> Drain(ComputedViews* data,
                                               const ViewDef& view) {
    std::map<std::vector<Coord>, AggValue> out;
    auto stream_result = data->OpenViewStream(view);
    EXPECT_TRUE(stream_result.ok());
    auto stream = std::move(stream_result).value();
    const char* rec = nullptr;
    Coord coords[kMaxDims];
    AggValue agg;
    std::vector<char> prev;
    while (true) {
      EXPECT_OK(stream->Next(&rec));
      if (rec == nullptr) break;
      // Verify pack-order sortedness and uniqueness on the way.
      if (!prev.empty()) {
        EXPECT_LT(ViewRecordCompare(prev.data(), rec, view.arity()), 0);
      }
      prev.assign(rec, rec + ViewRecordBytes(view.arity()));
      DecodeViewRecord(rec, view.arity(), coords, &agg);
      std::vector<Coord> key(coords, coords + view.arity());
      out[key] = agg;
    }
    return out;
  }

  std::string dir_;
  CubeSchema schema_;
  std::vector<FactTuple> facts_;
};

TEST_F(CubeBuilderTest, TopViewFromFactsMatchesReference) {
  std::vector<ViewDef> views = {MakeView(7, {0, 1, 2})};
  Provider provider(&facts_);
  ASSERT_OK_AND_ASSIGN(auto data, Compute(views, &provider));
  auto got = Drain(data.get(), views[0]);
  auto expected = Reference(views[0]);
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
  ASSERT_OK(data->Destroy());
}

TEST_F(CubeBuilderTest, DerivedViewsMatchReference) {
  std::vector<ViewDef> views = {
      MakeView(7, {0, 1, 2}), MakeView(3, {0, 1}), MakeView(1, {0}),
      MakeView(4, {2}),       MakeView(0, {}),
  };
  Provider provider(&facts_);
  ASSERT_OK_AND_ASSIGN(auto data, Compute(views, &provider));
  // Only the top view needs the fact stream: one open.
  EXPECT_EQ(provider.opens_, 1);
  for (const ViewDef& view : views) {
    auto got = Drain(data.get(), view);
    auto expected = Reference(view);
    EXPECT_EQ(got, expected) << "view " << view.Name(schema_);
  }
  // Row-count bookkeeping.
  ASSERT_OK_AND_ASSIGN(uint64_t none_rows, data->row_count(0));
  EXPECT_EQ(none_rows, 1u);
  EXPECT_EQ(data->total_rows(),
            Reference(views[0]).size() + Reference(views[1]).size() +
                Reference(views[2]).size() + Reference(views[3]).size() + 1);
  ASSERT_OK(data->Destroy());
}

TEST_F(CubeBuilderTest, ReplicaComputedFromOriginal) {
  std::vector<ViewDef> views = {
      MakeView(7, {0, 1, 2}),
      MakeView(42, {2, 0, 1}),  // Replica: permuted projection list.
  };
  Provider provider(&facts_);
  ASSERT_OK_AND_ASSIGN(auto data, Compute(views, &provider));
  EXPECT_EQ(provider.opens_, 1) << "replica derives from the original";
  auto got = Drain(data.get(), views[1]);
  auto expected = Reference(views[1]);
  EXPECT_EQ(got, expected);
  ASSERT_OK_AND_ASSIGN(uint64_t rows7, data->row_count(7));
  ASSERT_OK_AND_ASSIGN(uint64_t rows42, data->row_count(42));
  EXPECT_EQ(rows7, rows42);
  ASSERT_OK(data->Destroy());
}

TEST_F(CubeBuilderTest, SmallestParentChosen) {
  // {p} can derive from {p,s} (small) instead of {p,s,c} (big). We verify
  // indirectly: totals must still match, and ps must aggregate correctly.
  std::vector<ViewDef> views = {
      MakeView(7, {0, 1, 2}),
      MakeView(3, {0, 1}),
      MakeView(1, {0}),
  };
  Provider provider(&facts_);
  ASSERT_OK_AND_ASSIGN(auto data, Compute(views, &provider));
  auto p_groups = Drain(data.get(), views[2]);
  auto expected = Reference(views[2]);
  EXPECT_EQ(p_groups, expected);
  ASSERT_OK(data->Destroy());
}

TEST_F(CubeBuilderTest, PipelinedAggregationSkipsSortsAndMatches) {
  // psc -> sc (suffix) and sc -> c (suffix) can stream without sorting;
  // ps requires a sort. Results must be identical either way.
  std::vector<ViewDef> views = {
      MakeView(7, {0, 1, 2}),  // psc
      MakeView(6, {1, 2}),     // sc: suffix of psc
      MakeView(4, {2}),        // c: suffix of sc (and psc)
      MakeView(3, {0, 1}),     // ps: not a suffix, needs sorting
      MakeView(0, {}),         // none: trivial suffix of anything
  };
  CubeBuilder::Options options;
  options.temp_dir = dir_;
  options.sort_budget_bytes = 1 << 16;

  options.pipelined_aggregation = true;
  CubeBuilder fast(schema_, options);
  Provider provider(&facts_);
  ASSERT_OK_AND_ASSIGN(auto fast_data,
                       fast.ComputeAll(views, &provider, "fast"));
  EXPECT_GE(fast.pipelined_views(), 3u);  // sc, c, none at least.
  EXPECT_LE(fast.sorted_views(), 2u);     // psc (from facts) and ps.

  options.pipelined_aggregation = false;
  CubeBuilder slow(schema_, options);
  ASSERT_OK_AND_ASSIGN(auto slow_data,
                       slow.ComputeAll(views, &provider, "slow"));
  EXPECT_EQ(slow.pipelined_views(), 0u);

  for (const ViewDef& view : views) {
    EXPECT_EQ(Drain(fast_data.get(), view), Drain(slow_data.get(), view))
        << view.Name(schema_);
    EXPECT_EQ(Drain(fast_data.get(), view), Reference(view))
        << view.Name(schema_);
  }
  ASSERT_OK(fast_data->Destroy());
  ASSERT_OK(slow_data->Destroy());
}

TEST_F(CubeBuilderTest, AggregatingStreamFoldsAdjacentGroups) {
  // Direct unit test of the aggregation wrapper.
  std::vector<char> flat;
  auto push = [&](Coord x, int64_t sum, uint32_t count) {
    std::vector<char> rec(ViewRecordBytes(1));
    Coord coords[1] = {x};
    EncodeViewRecord(rec.data(), coords, 1, AggValue{sum, count});
    flat.insert(flat.end(), rec.begin(), rec.end());
  };
  push(1, 10, 1);
  push(1, 20, 2);
  push(2, 5, 1);
  push(3, 1, 1);
  push(3, 2, 1);
  push(3, 3, 1);
  MemoryRecordStream input(std::move(flat), ViewRecordBytes(1));
  AggregatingStream agg_stream(&input, 1);
  std::vector<std::pair<Coord, AggValue>> out;
  const char* rec = nullptr;
  Coord coords[kMaxDims];
  AggValue agg;
  while (true) {
    ASSERT_OK(agg_stream.Next(&rec));
    if (rec == nullptr) break;
    DecodeViewRecord(rec, 1, coords, &agg);
    out.push_back({coords[0], agg});
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, (AggValue{30, 3}));
  EXPECT_EQ(out[1].second, (AggValue{5, 1}));
  EXPECT_EQ(out[2].second, (AggValue{6, 3}));
}

// --- Query model ---------------------------------------------------------

TEST(QueryModelTest, GeneratorRespectsNode) {
  CubeSchema schema = SmallSchema();
  SliceQueryGenerator gen(schema, 99);
  for (int i = 0; i < 100; ++i) {
    SliceQuery q = gen.ForNode({0, 2}, /*exclude_unbound=*/false);
    EXPECT_EQ(q.node_mask, 0b101u);
    ASSERT_EQ(q.bindings.size(), 2u);
    if (q.bindings[0].has_value()) {
      EXPECT_GE(*q.bindings[0], 1u);
      EXPECT_LE(*q.bindings[0], 40u);
    }
    if (q.bindings[1].has_value()) {
      EXPECT_LE(*q.bindings[1], 25u);
    }
  }
}

TEST(QueryModelTest, ExcludeUnboundSkipsFullScans) {
  CubeSchema schema = SmallSchema();
  SliceQueryGenerator gen(schema, 5);
  for (int i = 0; i < 200; ++i) {
    SliceQuery q = gen.ForNode({0, 1, 2}, /*exclude_unbound=*/true);
    EXPECT_GT(q.NumBound(), 0u);
  }
}

TEST(QueryModelTest, AllTypesAppear) {
  CubeSchema schema = SmallSchema();
  SliceQueryGenerator gen(schema, 6);
  std::set<uint32_t> bound_masks;
  for (int i = 0; i < 500; ++i) {
    SliceQuery q = gen.ForNode({0, 1, 2}, false);
    bound_masks.insert(q.BoundMask());
  }
  EXPECT_EQ(bound_masks.size(), 8u) << "all 2^3 types of the node occur";
}

TEST(QueryModelTest, UniformOverLatticeCoversNodes) {
  CubeSchema schema = SmallSchema();
  CubeLattice lattice(schema);
  SliceQueryGenerator gen(schema, 7);
  std::set<uint32_t> nodes;
  for (int i = 0; i < 500; ++i) {
    SliceQuery q = gen.UniformOverLattice(lattice, true, true);
    nodes.insert(q.node_mask);
    EXPECT_NE(q.node_mask, 0u);  // none node skipped
  }
  EXPECT_EQ(nodes.size(), 7u);
}

TEST(QueryModelTest, ToStringRendersSql) {
  CubeSchema schema = SmallSchema();
  SliceQuery q;
  q.node_mask = 0b101;
  q.attrs = {0, 2};
  q.bindings = {std::nullopt, Coord{17}};
  EXPECT_EQ(q.ToString(schema),
            "SELECT partkey, SUM(quantity) FROM F WHERE custkey = 17 "
            "GROUP BY partkey");
  EXPECT_EQ(q.GroupMask(), 0b001u);
  EXPECT_EQ(q.BoundMask(), 0b100u);
}

TEST(QueryModelTest, QueryResultComparison) {
  QueryResult a, b;
  a.rows = {{{1}, {10, 1}}, {{2}, {20, 2}}};
  b.rows = {{{2}, {20, 2}}, {{1}, {10, 1}}};
  b.SortRows();
  a.SortRows();
  EXPECT_TRUE(a.SameRowsAs(b));
  b.rows[0].agg.sum = 11;
  EXPECT_FALSE(a.SameRowsAs(b));
}

}  // namespace
}  // namespace cubetree
