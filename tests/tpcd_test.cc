#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "tests/test_util.h"
#include "tpcd/dbgen.h"

namespace cubetree {
namespace {

using tpcd::Generator;
using tpcd::TpcdOptions;

Generator MakeGen(double sf = 0.01, uint64_t seed = 42) {
  TpcdOptions options;
  options.scale_factor = sf;
  options.seed = seed;
  return Generator(options);
}

std::vector<FactTuple> Drain(FactProvider* provider) {
  std::vector<FactTuple> out;
  auto source_result = provider->Open();
  EXPECT_TRUE(source_result.ok());
  auto source = std::move(source_result).value();
  const FactTuple* t = nullptr;
  while (true) {
    EXPECT_OK(source->Next(&t));
    if (t == nullptr) break;
    out.push_back(*t);
  }
  return out;
}

TEST(TpcdTest, SizesFollowScaleFactor) {
  Generator gen = MakeGen(0.01);
  EXPECT_EQ(gen.sizes().parts, 2000u);
  EXPECT_EQ(gen.sizes().suppliers, 100u);
  EXPECT_EQ(gen.sizes().customers, 1500u);
  EXPECT_EQ(gen.sizes().orders, 15000u);
  Generator full = MakeGen(1.0);
  EXPECT_EQ(full.sizes().parts, 200000u);
  EXPECT_EQ(full.sizes().orders, 1500000u);
}

TEST(TpcdTest, BaseFactCountMatchesPredicted) {
  Generator gen = MakeGen(0.003);
  auto facts = Drain(gen.BaseFacts().get());
  EXPECT_EQ(facts.size(), gen.NumBaseLineitems());
  // Average ~4 lineitems per order.
  const double avg =
      static_cast<double>(facts.size()) / gen.sizes().orders;
  EXPECT_GT(avg, 3.5);
  EXPECT_LT(avg, 4.5);
}

TEST(TpcdTest, AttributeDomainsRespected) {
  Generator gen = MakeGen(0.005);
  auto facts = Drain(gen.BaseFacts().get());
  ASSERT_FALSE(facts.empty());
  for (const FactTuple& t : facts) {
    ASSERT_GE(t.attr_values[tpcd::kPartkey], 1u);
    ASSERT_LE(t.attr_values[tpcd::kPartkey], gen.sizes().parts);
    ASSERT_GE(t.attr_values[tpcd::kSuppkey], 1u);
    ASSERT_LE(t.attr_values[tpcd::kSuppkey], gen.sizes().suppliers);
    ASSERT_GE(t.attr_values[tpcd::kCustkey], 1u);
    ASSERT_LE(t.attr_values[tpcd::kCustkey], gen.sizes().customers);
    ASSERT_GE(t.measure, 1);
    ASSERT_LE(t.measure, 50);
  }
}

TEST(TpcdTest, DeterministicAcrossOpens) {
  Generator gen = MakeGen(0.002);
  auto provider = gen.BaseFacts();
  auto first = Drain(provider.get());
  auto second = Drain(provider.get());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].attr_values[0], second[i].attr_values[0]);
    ASSERT_EQ(first[i].measure, second[i].measure);
  }
}

TEST(TpcdTest, PartSupplierAssociation) {
  // TPC-D: each part is supplied by exactly 4 suppliers.
  Generator gen = MakeGen(0.01);
  auto facts = Drain(gen.BaseFacts().get());
  std::map<Coord, std::set<Coord>> suppliers_of_part;
  for (const FactTuple& t : facts) {
    suppliers_of_part[t.attr_values[tpcd::kPartkey]].insert(
        t.attr_values[tpcd::kSuppkey]);
  }
  size_t checked = 0;
  for (const auto& [part, set] : suppliers_of_part) {
    ASSERT_LE(set.size(), 4u) << "part " << part;
    checked += set.size();
  }
  EXPECT_GT(checked, 0u);
}

TEST(TpcdTest, IncrementDisjointFromBaseOrdersAndDeterministic) {
  Generator gen = MakeGen(0.002);
  auto inc0a = Drain(gen.IncrementFacts(0.10, 0).get());
  auto inc0b = Drain(gen.IncrementFacts(0.10, 0).get());
  ASSERT_EQ(inc0a.size(), inc0b.size());
  EXPECT_EQ(inc0a.size(), gen.NumIncrementLineitems(0.10, 0));
  // ~10% of the base volume.
  const double frac = static_cast<double>(inc0a.size()) /
                      static_cast<double>(gen.NumBaseLineitems());
  EXPECT_GT(frac, 0.06);
  EXPECT_LT(frac, 0.14);
  // Different increments differ.
  auto inc1 = Drain(gen.IncrementFacts(0.10, 1).get());
  bool same = inc0a.size() == inc1.size();
  if (same) {
    same = inc0a[0].attr_values[0] == inc1[0].attr_values[0] &&
           inc0a[0].measure == inc1[0].measure;
  }
  EXPECT_FALSE(same && inc0a.size() > 2);
}

TEST(TpcdTest, FactsThroughIncrementIsBasePlusIncrements) {
  Generator gen = MakeGen(0.001);
  auto base = Drain(gen.BaseFacts().get());
  auto inc0 = Drain(gen.IncrementFacts(0.10, 0).get());
  auto all = Drain(gen.FactsThroughIncrement(0.10, 1).get());
  EXPECT_EQ(all.size(), base.size() + inc0.size());
  // Prefix equals base.
  for (size_t i = 0; i < base.size(); i += 101) {
    ASSERT_EQ(all[i].attr_values[2], base[i].attr_values[2]);
  }
}

TEST(TpcdTest, SchemasDescribeDomains) {
  Generator gen = MakeGen(0.01);
  CubeSchema base = gen.MakeBaseSchema();
  ASSERT_EQ(base.num_attrs(), 3u);
  EXPECT_EQ(base.attr_names[0], "partkey");
  EXPECT_EQ(base.attr_domains[2], gen.sizes().customers);
  CubeSchema ext = gen.MakeExtendedSchema();
  ASSERT_EQ(ext.num_attrs(), 7u);
  EXPECT_EQ(ext.attr_names[tpcd::kBrand], "brand");
  EXPECT_EQ(ext.attr_domains[tpcd::kBrand], 25u);
  EXPECT_EQ(ext.attr_domains[tpcd::kYear], 7u);
}

TEST(TpcdTest, ExtendedAttrsConsistentWithHierarchy) {
  Generator gen = MakeGen(0.002);
  auto facts = Drain(gen.BaseFacts(/*extended_attrs=*/true).get());
  for (const FactTuple& t : facts) {
    ASSERT_EQ(t.attr_values[tpcd::kBrand],
              gen.BrandOfPart(t.attr_values[tpcd::kPartkey]));
    ASSERT_EQ(t.attr_values[tpcd::kType],
              gen.TypeOfPart(t.attr_values[tpcd::kPartkey]));
    ASSERT_GE(t.attr_values[tpcd::kYear], 1u);
    ASSERT_LE(t.attr_values[tpcd::kYear], 7u);
    ASSERT_GE(t.attr_values[tpcd::kMonth], 1u);
    ASSERT_LE(t.attr_values[tpcd::kMonth], 12u);
  }
}

TEST(TpcdTest, DimensionRowsDeterministicAndShaped) {
  Generator gen = MakeGen(0.01);
  auto part = gen.MakePart(123);
  auto part2 = gen.MakePart(123);
  EXPECT_EQ(part.name, part2.name);
  EXPECT_EQ(part.brand, part2.brand);
  EXPECT_GE(part.brand, 1u);
  EXPECT_LE(part.brand, 25u);
  EXPECT_GE(part.type, 1u);
  EXPECT_LE(part.type, 150u);
  EXPECT_FALSE(part.container.empty());
  EXPECT_NE(gen.MakePart(124).name, part.name);

  auto supp = gen.MakeSupplier(9);
  EXPECT_EQ(supp.suppkey, 9u);
  EXPECT_FALSE(supp.phone.empty());
  auto cust = gen.MakeCustomer(77);
  EXPECT_EQ(cust.custkey, 77u);
  EXPECT_FALSE(cust.address.empty());
}

TEST(TpcdTest, SeedChangesData) {
  Generator a = MakeGen(0.001, 1);
  Generator b = MakeGen(0.001, 2);
  auto fa = Drain(a.BaseFacts().get());
  auto fb = Drain(b.BaseFacts().get());
  bool differ = fa.size() != fb.size();
  for (size_t i = 0; !differ && i < std::min(fa.size(), fb.size()); ++i) {
    differ = fa[i].attr_values[0] != fb[i].attr_values[0] ||
             fa[i].measure != fb[i].measure;
  }
  EXPECT_TRUE(differ);
}

TEST(TpcdTest, CustkeyUniformCoverage) {
  Generator gen = MakeGen(0.01);
  auto facts = Drain(gen.BaseFacts().get());
  std::set<Coord> customers;
  for (const FactTuple& t : facts) {
    customers.insert(t.attr_values[tpcd::kCustkey]);
  }
  // 60k lineitems over 1500 customers: essentially all appear.
  EXPECT_GT(customers.size(), gen.sizes().customers * 95 / 100);
}

}  // namespace
}  // namespace cubetree
