// Tests for the observability subsystem (src/obs): histogram bucket math
// and percentile accuracy, the metrics registry, the JSON value/parser
// pair, the strict bench flag parsers, and the golden envelope schema
// emitted by bench::JsonWriter.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

using obs::Histogram;
using obs::JsonValue;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// Histogram bucket math.

TEST(HistogramTest, UnitBucketsAreExact) {
  // Values below kSubBucketCount each get their own bucket, whose lower
  // bound is the value itself.
  for (uint64_t v = 0; v < static_cast<uint64_t>(Histogram::kSubBucketCount); ++v) {
    const int idx = Histogram::BucketIndex(v);
    EXPECT_EQ(idx, static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v);
  }
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  // For every bucket reachable from a representative value, the lower
  // bound must map back to the same bucket, and one-less-than-the-bound
  // must map to the previous bucket.
  const std::vector<uint64_t> probes = {
      16,   17,         31,      32,      33,       63,      64,
      100,  1000,       4095,    4096,    65536,    1u << 20,
      (1ull << 32) - 1, 1ull << 32,       1ull << 50,
      std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : probes) {
    const int idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << v;
    ASSERT_LT(idx, Histogram::kNumBuckets) << v;
    const uint64_t lo = Histogram::BucketLowerBound(idx);
    EXPECT_LE(lo, v) << v;
    EXPECT_EQ(Histogram::BucketIndex(lo), idx) << v;
    if (lo > 0) {
      EXPECT_EQ(Histogram::BucketIndex(lo - 1), idx - 1) << v;
    }
  }
}

TEST(HistogramTest, BucketIndexIsMonotonic) {
  int prev = -1;
  for (uint64_t v = 0; v < 100000; ++v) {
    const int idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

TEST(HistogramTest, BucketRelativeErrorBounded) {
  // Bucket width is at most lower_bound/16 above the unit range, so the
  // midpoint representative is within ~1/32 ≈ 6.7% of any member value.
  for (uint64_t v : {100u, 1000u, 123456u, 999999937u}) {
    const int idx = Histogram::BucketIndex(v);
    const uint64_t lo = Histogram::BucketLowerBound(idx);
    const uint64_t hi = Histogram::BucketLowerBound(idx + 1);
    EXPECT_LE(static_cast<double>(hi - lo), lo / 16.0 + 1) << v;
  }
}

// ---------------------------------------------------------------------------
// Percentiles on known distributions.

TEST(HistogramTest, ExactPercentilesInUnitRange) {
  Histogram h;
  // 1..10 once each: every value has an exact unit bucket.
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.sum(), 55u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  EXPECT_EQ(h.ValueAtPercentile(0), 1u);
  EXPECT_EQ(h.ValueAtPercentile(50), 5u);
  EXPECT_EQ(h.ValueAtPercentile(100), 10u);
}

TEST(HistogramTest, PercentilesOnSkewedDistribution) {
  Histogram h;
  // 990 fast events at 100, 10 slow ones at 100000: p50/p95 must sit at
  // the fast mode, p99+ at the slow tail, each within the 6.7% bound.
  for (int i = 0; i < 990; ++i) h.Record(100);
  for (int i = 0; i < 10; ++i) h.Record(100000);
  const double p50 = static_cast<double>(h.ValueAtPercentile(50));
  const double p95 = static_cast<double>(h.ValueAtPercentile(95));
  const double p999 = static_cast<double>(h.ValueAtPercentile(99.9));
  EXPECT_NEAR(p50, 100.0, 100.0 * 0.067);
  EXPECT_NEAR(p95, 100.0, 100.0 * 0.067);
  EXPECT_NEAR(p999, 100000.0, 100000.0 * 0.067);
}

TEST(HistogramTest, PercentileOfUniformRampIsAccurate) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double expected = p / 100.0 * 10000.0;
    const double got = static_cast<double>(h.ValueAtPercentile(p));
    EXPECT_NEAR(got, expected, expected * 0.067 + 1) << "p" << p;
  }
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(99), 0u);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, SameNameSamePointer) {
  auto& reg = MetricsRegistry::Instance();
  obs::Counter* a = reg.GetCounter("obs_test.same_name");
  obs::Counter* b = reg.GetCounter("obs_test.same_name");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("obs_test.other_name"));
}

TEST(MetricsRegistryTest, SnapshotContainsRegisteredMetrics) {
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("obs_test.snap_counter")->Increment(3);
  reg.GetGauge("obs_test.snap_gauge")->Set(-7);
  reg.GetHistogram("obs_test.snap_hist")->Record(5);
  const JsonValue snap = reg.SnapshotJson();
  const JsonValue* counters = snap.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Find("obs_test.snap_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number(), 3.0);
  const JsonValue* gauges = snap.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("obs_test.snap_gauge"), nullptr);
  const JsonValue* hists = snap.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->Find("obs_test.snap_hist");
  ASSERT_NE(h, nullptr);
  for (const char* key : {"count", "sum", "max", "mean", "p50", "p95",
                          "p99"}) {
    EXPECT_NE(h->Find(key), nullptr) << key;
  }
  // The text dump mentions every name.
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("obs_test.snap_counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.snap_hist"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsNames) {
  auto& reg = MetricsRegistry::Instance();
  obs::Counter* c = reg.GetCounter("obs_test.reset_me");
  c->Increment(99);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetCounter("obs_test.reset_me"), c);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsDoNotLoseCounts) {
  auto& reg = MetricsRegistry::Instance();
  obs::Counter* counter = reg.GetCounter("obs_test.concurrent_counter");
  obs::Histogram* hist = reg.GetHistogram("obs_test.concurrent_hist");
  counter->Reset();
  hist->Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->max(), static_cast<uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, DumpPrometheusExposition) {
  auto& reg = MetricsRegistry::Instance();
  reg.GetCounter("obs_test.prom.counter")->Increment(42);
  reg.GetGauge("obs_test.prom.gauge")->Set(-3);
  Histogram* hist = reg.GetHistogram("obs_test.prom.hist");
  hist->Reset();
  hist->Record(1);
  hist->Record(1);
  hist->Record(1000);
  const std::string text = reg.DumpPrometheus();

  // Names are prefixed and sanitized; counters/gauges dump as-is.
  EXPECT_NE(text.find("# TYPE cubetree_obs_test_prom_counter counter\n"
                      "cubetree_obs_test_prom_counter 42"),
            std::string::npos);
  EXPECT_NE(text.find("cubetree_obs_test_prom_gauge -3"), std::string::npos);

  // Histograms dump the cumulative bucket series plus _sum/_count. The
  // value 1 lands in the exact unit bucket (le="1"); the series must be
  // cumulative, so the bucket containing 1000 reads 3.
  EXPECT_NE(text.find("# TYPE cubetree_obs_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(text.find("cubetree_obs_test_prom_hist_bucket{le=\"1\"} 2"),
            std::string::npos);
  const uint64_t le_1000 =
      Histogram::BucketLowerBound(Histogram::BucketIndex(1000) + 1) - 1;
  char expect[128];
  std::snprintf(expect, sizeof(expect),
                "cubetree_obs_test_prom_hist_bucket{le=\"%llu\"} 3",
                static_cast<unsigned long long>(le_1000));
  EXPECT_NE(text.find(expect), std::string::npos);
  EXPECT_NE(text.find("cubetree_obs_test_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("cubetree_obs_test_prom_hist_sum 1002"),
            std::string::npos);
  EXPECT_NE(text.find("cubetree_obs_test_prom_hist_count 3"),
            std::string::npos);
  // Only non-empty buckets are emitted: two values → three _bucket lines
  // (le=1, le around 1000, +Inf) for this histogram, not 976.
  size_t buckets = 0;
  for (size_t pos = text.find("cubetree_obs_test_prom_hist_bucket");
       pos != std::string::npos;
       pos = text.find("cubetree_obs_test_prom_hist_bucket", pos + 1)) {
    ++buckets;
  }
  EXPECT_EQ(buckets, 3u);
}

// ---------------------------------------------------------------------------
// JSON value + parser.

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("int", JsonValue(static_cast<int64_t>(-42)));
  root.Set("big", JsonValue(static_cast<uint64_t>(1) << 53));
  root.Set("pi", JsonValue(3.25));
  root.Set("flag", JsonValue(true));
  root.Set("name", JsonValue("quote\" slash\\ newline\n"));
  JsonValue& arr = root.Set("arr", JsonValue::MakeArray());
  arr.Append(JsonValue(static_cast<int64_t>(1)));
  arr.Append(JsonValue("two"));
  arr.Append(JsonValue::MakeObject());

  const std::string text = root.Dump();
  auto parsed = JsonValue::Parse(text);
  ASSERT_OK(parsed.status());
  EXPECT_EQ(parsed->Find("int")->number(), -42.0);
  EXPECT_EQ(parsed->Find("pi")->number(), 3.25);
  EXPECT_TRUE(parsed->Find("flag")->boolean());
  EXPECT_EQ(parsed->Find("name")->str(), "quote\" slash\\ newline\n");
  ASSERT_NE(parsed->Find("arr"), nullptr);
  EXPECT_EQ(parsed->Find("arr")->size(), 3u);
  // Integral numbers survive the trip without scientific notation.
  EXPECT_NE(text.find("9007199254740992"), std::string::npos);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  const Status bad = JsonValue::Parse("{\"a\": tru}").status();
  EXPECT_TRUE(bad.IsInvalidArgument());
  EXPECT_NE(bad.message().find("offset"), std::string::npos);
}

TEST(JsonTest, SetReplacesExistingKey) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("k", JsonValue(static_cast<int64_t>(1)));
  obj.Set("k", JsonValue(static_cast<int64_t>(2)));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.Find("k")->number(), 2.0);
}

// ---------------------------------------------------------------------------
// Strict bench flag parsing.

TEST(BenchArgsTest, ParseDoubleArgStrict) {
  double d = 0;
  EXPECT_TRUE(bench::ParseDoubleArg("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_TRUE(bench::ParseDoubleArg("1e-3", &d));
  EXPECT_DOUBLE_EQ(d, 1e-3);
  EXPECT_FALSE(bench::ParseDoubleArg("", &d));
  EXPECT_FALSE(bench::ParseDoubleArg("abc", &d));
  EXPECT_FALSE(bench::ParseDoubleArg("0.5x", &d));  // atof would say 0.5.
  EXPECT_FALSE(bench::ParseDoubleArg("1.0 ", &d));
}

TEST(BenchArgsTest, ParseIntArgStrict) {
  int i = 0;
  EXPECT_TRUE(bench::ParseIntArg("100", &i));
  EXPECT_EQ(i, 100);
  EXPECT_TRUE(bench::ParseIntArg("-5", &i));
  EXPECT_EQ(i, -5);
  EXPECT_FALSE(bench::ParseIntArg("", &i));
  EXPECT_FALSE(bench::ParseIntArg("12abc", &i));  // atoi would say 12.
  EXPECT_FALSE(bench::ParseIntArg("99999999999999999999", &i));
}

TEST(BenchArgsTest, ParseUint64ArgStrict) {
  uint64_t u = 0;
  EXPECT_TRUE(bench::ParseUint64Arg("19980601", &u));
  EXPECT_EQ(u, 19980601u);
  EXPECT_FALSE(bench::ParseUint64Arg("-3", &u));
  EXPECT_FALSE(bench::ParseUint64Arg("1.5", &u));
  EXPECT_FALSE(bench::ParseUint64Arg("seed", &u));
}

// ---------------------------------------------------------------------------
// Golden envelope schema: emit a real file through bench::JsonWriter and
// verify the stable keys a downstream consumer may rely on.

TEST(BenchJsonTest, EmittedEnvelopeMatchesGoldenSchema) {
  const std::string dir = MakeTestDir("obs_envelope");
  const std::string path = dir + "/bench.json";
  bench::BenchArgs args;
  args.sf = 0.125;
  args.queries = 7;
  args.json_path = path;
  {
    bench::JsonWriter writer(args, "bench_golden");
    MetricsRegistry::Instance().GetCounter("obs_test.golden")->Increment(2);
    IoStats io;
    io.sequential_reads.store(10);
    io.random_reads.store(4);
    writer.AddIoStats("phase_one", io);
    writer.results().Set("answer", JsonValue(static_cast<int64_t>(42)));
    writer.Finish();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  auto doc = JsonValue::Parse(text);
  ASSERT_OK(doc.status());
  EXPECT_EQ(doc->Find("schema_version")->number(), 1.0);
  EXPECT_EQ(doc->Find("bench")->str(), "bench_golden");
  const JsonValue* config = doc->Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->Find("sf")->number(), 0.125);
  EXPECT_EQ(config->Find("queries")->number(), 7.0);
  ASSERT_NE(doc->Find("wall_seconds"), nullptr);
  ASSERT_NE(doc->Find("modeled_disk_seconds"), nullptr);
  const JsonValue* io = doc->Find("io");
  ASSERT_NE(io, nullptr);
  const JsonValue* phase = io->Find("phase_one");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->Find("sequential_reads")->number(), 10.0);
  EXPECT_EQ(phase->Find("random_reads")->number(), 4.0);
  ASSERT_NE(phase->Find("modeled_seconds"), nullptr);
  const JsonValue* metrics = doc->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  // The writer zeroed the registry at construction, so the snapshot
  // reflects exactly what this "bench" recorded.
  EXPECT_EQ(counters->Find("obs_test.golden")->number(), 2.0);
  const JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(results->Find("answer")->number(), 42.0);
}

TEST(BenchJsonTest, DisabledWriterIsInert) {
  bench::BenchArgs args;  // json_path empty.
  bench::JsonWriter writer(args, "bench_noop");
  EXPECT_FALSE(writer.enabled());
  writer.results().Set("ignored", JsonValue(true));
  IoStats io;
  writer.AddIoStats("phase", io);
  writer.Finish();  // Must not write or exit.
}

}  // namespace
}  // namespace cubetree
