// Parameterized end-to-end property tests: both storage organizations,
// configured across pool sizes, compression and replication settings,
// must give identical answers to random slice queries (checked against
// brute force over the raw facts), before and after increments.

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "engine/conventional_engine.h"
#include "engine/cubetree_engine.h"
#include "olap/cube_builder.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

// (pool_pages, compress_leaves, with_replicas, seed)
using EngineParam = std::tuple<int, bool, bool, int>;

class EnginePairProperty : public ::testing::TestWithParam<EngineParam> {
 protected:
  class Provider : public FactProvider {
   public:
    explicit Provider(const std::vector<FactTuple>* facts) : facts_(facts) {}
    Result<std::unique_ptr<FactSource>> Open() override {
      return std::unique_ptr<FactSource>(new VectorFactSource(facts_));
    }

   private:
    const std::vector<FactTuple>* facts_;
  };

  static std::vector<FactTuple> MakeFacts(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<FactTuple> facts;
    for (int i = 0; i < n; ++i) {
      FactTuple t;
      t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(25));
      t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(6));
      t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(15));
      t.measure = static_cast<int64_t>(1 + rng.Uniform(40));
      facts.push_back(t);
    }
    return facts;
  }

  static QueryResult Reference(const SliceQuery& query,
                               const std::vector<FactTuple>& facts) {
    QueryResult result;
    std::map<std::vector<Coord>, AggValue> groups;
    for (const FactTuple& t : facts) {
      bool match = true;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        if (query.bindings[i].has_value() &&
            t.attr_values[query.attrs[i]] != *query.bindings[i]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Coord> key;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        if (!query.bindings[i].has_value()) {
          key.push_back(t.attr_values[query.attrs[i]]);
        }
      }
      groups[key].Merge(AggValue{t.measure, 1});
    }
    for (auto& [key, agg] : groups) result.rows.push_back({key, agg});
    result.SortRows();
    return result;
  }

  static std::vector<ViewDef> Views(bool with_replicas) {
    auto mk = [](uint32_t id, std::vector<uint32_t> attrs) {
      ViewDef v;
      v.id = id;
      v.attrs = std::move(attrs);
      return v;
    };
    std::vector<ViewDef> views = {mk(7, {0, 1, 2}), mk(3, {0, 1}),
                                  mk(4, {2}),       mk(0, {})};
    if (with_replicas) {
      views.push_back(mk(1000, {1, 2, 0}));
      views.push_back(mk(1001, {2, 0, 1}));
    }
    return views;
  }
};

TEST_P(EnginePairProperty, EnginesAgreeAcrossConfigurations) {
  const auto [pool_pages, compress, replicas, seed] = GetParam();
  const std::string dir = MakeTestDir(
      "engprop_" + std::to_string(pool_pages) + (compress ? "c" : "u") +
      (replicas ? "r" : "n") + std::to_string(seed));

  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {25, 6, 15};
  auto facts = MakeFacts(2500, seed);

  CubeBuilder::Options build_options;
  build_options.temp_dir = dir;
  build_options.sort_budget_bytes = 1 << 14;
  CubeBuilder builder(schema, build_options);
  Provider provider(&facts);

  // Conventional engine: base views + a csp index.
  BufferPool conv_pool(pool_pages);
  ConventionalEngine::Options conv_options;
  conv_options.dir = dir;
  ASSERT_OK_AND_ASSIGN(auto conv, ConventionalEngine::Create(
                                      schema, conv_options, &conv_pool));
  {
    ASSERT_OK_AND_ASSIGN(auto data,
                         builder.ComputeAll(Views(false), &provider,
                                            "conv"));
    ASSERT_OK(conv->LoadTables(Views(false), data.get()));
    IndexDef csp;
    csp.id = 1;
    csp.view_id = 7;
    csp.key_attrs = {2, 1, 0};
    ASSERT_OK(conv->BuildIndices({csp}));
    ASSERT_OK(data->Destroy());
  }

  // Cubetree engine with the swept physical parameters.
  BufferPool cbt_pool(pool_pages);
  CubetreeEngine::Options cbt_options;
  cbt_options.dir = dir;
  cbt_options.rtree.compress_leaves = compress;
  ASSERT_OK_AND_ASSIGN(auto cbt, CubetreeEngine::Create(schema, cbt_options,
                                                        &cbt_pool));
  {
    ASSERT_OK_AND_ASSIGN(auto data, builder.ComputeAll(Views(replicas),
                                                       &provider, "cbt"));
    ASSERT_OK(cbt->Load(Views(replicas), data.get()));
    ASSERT_OK(data->Destroy());
  }

  auto check_queries = [&](const std::vector<FactTuple>& all, int rounds,
                           uint64_t qseed) {
    SliceQueryGenerator gen(schema, qseed);
    CubeLattice lattice(schema);
    for (size_t node = 0; node < lattice.num_nodes(); ++node) {
      for (int draw = 0; draw < rounds; ++draw) {
        SliceQuery query = gen.ForNode(lattice.node(node).attrs, false);
        QueryResult expected = Reference(query, all);
        auto a = conv->Execute(query, nullptr);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        a->SortRows();
        ASSERT_TRUE(a->SameRowsAs(expected))
            << "conventional: " << query.ToString(schema);
        auto b = cbt->Execute(query, nullptr);
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        b->SortRows();
        ASSERT_TRUE(b->SameRowsAs(expected))
            << "cubetree: " << query.ToString(schema);
      }
    }
  };
  check_queries(facts, 3, seed * 11);

  // One increment through both refresh paths, then re-check.
  auto delta = MakeFacts(500, seed + 1000);
  Provider delta_provider(&delta);
  ASSERT_OK(conv->BuildMaintenanceIndices());
  {
    ASSERT_OK_AND_ASSIGN(auto d, builder.ComputeAll(Views(false),
                                                    &delta_provider,
                                                    "conv_d"));
    ASSERT_OK(conv->ApplyDeltaIncremental(d.get()));
    ASSERT_OK(d->Destroy());
  }
  {
    ASSERT_OK_AND_ASSIGN(auto d, builder.ComputeAll(Views(replicas),
                                                    &delta_provider,
                                                    "cbt_d"));
    ASSERT_OK(cbt->ApplyDelta(d.get()));
    ASSERT_OK(d->Destroy());
  }
  std::vector<FactTuple> all = facts;
  all.insert(all.end(), delta.begin(), delta.end());
  check_queries(all, 2, seed * 13);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePairProperty,
    ::testing::Combine(::testing::Values(16, 256),  // Pool pressure.
                       ::testing::Bool(),           // Leaf compression.
                       ::testing::Bool(),           // Replicas.
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace cubetree
