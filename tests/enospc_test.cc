// Disk-full fault sweep for the refresh pipeline and the serving engine.
//
// The sweeps arm the `enospc` and `short_write` actions at every
// registered failpoint and drive a forest refresh into each one. The
// contract under test: the failure surfaces as a typed, retriable
// StorageFull; the aborted refresh leaks no partial pack/run/sidecar
// files; the old generation keeps answering queries with exactly the
// pre-refresh contents; and once the fault clears the same refresh
// succeeds. A fork-based sweep additionally kills the process right
// after the StorageFull (the operator's kill -9 on a wedged box) and
// requires the store to recover checker-clean. Engine-level tests cover
// the degraded read-only mode: enter on StorageFull, reject refreshes
// with a retry-after hint, pause scrubber repair, keep serving queries,
// and auto-recover when a probe sees space again.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/checkers.h"
#include "check/invariant_checker.h"
#include "cubetree/cubetree.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "engine/cubetree_engine.h"
#include "engine/degraded.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "olap/cube_builder.h"
#include "scrub/scrubber.h"
#include "storage/buffer_pool.h"
#include "storage/disk_space.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef view;
  view.id = id;
  view.attrs = std::move(attrs);
  return view;
}

/// The paper's running example, as in the crash-recovery harness.
std::vector<ViewDef> PaperViews() {
  return {MakeView(1, {0, 1}), MakeView(2, {1, 2}), MakeView(3, {0}),
          MakeView(4, {})};
}

class VectorViewProvider : public CubetreeForest::ViewDataProvider {
 public:
  void Add(const ViewDef& view, std::vector<Coord> coords, AggValue agg) {
    auto& rows = data_[view.id];
    std::vector<char> rec(ViewRecordBytes(view.arity()));
    coords.resize(kMaxDims, 0);
    EncodeViewRecord(rec.data(), coords.data(), view.arity(), agg);
    rows.push_back(std::move(rec));
  }

  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    auto rows = data_[view.id];  // Copy.
    const uint8_t arity = view.arity();
    std::sort(rows.begin(), rows.end(),
              [arity](const std::vector<char>& a, const std::vector<char>& b) {
                return ViewRecordCompare(a.data(), b.data(), arity) < 0;
              });
    std::vector<char> flat;
    for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());
    return std::unique_ptr<RecordStream>(
        new MemoryRecordStream(std::move(flat), ViewRecordBytes(arity)));
  }

  uint64_t EstimatedInputBytes() const override {
    uint64_t total = 0;
    for (const auto& [id, rows] : data_) {
      for (const auto& r : rows) total += r.size();
    }
    return total;
  }

 private:
  std::map<uint32_t, std::vector<std::vector<char>>> data_;
};

void FillBase(VectorViewProvider* p, const std::vector<ViewDef>& views) {
  int64_t total = 0;
  for (uint32_t a = 1; a <= 12; ++a) {
    for (uint32_t b = 1; b <= 4; ++b) {
      p->Add(views[0], {a, b}, AggValue{int64_t(a * 100 + b), 1});
      p->Add(views[1], {b, a}, AggValue{int64_t(b * 10 + a), 1});
    }
    p->Add(views[2], {a}, AggValue{int64_t(a), 1});
    total += a;
  }
  p->Add(views[3], {}, AggValue{total, 12});
}

void FillDelta(VectorViewProvider* p, const std::vector<ViewDef>& views) {
  for (uint32_t a = 7; a <= 18; ++a) {
    p->Add(views[0], {a, 2}, AggValue{int64_t(a), 1});
    p->Add(views[1], {2, a}, AggValue{int64_t(a * 2), 1});
    p->Add(views[2], {a}, AggValue{int64_t(a * 3), 1});
  }
  p->Add(views[3], {}, AggValue{99, 12});
}

CubetreeForest::Options ForestOptions(const std::string& dir) {
  CubetreeForest::Options options;
  options.dir = dir;
  options.name = "f";
  return options;
}

void BuildBaseForest(const std::string& dir) {
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider provider;
  FillBase(&provider, views);
  ASSERT_OK(forest->Build(views, &provider));
}

using Contents = std::vector<std::string>;

Contents Dump(CubetreeForest* forest) {
  std::map<std::string, std::pair<int64_t, uint64_t>> groups;
  for (const ViewDef& view : forest->views()) {
    EXPECT_FALSE(forest->IsViewQuarantined(view.id)) << view.id;
    auto tree_result = forest->TreeForView(view.id);
    EXPECT_TRUE(tree_result.ok()) << tree_result.status().ToString();
    if (!tree_result.ok()) continue;
    std::vector<std::optional<Coord>> open(view.arity(), std::nullopt);
    EXPECT_OK(tree_result.value()->QuerySlice(
        view.id, open, [&](const Coord* coords, const AggValue& agg) {
          std::string key = std::to_string(view.id);
          for (size_t i = 0; i < view.arity(); ++i) {
            key += "," + std::to_string(coords[i]);
          }
          auto& group = groups[key];
          group.first += agg.sum;
          group.second += agg.count;
        }));
  }
  Contents out;
  for (const auto& [key, agg] : groups) {
    out.push_back(key + "=" + std::to_string(agg.first) + ":" +
                  std::to_string(agg.second));
  }
  return out;
}

struct Snapshots {
  Contents before;
  Contents after;
};

const Snapshots& ReferenceSnapshots() {
  static const Snapshots* snapshots = [] {
    // ct-lint: allow(no-naked-new)
    auto* s = new Snapshots();  // Intentionally leaked static snapshot.
    const std::string dir = MakeTestDir("enospc_reference");
    BuildBaseForest(dir);
    BufferPool pool(256);
    auto forest =
        std::move(CubetreeForest::Open(ForestOptions(dir), &pool).value());
    s->before = Dump(forest.get());
    VectorViewProvider delta;
    FillDelta(&delta, PaperViews());
    EXPECT_OK(forest->ApplyDelta(&delta));
    s->after = Dump(forest.get());
    return s;
  }();
  return *snapshots;
}

/// Every regular file name under `dir`.
std::set<std::string> ListFiles(const std::string& dir) {
  std::set<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) names.insert(entry.path().filename());
  }
  return names;
}

/// Files a cleanly-aborted refresh may legitimately add: the refresh
/// journal and a not-yet-renamed manifest draft. Both are removed by the
/// next Recover. Anything else new — a pack file, a sidecar, a sorter
/// run — is a leaked partial file.
bool AllowedAbortResidue(const std::string& name) {
  if (name == "f.refresh.wal") return true;
  const std::string tmp = ".manifest.tmp";
  return name.size() >= tmp.size() &&
         name.compare(name.size() - tmp.size(), tmp.size(), tmp) == 0;
}

/// Post-fault invariant shared with the crash harness: Recover succeeds
/// with nothing quarantined, contents equal exactly one generation, the
/// deep checker is clean, and a second Recover finds nothing to do.
/// Returns the recovered contents for the caller's old/new dispatch.
Contents ExpectRecoversToOldOrNew(const std::string& dir,
                                  const std::string& at) {
  const Snapshots& expected = ReferenceSnapshots();
  Contents contents;
  {
    BufferPool pool(256);
    ForestRecoveryReport report;
    auto recovered =
        CubetreeForest::Recover(ForestOptions(dir), &pool, nullptr, &report);
    EXPECT_TRUE(recovered.ok()) << at << ": " << recovered.status().ToString();
    if (!recovered.ok()) return contents;
    EXPECT_TRUE(report.quarantined_trees.empty())
        << at << ": " << report.ToString();
    contents = Dump(recovered.value().get());
    EXPECT_TRUE(contents == expected.before || contents == expected.after)
        << at << ": recovered contents match neither generation ("
        << contents.size() << " groups vs " << expected.before.size()
        << " before / " << expected.after.size() << " after)";
  }
  {
    BufferPool pool(256);
    CheckOptions check_options;
    check_options.deep = true;
    ForestChecker checker(dir, "f", &pool, check_options);
    CheckReport report;
    EXPECT_OK(checker.Run(&report));
    EXPECT_EQ(report.errors(), 0u) << at << ":\n" << report.ToString();
  }
  {
    BufferPool pool(256);
    ForestRecoveryReport second;
    auto again =
        CubetreeForest::Recover(ForestOptions(dir), &pool, nullptr, &second);
    EXPECT_TRUE(again.ok()) << at << ": " << again.status().ToString();
    if (again.ok()) {
      EXPECT_TRUE(second.clean())
          << at << ": recovery is not idempotent — " << second.ToString();
    }
  }
  return contents;
}

class EnospcTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
  }
};

// --- Space accounting and preflight units --------------------------------

TEST_F(EnospcTest, EstimateRefreshBytesFormula) {
  // packed = live + delta; sidecars = 4 bytes/page + 1 KiB of headers;
  // runs = 2x the delta (sorter spill + merge output coexist briefly).
  const uint64_t live = 3 * kPageSize;
  const uint64_t delta = kPageSize + 100;
  const uint64_t packed = live + delta;
  const uint64_t pages = (packed + kPageSize - 1) / kPageSize;
  EXPECT_EQ(EstimateRefreshBytes(live, delta),
            packed + pages * 4 + 1024 + 2 * delta);
  // No delta: still accounts the repacked trees and their sidecars.
  EXPECT_EQ(EstimateRefreshBytes(live, 0), live + 3 * 4 + 1024);
  EXPECT_EQ(EstimateRefreshBytes(0, 0), 1024u);

  // Concurrency-aware: K parallel packers hold K in-flight write
  // frontiers, so each worker past the first adds its slack. K <= 1 must
  // reproduce the serial estimate exactly (0 is "unspecified", not
  // "minus one workers").
  const uint64_t serial = EstimateRefreshBytes(live, delta);
  EXPECT_EQ(EstimateRefreshBytes(live, delta, 1), serial);
  EXPECT_EQ(EstimateRefreshBytes(live, delta, 0), serial);
  EXPECT_EQ(EstimateRefreshBytes(live, delta, 4),
            serial + 3 * kRefreshPackerSlackBytes);
  EXPECT_EQ(EstimateRefreshBytes(0, 0, 8),
            1024u + 7 * kRefreshPackerSlackBytes);
}

TEST_F(EnospcTest, PreflightRefusalReportsShortfall) {
  const std::string dir = MakeTestDir("enospc_preflight");
  // A reserve no volume can satisfy forces the refusal path without
  // actually filling the disk.
  DiskSpaceManager disk(
      DiskSpaceManager::Options{dir, ~uint64_t{0} >> 1});
  const Status refused = disk.Preflight(12345);
  ASSERT_TRUE(refused.IsStorageFull()) << refused.ToString();
  EXPECT_NE(refused.ToString().find("12345"), std::string::npos)
      << refused.ToString();
  EXPECT_NE(refused.ToString().find("more bytes"), std::string::npos)
      << refused.ToString();
  // StorageFull is retriable: space frees up, refreshes come back.
  EXPECT_TRUE(refused.IsRetriable());

  // A zero-byte ask always fits, and a sane reserve admits small asks.
  EXPECT_OK(disk.Preflight(0));
  DiskSpaceManager roomy(DiskSpaceManager::Options{dir, 0});
  EXPECT_OK(roomy.Preflight(kPageSize));
}

TEST_F(EnospcTest, ProbeFailpointForcesStorageFull) {
  const std::string dir = MakeTestDir("enospc_probe");
  DiskSpaceManager disk(DiskSpaceManager::Options{dir, 0});
  ASSERT_OK(FaultInjector::Instance().Arm("disk.probe", "enospc"));
  const auto probed = disk.Probe();
  ASSERT_FALSE(probed.ok());
  EXPECT_TRUE(probed.status().IsStorageFull()) << probed.status().ToString();
  FaultInjector::Instance().DisarmAll();
  ASSERT_OK(disk.Probe().status());
}

// --- Degraded-mode controller units --------------------------------------

TEST_F(EnospcTest, DegradedControllerEntersAndRecovers) {
  const std::string dir = MakeTestDir("enospc_controller");
  DegradedModeController::Options options;
  options.dir = dir;
  options.reserve_bytes = 0;
  DegradedModeController controller(options);
  std::vector<bool> transitions;
  controller.SetOnModeChange([&](bool ro) { transitions.push_back(ro); });

  // Non-StorageFull outcomes never trip the breaker.
  controller.OnWriteStatus(Status::OK());
  controller.OnWriteStatus(Status::IOError("unrelated"));
  EXPECT_FALSE(controller.read_only());
  EXPECT_OK(controller.AdmitWrite(kPageSize));

  // A StorageFull flips read-only (idempotently) and fires the hook once.
  controller.OnWriteStatus(Status::StorageFull("volume full"));
  controller.OnWriteStatus(Status::StorageFull("volume full again"));
  EXPECT_TRUE(controller.read_only());
  ASSERT_EQ(transitions, std::vector<bool>{true});

  // While the volume stays full (the failpoint keeps the probe failing),
  // writes are rejected with the cause and a retry-after hint.
  ASSERT_OK(FaultInjector::Instance().Arm("disk.probe", "enospc"));
  const Status rejected = controller.AdmitWrite(kPageSize);
  ASSERT_TRUE(rejected.IsStorageFull()) << rejected.ToString();
  EXPECT_NE(rejected.ToString().find("volume full"), std::string::npos)
      << rejected.ToString();
  EXPECT_NE(rejected.ToString().find("retry"), std::string::npos)
      << rejected.ToString();
  EXPECT_FALSE(controller.ProbeAndMaybeRecover());
  EXPECT_TRUE(controller.read_only());

  // Space comes back: the next admission probe recovers automatically.
  FaultInjector::Instance().DisarmAll();
  EXPECT_OK(controller.AdmitWrite(kPageSize));
  EXPECT_FALSE(controller.read_only());
  ASSERT_EQ(transitions, (std::vector<bool>{true, false}));
  EXPECT_TRUE(controller.ProbeAndMaybeRecover());
}

// --- The sweeps ----------------------------------------------------------

/// One in-process sweep iteration: refresh with `action` armed at `point`
/// and `refresh_threads` merge-pack workers, then check the full
/// disk-full contract. With several workers the failing one must cancel
/// its siblings and the abort must sweep every worker's partial output,
/// not just the faulting tree's.
void SweepPoint(const char* point, const char* action, int* fired,
                unsigned refresh_threads = 1) {
  SCOPED_TRACE(std::string(point) + ":" + action + " threads=" +
               std::to_string(refresh_threads));
  const std::string dir =
      MakeTestDir(std::string("enospc_sweep_") + point + "_" + action);
  BuildBaseForest(dir);
  const Snapshots& expected = ReferenceSnapshots();
  const std::set<std::string> baseline = ListFiles(dir);

  Status status = Status::OK();
  std::set<std::string> after_abort;
  {
    BufferPool pool(256);
    CubetreeForest::Options forest_options = ForestOptions(dir);
    forest_options.refresh_threads = refresh_threads;
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Open(forest_options, &pool));
    PageManager::SetReadRetryPolicy(2, 0);  // Keep read retries cheap.
    ASSERT_OK(FaultInjector::Instance().Arm(point, action));
    VectorViewProvider delta;
    FillDelta(&delta, PaperViews());
    status = forest->ApplyDelta(&delta);
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
    if (!status.ok()) {
      ++*fired;
      // The one acceptable failure is the typed, retriable StorageFull.
      EXPECT_TRUE(status.IsStorageFull()) << status.ToString();
      EXPECT_TRUE(status.IsRetriable()) << status.ToString();
      // The forest keeps serving in-process: exactly the old epoch when
      // the refresh aborted, exactly the new one when the failure landed
      // past the commit point (forest.refresh.commit) — never a hybrid.
      const Contents served = Dump(forest.get());
      EXPECT_TRUE(served == expected.before || served == expected.after)
          << "refresh hit by " << action << " serves a hybrid generation";
      after_abort = ListFiles(dir);
    } else {
      EXPECT_EQ(Dump(forest.get()), expected.after);
    }
  }

  // The store on disk holds exactly one generation and recovers clean.
  const Contents recovered = ExpectRecoversToOldOrNew(dir, point);

  if (!status.ok() && recovered == expected.before) {
    // The refresh aborted before commit: no partial pack, sidecar, or run
    // file may outlive the abort (journal and manifest draft excepted).
    for (const std::string& name : after_abort) {
      EXPECT_TRUE(baseline.count(name) != 0 || AllowedAbortResidue(name))
          << "leaked partial file after aborted refresh: " << name;
    }
    // The fault has cleared: the same refresh now succeeds end to end.
    BufferPool pool(256);
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Recover(ForestOptions(dir), &pool));
    VectorViewProvider delta;
    FillDelta(&delta, PaperViews());
    ASSERT_OK(forest->ApplyDelta(&delta));
    EXPECT_EQ(Dump(forest.get()), expected.after);
  }
}

TEST_F(EnospcTest, StorageFullAtEveryFailpoint) {
  int fired = 0;
  for (const auto& point : FaultInjector::RegisteredPoints()) {
    SweepPoint(point.name, "enospc", &fired);
    if (HasFatalFailure()) return;
  }
  // The refresh path must cross most of the registry, or the sweep would
  // silently test nothing.
  EXPECT_GE(fired, 12) << "only " << fired << " failpoints fired";
}

TEST_F(EnospcTest, ShortWriteAtEveryFailpoint) {
  int fired = 0;
  for (const auto& point : FaultInjector::RegisteredPoints()) {
    SweepPoint(point.name, "short_write", &fired);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(fired, 12) << "only " << fired << " failpoints fired";
}

TEST_F(EnospcTest, StorageFullAtEveryFailpointParallelRefresh) {
  // Same contract, four merge-pack workers: the failing worker's
  // StorageFull must cancel its siblings, and the abort must delete every
  // worker's partial pack and sidecar — a serial-only cleanup loop would
  // leak the non-faulting workers' output here.
  int fired = 0;
  for (const auto& point : FaultInjector::RegisteredPoints()) {
    SweepPoint(point.name, "enospc", &fired, /*refresh_threads=*/4);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(fired, 12) << "only " << fired << " failpoints fired";
}

/// Forked child: arm `failpoint` with enospc, refresh, and exit — the
/// process dies with the volume still full, as when an operator kills a
/// wedged writer. Exit codes: 0 refresh OK (point off-path), 20 typed
/// StorageFull, 12 wrong error type, 11 arm failure.
int RunEnospcChild(const std::string& dir, const char* failpoint) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!FaultInjector::Instance().Arm(failpoint, "enospc").ok()) {
      std::_Exit(11);
    }
    PageManager::SetReadRetryPolicy(2, 0);
    Status status = Status::OK();
    {
      BufferPool pool(256);
      auto forest_result = CubetreeForest::Open(ForestOptions(dir), &pool);
      if (!forest_result.ok()) {
        status = forest_result.status();
      } else {
        VectorViewProvider delta;
        FillDelta(&delta, PaperViews());
        status = forest_result.value()->ApplyDelta(&delta);
      }
    }
    if (status.ok()) std::_Exit(0);
    std::_Exit(status.IsStorageFull() ? 20 : 12);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  if (!WIFEXITED(wstatus)) return -1;
  return WEXITSTATUS(wstatus);
}

TEST_F(EnospcTest, ProcessDeathAfterStorageFullLeavesStoreRecoverable) {
  const auto& points = FaultInjector::RegisteredPoints();
  ASSERT_GE(points.size(), 20u);
  int fired = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const std::string dir = MakeTestDir("enospc_fork_" + std::to_string(i));
    BuildBaseForest(dir);
    const int code = RunEnospcChild(dir, points[i].name);
    ASSERT_TRUE(code == 0 || code == 20)
        << points[i].name << ": child exited " << code;
    if (code == 20) ++fired;
    ExpectRecoversToOldOrNew(dir, points[i].name);
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(fired, 12) << "only " << fired << " failpoints fired";
}

// --- Online space reclamation --------------------------------------------

TEST_F(EnospcTest, ReclaimSpaceCollectsLeakedFilesWithoutRestart) {
  const std::string dir = MakeTestDir("enospc_reclaim");
  BuildBaseForest(dir);
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Open(ForestOptions(dir), &pool));

  // Veto the post-commit unlink of the retired generation: the refresh
  // succeeds but the old files leak, exactly the dead space a preflight
  // under pressure wants back.
  ASSERT_OK(FaultInjector::Instance().Arm("forest.refresh.gc", "error"));
  VectorViewProvider delta;
  FillDelta(&delta, PaperViews());
  ASSERT_OK(forest->ApplyDelta(&delta));
  FaultInjector::Instance().DisarmAll();

  const auto gc = forest->GcStats();
  ASSERT_GT(gc.unreclaimed_files, 0u);

  // The online sweep removes the leaked files — no reopen, no Recover —
  // and the live generation keeps serving.
  const uint64_t reclaimed = forest->ReclaimSpace();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(Dump(forest.get()), ReferenceSnapshots().after);
  // Everything left on disk belongs to the live generation (or is the
  // manifest); a second sweep finds nothing.
  EXPECT_EQ(forest->ReclaimSpace(), 0u);
  forest.reset();
  ExpectRecoversToOldOrNew(dir, "reclaim");
}

// --- Engine-level degraded read-only serving -----------------------------

CubeSchema SmallSchema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {30, 8, 20};
  return schema;
}

class FactsProvider : public FactProvider {
 public:
  explicit FactsProvider(const std::vector<FactTuple>* facts)
      : facts_(facts) {}
  Result<std::unique_ptr<FactSource>> Open() override {
    return std::unique_ptr<FactSource>(new VectorFactSource(facts_));
  }

 private:
  const std::vector<FactTuple>* facts_;
};

std::vector<FactTuple> MakeFacts(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<FactTuple> facts;
  for (int i = 0; i < n; ++i) {
    FactTuple t;
    t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
    t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
    t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
    t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
    facts.push_back(t);
  }
  return facts;
}

/// Brute-force group-by-partkey over raw facts, sorted for comparison.
QueryResult GroupByPartkey(const std::vector<FactTuple>& facts) {
  QueryResult result;
  std::map<std::vector<Coord>, AggValue> groups;
  for (const FactTuple& t : facts) {
    AggValue& agg = groups[{t.attr_values[0]}];
    agg.sum += t.measure;
    agg.count += 1;
  }
  for (auto& [key, agg] : groups) result.rows.push_back({key, agg});
  result.SortRows();
  return result;
}

TEST_F(EnospcTest, EngineDegradedModeServesReadOnlyAndAutoRecovers) {
  const std::string dir = MakeTestDir("enospc_engine");
  const CubeSchema schema = SmallSchema();
  const std::vector<ViewDef> views = {MakeView(7, {0, 1, 2}),
                                      MakeView(1, {0}), MakeView(0, {})};
  const std::vector<FactTuple> base_facts = MakeFacts(31, 1500);
  const std::vector<FactTuple> delta_facts = MakeFacts(77, 400);

  CubeBuilder::Options build_options;
  build_options.temp_dir = dir;
  build_options.sort_budget_bytes = 1 << 18;
  CubeBuilder builder(schema, build_options);

  BufferPool pool(512);
  CubetreeEngine::Options options;
  options.dir = dir;
  ASSERT_OK_AND_ASSIGN(auto engine,
                       CubetreeEngine::Create(schema, options, &pool));
  {
    FactsProvider provider(&base_facts);
    ASSERT_OK_AND_ASSIGN(auto data,
                         builder.ComputeAll(views, &provider, "base"));
    ASSERT_OK(engine->Load(views, data.get()));
    ASSERT_OK(data->Destroy());
  }

  // Wire the scrubber's repair pause to the degraded-mode hook, as an
  // embedder would at startup.
  Scrubber scrubber(engine->forest(), ScrubOptions{});
  engine->degraded()->SetOnModeChange(
      [&scrubber](bool read_only) { scrubber.SetRepairPaused(read_only); });

  SliceQuery query;
  query.node_mask = 0b001;
  query.attrs = {0};
  query.bindings = {std::nullopt};
  const QueryResult base_expected = GroupByPartkey(base_facts);

  auto* gauge = obs::MetricsRegistry::Instance().GetGauge("degraded.read_only");

  FactsProvider delta_provider(&delta_facts);
  ASSERT_OK_AND_ASSIGN(auto delta,
                       builder.ComputeAll(views, &delta_provider, "delta"));

  // The volume "fills": the refresh preflight refuses with StorageFull
  // and the engine flips read-only.
  ASSERT_OK(FaultInjector::Instance().Arm("disk.preflight", "enospc"));
  const Status full = engine->ApplyDelta(delta.get());
  ASSERT_TRUE(full.IsStorageFull()) << full.ToString();
  EXPECT_TRUE(engine->degraded()->read_only());
  EXPECT_TRUE(scrubber.repair_paused());
  EXPECT_EQ(gauge->value(), 1);

  // Further refreshes are rejected up front with a retry-after hint...
  const Status rejected = engine->ApplyDelta(delta.get());
  ASSERT_TRUE(rejected.IsStorageFull()) << rejected.ToString();
  EXPECT_NE(rejected.ToString().find("retry"), std::string::npos)
      << rejected.ToString();

  // ...while queries keep serving the published epoch, answers intact.
  {
    QueryExecStats stats;
    ASSERT_OK_AND_ASSIGN(auto result, engine->Execute(query, &stats));
    result.SortRows();
    EXPECT_TRUE(result.SameRowsAs(base_expected))
        << "degraded mode changed query answers";
  }

  // Space frees up: the next refresh admission probes, recovers, and the
  // refresh goes through; the scrubber resumes repairing.
  FaultInjector::Instance().DisarmAll();
  ASSERT_OK(engine->ApplyDelta(delta.get()));
  EXPECT_FALSE(engine->degraded()->read_only());
  EXPECT_FALSE(scrubber.repair_paused());
  EXPECT_EQ(gauge->value(), 0);
  ASSERT_OK(delta->Destroy());

  std::vector<FactTuple> all_facts = base_facts;
  all_facts.insert(all_facts.end(), delta_facts.begin(), delta_facts.end());
  const QueryResult merged_expected = GroupByPartkey(all_facts);
  {
    QueryExecStats stats;
    ASSERT_OK_AND_ASSIGN(auto result, engine->Execute(query, &stats));
    result.SortRows();
    EXPECT_TRUE(result.SameRowsAs(merged_expected))
        << "post-recovery refresh lost rows";
  }
}

}  // namespace
}  // namespace cubetree
