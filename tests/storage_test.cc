#include <gtest/gtest.h>

#include <cstring>

#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(PageManagerTest, CreateAllocateReadWrite) {
  const std::string dir = MakeTestDir("pm_basic");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  EXPECT_EQ(pm->NumPages(), 0u);

  ASSERT_OK_AND_ASSIGN(PageId id, pm->AllocatePage());
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(pm->NumPages(), 1u);

  Page page;
  page.Zero();
  std::strcpy(page.data, "hello cubetree");
  ASSERT_OK(pm->WritePage(id, page));

  Page read;
  ASSERT_OK(pm->ReadPage(id, &read));
  EXPECT_STREQ(read.data, "hello cubetree");
}

TEST(PageManagerTest, ReadPastEndFails) {
  const std::string dir = MakeTestDir("pm_oob");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Page page;
  EXPECT_TRUE(pm->ReadPage(3, &page).IsInvalidArgument());
  EXPECT_TRUE(pm->WritePage(0, page).IsInvalidArgument());
}

TEST(PageManagerTest, ReopenPreservesContents) {
  const std::string dir = MakeTestDir("pm_reopen");
  const std::string path = dir + "/f.pg";
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(path));
    Page page;
    page.Zero();
    page.data[0] = 'x';
    ASSERT_OK(pm->AppendPage(page).status());
    page.data[0] = 'y';
    ASSERT_OK(pm->AppendPage(page).status());
    ASSERT_OK(pm->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
  EXPECT_EQ(pm->NumPages(), 2u);
  Page page;
  ASSERT_OK(pm->ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 'y');
}

TEST(PageManagerTest, OpenMissingFileFails) {
  const std::string dir = MakeTestDir("pm_missing");
  EXPECT_FALSE(PageManager::Open(dir + "/nope.pg").ok());
}

TEST(PageManagerTest, AppendsCountAsSequentialWrites) {
  const std::string dir = MakeTestDir("pm_seq");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(pm->AppendPage(page).status());
  }
  EXPECT_EQ(stats->sequential_writes, 10u);
  EXPECT_EQ(stats->random_writes, 0u);
}

TEST(PageManagerTest, OutOfOrderWritesCountAsRandom) {
  const std::string dir = MakeTestDir("pm_rand");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 4; ++i) ASSERT_OK(pm->AppendPage(page).status());
  stats->Clear();
  ASSERT_OK(pm->WritePage(3, page));  // Jump from frontier: random.
  ASSERT_OK(pm->WritePage(0, page));  // Backwards: random.
  ASSERT_OK(pm->WritePage(1, page));  // Follows 0: sequential.
  EXPECT_EQ(stats->random_writes, 2u);
  EXPECT_EQ(stats->sequential_writes, 1u);
}

TEST(PageManagerTest, SequentialVsRandomReadsClassified) {
  const std::string dir = MakeTestDir("pm_reads");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 8; ++i) ASSERT_OK(pm->AppendPage(page).status());
  stats->Clear();
  for (PageId i = 0; i < 8; ++i) ASSERT_OK(pm->ReadPage(i, &page));
  // First read is "random" (no predecessor), the other 7 sequential.
  EXPECT_EQ(stats->sequential_reads, 7u);
  EXPECT_EQ(stats->random_reads, 1u);
  ASSERT_OK(pm->ReadPage(2, &page));
  EXPECT_EQ(stats->random_reads, 2u);
}

TEST(IoStatsTest, ArithmeticAndTotals) {
  IoStats a{10, 2, 5, 1};
  IoStats b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a.sequential_reads, 11u);
  EXPECT_EQ(a.TotalReads(), 14u);
  EXPECT_EQ(a.TotalWrites(), 8u);
  IoStats d = a - b;
  EXPECT_EQ(d.sequential_reads, 10u);
  EXPECT_EQ(d.TotalOps(), 18u);
  EXPECT_EQ(d.TotalBytes(), 18u * kPageSize);
}

TEST(DiskModelTest, SequentialCheaperThanRandom) {
  DiskModel disk;
  IoStats seq{1000, 0, 0, 0};
  IoStats rnd{0, 1000, 0, 0};
  EXPECT_LT(disk.ModeledSeconds(seq), disk.ModeledSeconds(rnd));
  // 1000 random accesses at 10ms seek each dominate.
  EXPECT_GT(disk.ModeledSeconds(rnd), 10.0);
  EXPECT_LT(disk.ModeledSeconds(seq), 1.1);
}

TEST(BufferPoolTest, FetchCachesPages) {
  const std::string dir = MakeTestDir("bp_cache");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  BufferPool pool(8);
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[0] = 'a';
    h.MarkDirty();
  }
  stats->Clear();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 0));
    EXPECT_EQ(h.data()[0], 'a');
  }
  // All hits: no physical reads.
  EXPECT_EQ(stats->TotalReads(), 0u);
  EXPECT_EQ(pool.stats().hits, 5u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  const std::string dir = MakeTestDir("bp_evict");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[0] = static_cast<char>('a' + i);
    h.MarkDirty();
  }
  // Pages 0 and 1 must have been evicted (and written back).
  ASSERT_OK_AND_ASSIGN(PageHandle h0, pool.Fetch(pm.get(), 0));
  EXPECT_EQ(h0.data()[0], 'a');
  ASSERT_OK_AND_ASSIGN(PageHandle h1, pool.Fetch(pm.get(), 1));
  EXPECT_EQ(h1.data()[0], 'b');
  EXPECT_GE(pool.stats().evictions, 2u);
  EXPECT_GE(pool.stats().dirty_writebacks, 2u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  const std::string dir = MakeTestDir("bp_pin");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  ASSERT_OK_AND_ASSIGN(PageHandle a, pool.New(pm.get()));
  ASSERT_OK_AND_ASSIGN(PageHandle b, pool.New(pm.get()));
  // Both frames pinned: a third page cannot be brought in.
  auto r = pool.New(pm.get());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  a.Release();
  ASSERT_OK(pool.New(pm.get()).status());
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  const std::string dir = MakeTestDir("bp_flush");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(4);
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[5] = 'z';
    h.MarkDirty();
  }
  ASSERT_OK(pool.FlushAll());
  Page raw;
  ASSERT_OK(pm->ReadPage(0, &raw));
  EXPECT_EQ(raw.data[5], 'z');
}

TEST(BufferPoolTest, DropFileEvictsAllItsPages) {
  const std::string dir = MakeTestDir("bp_drop");
  ASSERT_OK_AND_ASSIGN(auto pm1, PageManager::Create(dir + "/a.pg"));
  ASSERT_OK_AND_ASSIGN(auto pm2, PageManager::Create(dir + "/b.pg"));
  BufferPool pool(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(pool.New(pm1.get()).status());
    ASSERT_OK(pool.New(pm2.get()).status());
  }
  ASSERT_OK(pool.DropFile(pm1.get()));
  // pm2's pages still cached; pm1's gone: refetching pm1 pages re-reads.
  auto stats_before = pool.stats();
  ASSERT_OK(pool.Fetch(pm1.get(), 0).status());
  EXPECT_EQ(pool.stats().misses, stats_before.misses + 1);
  ASSERT_OK(pool.Fetch(pm2.get(), 0).status());
  EXPECT_EQ(pool.stats().hits, stats_before.hits + 1);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  const std::string dir = MakeTestDir("bp_lru");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(3);
  for (int i = 0; i < 3; ++i) ASSERT_OK(pool.New(pm.get()).status());
  // Touch 0 and 2 so page 1 is the LRU victim.
  ASSERT_OK(pool.Fetch(pm.get(), 0).status());
  ASSERT_OK(pool.Fetch(pm.get(), 2).status());
  ASSERT_OK(pool.New(pm.get()).status());  // Evicts page 1.
  auto before = pool.stats();
  ASSERT_OK(pool.Fetch(pm.get(), 0).status());
  ASSERT_OK(pool.Fetch(pm.get(), 2).status());
  EXPECT_EQ(pool.stats().hits, before.hits + 2);
  ASSERT_OK(pool.Fetch(pm.get(), 1).status());
  EXPECT_EQ(pool.stats().misses, before.misses + 1);
}

TEST(BufferPoolTest, HitRatioComputed) {
  BufferPoolStats stats;
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.75);
  stats.Clear();
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.0);
}

}  // namespace
}  // namespace cubetree
