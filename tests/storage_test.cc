#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.h"
#include "fault/fault_injector.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/io_stats.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(PageManagerTest, CreateAllocateReadWrite) {
  const std::string dir = MakeTestDir("pm_basic");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  EXPECT_EQ(pm->NumPages(), 0u);

  ASSERT_OK_AND_ASSIGN(PageId id, pm->AllocatePage());
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(pm->NumPages(), 1u);

  Page page;
  page.Zero();
  std::strcpy(page.data, "hello cubetree");
  ASSERT_OK(pm->WritePage(id, page));

  Page read;
  ASSERT_OK(pm->ReadPage(id, &read));
  EXPECT_STREQ(read.data, "hello cubetree");
}

TEST(PageManagerTest, ReadPastEndFails) {
  const std::string dir = MakeTestDir("pm_oob");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Page page;
  EXPECT_TRUE(pm->ReadPage(3, &page).IsInvalidArgument());
  EXPECT_TRUE(pm->WritePage(0, page).IsInvalidArgument());
}

TEST(PageManagerTest, ReopenPreservesContents) {
  const std::string dir = MakeTestDir("pm_reopen");
  const std::string path = dir + "/f.pg";
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(path));
    Page page;
    page.Zero();
    page.data[0] = 'x';
    ASSERT_OK(pm->AppendPage(page).status());
    page.data[0] = 'y';
    ASSERT_OK(pm->AppendPage(page).status());
    ASSERT_OK(pm->Sync());
  }
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
  EXPECT_EQ(pm->NumPages(), 2u);
  Page page;
  ASSERT_OK(pm->ReadPage(1, &page));
  EXPECT_EQ(page.data[0], 'y');
}

TEST(PageManagerTest, OpenMissingFileFails) {
  const std::string dir = MakeTestDir("pm_missing");
  EXPECT_FALSE(PageManager::Open(dir + "/nope.pg").ok());
}

TEST(PageManagerTest, AppendsCountAsSequentialWrites) {
  const std::string dir = MakeTestDir("pm_seq");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(pm->AppendPage(page).status());
  }
  EXPECT_EQ(stats->sequential_writes, 10u);
  EXPECT_EQ(stats->random_writes, 0u);
}

TEST(PageManagerTest, OutOfOrderWritesCountAsRandom) {
  const std::string dir = MakeTestDir("pm_rand");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 4; ++i) ASSERT_OK(pm->AppendPage(page).status());
  stats->Clear();
  ASSERT_OK(pm->WritePage(3, page));  // Jump from frontier: random.
  ASSERT_OK(pm->WritePage(0, page));  // Backwards: random.
  ASSERT_OK(pm->WritePage(1, page));  // Follows 0: sequential.
  EXPECT_EQ(stats->random_writes, 2u);
  EXPECT_EQ(stats->sequential_writes, 1u);
}

TEST(PageManagerTest, SequentialVsRandomReadsClassified) {
  const std::string dir = MakeTestDir("pm_reads");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  Page page;
  page.Zero();
  for (int i = 0; i < 8; ++i) ASSERT_OK(pm->AppendPage(page).status());
  stats->Clear();
  for (PageId i = 0; i < 8; ++i) ASSERT_OK(pm->ReadPage(i, &page));
  // First read is "random" (no predecessor), the other 7 sequential.
  EXPECT_EQ(stats->sequential_reads, 7u);
  EXPECT_EQ(stats->random_reads, 1u);
  ASSERT_OK(pm->ReadPage(2, &page));
  EXPECT_EQ(stats->random_reads, 2u);
}

TEST(IoStatsTest, ArithmeticAndTotals) {
  IoStats a{10, 2, 5, 1};
  IoStats b{1, 1, 1, 1};
  a += b;
  EXPECT_EQ(a.sequential_reads, 11u);
  EXPECT_EQ(a.TotalReads(), 14u);
  EXPECT_EQ(a.TotalWrites(), 8u);
  IoStats d = a - b;
  EXPECT_EQ(d.sequential_reads, 10u);
  EXPECT_EQ(d.TotalOps(), 18u);
  EXPECT_EQ(d.TotalBytes(), 18u * kPageSize);
}

TEST(DiskModelTest, SequentialCheaperThanRandom) {
  DiskModel disk;
  IoStats seq{1000, 0, 0, 0};
  IoStats rnd{0, 1000, 0, 0};
  EXPECT_LT(disk.ModeledSeconds(seq), disk.ModeledSeconds(rnd));
  // 1000 random accesses at 10ms seek each dominate.
  EXPECT_GT(disk.ModeledSeconds(rnd), 10.0);
  EXPECT_LT(disk.ModeledSeconds(seq), 1.1);
}

TEST(BufferPoolTest, FetchCachesPages) {
  const std::string dir = MakeTestDir("bp_cache");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg", stats));
  BufferPool pool(8);
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[0] = 'a';
    h.MarkDirty();
  }
  stats->Clear();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 0));
    EXPECT_EQ(h.data()[0], 'a');
  }
  // All hits: no physical reads.
  EXPECT_EQ(stats->TotalReads(), 0u);
  EXPECT_EQ(pool.stats().hits, 5u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  const std::string dir = MakeTestDir("bp_evict");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[0] = static_cast<char>('a' + i);
    h.MarkDirty();
  }
  // Pages 0 and 1 must have been evicted (and written back).
  ASSERT_OK_AND_ASSIGN(PageHandle h0, pool.Fetch(pm.get(), 0));
  EXPECT_EQ(h0.data()[0], 'a');
  ASSERT_OK_AND_ASSIGN(PageHandle h1, pool.Fetch(pm.get(), 1));
  EXPECT_EQ(h1.data()[0], 'b');
  EXPECT_GE(pool.stats().evictions, 2u);
  EXPECT_GE(pool.stats().dirty_writebacks, 2u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  const std::string dir = MakeTestDir("bp_pin");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  ASSERT_OK_AND_ASSIGN(PageHandle a, pool.New(pm.get()));
  ASSERT_OK_AND_ASSIGN(PageHandle b, pool.New(pm.get()));
  // Both frames pinned: a third page cannot be brought in.
  auto r = pool.New(pm.get());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  a.Release();
  ASSERT_OK(pool.New(pm.get()).status());
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  const std::string dir = MakeTestDir("bp_flush");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(4);
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.New(pm.get()));
    h.data()[5] = 'z';
    h.MarkDirty();
  }
  ASSERT_OK(pool.FlushAll());
  Page raw;
  ASSERT_OK(pm->ReadPage(0, &raw));
  EXPECT_EQ(raw.data[5], 'z');
}

TEST(BufferPoolTest, DropFileEvictsAllItsPages) {
  const std::string dir = MakeTestDir("bp_drop");
  ASSERT_OK_AND_ASSIGN(auto pm1, PageManager::Create(dir + "/a.pg"));
  ASSERT_OK_AND_ASSIGN(auto pm2, PageManager::Create(dir + "/b.pg"));
  BufferPool pool(8);
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(pool.New(pm1.get()).status());
    ASSERT_OK(pool.New(pm2.get()).status());
  }
  ASSERT_OK(pool.DropFile(pm1.get()));
  // pm2's pages still cached; pm1's gone: refetching pm1 pages re-reads.
  auto stats_before = pool.stats();
  ASSERT_OK(pool.Fetch(pm1.get(), 0).status());
  EXPECT_EQ(pool.stats().misses, stats_before.misses + 1);
  ASSERT_OK(pool.Fetch(pm2.get(), 0).status());
  EXPECT_EQ(pool.stats().hits, stats_before.hits + 1);
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  const std::string dir = MakeTestDir("bp_lru");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(3);
  for (int i = 0; i < 3; ++i) ASSERT_OK(pool.New(pm.get()).status());
  // Touch 0 and 2 so page 1 is the LRU victim.
  ASSERT_OK(pool.Fetch(pm.get(), 0).status());
  ASSERT_OK(pool.Fetch(pm.get(), 2).status());
  ASSERT_OK(pool.New(pm.get()).status());  // Evicts page 1.
  auto before = pool.stats();
  ASSERT_OK(pool.Fetch(pm.get(), 0).status());
  ASSERT_OK(pool.Fetch(pm.get(), 2).status());
  EXPECT_EQ(pool.stats().hits, before.hits + 2);
  ASSERT_OK(pool.Fetch(pm.get(), 1).status());
  EXPECT_EQ(pool.stats().misses, before.misses + 1);
}

TEST(BufferPoolTest, HitRatioComputed) {
  BufferPoolStats stats;
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.75);
  stats.Clear();
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.0);
}

// --- Short-read error context (end-to-end integrity satellite) ----------

TEST(PageManagerTest, ShortReadCorruptionCarriesContextAndOffset) {
  const std::string dir = MakeTestDir("pm_short_read");
  const std::string path = dir + "/short.bin";
  {
    std::ofstream out(path, std::ios::binary);
    std::vector<char> bytes(100, 'z');
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  char buf[256];
  Status status = PreadFully(fd, buf, sizeof(buf), 50, path);
  ::close(fd);
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  // A truncated read must identify the file, the requested byte range and
  // how far it got — an operator chasing corruption needs all three.
  const std::string text = status.ToString();
  EXPECT_NE(text.find(path), std::string::npos) << text;
  EXPECT_NE(text.find("offset 50"), std::string::npos) << text;
  EXPECT_NE(text.find("got 50"), std::string::npos) << text;
}

// --- Checksum sidecars ---------------------------------------------------

TEST(ChecksumTest, SidecarRoundTrip) {
  const std::string dir = MakeTestDir("crc_roundtrip");
  const std::string path = dir + "/data.pg";
  const std::vector<uint32_t> crcs = {0u, 0xdeadbeefu, 42u, 0xffffffffu};
  ASSERT_OK(WriteChecksumSidecar(path, crcs));
  std::vector<uint32_t> loaded;
  ASSERT_OK(LoadChecksumSidecar(path, &loaded));
  EXPECT_EQ(loaded, crcs);
  ASSERT_OK(RemoveChecksumSidecar(path));
  Status missing = LoadChecksumSidecar(path, &loaded);
  EXPECT_TRUE(missing.IsNotFound()) << missing.ToString();
  // Removing an absent sidecar is not an error.
  ASSERT_OK(RemoveChecksumSidecar(path));
}

TEST(ChecksumTest, SidecarEmptyTableRoundTrips) {
  const std::string dir = MakeTestDir("crc_empty");
  const std::string path = dir + "/data.pg";
  ASSERT_OK(WriteChecksumSidecar(path, {}));
  std::vector<uint32_t> loaded = {1, 2, 3};
  ASSERT_OK(LoadChecksumSidecar(path, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(ChecksumTest, CorruptSidecarRejectedWithPathContext) {
  const std::string dir = MakeTestDir("crc_corrupt");
  const std::string path = dir + "/data.pg";
  ASSERT_OK(WriteChecksumSidecar(path, {1u, 2u, 3u}));
  const std::string sidecar = ChecksumSidecarPath(path);

  // Flip a byte inside the CRC table: the table checksum must catch it.
  {
    std::fstream f(sidecar, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(18);
    f.put('\x7f');
  }
  std::vector<uint32_t> loaded;
  Status status = LoadChecksumSidecar(path, &loaded);
  ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_NE(status.ToString().find(sidecar), std::string::npos)
      << status.ToString();

  // Truncation below the fixed header is Corruption too, not NotFound.
  ASSERT_EQ(::truncate(sidecar.c_str(), 7), 0);
  status = LoadChecksumSidecar(path, &loaded);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(ChecksumTest, PageManagerVerifyOnReadLifecycle) {
  const std::string dir = MakeTestDir("crc_pm");
  const std::string path = dir + "/data.pg";
  Page page;
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(path));
    pm->StartChecksumTracking();
    EXPECT_FALSE(pm->checksums_enabled());
    for (int i = 0; i < 4; ++i) {
      page.Zero();
      page.data[0] = static_cast<char>('a' + i);
      ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));
      EXPECT_EQ(id, static_cast<PageId>(i));
    }
    ASSERT_OK(pm->Sync());
    ASSERT_OK(pm->FinalizeChecksums());
    EXPECT_TRUE(pm->checksums_enabled());
    // Verified reads succeed against the live table.
    ASSERT_OK(pm->ReadPage(2, &page));
    EXPECT_EQ(page.data[0], 'c');
  }
  // Reopen: the sidecar re-arms verification.
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
    EXPECT_FALSE(pm->checksums_enabled());
    ASSERT_OK(pm->LoadChecksums());
    EXPECT_TRUE(pm->checksums_enabled());
    for (int i = 0; i < 4; ++i) {
      ASSERT_OK(pm->ReadPage(static_cast<PageId>(i), &page));
      EXPECT_EQ(page.data[0], static_cast<char>('a' + i));
    }
  }
  // Corrupt one byte of page 1 on disk: the verified read must surface a
  // typed Corruption naming the page and byte offset, and the sibling
  // pages must stay readable.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(kPageSize) + 100);
    f.put('\x55');
  }
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
    ASSERT_OK(pm->LoadChecksums());
    Status bad = pm->ReadPage(1, &page);
    ASSERT_TRUE(bad.IsCorruption()) << bad.ToString();
    const std::string text = bad.ToString();
    EXPECT_NE(text.find(path), std::string::npos) << text;
    EXPECT_NE(text.find("page 1"), std::string::npos) << text;
    EXPECT_NE(text.find("offset 8192"), std::string::npos) << text;
    ASSERT_OK(pm->ReadPage(0, &page));
    ASSERT_OK(pm->ReadPage(2, &page));
    ASSERT_OK(pm->ReadPage(3, &page));
  }
  // A file opened without LoadChecksums still reads the damaged page —
  // that is exactly the pre-checksum behavior the sidecar upgrade fixes.
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
    ASSERT_OK(pm->ReadPage(1, &page));
  }
}

TEST(ChecksumTest, LoadChecksumsRejectsPageCountMismatch) {
  const std::string dir = MakeTestDir("crc_count");
  const std::string path = dir + "/data.pg";
  Page page;
  page.Zero();
  {
    ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(path));
    ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));
    (void)id;
    ASSERT_OK(pm->Sync());
  }
  // Sidecar describing a different page count than the file.
  ASSERT_OK(WriteChecksumSidecar(path, {1u, 2u, 3u}));
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Open(path));
  Status status = pm->LoadChecksums();
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_FALSE(pm->checksums_enabled());
}

// --- BufferPool::Fetch failed-read invariant -----------------------------

// A failed physical read inside Fetch must return the grabbed frame to the
// free list with no page-table entry and no pin — otherwise the pool leaks
// one frame per I/O error until nothing can be fetched at all.
TEST(BufferPoolTest, FetchReadErrorLeaksNoFrameOrMapping) {
  const std::string dir = MakeTestDir("bp_read_error");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  Page page;
  page.Zero();
  for (int i = 0; i < 3; ++i) {
    page.data[0] = static_cast<char>('a' + i);
    ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));
    (void)id;
  }
  PageManager::SetReadRetryPolicy(1, 0);
  // Ten consecutive failed fetches: if any of them leaked a frame or
  // double-freed one, the 2-frame pool below could not serve 2 pins.
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error(10)"));
  for (int i = 0; i < 10; ++i) {
    auto fetched = pool.Fetch(pm.get(), static_cast<PageId>(i % 3));
    ASSERT_FALSE(fetched.ok());
    EXPECT_TRUE(fetched.status().IsIOError())
        << fetched.status().ToString();
    EXPECT_EQ(pool.PinnedPages(), 0u);
  }
  FaultInjector::Instance().DisarmAll();
  PageManager::SetReadRetryPolicy(4, 0);
  // No stale page-table entry: a post-error fetch performs a real read and
  // returns the true bytes.
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h0, pool.Fetch(pm.get(), 0));
    EXPECT_EQ(h0.data()[0], 'a');
    ASSERT_OK_AND_ASSIGN(PageHandle h1, pool.Fetch(pm.get(), 1));
    EXPECT_EQ(h1.data()[0], 'b');
    // Both frames pinned: the pool is exactly full, proving the failed
    // fetches neither leaked a frame nor duplicated one on the free list.
    auto third = pool.Fetch(pm.get(), 2);
    ASSERT_FALSE(third.ok());
    EXPECT_TRUE(third.status().IsResourceExhausted())
        << third.status().ToString();
    EXPECT_EQ(pool.PinnedPages(), 2u);
  }
  EXPECT_EQ(pool.PinnedPages(), 0u);
  ASSERT_OK_AND_ASSIGN(PageHandle h2, pool.Fetch(pm.get(), 2));
  EXPECT_EQ(h2.data()[0], 'c');
}

// Same invariant under eviction pressure: the failed read's frame came
// from evicting a clean cached page, whose mapping must be gone while the
// failed page's mapping must never appear.
TEST(BufferPoolTest, FetchReadErrorAfterEvictionKeepsTableConsistent) {
  const std::string dir = MakeTestDir("bp_read_error_evict");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  BufferPool pool(2);
  Page page;
  page.Zero();
  for (int i = 0; i < 3; ++i) {
    page.data[0] = static_cast<char>('a' + i);
    ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));
    (void)id;
  }
  // Warm the pool with pages 0 and 1 (unpinned, evictable).
  { ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 0)); }
  { ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 1)); }
  PageManager::SetReadRetryPolicy(1, 0);
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error(1)"));
  auto fetched = pool.Fetch(pm.get(), 2);
  ASSERT_FALSE(fetched.ok());
  FaultInjector::Instance().DisarmAll();
  PageManager::SetReadRetryPolicy(4, 0);
  EXPECT_EQ(pool.PinnedPages(), 0u);
  const uint64_t misses_before = pool.stats().misses;
  // Page 2 must not have a stale mapping: fetching it is a miss with a
  // real read, and the data is correct.
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 2));
    EXPECT_EQ(h.data()[0], 'c');
  }
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
  // The evicted victim is re-fetchable too.
  {
    ASSERT_OK_AND_ASSIGN(PageHandle h, pool.Fetch(pm.get(), 1));
    EXPECT_EQ(h.data()[0], 'b');
  }
}

}  // namespace
}  // namespace cubetree
