// Tests for the tracing subsystem (src/obs/trace): span-tree shape,
// annotation round-trips through JSON, the completed-trace ring
// (wraparound + eviction), the Chrome trace-event export schema, the
// disabled-tracer no-op guarantee, per-span IoStats deltas, storage
// attribution hooks, the slow-trace log with its rate limiter, and
// trace-id propagation into QueryContext.
//
// TraceScope always publishes to the process-wide Tracer::Instance(), so
// the fixture arms it per test and restores the disabled default after,
// keeping the singleton invisible to the rest of the suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "obs/json.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "storage/io_stats.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

using obs::JsonValue;
using obs::Span;
using obs::Trace;
using obs::Tracer;
using obs::TraceScope;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Clear();
    Tracer::Instance().Enable(true);
  }
  void TearDown() override {
    Tracer::Instance().SetSlowTraceThresholdMicros(-1);
    Tracer::Instance().SetSlowTraceSinkForTest(nullptr);
    Tracer::Instance().SetSlowTraceFile("");
    Tracer::Instance().Enable(false);
    Tracer::Instance().Clear();
  }
};

// ---------------------------------------------------------------------------
// Span-tree shape.

TEST_F(TraceTest, SpanTreeShape) {
  {
    TraceScope root("query");
    ASSERT_TRUE(root.active());
    {
      Span a("route");
      ASSERT_TRUE(a.active());
      { Span a1("estimate"); }
    }
    { Span b("search"); }
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  const auto& spans = trace->spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "route");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].name, "estimate");
  EXPECT_EQ(spans[2].parent, 1);  // Innermost-open span was "route".
  EXPECT_EQ(spans[3].name, "search");
  EXPECT_EQ(spans[3].parent, 0);  // "route" had closed again.
  for (const auto& span : spans) {
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
  }
  EXPECT_EQ(trace->name(), "query");
}

TEST_F(TraceTest, NestedTraceScopeBecomesChildSpan) {
  // A TraceScope opened while another trace is ambient (a query inside a
  // traced refresh, or the engine inside ctsql's scope) must not start a
  // competing trace.
  {
    TraceScope outer("refresh");
    const uint64_t outer_id = outer.trace_id();
    {
      TraceScope inner("query");
      EXPECT_TRUE(inner.active());
      EXPECT_EQ(inner.trace_id(), outer_id);
    }
    // Inner scope must not have published or torn down the ambient trace.
    EXPECT_EQ(Tracer::Instance().LastTrace(), nullptr);
    EXPECT_NE(obs::CurrentTrace(), nullptr);
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->spans().size(), 2u);
  EXPECT_EQ(trace->spans()[1].name, "query");
  EXPECT_EQ(trace->spans()[1].parent, 0);
}

// ---------------------------------------------------------------------------
// Annotations round-trip through the JSON exports.

TEST_F(TraceTest, AnnotationRoundTrip) {
  {
    TraceScope root("query");
    root.Annotate("engine", std::string("cubetree"));
    Span span("route");
    span.Annotate("view", "partkey,suppkey");
    span.Annotate("estimated_cost", 12.5);
    span.Annotate("tuples", static_cast<uint64_t>(42));
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);

  // Re-parse the dumped tree so the assertion covers serialization too.
  ASSERT_OK_AND_ASSIGN(JsonValue tree,
                       JsonValue::Parse(trace->TreeJson().Dump()));
  const JsonValue* root = tree.Find("root");
  ASSERT_NE(root, nullptr);
  const JsonValue* root_ann = root->Find("annotations");
  ASSERT_NE(root_ann, nullptr);
  ASSERT_NE(root_ann->Find("engine"), nullptr);
  EXPECT_EQ(root_ann->Find("engine")->str(), "cubetree");

  const JsonValue* children = root->Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->elements().size(), 1u);
  const JsonValue* ann = children->elements()[0].Find("annotations");
  ASSERT_NE(ann, nullptr);
  EXPECT_EQ(ann->Find("view")->str(), "partkey,suppkey");
  EXPECT_EQ(ann->Find("estimated_cost")->number(), 12.5);
  EXPECT_EQ(ann->Find("tuples")->number(), 42);
}

// ---------------------------------------------------------------------------
// Ring buffer wraparound and eviction.

TEST_F(TraceTest, RingKeepsNewestAndEvictsOldest) {
  Tracer ring(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    auto trace = std::make_shared<Trace>(i, nullptr);
    const int32_t s = trace->OpenSpan("t", -1);
    trace->CloseSpan(s);
    ring.Publish(std::move(trace));
  }
  auto all = ring.AllTraces();
  ASSERT_EQ(all.size(), 4u);
  // Oldest first: 1 and 2 were evicted.
  EXPECT_EQ(all[0]->id(), 3u);
  EXPECT_EQ(all[1]->id(), 4u);
  EXPECT_EQ(all[2]->id(), 5u);
  EXPECT_EQ(all[3]->id(), 6u);
  ASSERT_NE(ring.LastTrace(), nullptr);
  EXPECT_EQ(ring.LastTrace()->id(), 6u);

  ring.Clear();
  EXPECT_EQ(ring.LastTrace(), nullptr);
  EXPECT_TRUE(ring.AllTraces().empty());
}

TEST_F(TraceTest, RingBelowCapacityKeepsEverythingInOrder) {
  Tracer ring(8);
  for (uint64_t i = 1; i <= 3; ++i) {
    ring.Publish(std::make_shared<Trace>(i, nullptr));
  }
  auto all = ring.AllTraces();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front()->id(), 1u);
  EXPECT_EQ(all.back()->id(), 3u);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export schema (golden test: parse the dump back and
// check the envelope plus every required per-event key).

TEST_F(TraceTest, ChromeTraceJsonSchema) {
  {
    TraceScope root("query");
    Span span("rtree.descent");
    span.Annotate("candidate_leaves", static_cast<uint64_t>(7));
  }
  {
    TraceScope root("refresh");
  }
  ASSERT_OK_AND_ASSIGN(
      JsonValue doc,
      JsonValue::Parse(Tracer::Instance().ExportAllJson().Dump(2)));
  ASSERT_TRUE(doc.is_object());
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str(), "ms");
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->elements().size(), 3u);  // query + descent + refresh.

  for (const JsonValue& event : events->elements()) {
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(event.Find(key), nullptr) << "missing key " << key;
    }
    EXPECT_EQ(event.Find("cat")->str(), "cubetree");
    EXPECT_EQ(event.Find("ph")->str(), "X");
    EXPECT_EQ(event.Find("pid")->number(), 1);
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    // Each event's tid is its trace id, giving one track per trace.
    EXPECT_EQ(event.Find("tid")->number(), args->Find("trace_id")->number());
  }
  // The two traces land on distinct tracks.
  EXPECT_NE(events->elements()[0].Find("tid")->number(),
            events->elements()[2].Find("tid")->number());
  // Span annotations surface in args.
  const JsonValue* descent_args = events->elements()[1].Find("args");
  ASSERT_NE(descent_args->Find("candidate_leaves"), nullptr);
  EXPECT_EQ(descent_args->Find("candidate_leaves")->number(), 7);
}

// ---------------------------------------------------------------------------
// Disabled tracer: everything is an inert no-op.

TEST_F(TraceTest, DisabledTracerIsNoOp) {
  Tracer::Instance().Enable(false);
  {
    TraceScope root("query");
    EXPECT_FALSE(root.active());
    EXPECT_EQ(root.trace_id(), 0u);
    Span span("route");
    EXPECT_FALSE(span.active());
    span.Annotate("view", "ignored");
    EXPECT_EQ(obs::CurrentTrace(), nullptr);
    obs::NotePageRead();  // Must not crash with no ambient trace.
    obs::NotePoolHit();
  }
  EXPECT_EQ(Tracer::Instance().LastTrace(), nullptr);
}

TEST_F(TraceTest, PlainSpanWithoutAmbientTraceIsNoOp) {
  // Instrumentation points fire all over the storage layer; without an
  // enclosing TraceScope they must record nothing even while the tracer
  // itself is enabled.
  {
    Span span("rtree.descent");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::Instance().LastTrace(), nullptr);
}

// ---------------------------------------------------------------------------
// Storage attribution: NotePageRead / NotePoolHit bump the innermost span.

TEST_F(TraceTest, AttributionHooksBumpInnermostSpan) {
  {
    TraceScope root("query");
    obs::NotePageRead();  // Attributed to the root span.
    {
      Span scan("scan");
      obs::NotePageRead();
      obs::NotePageRead();
      obs::NotePoolHit();
    }
    obs::NotePoolHit();  // Back on the root span.
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->spans().size(), 2u);
  EXPECT_EQ(trace->spans()[0].pages_read, 1u);
  EXPECT_EQ(trace->spans()[0].pool_hits, 1u);
  EXPECT_EQ(trace->spans()[1].pages_read, 2u);
  EXPECT_EQ(trace->spans()[1].pool_hits, 1u);
}

// ---------------------------------------------------------------------------
// Per-span IoStats deltas.

TEST_F(TraceTest, PerSpanIoStatsDelta) {
  IoStats io;
  io.sequential_reads += 100;  // Pre-existing activity must not leak in.
  {
    TraceScope root("refresh", &io);
    {
      Span sort("refresh.sort");
      io.sequential_writes += 5;
      io.random_reads += 2;
    }
    {
      Span pack("refresh.merge_pack");
      io.sequential_writes += 7;
    }
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->spans().size(), 3u);
  const IoStats& root_io = trace->spans()[0].io;
  EXPECT_EQ(root_io.sequential_reads.load(), 0u);
  EXPECT_EQ(root_io.sequential_writes.load(), 12u);
  EXPECT_EQ(root_io.random_reads.load(), 2u);
  const IoStats& sort_io = trace->spans()[1].io;
  EXPECT_EQ(sort_io.sequential_writes.load(), 5u);
  EXPECT_EQ(sort_io.random_reads.load(), 2u);
  const IoStats& pack_io = trace->spans()[2].io;
  EXPECT_EQ(pack_io.sequential_writes.load(), 7u);
  EXPECT_EQ(pack_io.random_reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Trace-id propagation into QueryContext.

TEST_F(TraceTest, TraceIdReachesQueryContext) {
  QueryContext ctx;
  EXPECT_EQ(ctx.trace_id(), 0u);
  uint64_t id = 0;
  {
    TraceScope trace("query");
    ASSERT_TRUE(trace.active());
    id = trace.trace_id();
    ASSERT_NE(id, 0u);
    ctx.set_trace_id(id);  // What CubetreeEngine::Execute does.
  }
  EXPECT_EQ(ctx.trace_id(), id);
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->id(), id);
}

// ---------------------------------------------------------------------------
// Slow-trace log: threshold, payload, rate limiting with suppression
// accounting.

TEST_F(TraceTest, SlowTraceLogEmitsFullSpanTree) {
  Tracer& tracer = Tracer::Instance();
  std::vector<std::string> lines;
  tracer.SetSlowTraceSinkForTest(
      [&lines](const std::string& line) { lines.push_back(line); });
  tracer.SetSlowTraceThresholdMicros(0);  // Every trace qualifies.
  tracer.SetSlowTraceLogIntervalMillis(0);

  {
    TraceScope root("query");
    Span span("scan");
  }
  ASSERT_EQ(lines.size(), 1u);
  ASSERT_OK_AND_ASSIGN(JsonValue line, JsonValue::Parse(lines[0]));
  EXPECT_TRUE(line.Find("slow_trace")->boolean());
  EXPECT_EQ(line.Find("threshold_us")->number(), 0);
  EXPECT_EQ(line.Find("name")->str(), "query");
  const JsonValue* root = line.Find("root");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(root->Find("children"), nullptr);
  EXPECT_EQ(root->Find("children")->elements()[0].Find("name")->str(),
            "scan");
}

TEST_F(TraceTest, SlowTraceThresholdFilters) {
  Tracer& tracer = Tracer::Instance();
  std::vector<std::string> lines;
  tracer.SetSlowTraceSinkForTest(
      [&lines](const std::string& line) { lines.push_back(line); });
  // An hour-long threshold: nothing in this test is that slow.
  tracer.SetSlowTraceThresholdMicros(3600LL * 1000 * 1000);
  { TraceScope root("query"); }
  EXPECT_TRUE(lines.empty());
  // Negative threshold disables entirely.
  tracer.SetSlowTraceThresholdMicros(-1);
  { TraceScope root("query"); }
  EXPECT_TRUE(lines.empty());
}

TEST_F(TraceTest, SlowTraceRateLimitSuppressesAndReports) {
  Tracer& tracer = Tracer::Instance();
  std::vector<std::string> lines;
  tracer.SetSlowTraceSinkForTest(
      [&lines](const std::string& line) { lines.push_back(line); });
  tracer.SetSlowTraceThresholdMicros(0);
  // A huge interval: only the first trace within it gets a line.
  tracer.SetSlowTraceLogIntervalMillis(3600LL * 1000);

  { TraceScope root("q1"); }
  { TraceScope root("q2"); }
  { TraceScope root("q3"); }
  ASSERT_EQ(lines.size(), 1u);

  // Dropping the interval lets the next slow trace through, and its line
  // accounts for the two suppressed ones.
  tracer.SetSlowTraceLogIntervalMillis(0);
  { TraceScope root("q4"); }
  ASSERT_EQ(lines.size(), 2u);
  ASSERT_OK_AND_ASSIGN(JsonValue line, JsonValue::Parse(lines[1]));
  ASSERT_NE(line.Find("suppressed"), nullptr);
  EXPECT_EQ(line.Find("suppressed")->number(), 2);
}

// The CUBETREE_SLOW_QUERY_PATH file sink: slow-trace lines append to a
// rotating file instead of stderr, surviving rotation with the
// suppressed-count carryover intact.
TEST_F(TraceTest, SlowTraceFileSinkWritesRotatingFile) {
  const std::string dir = MakeTestDir("trace");
  const std::string path = dir + "/slow.jsonl";
  Tracer& tracer = Tracer::Instance();
  tracer.SetSlowTraceSinkForTest(nullptr);  // File sink must be used.
  tracer.SetSlowTraceFile(path, /*max_bytes=*/1024, /*max_segments=*/2);
  tracer.SetSlowTraceThresholdMicros(0);
  tracer.SetSlowTraceLogIntervalMillis(0);

  for (int i = 0; i < 16; ++i) {
    TraceScope root("slow_query");
    Span span("scan");
  }
  tracer.SetSlowTraceFile("");  // Detach (closes the file).
  tracer.SetSlowTraceThresholdMicros(-1);

  // Lines rotated across segments; each parses and carries the payload.
  uint64_t lines = 0;
  uint64_t segments = 0;
  for (const std::string& segment :
       obs::RotatingFile::Segments(path, /*max_segments=*/2)) {
    ++segments;
    ASSERT_OK(obs::ForEachLogLine(segment, [&](const std::string& text) {
      ASSERT_OK_AND_ASSIGN(JsonValue line, JsonValue::Parse(text));
      EXPECT_TRUE(line.Find("slow_trace")->boolean());
      EXPECT_EQ(line.Find("name")->str(), "slow_query");
      ++lines;
    }));
  }
  EXPECT_GE(segments, 2u);  // ~500-byte lines against a 1 KiB bound rotate.
  EXPECT_GT(lines, 2u);
  EXPECT_LE(lines, 16u);
}

// Rate-limit suppression accounting carries over into the file sink: the
// first line after a suppression window reports the dropped count.
TEST_F(TraceTest, SlowTraceFileSinkKeepsSuppressedCounts) {
  const std::string dir = MakeTestDir("trace");
  const std::string path = dir + "/suppressed.jsonl";
  Tracer& tracer = Tracer::Instance();
  tracer.SetSlowTraceSinkForTest(nullptr);
  tracer.SetSlowTraceFile(path);
  tracer.SetSlowTraceThresholdMicros(0);
  tracer.SetSlowTraceLogIntervalMillis(3600LL * 1000);  // Suppress all but 1.

  { TraceScope root("q1"); }
  { TraceScope root("q2"); }
  { TraceScope root("q3"); }
  tracer.SetSlowTraceLogIntervalMillis(0);
  { TraceScope root("q4"); }  // Reports the two suppressed.
  tracer.SetSlowTraceFile("");
  tracer.SetSlowTraceThresholdMicros(-1);

  std::vector<std::string> lines;
  ASSERT_OK(obs::ForEachLogLine(
      path, [&](const std::string& text) { lines.push_back(text); }));
  ASSERT_EQ(lines.size(), 2u);
  ASSERT_OK_AND_ASSIGN(JsonValue last, JsonValue::Parse(lines[1]));
  ASSERT_NE(last.Find("suppressed"), nullptr);
  EXPECT_EQ(last.Find("suppressed")->number(), 2);
}

// ---------------------------------------------------------------------------
// DebugString (the \trace rendering) shows the indented tree.

TEST_F(TraceTest, DebugStringShowsTree) {
  {
    TraceScope root("query");
    Span span("search");
    span.Annotate("plan", "slice");
  }
  auto trace = Tracer::Instance().LastTrace();
  ASSERT_NE(trace, nullptr);
  const std::string text = trace->DebugString();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("  search"), std::string::npos);  // Indented child.
  EXPECT_NE(text.find("plan=slice"), std::string::npos);
}

}  // namespace
}  // namespace cubetree
