// Corruption-sweep harness: end-to-end tests of the integrity layer under
// real on-disk damage and injected silent read corruption.
//
// The contract under test — the tentpole invariant of the integrity
// subsystem — is "match or typed Corruption, never silent garbage":
//   * transient bitflips heal through the storage layer's bounded re-reads
//     and the query result still equals brute force over the raw facts;
//   * persistent page corruption quarantines the damaged tree and the
//     in-flight query transparently re-routes to a replica or superset
//     view, still matching brute force;
//   * when every covering view is damaged the caller receives the typed
//     checksum-mismatch Corruption, never wrong rows;
//   * the background scrubber finds latent damage before queries do and
//     drives the replica-repair path.
//
// Kept in its own binary (labeled `corruption`): it tampers with live
// files, arms global failpoints, and uses a deliberately tiny buffer pool
// so reads hit the disk instead of the cache.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "engine/cubetree_engine.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "olap/cube_builder.h"
#include "olap/query_model.h"
#include "scrub/scrubber.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

CubeSchema SmallSchema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {30, 8, 20};
  return schema;
}

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef v;
  v.id = id;
  v.attrs = std::move(attrs);
  return v;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

/// XORs one byte in page `page_id` of `path` — a single silent bit
/// pattern change that only the checksum layer can notice.
void CorruptPageByte(const std::string& path, PageId page_id) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path;
  const off_t offset = static_cast<off_t>(page_id) * kPageSize + 123;
  char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, offset), 1);
  byte = static_cast<char>(byte ^ 0xFF);
  ASSERT_EQ(::pwrite(fd, &byte, 1, offset), 1);
  ::close(fd);
}

/// Damages every page of the file past the meta page, so any physical
/// read the search issues is guaranteed to see bad bytes.
void CorruptAllDataPages(const std::string& path) {
  const uint64_t pages = FileSize(path) / kPageSize;
  ASSERT_GE(pages, 2u) << path << " too small to corrupt meaningfully";
  for (PageId p = 1; p < pages; ++p) CorruptPageByte(path, p);
}

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Instance().GetCounter(name)->value();
}

/// EngineTest's schema/view shape plus the two sort-order replicas, but
/// every view in its own tree (so quarantining one view's file cannot
/// collaterally kill its replicas) and a buffer pool smaller than any one
/// tree (so a full-view scan always performs physical reads — the
/// verify-on-read layer only sees pages that actually come off the disk).
class CorruptionTest : public ::testing::Test {
 protected:
  static constexpr size_t kPoolPages = 6;

  void SetUp() override {
    dir_ = MakeTestDir("corruption");
    schema_ = SmallSchema();
    Rng rng(47);
    for (int i = 0; i < 4000; ++i) {
      FactTuple t;
      t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
      t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
      t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
      t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
      facts_.push_back(t);
    }
    views_ = {
        MakeView(7, {0, 1, 2}), MakeView(3, {0, 1}), MakeView(4, {2}),
        MakeView(2, {1}),       MakeView(1, {0}),    MakeView(0, {}),
        MakeView(1000, {1, 2, 0}),  // (s,c,p) replica of the top view.
        MakeView(1001, {2, 0, 1}),  // (c,p,s) replica of the top view.
    };
    pool_ = std::make_unique<BufferPool>(kPoolPages);
    auto data = Compute(views_, facts_, "base");
    CubetreeEngine::Options options;
    options.dir = dir_;
    options.one_tree_per_view = true;
    auto created = CubetreeEngine::Create(schema_, options, pool_.get());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    cbt_ = std::move(created).value();
    ASSERT_OK(cbt_->Load(views_, data.get()));
    ASSERT_OK(data->Destroy());
  }

  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    cbt_.reset();
    pool_.reset();
  }

  std::unique_ptr<ComputedViews> Compute(const std::vector<ViewDef>& views,
                                         const std::vector<FactTuple>& facts,
                                         const std::string& tag) {
    CubeBuilder::Options options;
    options.temp_dir = dir_;
    options.sort_budget_bytes = 1 << 18;
    CubeBuilder builder(schema_, options);
    struct Provider : FactProvider {
      explicit Provider(const std::vector<FactTuple>* f) : facts(f) {}
      Result<std::unique_ptr<FactSource>> Open() override {
        return std::unique_ptr<FactSource>(new VectorFactSource(facts));
      }
      const std::vector<FactTuple>* facts;
    } provider(&facts);
    auto result = builder.ComputeAll(views, &provider, tag);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string TreePath(uint32_t view_id) {
    auto tree = cbt_->forest()->TreeForView(view_id);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return (*tree)->rtree()->path();
  }

  /// The fully unbound query on the top lattice node: scans every leaf of
  /// whichever {0,1,2} view it routes to, so with the tiny pool it is
  /// guaranteed to touch corrupted pages physically.
  SliceQuery TopQuery() const {
    SliceQuery q;
    q.node_mask = 0b111;
    q.attrs = {0, 1, 2};
    q.bindings = {std::nullopt, std::nullopt, std::nullopt};
    return q;
  }

  /// Brute-force reference answer over the raw facts.
  QueryResult Reference(const SliceQuery& query) {
    QueryResult result;
    std::map<std::vector<Coord>, AggValue> groups;
    for (const FactTuple& t : facts_) {
      bool match = true;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        const auto [lo, hi] = query.AttrInterval(i);
        const Coord value = t.attr_values[query.attrs[i]];
        if (value < lo || value > hi) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Coord> key;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        if (query.IsGrouped(i)) key.push_back(t.attr_values[query.attrs[i]]);
      }
      AggValue& agg = groups[key];
      agg.sum += t.measure;
      agg.count += 1;
    }
    for (auto& [key, agg] : groups) result.rows.push_back({key, agg});
    result.SortRows();
    return result;
  }

  void ExpectMatchesReference(const SliceQuery& query) {
    QueryResult expected = Reference(query);
    QueryExecStats stats;
    auto result = cbt_->Execute(query, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result->SortRows();
    EXPECT_TRUE(result->SameRowsAs(expected))
        << "plan=" << stats.plan << " got " << result->rows.size()
        << " rows, want " << expected.rows.size();
  }

  std::string dir_;
  CubeSchema schema_;
  std::vector<FactTuple> facts_;
  std::vector<ViewDef> views_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<CubetreeEngine> cbt_;
};

TEST_F(CorruptionTest, ReadRepairReroutesToReplicaOnDiskCorruption) {
  const SliceQuery query = TopQuery();
  ExpectMatchesReference(query);  // Sanity before the damage.

  CorruptAllDataPages(TreePath(7));
  const uint64_t reroutes_before = CounterValue("engine.read_repair_reroutes");

  // The query routes to view 7 first (cheapest covering view, earliest in
  // declaration order), hits the damage, quarantines the tree, and must
  // re-route to a replica — transparently returning the right answer.
  ExpectMatchesReference(query);
  EXPECT_TRUE(cbt_->forest()->IsViewQuarantined(7));
  EXPECT_FALSE(cbt_->forest()->IsViewQuarantined(1000));
  EXPECT_FALSE(cbt_->forest()->IsViewQuarantined(1001));
  EXPECT_GT(CounterValue("engine.read_repair_reroutes"), reroutes_before);

  // Subsequent queries skip the quarantined view at routing time: no new
  // corruption encounter, still the right answer.
  const uint64_t reroutes_after = CounterValue("engine.read_repair_reroutes");
  ExpectMatchesReference(query);
  EXPECT_EQ(CounterValue("engine.read_repair_reroutes"), reroutes_after);
}

TEST_F(CorruptionTest, TypedCorruptionWhenNoHealthyRouteRemains) {
  CorruptAllDataPages(TreePath(7));
  CorruptAllDataPages(TreePath(1000));
  CorruptAllDataPages(TreePath(1001));

  // Every view that can answer the top-node query is damaged: the retry
  // loop quarantines them one by one, runs out of routes, and surfaces the
  // first typed Corruption — never a silently wrong result.
  QueryExecStats stats;
  auto result = cbt_->Execute(TopQuery(), &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_TRUE(cbt_->forest()->IsViewQuarantined(7));
  EXPECT_TRUE(cbt_->forest()->IsViewQuarantined(1000));
  EXPECT_TRUE(cbt_->forest()->IsViewQuarantined(1001));

  // Lattice nodes with a healthy covering view keep answering.
  SliceQuery ps;
  ps.node_mask = 0b011;
  ps.attrs = {0, 1};
  ps.bindings = {std::nullopt, std::nullopt};
  ExpectMatchesReference(ps);
}

TEST_F(CorruptionTest, RepairFromReplicasRestoresQuarantinedView) {
  const SliceQuery query = TopQuery();
  CorruptAllDataPages(TreePath(7));
  ExpectMatchesReference(query);  // Trigger quarantine via read-repair.
  ASSERT_TRUE(cbt_->forest()->IsViewQuarantined(7));

  const uint64_t repairs_before = CounterValue("engine.replica_repairs");
  ASSERT_OK(cbt_->RepairFromReplicas());
  EXPECT_FALSE(cbt_->forest()->IsViewQuarantined(7));
  EXPECT_GT(CounterValue("engine.replica_repairs"), repairs_before);

  // The rebuilt tree serves correct content again, for the full scan and
  // for a selective probe.
  ExpectMatchesReference(query);
  SliceQuery bound = TopQuery();
  bound.bindings = {Coord{5}, Coord{3}, std::nullopt};
  ExpectMatchesReference(bound);
}

TEST_F(CorruptionTest, RepairUnavailableWithoutSourceFallsBackToBaseData) {
  CorruptAllDataPages(TreePath(7));
  CorruptAllDataPages(TreePath(1000));
  CorruptAllDataPages(TreePath(1001));
  auto result = cbt_->Execute(TopQuery(), nullptr);
  ASSERT_TRUE(!result.ok() && result.status().IsCorruption())
      << result.status().ToString();

  // All three {0,1,2} views are quarantined and none can cover another:
  // the replica fast path must refuse (leaving the forest unchanged), and
  // the base-data rebuild — the warehouse recovery fallback — restores it.
  Status replica_repair = cbt_->RepairFromReplicas();
  ASSERT_TRUE(replica_repair.IsUnavailable()) << replica_repair.ToString();
  ASSERT_TRUE(cbt_->forest()->HasQuarantine());

  auto data = Compute(views_, facts_, "rebuild");
  ASSERT_OK(cbt_->RebuildQuarantined(data.get()));
  ASSERT_OK(data->Destroy());
  EXPECT_FALSE(cbt_->forest()->HasQuarantine());
  ExpectMatchesReference(TopQuery());
}

TEST_F(CorruptionTest, SweepTransientBitflipsHealViaReread) {
  // A one-shot bitflip on the Nth physical read models a transient bus /
  // DMA error: verify-on-read catches it and the bounded re-read gets
  // clean bytes, so the query is right and nothing is quarantined.
  const SliceQuery query = TopQuery();
  const QueryResult expected = Reference(query);
  for (const uint64_t hit : {1u, 2u, 5u, 9u, 17u, 33u}) {
    ASSERT_OK(FaultInjector::Instance().Arm(
        "storage.page.read", "bitflip(1)@" + std::to_string(hit)));
    QueryExecStats stats;
    auto result = cbt_->Execute(query, &stats);
    ASSERT_TRUE(result.ok())
        << "hit " << hit << ": " << result.status().ToString();
    result->SortRows();
    EXPECT_TRUE(result->SameRowsAs(expected)) << "hit " << hit;
    EXPECT_FALSE(cbt_->forest()->HasQuarantine()) << "hit " << hit;
    FaultInjector::Instance().DisarmAll();
  }
}

TEST_F(CorruptionTest, SweepPersistentCorruptionNeverReturnsWrongRows) {
  // corrupt_page(3)@H defeats the initial read and both re-reads: from the
  // storage layer's view the page is persistently bad. Whatever page of
  // whatever file hit H lands on, the outcome must be either the reference
  // answer (read-repair re-routed) or a typed Corruption — wrong rows are
  // an automatic failure.
  const SliceQuery query = TopQuery();
  const QueryResult expected = Reference(query);
  for (const uint64_t hit : {1u, 3u, 7u, 13u}) {
    ASSERT_OK(FaultInjector::Instance().Arm(
        "storage.page.read", "corrupt_page(3)@" + std::to_string(hit)));
    auto result = cbt_->Execute(query, nullptr);
    if (result.ok()) {
      result->SortRows();
      EXPECT_TRUE(result->SameRowsAs(expected)) << "hit " << hit;
    } else {
      EXPECT_TRUE(result.status().IsCorruption())
          << "hit " << hit << ": " << result.status().ToString();
    }
    FaultInjector::Instance().DisarmAll();

    // The on-disk files are healthy (corruption was injected on the read
    // path only), but a quarantine decision is deliberately sticky:
    // restore via the replica path before the next round.
    if (cbt_->forest()->HasQuarantine()) {
      Status repaired = cbt_->RepairFromReplicas();
      if (repaired.IsUnavailable()) {
        auto data = Compute(views_, facts_, "sweep_rebuild");
        ASSERT_OK(cbt_->RebuildQuarantined(data.get()));
        ASSERT_OK(data->Destroy());
      } else {
        ASSERT_OK(repaired);
      }
      ASSERT_FALSE(cbt_->forest()->HasQuarantine()) << "hit " << hit;
    }
    ExpectMatchesReference(query);
  }
}

TEST_F(CorruptionTest, UnlimitedCorruptionYieldsTypedErrorNotGarbage) {
  // Every physical read from hit 2 onward returns damaged bytes — a dying
  // disk. With the pool far smaller than any route's page count no attempt
  // can be served from cache, so the only acceptable outcome is the typed
  // checksum Corruption.
  ASSERT_OK(
      FaultInjector::Instance().Arm("storage.page.read", "corrupt_page@2"));
  auto result = cbt_->Execute(TopQuery(), nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << result.status().ToString();
}

TEST_F(CorruptionTest, ScrubberDrivesReplicaRepairEndToEnd) {
  // Latent damage the queries have not touched yet: the scrubber finds it
  // on its own pass, quarantines the tree, and its repair callback (the
  // engine's replica path) rebuilds it before any query ever failed.
  CorruptAllDataPages(TreePath(7));
  ScrubOptions options;
  Scrubber scrubber(cbt_->forest(), options,
                    [this] { return cbt_->RepairFromReplicas(); });
  ScrubPassStats stats;
  ASSERT_OK(scrubber.ScrubOnce(&stats));
  EXPECT_EQ(stats.corruptions_found, 1u);  // Scan stops at first finding.
  EXPECT_EQ(stats.corruptions_repaired, 1u);
  EXPECT_EQ(stats.corruptions_unrepairable, 0u);
  EXPECT_FALSE(cbt_->forest()->HasQuarantine());
  ExpectMatchesReference(TopQuery());

  // The rebuilt generation scrubs clean.
  ScrubPassStats clean;
  ASSERT_OK(scrubber.ScrubOnce(&clean));
  EXPECT_EQ(clean.corruptions_found, 0u);
  EXPECT_EQ(clean.files_unverified, 0u);
}

// ---------------------------------------------------------------------------
// Forest-level scrubber tests: no engine, no repair unless provided.

class ScrubProvider : public CubetreeForest::ViewDataProvider {
 public:
  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    std::vector<char> flat;
    std::vector<char> rec(ViewRecordBytes(view.arity()));
    for (Coord x = 1; x <= 600; ++x) {
      Coord coords[kMaxDims] = {x};
      EncodeViewRecord(rec.data(), coords, view.arity(),
                       AggValue{static_cast<int64_t>(x) * view.id, 1});
      flat.insert(flat.end(), rec.begin(), rec.end());
    }
    return std::unique_ptr<RecordStream>(new MemoryRecordStream(
        std::move(flat), ViewRecordBytes(view.arity())));
  }
};

struct ScrubForest {
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<CubetreeForest> forest;
  ScrubProvider provider;
};

ScrubForest MakeScrubForest(const std::string& tag) {
  ScrubForest sf;
  sf.pool = std::make_unique<BufferPool>(64);
  CubetreeForest::Options options;
  options.dir = MakeTestDir(tag);
  options.name = "scrub";
  options.one_tree_per_view = true;
  auto created = CubetreeForest::Create(options, sf.pool.get());
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  sf.forest = std::move(created).value();
  EXPECT_TRUE(
      sf.forest->Build({MakeView(1, {0}), MakeView(2, {1})}, &sf.provider)
          .ok());
  return sf;
}

std::string ForestTreePath(CubetreeForest* forest, uint32_t view_id) {
  auto tree = forest->TreeForView(view_id);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return (*tree)->rtree()->path();
}

TEST(ScrubberTest, CleanForestScrubsClean) {
  ScrubForest sf = MakeScrubForest("scrub_clean");
  Scrubber scrubber(sf.forest.get(), ScrubOptions());
  ScrubPassStats stats;
  ASSERT_OK(scrubber.ScrubOnce(&stats));
  EXPECT_EQ(stats.files_scanned, 2u);
  EXPECT_GT(stats.pages_scrubbed, 0u);
  EXPECT_EQ(stats.files_unverified, 0u);
  EXPECT_EQ(stats.corruptions_found, 0u);
  EXPECT_FALSE(sf.forest->HasQuarantine());
}

TEST(ScrubberTest, FindsAndQuarantinesSingleFlippedByte) {
  ScrubForest sf = MakeScrubForest("scrub_find");
  CorruptPageByte(ForestTreePath(sf.forest.get(), 1), 1);
  Scrubber scrubber(sf.forest.get(), ScrubOptions());
  ScrubPassStats stats;
  ASSERT_OK(scrubber.ScrubOnce(&stats));
  EXPECT_EQ(stats.corruptions_found, 1u);
  // No repair callback installed: the finding is unrepairable, the tree
  // stays quarantined, and the healthy sibling is untouched.
  EXPECT_EQ(stats.corruptions_repaired, 0u);
  EXPECT_EQ(stats.corruptions_unrepairable, 1u);
  EXPECT_TRUE(sf.forest->IsViewQuarantined(1));
  EXPECT_FALSE(sf.forest->IsViewQuarantined(2));
}

TEST(ScrubberTest, RepairCallbackRestoresTree) {
  ScrubForest sf = MakeScrubForest("scrub_repair");
  CorruptPageByte(ForestTreePath(sf.forest.get(), 2), 1);
  Scrubber scrubber(sf.forest.get(), ScrubOptions(), [&sf] {
    return sf.forest->RebuildQuarantined(&sf.provider);
  });
  ScrubPassStats stats;
  ASSERT_OK(scrubber.ScrubOnce(&stats));
  EXPECT_EQ(stats.corruptions_found, 1u);
  EXPECT_EQ(stats.corruptions_repaired, 1u);
  EXPECT_EQ(stats.corruptions_unrepairable, 0u);
  EXPECT_FALSE(sf.forest->HasQuarantine());

  ScrubPassStats clean;
  ASSERT_OK(scrubber.ScrubOnce(&clean));
  EXPECT_EQ(clean.corruptions_found, 0u);
}

TEST(ScrubberTest, BackgroundThreadRunsRepeatedPasses) {
  ScrubForest sf = MakeScrubForest("scrub_thread");
  ScrubOptions options;
  options.enabled = true;
  options.interval_ms = 1;
  Scrubber scrubber(sf.forest.get(), options);
  scrubber.Start();
  scrubber.Start();  // Idempotent.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (scrubber.passes_completed() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(scrubber.passes_completed(), 2u);
  scrubber.Stop();
  scrubber.Stop();  // Idempotent.
  const uint64_t after_stop = scrubber.passes_completed();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(scrubber.passes_completed(), after_stop);
}

TEST(ScrubberTest, ThrottledPassStillCoversEverything) {
  ScrubForest sf = MakeScrubForest("scrub_throttle");
  ScrubOptions options;
  options.pages_per_second = 2000;  // Gentle but non-zero budget.
  Scrubber scrubber(sf.forest.get(), options);
  ScrubPassStats stats;
  ASSERT_OK(scrubber.ScrubOnce(&stats));
  EXPECT_EQ(stats.files_scanned, 2u);
  EXPECT_GT(stats.pages_scrubbed, 0u);
  EXPECT_EQ(stats.corruptions_found, 0u);
}

TEST(ScrubberTest, OptionsComeFromEnvironment) {
  ::unsetenv("CUBETREE_SCRUB_ENABLE");
  ::unsetenv("CUBETREE_SCRUB_RATE");
  ::unsetenv("CUBETREE_SCRUB_INTERVAL_MS");
  ScrubOptions off = ScrubOptions::FromEnv();
  EXPECT_FALSE(off.enabled);

  ::setenv("CUBETREE_SCRUB_ENABLE", "1", 1);
  ::setenv("CUBETREE_SCRUB_RATE", "123", 1);
  ::setenv("CUBETREE_SCRUB_INTERVAL_MS", "456", 1);
  ScrubOptions on = ScrubOptions::FromEnv();
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.pages_per_second, 123u);
  EXPECT_EQ(on.interval_ms, 456u);

  ScrubForest sf = MakeScrubForest("scrub_env");
  auto scrubber = Scrubber::CreateFromEnv(sf.forest.get());
  EXPECT_NE(scrubber, nullptr);
  ::setenv("CUBETREE_SCRUB_ENABLE", "0", 1);
  EXPECT_EQ(Scrubber::CreateFromEnv(sf.forest.get()), nullptr);
  ::unsetenv("CUBETREE_SCRUB_ENABLE");
  ::unsetenv("CUBETREE_SCRUB_RATE");
  ::unsetenv("CUBETREE_SCRUB_INTERVAL_MS");
}

}  // namespace
}  // namespace cubetree
