// Deterministic crash-recovery harness for the Cubetree refresh pipeline.
//
// The sweep tests enumerate EVERY registered failpoint and interrupt a
// forest refresh at each one — with a real process crash (_Exit in a
// forked child) and with the in-process throw action (sanitizer-friendly).
// After each interruption the forest is reopened through Recover and must
// come back checker-clean, holding exactly the pre-refresh or the
// post-refresh contents — never a hybrid — with all orphaned files
// collected and a second Recover finding nothing left to do.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/checkers.h"
#include "check/invariant_checker.h"
#include "cubetree/cubetree.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "engine/warehouse.h"
#include "fault/fault_injector.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef view;
  view.id = id;
  view.attrs = std::move(attrs);
  return view;
}

/// The paper's running example: V1{partkey,suppkey}, V2{suppkey,custkey},
/// V3{partkey}, V4{} — two trees after SelectMapping.
std::vector<ViewDef> PaperViews() {
  return {MakeView(1, {0, 1}), MakeView(2, {1, 2}), MakeView(3, {0}),
          MakeView(4, {})};
}

/// In-memory ViewDataProvider: per-view vectors of records, sorted into
/// pack order on demand.
class VectorViewProvider : public CubetreeForest::ViewDataProvider {
 public:
  void Add(const ViewDef& view, std::vector<Coord> coords, AggValue agg) {
    auto& rows = data_[view.id];
    std::vector<char> rec(ViewRecordBytes(view.arity()));
    coords.resize(kMaxDims, 0);
    EncodeViewRecord(rec.data(), coords.data(), view.arity(), agg);
    rows.push_back(std::move(rec));
  }

  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    auto rows = data_[view.id];  // Copy.
    const uint8_t arity = view.arity();
    std::sort(rows.begin(), rows.end(),
              [arity](const std::vector<char>& a, const std::vector<char>& b) {
                return ViewRecordCompare(a.data(), b.data(), arity) < 0;
              });
    std::vector<char> flat;
    for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());
    return std::unique_ptr<RecordStream>(new MemoryRecordStream(
        std::move(flat), ViewRecordBytes(arity)));
  }

 private:
  std::map<uint32_t, std::vector<std::vector<char>>> data_;
};

void FillBase(VectorViewProvider* p, const std::vector<ViewDef>& views) {
  int64_t total = 0;
  for (uint32_t a = 1; a <= 12; ++a) {
    for (uint32_t b = 1; b <= 4; ++b) {
      p->Add(views[0], {a, b}, AggValue{int64_t(a * 100 + b), 1});
      p->Add(views[1], {b, a}, AggValue{int64_t(b * 10 + a), 1});
    }
    p->Add(views[2], {a}, AggValue{int64_t(a), 1});
    total += a;
  }
  p->Add(views[3], {}, AggValue{total, 12});
}

/// Half-overlapping delta: merges with existing groups and adds fresh ones.
void FillDelta(VectorViewProvider* p, const std::vector<ViewDef>& views) {
  for (uint32_t a = 7; a <= 18; ++a) {
    p->Add(views[0], {a, 2}, AggValue{int64_t(a), 1});
    p->Add(views[1], {2, a}, AggValue{int64_t(a * 2), 1});
    p->Add(views[2], {a}, AggValue{int64_t(a * 3), 1});
  }
  p->Add(views[3], {}, AggValue{99, 12});
}

CubetreeForest::Options ForestOptions(const std::string& dir) {
  CubetreeForest::Options options;
  options.dir = dir;
  options.name = "f";
  return options;
}

/// Builds the base forest in `dir` and closes it again.
void BuildBaseForest(const std::string& dir) {
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Create(ForestOptions(dir), &pool));
  const auto views = PaperViews();
  VectorViewProvider provider;
  FillBase(&provider, views);
  ASSERT_OK(forest->Build(views, &provider));
}

/// Forest contents as one sorted list of "view:coords=sum:count" strings,
/// aggregated by group key so main+delta splits compare equal to merged
/// trees. Directory-independent, so snapshots from different dirs compare.
using Contents = std::vector<std::string>;

Contents Dump(CubetreeForest* forest) {
  std::map<std::string, std::pair<int64_t, uint64_t>> groups;
  for (const ViewDef& view : forest->views()) {
    EXPECT_FALSE(forest->IsViewQuarantined(view.id)) << view.id;
    auto tree_result = forest->TreeForView(view.id);
    EXPECT_TRUE(tree_result.ok()) << tree_result.status().ToString();
    if (!tree_result.ok()) continue;
    std::vector<std::optional<Coord>> open(view.arity(), std::nullopt);
    EXPECT_OK(tree_result.value()->QuerySlice(
        view.id, open, [&](const Coord* coords, const AggValue& agg) {
          std::string key = std::to_string(view.id);
          for (size_t i = 0; i < view.arity(); ++i) {
            key += "," + std::to_string(coords[i]);
          }
          auto& group = groups[key];
          group.first += agg.sum;
          group.second += agg.count;
        }));
  }
  Contents out;
  for (const auto& [key, agg] : groups) {
    out.push_back(key + "=" + std::to_string(agg.first) + ":" +
                  std::to_string(agg.second));
  }
  return out;
}

/// Reference snapshots, computed once in a scratch dir with no faults
/// armed: the forest contents before and after the standard refresh.
struct Snapshots {
  Contents before;
  Contents after;
};

const Snapshots& ReferenceSnapshots() {
  static const Snapshots* snapshots = [] {
    // ct-lint: allow(no-naked-new)
    auto* s = new Snapshots();  // Intentionally leaked static snapshot.
    const std::string dir = MakeTestDir("crash_reference");
    BuildBaseForest(dir);
    BufferPool pool(256);
    auto forest =
        std::move(CubetreeForest::Open(ForestOptions(dir), &pool).value());
    s->before = Dump(forest.get());
    VectorViewProvider delta;
    FillDelta(&delta, PaperViews());
    Status applied = forest->ApplyDelta(&delta);
    EXPECT_OK(applied);
    s->after = Dump(forest.get());
    return s;
  }();
  return *snapshots;
}

/// The workload every sweep interrupts: reopen the forest, refresh it with
/// the standard delta. Returns the refresh status.
Status OpenAndRefresh(const std::string& dir) {
  BufferPool pool(256);
  auto forest_result = CubetreeForest::Open(ForestOptions(dir), &pool);
  if (!forest_result.ok()) return forest_result.status();
  auto forest = std::move(forest_result).value();
  VectorViewProvider delta;
  FillDelta(&delta, PaperViews());
  return forest->ApplyDelta(&delta);
}

/// Forked child: arm `failpoint` with the crash action and run the refresh
/// workload. Exits 0 when the refresh completes (the failpoint was not on
/// this workload's path), kCrashExitCode on the simulated crash, and a
/// distinct code on any unexpected error.
int RunCrashChild(const std::string& dir, const char* failpoint) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (!FaultInjector::Instance().Arm(failpoint, "crash").ok()) {
      std::_Exit(11);
    }
    const Status status = OpenAndRefresh(dir);
    std::_Exit(status.ok() ? 0 : 12);
  }
  EXPECT_GT(pid, 0) << "fork failed";
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  if (!WIFEXITED(wstatus)) return -1;
  return WEXITSTATUS(wstatus);
}

/// Post-interruption invariant: Recover succeeds with nothing quarantined,
/// the contents equal exactly the pre- or post-refresh snapshot, the deep
/// forest checker is clean, and a second Recover finds nothing to do.
void ExpectRecoversToOldOrNew(const std::string& dir, const std::string& at) {
  const Snapshots& expected = ReferenceSnapshots();
  {
    BufferPool pool(256);
    ForestRecoveryReport report;
    auto recovered =
        CubetreeForest::Recover(ForestOptions(dir), &pool, nullptr, &report);
    ASSERT_TRUE(recovered.ok()) << at << ": " << recovered.status().ToString();
    EXPECT_TRUE(report.quarantined_trees.empty())
        << at << ": " << report.ToString();
    const Contents contents = Dump(recovered.value().get());
    EXPECT_TRUE(contents == expected.before || contents == expected.after)
        << at << ": recovered contents match neither generation ("
        << contents.size() << " groups vs " << expected.before.size()
        << " before / " << expected.after.size() << " after)";
  }
  {
    BufferPool pool(256);
    CheckOptions check_options;
    check_options.deep = true;
    ForestChecker checker(dir, "f", &pool, check_options);
    CheckReport report;
    ASSERT_OK(checker.Run(&report));
    EXPECT_EQ(report.errors(), 0u) << at << ":\n" << report.ToString();
  }
  {
    BufferPool pool(256);
    ForestRecoveryReport second;
    auto again =
        CubetreeForest::Recover(ForestOptions(dir), &pool, nullptr, &second);
    ASSERT_TRUE(again.ok()) << at << ": " << again.status().ToString();
    EXPECT_TRUE(second.clean())
        << at << ": recovery is not idempotent — " << second.ToString();
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
  }
};

// --- The sweeps ---------------------------------------------------------

TEST_F(CrashRecoveryTest, CrashAtEveryFailpoint) {
  const auto& points = FaultInjector::RegisteredPoints();
  ASSERT_GE(points.size(), 20u);
  int crashed = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const std::string dir =
        MakeTestDir("crash_fork_" + std::to_string(i));
    BuildBaseForest(dir);
    const int code = RunCrashChild(dir, points[i].name);
    ASSERT_TRUE(code == 0 || code == FaultInjector::kCrashExitCode)
        << points[i].name << ": child exited " << code;
    if (code == FaultInjector::kCrashExitCode) ++crashed;
    ExpectRecoversToOldOrNew(dir, points[i].name);
  }
  // The refresh path must actually cross most of the registry — a sweep
  // where nothing fires would silently test nothing.
  EXPECT_GE(crashed, 15) << "only " << crashed << " failpoints fired";
}

TEST_F(CrashRecoveryTest, ThrowAtEveryFailpoint) {
  for (const auto& point : FaultInjector::RegisteredPoints()) {
    const std::string dir = MakeTestDir(std::string("crash_throw_") +
                                        point.name);
    BuildBaseForest(dir);
    ASSERT_OK(FaultInjector::Instance().Arm(point.name, "throw"));
    bool crashed = false;
    try {
      const Status status = OpenAndRefresh(dir);
      ASSERT_OK(status);  // Throw-armed points never return an error.
    } catch (const SimulatedCrash& crash) {
      crashed = true;
      EXPECT_EQ(crash.failpoint(), point.name);
    }
    FaultInjector::Instance().DisarmAll();
    (void)crashed;
    ExpectRecoversToOldOrNew(dir, std::string("throw:") + point.name);
  }
}

TEST_F(CrashRecoveryTest, ErrorAtEveryFailpoint) {
  for (const auto& point : FaultInjector::RegisteredPoints()) {
    const std::string dir = MakeTestDir(std::string("crash_error_") +
                                        point.name);
    BuildBaseForest(dir);
    PageManager::SetReadRetryPolicy(2, 0);  // Keep read retries cheap.
    ASSERT_OK(FaultInjector::Instance().Arm(point.name, "error"));
    // The refresh either fails with the injected error or succeeds (point
    // off-path, or the protocol absorbs the failure — e.g. post-commit
    // dirsync/gc). Either way the on-disk state must stay two-sided.
    (void)OpenAndRefresh(dir);
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
    ExpectRecoversToOldOrNew(dir, std::string("error:") + point.name);
  }
}

// --- Targeted scenarios -------------------------------------------------

TEST_F(CrashRecoveryTest, TransientReadErrorsDoNotAbortRefresh) {
  const std::string dir = MakeTestDir("crash_transient");
  BuildBaseForest(dir);
  PageManager::SetReadRetryPolicy(4, 0);
  // Two read attempts fail, the retry loop absorbs them: the refresh must
  // complete and land on the new generation.
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error(2)"));
  ASSERT_OK(OpenAndRefresh(dir));
  FaultInjector::Instance().DisarmAll();

  BufferPool pool(256);
  ForestRecoveryReport report;
  ASSERT_OK_AND_ASSIGN(auto forest, CubetreeForest::Recover(
                                        ForestOptions(dir), &pool, nullptr,
                                        &report));
  EXPECT_TRUE(report.quarantined_trees.empty()) << report.ToString();
  EXPECT_EQ(Dump(forest.get()), ReferenceSnapshots().after);
}

TEST_F(CrashRecoveryTest, QuarantineAndRebuildFromBaseData) {
  const std::string dir = MakeTestDir("crash_quarantine");
  BuildBaseForest(dir);

  // Smash a page header (and the entries behind it) in tree 0's file: the
  // tree still opens or fails — either way the deep check must quarantine
  // it. The corruption targets the start of a page because slack bytes
  // past a page's live payload are legitimately unchecked.
  const std::string victim = dir + "/f_t0_g0.ctr";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good()) << victim;
    f.seekp(2 * kPageSize);
    std::string junk(300, '\xFF');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }

  BufferPool pool(256);
  ForestRecoveryReport report;
  ASSERT_OK_AND_ASSIGN(auto forest, CubetreeForest::Recover(
                                        ForestOptions(dir), &pool, nullptr,
                                        &report));
  ASSERT_EQ(report.quarantined_trees.size(), 1u) << report.ToString();
  EXPECT_EQ(report.quarantined_trees[0], 0u);
  EXPECT_TRUE(forest->HasQuarantine());
  ASSERT_FALSE(report.quarantined_views.empty());

  // Graceful degradation: quarantined views answer Unavailable, the other
  // tree keeps serving.
  size_t available = 0;
  for (const ViewDef& view : forest->views()) {
    auto tree_result = forest->TreeForView(view.id);
    if (forest->IsViewQuarantined(view.id)) {
      ASSERT_FALSE(tree_result.ok());
      EXPECT_TRUE(tree_result.status().IsUnavailable())
          << tree_result.status().ToString();
    } else {
      ASSERT_TRUE(tree_result.ok()) << tree_result.status().ToString();
      ++available;
    }
  }
  EXPECT_GT(available, 0u);

  // Rebuild from base data restores the original contents exactly.
  VectorViewProvider base;
  FillBase(&base, PaperViews());
  ASSERT_OK(forest->RebuildQuarantined(&base));
  EXPECT_FALSE(forest->HasQuarantine());
  EXPECT_EQ(Dump(forest.get()), ReferenceSnapshots().before);
  forest.reset();

  // The quarantine files are gone and the store is clean again.
  BufferPool pool2(256);
  ForestRecoveryReport second;
  ASSERT_OK_AND_ASSIGN(auto reopened, CubetreeForest::Recover(
                                          ForestOptions(dir), &pool2,
                                          nullptr, &second));
  EXPECT_TRUE(second.clean()) << second.ToString();
  EXPECT_EQ(Dump(reopened.get()), ReferenceSnapshots().before);
}

TEST_F(CrashRecoveryTest, CrashDuringRecoveryIsIdempotent) {
  const std::string dir = MakeTestDir("crash_in_recovery");
  BuildBaseForest(dir);
  // Crash right after the manifest swap: the new generation is committed
  // but the journal and the retired generation-0 files are still on disk.
  ASSERT_OK(FaultInjector::Instance().Arm("forest.refresh.commit", "throw"));
  bool crashed = false;
  try {
    (void)OpenAndRefresh(dir);
  } catch (const SimulatedCrash&) {
    crashed = true;
  }
  FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(crashed);

  // First recovery attempt crashes while collecting orphans...
  ASSERT_OK(FaultInjector::Instance().Arm("forest.recover.gc", "throw@2"));
  bool recovery_crashed = false;
  try {
    BufferPool pool(256);
    (void)CubetreeForest::Recover(ForestOptions(dir), &pool);
  } catch (const SimulatedCrash&) {
    recovery_crashed = true;
  }
  FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(recovery_crashed);

  // ...and running it again converges: new-generation contents, clean.
  ExpectRecoversToOldOrNew(dir, "crash-in-recovery");
  BufferPool pool(256);
  ASSERT_OK_AND_ASSIGN(auto forest, CubetreeForest::Recover(
                                        ForestOptions(dir), &pool));
  EXPECT_EQ(Dump(forest.get()), ReferenceSnapshots().after);
}

TEST_F(CrashRecoveryTest, FailedManifestSwapKeepsOldGeneration) {
  const std::string dir = MakeTestDir("crash_manifest_error");
  BuildBaseForest(dir);
  ASSERT_OK(FaultInjector::Instance().Arm("forest.manifest.write", "error"));
  Status status = OpenAndRefresh(dir);
  FaultInjector::Instance().DisarmAll();
  EXPECT_TRUE(status.IsIOError()) << status.ToString();

  BufferPool pool(256);
  ForestRecoveryReport report;
  ASSERT_OK_AND_ASSIGN(auto forest, CubetreeForest::Recover(
                                        ForestOptions(dir), &pool, nullptr,
                                        &report));
  EXPECT_TRUE(report.quarantined_trees.empty()) << report.ToString();
  EXPECT_EQ(Dump(forest.get()), ReferenceSnapshots().before);
}

// --- Warehouse-level recovery -------------------------------------------

TEST_F(CrashRecoveryTest, WarehouseRecoversAndRebuildsFromBase) {
  const std::string dir = MakeTestDir("crash_warehouse");
  WarehouseOptions options;
  options.scale_factor = 0.002;  // ~12k fact rows: fast but non-trivial.
  options.dir = dir;
  uint64_t loaded_bytes = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto warehouse, Warehouse::Create(options));
    ASSERT_OK(warehouse->LoadCubetrees().status());
    loaded_bytes = warehouse->cubetrees()->StorageBytes();
    // Crash the first refresh just before the manifest swap becomes
    // visible: on disk the load-time generation must survive.
    ASSERT_OK(
        FaultInjector::Instance().Arm("forest.manifest.rename", "throw"));
    bool crashed = false;
    try {
      (void)warehouse->UpdateCubetrees(0);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    FaultInjector::Instance().DisarmAll();
    ASSERT_TRUE(crashed);
  }

  // "Next process": recover instead of reloading from scratch.
  {
    ASSERT_OK_AND_ASSIGN(auto warehouse, Warehouse::Create(options));
    ForestRecoveryReport report;
    ASSERT_OK(warehouse->RecoverCubetrees(0, &report).status());
    EXPECT_TRUE(report.journal_found) << report.ToString();
    EXPECT_FALSE(warehouse->cubetrees()->forest()->HasQuarantine());
    EXPECT_EQ(warehouse->cubetrees()->StorageBytes(), loaded_bytes);
  }

  // Corrupt one tree file (a page header — slack bytes are legitimately
  // unchecked) and recover again: the warehouse must rebuild the
  // quarantined views from recomputed base data.
  {
    std::fstream f(dir + "/cbt_t0_g0.ctr",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(2 * kPageSize);
    std::string junk(300, '\xFF');
    f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  {
    ASSERT_OK_AND_ASSIGN(auto warehouse, Warehouse::Create(options));
    ForestRecoveryReport report;
    ASSERT_OK(warehouse->RecoverCubetrees(0, &report).status());
    EXPECT_FALSE(report.quarantined_trees.empty()) << report.ToString();
    EXPECT_FALSE(warehouse->cubetrees()->forest()->HasQuarantine());
    // A refresh over the recovered store works end to end.
    ASSERT_OK(warehouse->UpdateCubetrees(0).status());
  }
}

}  // namespace
}  // namespace cubetree
