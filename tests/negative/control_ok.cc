// Positive control for the negative-compilation tests: the disciplined
// versions of both patterns compile cleanly under the exact flags the
// failing cases use. If this control breaks, the failing cases are
// failing for the wrong reason (bad include path, flag typo, ...).

#include "common/status.h"
#include "common/thread_annotations.h"

namespace cubetree {

Status MightFail() { return Status::OK(); }

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

void Use() {
  Counter c;
  c.Increment();
  Status status = MightFail();
  if (!status.ok()) {
    (void)status;
  }
}

}  // namespace cubetree
