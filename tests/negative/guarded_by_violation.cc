// Negative-compilation test: touching a GUARDED_BY field without holding
// its mutex must fail the clang thread-safety analysis. Compiled by the
// `negative_guarded_by` ctest with -Werror=thread-safety; never linked
// into any binary.

#include "common/thread_annotations.h"

namespace cubetree {

class Counter {
 public:
  void IncrementLocked() {
    MutexLock lock(mu_);
    ++value_;  // Correct: lock held. Keeps the class itself plausible.
  }

  void IncrementRacy() {
    ++value_;  // BAD: writing value_ requires holding mu_.
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

void Use() {
  Counter c;
  c.IncrementLocked();
  c.IncrementRacy();
}

}  // namespace cubetree
