# Driver for negative-compilation tests: compiles SRC with -fsyntax-only
# and asserts the outcome.
#
#   cmake -DCOMPILER=<cxx> -DSRC=<file> -DINCLUDE_DIR=<dir>
#         -DEXTRA_FLAGS="<flags>" -DEXPECT=<substring|SUCCESS>
#         -P negative_compile.cmake
#
# EXPECT=SUCCESS demands a clean compile (the positive control, proving
# the flags and include paths are right, so the failing cases fail for
# the intended reason). Any other EXPECT value demands a *failed*
# compile whose diagnostics contain that substring.

separate_arguments(flag_list UNIX_COMMAND "${EXTRA_FLAGS}")
execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only -I${INCLUDE_DIR}
          ${flag_list} ${SRC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
set(diagnostics "${out}${err}")

if(EXPECT STREQUAL "SUCCESS")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "expected ${SRC} to compile cleanly, got exit ${rc}:\n"
            "${diagnostics}")
  endif()
else()
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "expected ${SRC} to FAIL to compile, but it succeeded — the "
            "machine check it exercises is not firing")
  endif()
  string(FIND "${diagnostics}" "${EXPECT}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
            "${SRC} failed to compile, but not with the expected "
            "diagnostic '${EXPECT}':\n${diagnostics}")
  endif()
endif()
