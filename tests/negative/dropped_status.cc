// Negative-compilation test: silently dropping a Status must fail under
// -Werror=unused-result (Status is class-level [[nodiscard]]). Compiled
// by the `negative_dropped_status` ctest; never linked into any binary.

#include "common/status.h"

namespace cubetree {

Status MightFail() { return Status::OK(); }

void Caller() {
  MightFail();  // BAD: nodiscard Status silently dropped.
}

}  // namespace cubetree
