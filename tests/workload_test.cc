// Tests for the workload profiler (src/obs/workload): the space-saving
// heavy-hitter sketch, the replica-miss scorer against hand-built
// workloads (mirroring CubetreeEngine::EstimateCost's suffix-pruning
// model), the profiler's golden report schema, and offline log ingestion
// with invalid/torn-line accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/query_log.h"
#include "obs/workload.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

using obs::JsonValue;
using obs::QueryLogAttr;
using obs::QueryLogRecord;
using obs::ReplicaMiss;
using obs::ScoreReplicaMiss;
using obs::SpaceSavingSketch;
using obs::WorkloadProfiler;

QueryLogAttr MakeAttr(const std::string& name, uint64_t domain, uint64_t lo,
                      uint64_t hi, bool grouped = false) {
  QueryLogAttr attr;
  attr.name = name;
  attr.domain = domain;
  attr.lo = lo;
  attr.hi = hi;
  attr.bound = (lo == hi);
  attr.grouped = grouped;
  return attr;
}

// A query against view (partkey, suppkey) with the given per-attr
// intervals. Pack order is suffix-major, so a predicate on suppkey prunes
// fully and a predicate on partkey only halves.
QueryLogRecord MakeRecord(uint64_t part_lo, uint64_t part_hi,
                          uint64_t supp_lo, uint64_t supp_hi,
                          uint64_t pages = 100) {
  QueryLogRecord record;
  record.ts_us = 1;
  record.outcome = "ok";
  record.route = "exact";
  record.view = "node(partkey,suppkey)";
  record.order = {"partkey", "suppkey"};
  record.attrs.push_back(MakeAttr("partkey", 200, part_lo, part_hi));
  record.attrs.push_back(MakeAttr("suppkey", 10, supp_lo, supp_hi, true));
  record.latency_us = 500;
  record.pages_read = pages;
  record.pool_hits = 0;
  record.points_examined = 1000;
  record.rows = 10;
  return record;
}

// ---------------------------------------------------------------------------
// Space-saving sketch.

TEST(SpaceSavingSketchTest, ExactWithinCapacity) {
  SpaceSavingSketch sketch(8);
  for (int i = 0; i < 5; ++i) sketch.Observe("a");
  for (int i = 0; i < 3; ++i) sketch.Observe("b");
  sketch.Observe("c");
  auto top = sketch.TopK(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].overcount, 0u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(top[2].count, 1u);
}

TEST(SpaceSavingSketchTest, EvictionInheritsMinCountAsOvercount) {
  SpaceSavingSketch sketch(2);
  for (int i = 0; i < 10; ++i) sketch.Observe("heavy");
  sketch.Observe("light");
  // At capacity: a newcomer evicts "light" (count 1) and inherits its
  // count as the overcount bound; "heavy" is untouched.
  sketch.Observe("newcomer");
  EXPECT_EQ(sketch.size(), 2u);
  auto top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "heavy");
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[1].key, "newcomer");
  EXPECT_EQ(top[1].count, 2u);      // Inherited 1 + its own observation.
  EXPECT_EQ(top[1].overcount, 1u);  // count - overcount lower-bounds truth.
}

// ---------------------------------------------------------------------------
// Replica-miss scorer.

TEST(ReplicaMissTest, SuffixServedQueryIsNotAMiss) {
  // suppkey (the pack-major suffix attr) is bound, partkey is free: the
  // routed order already prunes fully, so no replica would do better.
  const QueryLogRecord record = MakeRecord(1, 200, 3, 3);
  EXPECT_FALSE(ScoreReplicaMiss(record).has_value());
}

TEST(ReplicaMissTest, UnconstrainedQueryIsNotAMiss) {
  const QueryLogRecord record = MakeRecord(1, 200, 1, 10);
  EXPECT_FALSE(ScoreReplicaMiss(record).has_value());
}

TEST(ReplicaMissTest, NonSuffixPredicateScoresAMiss) {
  // partkey=7 with suppkey free: under order (partkey, suppkey) the bound
  // attribute is NOT in the pack-order suffix, so the engine only gets MBR
  // halving (actual = 0.5) where the permuted order (suppkey, partkey)
  // would prune at partkey's full selectivity (best = 1/200).
  const QueryLogRecord record = MakeRecord(7, 7, 1, 10, /*pages=*/100);
  auto miss = ScoreReplicaMiss(record);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->view, "node(partkey,suppkey)");
  ASSERT_EQ(miss->recommended_order.size(), 2u);
  EXPECT_EQ(miss->recommended_order[0], "suppkey");
  EXPECT_EQ(miss->recommended_order[1], "partkey");
  EXPECT_NEAR(miss->cost_ratio, (1.0 / 200) / 0.5, 1e-9);
  EXPECT_EQ(miss->pages_touched, 100u);
  EXPECT_NEAR(miss->est_pages_saved, 100.0 * (1.0 - 0.01), 1e-6);
}

TEST(ReplicaMissTest, ContiguousConstrainedSuffixIsNotAMiss) {
  // BOTH attrs constrained under (partkey, suppkey): the suffix walk
  // consumes suppkey then partkey, so the routed order already prunes at
  // the full selectivity product — no permutation beats it.
  const QueryLogRecord record = MakeRecord(10, 19, 3, 3);
  EXPECT_FALSE(ScoreReplicaMiss(record).has_value());
}

TEST(ReplicaMissTest, GapInSuffixScoresOnlyTheStrandedPrefix) {
  // Three-attr view (partkey, suppkey, custkey): custkey bound prunes as
  // the suffix, the free suppkey breaks the walk, and the ranged partkey
  // is stranded at the halving credit. The best permutation moves both
  // constrained attrs into the suffix; the recommendation lists the free
  // attr first, then the constrained ones in their original order.
  QueryLogRecord record;
  record.outcome = "ok";
  record.route = "exact";
  record.view = "node(partkey,suppkey,custkey)";
  record.order = {"partkey", "suppkey", "custkey"};
  record.attrs.push_back(MakeAttr("partkey", 200, 10, 19));
  record.attrs.push_back(MakeAttr("suppkey", 10, 1, 10));
  record.attrs.push_back(MakeAttr("custkey", 100, 5, 5));
  record.pages_read = 60;
  record.pool_hits = 20;
  auto miss = ScoreReplicaMiss(record);
  ASSERT_TRUE(miss.has_value());
  // actual = sel(custkey) * 0.5; best = sel(custkey) * sel(partkey).
  const double sel_part = 10.0 / 200;
  EXPECT_NEAR(miss->cost_ratio, sel_part / 0.5, 1e-9);
  ASSERT_EQ(miss->recommended_order.size(), 3u);
  EXPECT_EQ(miss->recommended_order[0], "suppkey");
  EXPECT_EQ(miss->recommended_order[1], "partkey");
  EXPECT_EQ(miss->recommended_order[2], "custkey");
  EXPECT_EQ(miss->pages_touched, 80u);
  EXPECT_NEAR(miss->est_pages_saved, 80.0 * (1.0 - sel_part / 0.5), 1e-6);
}

TEST(ReplicaMissTest, RecordsWithoutARoutedViewAreSkipped) {
  QueryLogRecord record = MakeRecord(7, 7, 1, 10);
  record.view.clear();
  record.order.clear();
  record.route = "none";
  EXPECT_FALSE(ScoreReplicaMiss(record).has_value());
}

// ---------------------------------------------------------------------------
// Profiler report.

TEST(WorkloadProfilerTest, GoldenReportSchema) {
  WorkloadProfiler profiler;
  // 3 fast exact-served queries, 2 slow replica misses, 1 deadline error.
  for (int i = 0; i < 3; ++i) profiler.Observe(MakeRecord(1, 200, 3, 3));
  for (int i = 0; i < 2; ++i) profiler.Observe(MakeRecord(7, 7, 1, 10, 100));
  QueryLogRecord failed = MakeRecord(7, 7, 1, 10);
  failed.outcome = "deadline";
  failed.latency_us = 9000;
  profiler.Observe(failed);
  EXPECT_EQ(profiler.records(), 6u);

  const JsonValue report = profiler.ReportJson();
  EXPECT_EQ(report.Find("schema_version")->number(), 1);
  EXPECT_EQ(report.Find("records")->number(), 6);
  EXPECT_EQ(report.Find("invalid_records")->number(), 0);

  // Outcomes: ok and deadline, each with a latency summary.
  const JsonValue* outcomes = report.Find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  ASSERT_NE(outcomes->Find("ok"), nullptr);
  EXPECT_EQ(outcomes->Find("ok")->Find("count")->number(), 5);
  ASSERT_NE(outcomes->Find("deadline"), nullptr);
  EXPECT_EQ(outcomes->Find("deadline")->Find("count")->number(), 1);
  ASSERT_NE(outcomes->Find("ok")->Find("p95_us"), nullptr);

  // Views: one entry with page/route accounting.
  const JsonValue* view = report.Find("views")->Find("node(partkey,suppkey)");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->Find("count")->number(), 6);
  EXPECT_EQ(view->Find("routes")->Find("exact")->number(), 6);

  // Shapes: the two distinct shapes, tied at 3 so ordered by key (',' <
  // '=' puts the suffix-served shape first).
  const auto& shapes = report.Find("top_shapes")->elements();
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].Find("shape")->str(), "partkey,suppkey=");
  EXPECT_EQ(shapes[0].Find("count")->number(), 3);
  EXPECT_EQ(shapes[1].Find("shape")->str(), "partkey=,suppkey");
  EXPECT_EQ(shapes[1].Find("count")->number(), 3);

  // Replica misses: the partkey=-only shape aggregated across its 3
  // queries, recommending the permuted order.
  const auto& misses = report.Find("replica_misses")->elements();
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].Find("view")->str(), "node(partkey,suppkey)");
  EXPECT_EQ(misses[0].Find("queries")->number(), 3);
  const auto& order = misses[0].Find("recommended_order")->elements();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].str(), "suppkey");
  EXPECT_EQ(order[1].str(), "partkey");
  EXPECT_GT(misses[0].Find("est_pages_saved")->number(), 0.0);

  // The text rendering carries the headline numbers and the miss line.
  const std::string text = profiler.ReportText();
  EXPECT_NE(text.find("6 records"), std::string::npos);
  EXPECT_NE(text.find("node(partkey,suppkey)"), std::string::npos);
  EXPECT_NE(text.find("suppkey,partkey"), std::string::npos);
  EXPECT_NE(text.find("pages saved"), std::string::npos);
}

TEST(WorkloadProfilerTest, AddLogFileCountsInvalidAndTornLines) {
  const std::string dir = MakeTestDir("workload");
  const std::string path = dir + "/mixed.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  const std::string good = MakeRecord(7, 7, 1, 10).ToJson().Dump(-1);
  std::fprintf(f, "%s\n", good.c_str());
  std::fputs("not json at all\n", f);
  std::fputs("{\"schema_version\": 1}\n", f);  // Parses, fails strict schema.
  std::fprintf(f, "%s\n", good.c_str());
  std::fputs("{\"torn", f);  // No newline: crash mid-append.
  ASSERT_EQ(std::fclose(f), 0);

  WorkloadProfiler profiler;
  ASSERT_OK(profiler.AddLogFile(path));
  EXPECT_EQ(profiler.records(), 2u);
  EXPECT_EQ(profiler.invalid_records(), 2u);
  const JsonValue report = profiler.ReportJson();
  EXPECT_EQ(report.Find("torn_lines")->number(), 1);
  EXPECT_EQ(report.Find("invalid_records")->number(), 2);
}

TEST(WorkloadProfilerTest, DefaultAttachDetach) {
  EXPECT_EQ(WorkloadProfiler::Default(), nullptr);
  WorkloadProfiler profiler;
  WorkloadProfiler::SetDefault(&profiler);
  EXPECT_EQ(WorkloadProfiler::Default(), &profiler);
  WorkloadProfiler::SetDefault(nullptr);
  EXPECT_EQ(WorkloadProfiler::Default(), nullptr);
}

}  // namespace
}  // namespace cubetree
