#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "rtree/geometry.h"
#include "rtree/node.h"
#include "rtree/packed_rtree.h"
#include "rtree/zorder.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(GeometryTest, RectContainsPoint) {
  Rect r;
  r.lo[0] = 2;
  r.hi[0] = 5;
  r.lo[1] = 1;
  r.hi[1] = 1;
  Coord inside[2] = {3, 1};
  Coord outside[2] = {3, 2};
  Coord edge[2] = {5, 1};
  EXPECT_TRUE(r.ContainsPoint(inside, 2));
  EXPECT_FALSE(r.ContainsPoint(outside, 2));
  EXPECT_TRUE(r.ContainsPoint(edge, 2));
}

TEST(GeometryTest, RectIntersects) {
  Rect a = Rect::Full(2);
  Rect b;
  b.lo[0] = 5;
  b.hi[0] = 6;
  b.lo[1] = 5;
  b.hi[1] = 6;
  EXPECT_TRUE(a.Intersects(b, 2));
  Rect c;
  c.lo[0] = 7;
  c.hi[0] = 8;
  c.lo[1] = 5;
  c.hi[1] = 6;
  EXPECT_FALSE(b.Intersects(c, 2));
  // Touching edges count as intersecting.
  Rect d;
  d.lo[0] = 6;
  d.hi[0] = 9;
  d.lo[1] = 6;
  d.hi[1] = 9;
  EXPECT_TRUE(b.Intersects(d, 2));
}

TEST(GeometryTest, ExpandToPointAndRect) {
  Coord p[2] = {4, 7};
  Rect r = Rect::FromPoint(p, 2);
  Coord q[2] = {2, 9};
  r.ExpandToPoint(q, 2);
  EXPECT_EQ(r.lo[0], 2u);
  EXPECT_EQ(r.hi[0], 4u);
  EXPECT_EQ(r.lo[1], 7u);
  EXPECT_EQ(r.hi[1], 9u);
  Rect other = Rect::FromPoint(p, 2);
  other.lo[0] = 1;
  other.hi[1] = 20;
  r.ExpandToRect(other, 2);
  EXPECT_EQ(r.lo[0], 1u);
  EXPECT_EQ(r.hi[1], 20u);
}

TEST(GeometryTest, PackOrderComparesLastDimensionFirst) {
  // The paper: R{x,y} sorts points in (y, x) order.
  Coord a[2] = {9, 1};
  Coord b[2] = {1, 2};
  EXPECT_LT(PackOrderCompare(a, b, 2), 0);  // y=1 < y=2 despite x bigger.
  Coord c[2] = {1, 1};
  EXPECT_GT(PackOrderCompare(a, c, 2), 0);  // Same y, compare x.
  EXPECT_EQ(PackOrderCompare(a, a, 2), 0);
}

TEST(GeometryTest, LowerArityViewsSortBeforeHigherArity) {
  // A view of arity 1 (coords {v,0,0}) must precede arity-2 ({a,b,0})
  // and arity-3 points in a 3-d tree, for any values.
  Coord arity1[3] = {4000, 0, 0};
  Coord arity2[3] = {1, 1, 0};
  Coord arity3[3] = {1, 1, 1};
  Coord origin[3] = {0, 0, 0};
  EXPECT_LT(PackOrderCompare(origin, arity1, 3), 0);
  EXPECT_LT(PackOrderCompare(arity1, arity2, 3), 0);
  EXPECT_LT(PackOrderCompare(arity2, arity3, 3), 0);
}

TEST(GeometryTest, AggValueMergeAndAvg) {
  AggValue a{10, 2};
  a.Merge(AggValue{5, 1});
  EXPECT_EQ(a.sum, 15);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.Avg(), 5.0);
  EXPECT_DOUBLE_EQ(AggValue{}.Avg(), 0.0);
}

TEST(NodeLayoutTest, LeafEntryRoundTrip) {
  char buf[64];
  Coord coords[3] = {7, 8, 9};
  AggValue agg{-123456789, 42};
  RLeafWriteEntry(buf, coords, 3, agg);
  PointRecord rec;
  RLeafReadEntry(buf, 3, 17, &rec);
  EXPECT_EQ(rec.view_id, 17u);
  EXPECT_EQ(rec.coords[0], 7u);
  EXPECT_EQ(rec.coords[2], 9u);
  EXPECT_EQ(rec.coords[3], 0u);  // Suppressed dims decode to zero.
  EXPECT_EQ(rec.agg.sum, -123456789);
  EXPECT_EQ(rec.agg.count, 42u);
}

TEST(NodeLayoutTest, CompressionShrinksLeafEntries) {
  // An arity-1 entry stores 1 coordinate instead of dims coordinates.
  EXPECT_EQ(RLeafEntryBytes(1), 4u + kAggValueBytes);
  EXPECT_EQ(RLeafEntryBytes(3), 12u + kAggValueBytes);
  EXPECT_GT(RLeafCapacity(1), RLeafCapacity(3));
}

TEST(NodeLayoutTest, InternalEntryRoundTrip) {
  char buf[128];
  Rect mbr;
  for (size_t i = 0; i < 3; ++i) {
    mbr.lo[i] = static_cast<Coord>(i + 1);
    mbr.hi[i] = static_cast<Coord>(10 * (i + 1));
  }
  RInternalWriteEntry(buf, mbr, 3, 77);
  Rect out;
  PageId child;
  RInternalReadEntry(buf, 3, &out, &child);
  EXPECT_EQ(child, 77u);
  EXPECT_EQ(out.lo[1], 2u);
  EXPECT_EQ(out.hi[2], 30u);
}

TEST(ZOrderTest, MatchesExplicitMortonKey) {
  // For small coordinates, compare against an explicitly interleaved key.
  auto morton = [](Coord x, Coord y, Coord z) {
    uint64_t key = 0;
    for (int bit = 15; bit >= 0; --bit) {
      key = (key << 3) | (((z >> bit) & 1) << 2) | (((y >> bit) & 1) << 1) |
            ((x >> bit) & 1);
    }
    return key;
  };
  Rng rng(55);
  for (int i = 0; i < 5000; ++i) {
    Coord a[3] = {static_cast<Coord>(rng.Uniform(1 << 16)),
                  static_cast<Coord>(rng.Uniform(1 << 16)),
                  static_cast<Coord>(rng.Uniform(1 << 16))};
    Coord b[3] = {static_cast<Coord>(rng.Uniform(1 << 16)),
                  static_cast<Coord>(rng.Uniform(1 << 16)),
                  static_cast<Coord>(rng.Uniform(1 << 16))};
    const uint64_t ka = morton(a[0], a[1], a[2]);
    const uint64_t kb = morton(b[0], b[1], b[2]);
    const int expected = ka < kb ? -1 : (ka > kb ? 1 : 0);
    ASSERT_EQ(ZOrderCompare(a, b, 3), expected) << i;
    ASSERT_EQ(ZOrderCompare(b, a, 3), -expected);
  }
}

TEST(ZOrderTest, OneDimensionIsPlainOrder) {
  Coord a[1] = {5}, b[1] = {9};
  EXPECT_LT(ZOrderCompare(a, b, 1), 0);
  EXPECT_EQ(ZOrderCompare(a, a, 1), 0);
}

class PackedRTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("rtree");
    pool_ = std::make_unique<BufferPool>(256);
  }

  /// Builds a tree holding `n` arity-2 points (i, i%97+1) of view 1.
  std::vector<PointRecord> MakeGridPoints(uint32_t n) {
    std::vector<PointRecord> points;
    for (uint32_t i = 1; i <= n; ++i) {
      PointRecord rec;
      rec.view_id = 1;
      rec.coords[0] = i;
      rec.coords[1] = i % 97 + 1;
      rec.agg = AggValue{static_cast<int64_t>(i) * 2, 1};
      points.push_back(rec);
    }
    std::sort(points.begin(), points.end(),
              [](const PointRecord& a, const PointRecord& b) {
                return PackOrderCompare(a.coords, b.coords, 2) < 0;
              });
    return points;
  }

  Result<std::unique_ptr<PackedRTree>> Build(
      std::vector<PointRecord> points, uint8_t dims,
      std::function<uint8_t(uint32_t)> arity,
      RTreeOptions options = RTreeOptions{}) {
    options.dims = dims;
    VectorPointSource source(std::move(points));
    return PackedRTree::Build(dir_ + "/t" + std::to_string(++count_) +
                                  ".ctr",
                              options, pool_.get(), &source, arity);
  }

  std::string dir_;
  std::unique_ptr<BufferPool> pool_;
  int count_ = 0;
};

TEST_F(PackedRTreeTest, BuildAndFullSearch) {
  auto points = MakeGridPoints(5000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  EXPECT_EQ(tree->num_points(), 5000u);
  EXPECT_GE(tree->height(), 2u);

  uint64_t found = 0;
  int64_t total = 0;
  ASSERT_OK(tree->Search(Rect::Full(2), [&](const PointRecord& rec) {
    ++found;
    total += rec.agg.sum;
  }));
  EXPECT_EQ(found, 5000u);
  EXPECT_EQ(total, 2ll * 5000 * 5001 / 2);
}

TEST_F(PackedRTreeTest, RangeSearchExact) {
  auto points = MakeGridPoints(5000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  Rect query;
  query.lo[0] = 100;
  query.hi[0] = 200;
  query.lo[1] = 1;
  query.hi[1] = 50;
  uint64_t expected = 0;
  for (const PointRecord& rec : points) {
    if (query.ContainsPoint(rec.coords, 2)) ++expected;
  }
  uint64_t found = 0;
  ASSERT_OK(tree->Search(query, [&](const PointRecord& rec) {
    ASSERT_TRUE(query.ContainsPoint(rec.coords, 2));
    ++found;
  }));
  EXPECT_EQ(found, expected);
  EXPECT_GT(found, 0u);
}

TEST_F(PackedRTreeTest, SearchPrunesLeaves) {
  auto points = MakeGridPoints(50000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  // A slice on the most-significant sort dimension touches few leaves.
  Rect query = Rect::Full(2);
  query.lo[1] = 7;
  query.hi[1] = 7;
  SearchStats stats;
  uint64_t found = 0;
  ASSERT_OK(tree->Search(query, [&](const PointRecord&) { ++found; },
                         &stats));
  EXPECT_GT(found, 0u);
  EXPECT_LT(stats.leaf_pages, tree->num_leaf_pages() / 10)
      << "slice should touch a small fraction of " << tree->num_leaf_pages()
      << " leaves";
}

TEST_F(PackedRTreeTest, RejectsUnsortedInput) {
  auto points = MakeGridPoints(100);
  std::swap(points[10], points[50]);
  EXPECT_FALSE(Build(points, 2, [](uint32_t) { return 2; }).ok());
}

TEST_F(PackedRTreeTest, EmptyTree) {
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build({}, 3, [](uint32_t) { return 3; }));
  EXPECT_EQ(tree->num_points(), 0u);
  uint64_t found = 0;
  ASSERT_OK(tree->Search(Rect::Full(3),
                         [&](const PointRecord&) { ++found; }));
  EXPECT_EQ(found, 0u);
  auto scanner = tree->ScanAll();
  const PointRecord* rec = nullptr;
  ASSERT_OK(scanner.Next(&rec));
  EXPECT_EQ(rec, nullptr);
}

TEST_F(PackedRTreeTest, ScanAllReturnsPackOrder) {
  auto points = MakeGridPoints(3000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  auto scanner = tree->ScanAll();
  size_t i = 0;
  while (true) {
    const PointRecord* rec = nullptr;
    ASSERT_OK(scanner.Next(&rec));
    if (rec == nullptr) break;
    ASSERT_LT(i, points.size());
    ASSERT_EQ(rec->coords[0], points[i].coords[0]);
    ASSERT_EQ(rec->coords[1], points[i].coords[1]);
    ASSERT_EQ(rec->agg, points[i].agg);
    ++i;
  }
  EXPECT_EQ(i, points.size());
}

TEST_F(PackedRTreeTest, MultiViewTreeSeparatesViews) {
  // Views: 10 (arity 0), 11 (arity 1), 12 (arity 2) in one 2-d tree.
  std::vector<PointRecord> points;
  PointRecord origin;
  origin.view_id = 10;
  origin.agg = AggValue{1000, 100};
  points.push_back(origin);
  for (uint32_t i = 1; i <= 500; ++i) {
    PointRecord rec;
    rec.view_id = 11;
    rec.coords[0] = i;
    rec.agg = AggValue{static_cast<int64_t>(i), 1};
    points.push_back(rec);
  }
  for (uint32_t y = 1; y <= 40; ++y) {
    for (uint32_t x = 1; x <= 40; ++x) {
      PointRecord rec;
      rec.view_id = 12;
      rec.coords[0] = x;
      rec.coords[1] = y;
      rec.agg = AggValue{static_cast<int64_t>(x * y), 1};
      points.push_back(rec);
    }
  }
  auto arity = [](uint32_t view) -> uint8_t {
    return static_cast<uint8_t>(view - 10);
  };
  ASSERT_OK_AND_ASSIGN(auto tree, Build(points, 2, arity));
  EXPECT_EQ(tree->num_points(), 1u + 500u + 1600u);

  // Query the arity-1 view region only: y pinned to 0, x in [1, max].
  Rect q1;
  q1.lo[0] = 1;
  q1.hi[0] = kCoordMax;
  q1.lo[1] = 0;
  q1.hi[1] = 0;
  uint64_t count11 = 0;
  ASSERT_OK(tree->Search(q1, [&](const PointRecord& rec) {
    ASSERT_EQ(rec.view_id, 11u);
    ++count11;
  }));
  EXPECT_EQ(count11, 500u);

  // Origin query returns only the arity-0 super-aggregate.
  Rect q0;
  q0.lo[0] = q0.hi[0] = 0;
  q0.lo[1] = q0.hi[1] = 0;
  uint64_t count10 = 0;
  ASSERT_OK(tree->Search(q0, [&](const PointRecord& rec) {
    ASSERT_EQ(rec.view_id, 10u);
    ASSERT_EQ(rec.agg.sum, 1000);
    ++count10;
  }));
  EXPECT_EQ(count10, 1u);

  // Arity-2 region: both coords >= 1.
  Rect q2;
  q2.lo[0] = q2.lo[1] = 1;
  q2.hi[0] = q2.hi[1] = kCoordMax;
  uint64_t count12 = 0;
  ASSERT_OK(tree->Search(q2, [&](const PointRecord& rec) {
    ASSERT_EQ(rec.view_id, 12u);
    ++count12;
  }));
  EXPECT_EQ(count12, 1600u);
}

TEST_F(PackedRTreeTest, LeavesAreSingleView) {
  // Verify the "no interleaving" property: every leaf page carries one
  // view id, checked via the scanner's page-at-a-time decoding implicitly
  // and by counting leaf view transitions (must equal #views - 1).
  std::vector<PointRecord> points;
  for (uint32_t i = 1; i <= 1000; ++i) {
    PointRecord rec;
    rec.view_id = 21;
    rec.coords[0] = i;
    rec.agg = AggValue{1, 1};
    points.push_back(rec);
  }
  for (uint32_t y = 1; y <= 50; ++y) {
    for (uint32_t x = 1; x <= 50; ++x) {
      PointRecord rec;
      rec.view_id = 22;
      rec.coords[0] = x;
      rec.coords[1] = y;
      rec.agg = AggValue{1, 1};
      points.push_back(rec);
    }
  }
  auto arity = [](uint32_t view) -> uint8_t {
    return view == 21 ? 1 : 2;
  };
  ASSERT_OK_AND_ASSIGN(auto tree, Build(points, 2, arity));
  auto scanner = tree->ScanAll();
  uint32_t transitions = 0;
  uint32_t last_view = 0;
  while (true) {
    const PointRecord* rec = nullptr;
    ASSERT_OK(scanner.Next(&rec));
    if (rec == nullptr) break;
    if (rec->view_id != last_view && last_view != 0) ++transitions;
    last_view = rec->view_id;
  }
  EXPECT_EQ(transitions, 1u);
}

TEST_F(PackedRTreeTest, CompressionReducesFileSize) {
  // Arity-1 view in a 3-d tree: compressed leaves store 1 coord per entry.
  std::vector<PointRecord> points;
  for (uint32_t i = 1; i <= 100000; ++i) {
    PointRecord rec;
    rec.view_id = 1;
    rec.coords[0] = i;
    rec.agg = AggValue{1, 1};
    points.push_back(rec);
  }
  RTreeOptions compressed;
  compressed.compress_leaves = true;
  ASSERT_OK_AND_ASSIGN(
      auto small, Build(points, 3, [](uint32_t) { return 1; }, compressed));
  RTreeOptions uncompressed;
  uncompressed.compress_leaves = false;
  ASSERT_OK_AND_ASSIGN(auto big, Build(points, 3,
                                       [](uint32_t) { return 1; },
                                       uncompressed));
  EXPECT_LT(small->FileSizeBytes() * 3, big->FileSizeBytes() * 2)
      << "compressed: " << small->FileSizeBytes()
      << " uncompressed: " << big->FileSizeBytes();
  // Same answers either way.
  uint64_t a = 0, b = 0;
  ASSERT_OK(small->Search(Rect::Full(3), [&](const PointRecord&) { ++a; }));
  ASSERT_OK(big->Search(Rect::Full(3), [&](const PointRecord&) { ++b; }));
  EXPECT_EQ(a, b);
}

TEST_F(PackedRTreeTest, OpenReloadsMeta) {
  auto points = MakeGridPoints(2000);
  std::string path;
  uint64_t size;
  {
    ASSERT_OK_AND_ASSIGN(auto tree,
                         Build(points, 2, [](uint32_t) { return 2; }));
    path = tree->path();
    size = tree->FileSizeBytes();
  }
  ASSERT_OK_AND_ASSIGN(auto tree, PackedRTree::Open(path, pool_.get()));
  EXPECT_EQ(tree->num_points(), 2000u);
  EXPECT_EQ(tree->dims(), 2u);
  EXPECT_EQ(tree->FileSizeBytes(), size);
  uint64_t found = 0;
  ASSERT_OK(tree->Search(Rect::Full(2), [&](const PointRecord&) { ++found; }));
  EXPECT_EQ(found, 2000u);
}

TEST_F(PackedRTreeTest, LeafFillFactorRespected) {
  auto points = MakeGridPoints(10000);
  RTreeOptions half;
  half.leaf_fill = 0.5;
  ASSERT_OK_AND_ASSIGN(auto loose,
                       Build(points, 2, [](uint32_t) { return 2; }, half));
  ASSERT_OK_AND_ASSIGN(auto packed,
                       Build(points, 2, [](uint32_t) { return 2; }));
  EXPECT_GT(loose->num_leaf_pages(), packed->num_leaf_pages() * 3 / 2);
}

TEST_F(PackedRTreeTest, ZOrderPackedTreeAnswersCorrectly) {
  // Build the same points in Z-order (enforce_pack_order off); box queries
  // must still return exactly the brute-force answer.
  auto points = MakeGridPoints(5000);
  std::vector<PointRecord> z_points = points;
  std::sort(z_points.begin(), z_points.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return ZOrderCompare(a.coords, b.coords, 2) < 0;
            });
  RTreeOptions options;
  options.dims = 2;
  options.enforce_pack_order = false;
  VectorPointSource source(z_points);
  ASSERT_OK_AND_ASSIGN(
      auto tree, PackedRTree::Build(dir_ + "/z.ctr", options, pool_.get(),
                                    &source, [](uint32_t) { return 2; }));
  Rng rng(3);
  for (int q = 0; q < 25; ++q) {
    Rect query;
    Coord a = static_cast<Coord>(1 + rng.Uniform(5000));
    Coord b = static_cast<Coord>(1 + rng.Uniform(5000));
    query.lo[0] = std::min(a, b);
    query.hi[0] = std::max(a, b);
    query.lo[1] = static_cast<Coord>(1 + rng.Uniform(50));
    query.hi[1] = query.lo[1] + 20;
    uint64_t expected = 0;
    for (const PointRecord& rec : points) {
      expected += query.ContainsPoint(rec.coords, 2);
    }
    uint64_t found = 0;
    ASSERT_OK(tree->Search(query, [&](const PointRecord&) { ++found; }));
    ASSERT_EQ(found, expected);
  }
}

TEST_F(PackedRTreeTest, ValidatePassesOnHealthyTrees) {
  auto points = MakeGridPoints(20000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  ASSERT_OK(tree->Validate());
  // Multi-view tree validates too.
  std::vector<PointRecord> multi;
  PointRecord origin;
  origin.view_id = 5;
  multi.push_back(origin);
  for (uint32_t i = 1; i <= 300; ++i) {
    PointRecord rec;
    rec.view_id = 6;
    rec.coords[0] = i;
    multi.push_back(rec);
  }
  ASSERT_OK_AND_ASSIGN(auto multi_tree,
                       Build(multi, 3, [](uint32_t view) {
                         return static_cast<uint8_t>(view - 5);
                       }));
  ASSERT_OK(multi_tree->Validate());
  // Empty tree validates.
  ASSERT_OK_AND_ASSIGN(auto empty, Build({}, 2, [](uint32_t) { return 2; }));
  ASSERT_OK(empty->Validate());
}

TEST_F(PackedRTreeTest, ValidateDetectsCorruptedMeta) {
  auto points = MakeGridPoints(1000);
  std::string path;
  {
    ASSERT_OK_AND_ASSIGN(auto tree,
                         Build(points, 2, [](uint32_t) { return 2; }));
    path = tree->path();
  }
  // Corrupt the point count in the metadata page.
  {
    ASSERT_OK_AND_ASSIGN(auto file, PageManager::Open(path));
    Page meta;
    ASSERT_OK(file->ReadPage(0, &meta));
    EncodeFixed64(meta.data + 16, 999999);
    ASSERT_OK(file->WritePage(0, meta));
  }
  // Drop the checksum sidecar so the *structural* validator is what gets
  // exercised — with the sidecar present, verify-on-read catches the
  // tampering at Open before Validate ever runs (covered separately by the
  // integrity tests).
  ASSERT_OK(RemoveChecksumSidecar(path));
  ASSERT_OK_AND_ASSIGN(auto tree, PackedRTree::Open(path, pool_.get()));
  EXPECT_TRUE(tree->Validate().IsCorruption());
}

TEST_F(PackedRTreeTest, ValidateDetectsCorruptedLeaf) {
  auto points = MakeGridPoints(50000);
  std::string path;
  {
    ASSERT_OK_AND_ASSIGN(auto tree,
                         Build(points, 2, [](uint32_t) { return 2; }));
    path = tree->path();
  }
  // Smash a coordinate in the middle of a leaf page: either the MBR check
  // or the pack-order check must trip.
  {
    ASSERT_OK_AND_ASSIGN(auto file, PageManager::Open(path));
    Page page;
    const PageId victim = 40;
    ASSERT_OK(file->ReadPage(victim, &page));
    ASSERT_TRUE(RNodeIsLeaf(page.data));
    char* entry = page.data + kRNodeHeaderSize + 5 * RLeafEntryBytes(2);
    EncodeFixed32(entry, 0xFFFFFFF0u);
    ASSERT_OK(file->WritePage(victim, page));
  }
  // As above: remove the sidecar so structural validation, not
  // verify-on-read, detects the damage.
  ASSERT_OK(RemoveChecksumSidecar(path));
  ASSERT_OK_AND_ASSIGN(auto tree, PackedRTree::Open(path, pool_.get()));
  EXPECT_TRUE(tree->Validate().IsCorruption());
}

TEST_F(PackedRTreeTest, PointQueryFindsExactlyOne) {
  auto points = MakeGridPoints(5000);
  ASSERT_OK_AND_ASSIGN(auto tree,
                       Build(points, 2, [](uint32_t) { return 2; }));
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const PointRecord& target = points[rng.Uniform(points.size())];
    Rect q = Rect::FromPoint(target.coords, 2);
    uint64_t found = 0;
    AggValue agg;
    ASSERT_OK(tree->Search(q, [&](const PointRecord& rec) {
      ++found;
      agg = rec.agg;
    }));
    ASSERT_EQ(found, 1u);
    ASSERT_EQ(agg, target.agg);
  }
}

}  // namespace
}  // namespace cubetree
