// Unit tests for the fault-injection subsystem: registry, spec grammar,
// and the storage layer's reaction to injected errors (bounded retries on
// the read path, torn-write prefixes, throw-mode crashes).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstring>
#include <set>
#include <string>

#include "fault/fault_injector.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Instance().DisarmAll();
    PageManager::SetReadRetryPolicy(4, 0);
  }
};

uint64_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

TEST_F(FaultTest, RegistryHasAtLeastTwentyUniquePoints) {
  const auto& points = FaultInjector::RegisteredPoints();
  EXPECT_GE(points.size(), 20u);
  std::set<std::string> names;
  for (const auto& point : points) {
    EXPECT_NE(point.description[0], '\0') << point.name;
    EXPECT_TRUE(names.insert(point.name).second)
        << "duplicate failpoint " << point.name;
    EXPECT_TRUE(FaultInjector::IsRegistered(point.name));
  }
}

TEST_F(FaultTest, UnregisteredNamesAreRejected) {
  auto& injector = FaultInjector::Instance();
  EXPECT_FALSE(injector.Arm("no.such.point", "error").ok());
  EXPECT_FALSE(FaultInjector::IsRegistered("no.such.point"));
}

TEST_F(FaultTest, SpecGrammar) {
  auto& injector = FaultInjector::Instance();
  ASSERT_OK(injector.Arm("wal.force", "error"));
  ASSERT_OK(injector.Arm("wal.force", "error(2)"));
  ASSERT_OK(injector.Arm("wal.force", "crash@3"));
  ASSERT_OK(injector.Arm("wal.force", "torn(1)@2"));
  ASSERT_OK(injector.Arm("wal.force", "throw"));
  ASSERT_OK(injector.Arm("storage.page.read", "bitflip"));
  ASSERT_OK(injector.Arm("storage.page.read", "bitflip(1)@4"));
  ASSERT_OK(injector.Arm("storage.page.read", "corrupt_page"));
  ASSERT_OK(injector.Arm("storage.page.read", "corrupt_page(2)@3"));
  EXPECT_FALSE(injector.Arm("wal.force", "explode").ok());
  EXPECT_FALSE(injector.Arm("wal.force", "error(0x2)").ok());
  EXPECT_FALSE(injector.Arm("wal.force", "error@").ok());
  EXPECT_FALSE(injector.Arm("wal.force", "").ok());
  injector.DisarmAll();
  EXPECT_FALSE(FaultInjector::AnyArmed());
}

TEST_F(FaultTest, ParseAndArmConfigString) {
  auto& injector = FaultInjector::Instance();
  ASSERT_OK(injector.ParseAndArm(
      "wal.force=error(2);storage.page.read=torn@5"));
  EXPECT_TRUE(FaultInjector::AnyArmed());
  // Bad entries are rejected as a whole.
  EXPECT_FALSE(injector.ParseAndArm("wal.force=error;bogus").ok());
  EXPECT_FALSE(injector.ParseAndArm("no.such.point=error").ok());
}

TEST_F(FaultTest, TriggerOnHitAndMaxTriggers) {
  auto& injector = FaultInjector::Instance();
  FaultSpec spec;
  spec.action = FaultAction::kError;
  spec.trigger_on_hit = 2;
  spec.max_triggers = 2;
  const uint64_t base = injector.HitCount("wal.force");
  ASSERT_OK(injector.Arm("wal.force", spec));
  EXPECT_FALSE(injector.Check("wal.force").fail);  // hit 1: before trigger
  EXPECT_TRUE(injector.Check("wal.force").fail);   // hit 2: trigger 1
  EXPECT_TRUE(injector.Check("wal.force").fail);   // hit 3: trigger 2
  EXPECT_FALSE(injector.Check("wal.force").fail);  // exhausted
  EXPECT_EQ(injector.HitCount("wal.force"), base + 4);
}

TEST_F(FaultTest, CorruptionActionsReportThroughOutcomeNotStatus) {
  // bitflip / corrupt_page model SILENT corruption: the I/O "succeeds" (no
  // fail flag, OK status) and only the outcome flags tell the storage
  // layer to damage the freshly read bytes. Detection is the checksum
  // layer's job, not the injector's.
  auto& injector = FaultInjector::Instance();
  ASSERT_OK(injector.Arm("storage.page.read", "bitflip(1)"));
  FaultOutcome outcome = injector.Check("storage.page.read");
  EXPECT_TRUE(outcome.bitflip);
  EXPECT_FALSE(outcome.fail);
  EXPECT_FALSE(outcome.corrupt_page);
  EXPECT_OK(outcome.ToStatus());
  outcome = injector.Check("storage.page.read");  // (1): exhausted.
  EXPECT_FALSE(outcome.bitflip);

  ASSERT_OK(injector.Arm("storage.page.read", "corrupt_page(1)"));
  outcome = injector.Check("storage.page.read");
  EXPECT_TRUE(outcome.corrupt_page);
  EXPECT_FALSE(outcome.fail);
  EXPECT_OK(outcome.ToStatus());
}

TEST_F(FaultTest, InjectedErrorStatusNamesTheFailpoint) {
  auto& injector = FaultInjector::Instance();
  ASSERT_OK(injector.Arm("storage.page.sync", "error"));
  const std::string dir = MakeTestDir("fault_error");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Status status = pm->Sync();
  ASSERT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_NE(status.ToString().find("storage.page.sync"), std::string::npos)
      << status.ToString();
}

TEST_F(FaultTest, TransientReadErrorClearsViaRetry) {
  const std::string dir = MakeTestDir("fault_retry");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Page page;
  page.Zero();
  std::memcpy(page.data, "payload", 7);
  ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));

  PageManager::SetReadRetryPolicy(4, 0);
  // First two read attempts fail, the third succeeds — within the retry
  // budget, so the caller never sees the transient error.
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error(2)"));
  Page out;
  ASSERT_OK(pm->ReadPage(id, &out));
  EXPECT_EQ(std::memcmp(out.data, "payload", 7), 0);
}

TEST_F(FaultTest, PermanentReadErrorExhaustsRetries) {
  const std::string dir = MakeTestDir("fault_permanent");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Page page;
  page.Zero();
  ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));

  PageManager::SetReadRetryPolicy(3, 0);
  const uint64_t base =
      FaultInjector::Instance().HitCount("storage.page.read");
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.read", "error"));
  Page out;
  Status status = pm->ReadPage(id, &out);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  // One initial attempt plus two retries.
  EXPECT_EQ(FaultInjector::Instance().HitCount("storage.page.read"),
            base + 3);
}

TEST_F(FaultTest, TornWriteLeavesAPrefixOfThePage) {
  const std::string dir = MakeTestDir("fault_torn");
  const std::string path = dir + "/f.pg";
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(path));
  Page page;
  std::memset(page.data, 0x5A, kPageSize);
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.append", "torn"));
  auto appended = pm->AppendPage(page);
  ASSERT_FALSE(appended.ok());
  EXPECT_TRUE(appended.status().IsIOError());
  // A strict prefix of the page reached the file: longer than nothing,
  // shorter than a page.
  const uint64_t size = FileSize(path);
  EXPECT_GT(size, 0u);
  EXPECT_LT(size, kPageSize);
}

TEST_F(FaultTest, ThrowActionRaisesSimulatedCrash) {
  const std::string dir = MakeTestDir("fault_throw");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.sync", "throw"));
  bool caught = false;
  try {
    (void)pm->Sync();
  } catch (const SimulatedCrash& crash) {
    caught = true;
    EXPECT_EQ(crash.failpoint(), "storage.page.sync");
  }
  EXPECT_TRUE(caught);
}

TEST_F(FaultTest, DisarmStopsInjection) {
  const std::string dir = MakeTestDir("fault_disarm");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.sync", "error"));
  EXPECT_FALSE(pm->Sync().ok());
  FaultInjector::Instance().Disarm("storage.page.sync");
  EXPECT_OK(pm->Sync());
}

TEST_F(FaultTest, NothingArmedIsFree) {
  EXPECT_FALSE(FaultInjector::AnyArmed());
  const uint64_t base =
      FaultInjector::Instance().HitCount("storage.page.read");
  const std::string dir = MakeTestDir("fault_idle");
  ASSERT_OK_AND_ASSIGN(auto pm, PageManager::Create(dir + "/f.pg"));
  Page page;
  page.Zero();
  ASSERT_OK_AND_ASSIGN(PageId id, pm->AppendPage(page));
  Page out;
  ASSERT_OK(pm->ReadPage(id, &out));
  ASSERT_OK(pm->Sync());
  // Hit counters only advance while something is armed.
  EXPECT_EQ(FaultInjector::Instance().HitCount("storage.page.read"), base);
}

}  // namespace
}  // namespace cubetree
