// Tests for the durable structured query log (src/obs/query_log): record
// JSON round-trips and strict-parse rejection, size-based rotation with
// bounded retention, torn-final-line tolerance on read, the async
// writer's flush semantics, and drop accounting under multi-writer
// pressure (run under TSan to certify the never-blocks contract).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/query_log.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

using obs::ForEachLogLine;
using obs::JsonValue;
using obs::QueryLog;
using obs::QueryLogAttr;
using obs::QueryLogReadStats;
using obs::QueryLogRecord;
using obs::RotatingFile;

QueryLogRecord MakeRecord(uint64_t latency_us = 1000) {
  QueryLogRecord record;
  record.ts_us = 1700000000000000ull;
  record.outcome = "ok";
  record.route = "exact";
  record.view = "node(partkey,suppkey)";
  record.order = {"partkey", "suppkey"};
  QueryLogAttr attr;
  attr.name = "partkey";
  attr.domain = 200;
  attr.lo = 7;
  attr.hi = 7;
  attr.bound = true;
  attr.grouped = false;
  record.attrs.push_back(attr);
  attr = QueryLogAttr();
  attr.name = "suppkey";
  attr.domain = 10;
  attr.lo = 1;
  attr.hi = 10;
  attr.grouped = true;
  record.attrs.push_back(attr);
  record.latency_us = latency_us;
  record.admission_wait_us = 12;
  record.pages_read = 5;
  record.pool_hits = 3;
  record.points_examined = 40;
  record.rows = 10;
  record.trace_id = 99;
  return record;
}

// ---------------------------------------------------------------------------
// Record schema.

TEST(QueryLogRecordTest, JsonRoundTrip) {
  const QueryLogRecord record = MakeRecord();
  ASSERT_OK_AND_ASSIGN(QueryLogRecord back,
                       QueryLogRecord::FromJson(record.ToJson()));
  EXPECT_EQ(back.ts_us, record.ts_us);
  EXPECT_EQ(back.outcome, "ok");
  EXPECT_EQ(back.route, "exact");
  EXPECT_EQ(back.view, "node(partkey,suppkey)");
  EXPECT_EQ(back.order, record.order);
  ASSERT_EQ(back.attrs.size(), 2u);
  EXPECT_EQ(back.attrs[0].name, "partkey");
  EXPECT_EQ(back.attrs[0].domain, 200u);
  EXPECT_TRUE(back.attrs[0].bound);
  EXPECT_FALSE(back.attrs[0].grouped);
  EXPECT_EQ(back.attrs[1].lo, 1u);
  EXPECT_EQ(back.attrs[1].hi, 10u);
  EXPECT_TRUE(back.attrs[1].grouped);
  EXPECT_EQ(back.latency_us, record.latency_us);
  EXPECT_EQ(back.admission_wait_us, 12u);
  EXPECT_EQ(back.pages_read, 5u);
  EXPECT_EQ(back.pool_hits, 3u);
  EXPECT_EQ(back.points_examined, 40u);
  EXPECT_EQ(back.rows, 10u);
  EXPECT_EQ(back.trace_id, 99u);
}

TEST(QueryLogRecordTest, FromJsonRejectsMissingAndMistypedFields) {
  JsonValue doc = MakeRecord().ToJson();
  // `ctstat check` relies on strict parsing: dropping a required member or
  // mistyping it must be an error, not a defaulted field.
  JsonValue no_outcome = doc;
  no_outcome.Set("outcome", JsonValue());  // null, wrong type
  EXPECT_FALSE(QueryLogRecord::FromJson(no_outcome).ok());

  JsonValue bad_version = doc;
  bad_version.Set("schema_version", JsonValue(static_cast<int64_t>(999)));
  EXPECT_FALSE(QueryLogRecord::FromJson(bad_version).ok());

  EXPECT_FALSE(QueryLogRecord::FromJson(JsonValue::MakeArray()).ok());
}

// ---------------------------------------------------------------------------
// Rotation and retention.

TEST(RotatingFileTest, RotatesAtMaxBytesAndBoundsRetention) {
  const std::string dir = MakeTestDir("query_log");
  const std::string path = dir + "/log.jsonl";
  RotatingFile::Options options;
  options.path = path;
  options.max_bytes = 256;
  options.max_segments = 3;
  RotatingFile file(options);
  // ~40 bytes per line, 64 lines ≈ 10 segments' worth: enough to rotate
  // past the retention bound several times over.
  const std::string line(39, 'x');
  for (int i = 0; i < 64; ++i) ASSERT_OK(file.Append(line));
  EXPECT_GT(file.rotations(), 3u);
  EXPECT_EQ(file.bytes_written(), 64u * 40u);

  const std::vector<std::string> segments =
      RotatingFile::Segments(path, options.max_segments);
  // At most max_segments rotated files plus the active one, oldest first.
  ASSERT_LE(segments.size(), 4u);
  ASSERT_GE(segments.size(), 2u);
  EXPECT_EQ(segments.back(), path);
  EXPECT_EQ(segments[segments.size() - 2], path + ".1");
  // Nothing beyond the retention bound survives on disk.
  EXPECT_FALSE(std::filesystem::exists(path + ".4"));
  // Every segment respects the size bound (the active one may be mid-fill).
  for (const std::string& segment : segments) {
    EXPECT_LE(std::filesystem::file_size(segment), options.max_bytes);
  }
  // All surviving lines are intact.
  uint64_t lines = 0;
  for (const std::string& segment : segments) {
    ASSERT_OK(ForEachLogLine(segment, [&](const std::string& got) {
      EXPECT_EQ(got, line);
      ++lines;
    }));
  }
  // At least the three retained full segments' worth (6 lines each).
  EXPECT_GE(lines, 18u);
}

// ---------------------------------------------------------------------------
// Torn-final-line tolerance.

TEST(QueryLogReadTest, TornFinalLineIsSkippedNotAnError) {
  const std::string dir = MakeTestDir("query_log");
  const std::string path = dir + "/torn.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("first\nsecond\n{\"truncated\": tr", f);  // Crash mid-append.
  ASSERT_EQ(std::fclose(f), 0);

  std::vector<std::string> lines;
  QueryLogReadStats stats;
  ASSERT_OK(ForEachLogLine(
      path, [&](const std::string& line) { lines.push_back(line); }, &stats));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(stats.lines, 2u);
  EXPECT_EQ(stats.torn, 1u);
}

TEST(QueryLogReadTest, MissingFileIsAnError) {
  QueryLogReadStats stats;
  Status s = ForEachLogLine("/nonexistent/query.jsonl",
                            [](const std::string&) {}, &stats);
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// Async writer.

TEST(QueryLogTest, FlushMakesAppendedRecordsDurable) {
  const std::string dir = MakeTestDir("query_log");
  QueryLog::Options options;
  options.path = dir + "/queries.jsonl";
  QueryLog log(options);
  for (int i = 0; i < 100; ++i) log.Append(MakeRecord(1000 + i));
  log.Flush();
  EXPECT_EQ(log.dropped(), 0u);

  uint64_t lines = 0;
  ASSERT_OK(ForEachLogLine(options.path, [&](const std::string& line) {
    ASSERT_OK_AND_ASSIGN(JsonValue doc, JsonValue::Parse(line));
    ASSERT_OK_AND_ASSIGN(QueryLogRecord record, QueryLogRecord::FromJson(doc));
    EXPECT_EQ(record.outcome, "ok");
    ++lines;
  }));
  EXPECT_EQ(lines, 100u);
}

TEST(QueryLogTest, DestructorDrainsQueue) {
  const std::string dir = MakeTestDir("query_log");
  const std::string path = dir + "/drain.jsonl";
  {
    QueryLog::Options options;
    options.path = path;
    QueryLog log(options);
    for (int i = 0; i < 50; ++i) log.Append(MakeRecord());
    // No Flush: destruction must drain.
  }
  uint64_t lines = 0;
  ASSERT_OK(ForEachLogLine(path, [&](const std::string&) { ++lines; }));
  EXPECT_EQ(lines, 50u);
}

// Many writers race a deliberately tiny queue: every record must be
// accounted for as either a durable line or a counted drop — never lost,
// never double-counted. TSan certifies Append never touches the file.
TEST(QueryLogTest, MultiWriterDropAccountingUnderPressure) {
  const std::string dir = MakeTestDir("query_log");
  QueryLog::Options options;
  options.path = dir + "/pressure.jsonl";
  options.queue_capacity = 16;  // Force drops.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  uint64_t dropped = 0;
  {
    QueryLog log(options);
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&log] {
        for (int i = 0; i < kPerThread; ++i) log.Append(MakeRecord());
      });
    }
    for (std::thread& w : writers) w.join();
    log.Flush();
    dropped = log.dropped();
  }
  uint64_t lines = 0;
  for (const std::string& segment : QueryLog::Segments(options.path)) {
    ASSERT_OK(ForEachLogLine(segment, [&](const std::string& line) {
      ASSERT_OK_AND_ASSIGN(JsonValue doc, JsonValue::Parse(line));
      EXPECT_OK(QueryLogRecord::FromJson(doc).status());
      ++lines;
    }));
  }
  EXPECT_EQ(lines + dropped,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(lines, 0u);
}

TEST(QueryLogTest, SegmentsListsRotatedLogOldestFirst) {
  const std::string dir = MakeTestDir("query_log");
  QueryLog::Options options;
  options.path = dir + "/rotate.jsonl";
  options.max_bytes = 2048;  // A record is ~450 bytes: rotates quickly.
  options.max_segments = 2;
  {
    QueryLog log(options);
    for (int i = 0; i < 64; ++i) log.Append(MakeRecord());
    log.Flush();
  }
  const std::vector<std::string> segments = QueryLog::Segments(options.path);
  ASSERT_GE(segments.size(), 2u);
  ASSERT_LE(segments.size(), 3u);  // max_segments rotated + active.
  EXPECT_EQ(segments.back(), options.path);
  // Records in rotated segments still parse.
  uint64_t lines = 0;
  for (const std::string& segment : segments) {
    ASSERT_OK(ForEachLogLine(segment, [&](const std::string& line) {
      ASSERT_OK_AND_ASSIGN(JsonValue doc, JsonValue::Parse(line));
      EXPECT_OK(QueryLogRecord::FromJson(doc).status());
      ++lines;
    }));
  }
  EXPECT_GT(lines, 4u);
}

TEST(QueryLogTest, DefaultIsNullWithoutEnv) {
  // The tier-1 suite runs without CUBETREE_QUERY_LOG, so the disabled
  // fast path — a null Default() — is what every engine query takes.
  if (std::getenv("CUBETREE_QUERY_LOG") == nullptr) {
    EXPECT_EQ(QueryLog::Default(), nullptr);
  }
  QueryLog::Options options;
  options.path = MakeTestDir("query_log") + "/override.jsonl";
  QueryLog log(options);
  QueryLog::SetDefaultForTest(&log);
  EXPECT_EQ(QueryLog::Default(), &log);
  QueryLog::SetDefaultForTest(nullptr);
}

}  // namespace
}  // namespace cubetree
