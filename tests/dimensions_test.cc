#include <gtest/gtest.h>

#include "engine/dimensions.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

class DimensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("dims");
    tpcd::TpcdOptions options;
    options.scale_factor = 0.001;
    generator_ = std::make_unique<tpcd::Generator>(options);
    pool_ = std::make_unique<BufferPool>(256);
    auto result = DimensionTables::Load(dir_, *generator_, pool_.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    tables_ = std::move(result).value();
  }

  std::string dir_;
  std::unique_ptr<tpcd::Generator> generator_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<DimensionTables> tables_;
};

TEST_F(DimensionsTest, RowCountsMatchGenerator) {
  EXPECT_EQ(tables_->part_table()->num_rows(), generator_->sizes().parts);
  EXPECT_EQ(tables_->supplier_table()->num_rows(),
            generator_->sizes().suppliers);
  EXPECT_EQ(tables_->customer_table()->num_rows(),
            generator_->sizes().customers);
  EXPECT_GT(tables_->TotalBytes(), 0u);
}

TEST_F(DimensionsTest, LookupsMatchGeneratorRows) {
  for (uint32_t key : {1u, 2u, generator_->sizes().parts / 2,
                       generator_->sizes().parts}) {
    ASSERT_OK_AND_ASSIGN(tpcd::PartRow row, tables_->GetPart(key));
    const tpcd::PartRow expected = generator_->MakePart(key);
    EXPECT_EQ(row.partkey, key);
    EXPECT_EQ(row.name, expected.name);
    EXPECT_EQ(row.brand, expected.brand);
    EXPECT_EQ(row.type, expected.type);
    EXPECT_EQ(row.container, expected.container);
  }
  ASSERT_OK_AND_ASSIGN(tpcd::SupplierRow supplier, tables_->GetSupplier(3));
  EXPECT_EQ(supplier.phone, generator_->MakeSupplier(3).phone);
  ASSERT_OK_AND_ASSIGN(tpcd::CustomerRow customer, tables_->GetCustomer(9));
  EXPECT_EQ(customer.name, generator_->MakeCustomer(9).name);
}

TEST_F(DimensionsTest, OutOfRangeKeysFail) {
  EXPECT_TRUE(tables_->GetPart(0).status().IsNotFound());
  EXPECT_TRUE(
      tables_->GetPart(generator_->sizes().parts + 1).status().IsNotFound());
  EXPECT_TRUE(tables_->GetCustomer(0).status().IsNotFound());
}

TEST_F(DimensionsTest, TimeHierarchyConsistent) {
  EXPECT_EQ(tables_->time_table()->num_rows(), tpcd::kNumTimekeys);
  ASSERT_OK_AND_ASSIGN(tpcd::TimeRow first, tables_->GetTime(1));
  EXPECT_EQ(first.day, 1u);
  EXPECT_EQ(first.month, 1u);
  EXPECT_EQ(first.year, 1u);
  ASSERT_OK_AND_ASSIGN(tpcd::TimeRow last,
                       tables_->GetTime(tpcd::kNumTimekeys));
  EXPECT_EQ(last.day, tpcd::kDaysPerMonth);
  EXPECT_EQ(last.month, tpcd::kMonthsPerYear);
  EXPECT_EQ(last.year, tpcd::kNumYears);
  // Day 31 of the warehouse = day 1 of month 2.
  ASSERT_OK_AND_ASSIGN(tpcd::TimeRow rollover,
                       tables_->GetTime(tpcd::kDaysPerMonth + 1));
  EXPECT_EQ(rollover.day, 1u);
  EXPECT_EQ(rollover.month, 2u);
  // Facts' month/year attributes must be derivable from a timekey.
  for (uint32_t key : {1u, 359u, 360u, 361u, 2000u}) {
    const tpcd::TimeRow row = tpcd::Generator::MakeTime(key);
    EXPECT_EQ(tpcd::Generator::MonthOfTime(key), row.month);
    EXPECT_EQ(tpcd::Generator::YearOfTime(key), row.year);
    EXPECT_EQ((row.year - 1) * 360u + (row.month - 1) * 30u + row.day, key);
  }
}

TEST_F(DimensionsTest, OrdinalAddressing) {
  HeapTable* part = tables_->part_table();
  const uint32_t per_page = part->rows_per_page();
  EXPECT_GT(per_page, 0u);
  // Ordinal addressing matches the iterator's RowIds.
  HeapTable::Iterator it = part->Scan();
  const char* row = nullptr;
  uint64_t ordinal = 0;
  while (true) {
    ASSERT_OK(it.Next(&row));
    if (row == nullptr) break;
    ASSERT_EQ(part->OrdinalToRowId(ordinal), it.current_rid()) << ordinal;
    ++ordinal;
  }
  EXPECT_EQ(ordinal, part->num_rows());
}

}  // namespace
}  // namespace cubetree
