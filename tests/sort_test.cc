#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/coding.h"
#include "common/memory_budget.h"
#include "common/rng.h"
#include "fault/fault_injector.h"
#include "sort/external_sorter.h"
#include "sort/loser_tree.h"
#include "sort/spool.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(LoserTreeTest, SinglePlayer) {
  LoserTree tree(1, [](size_t, size_t) { return false; });
  EXPECT_EQ(tree.Winner(), 0u);
}

TEST(LoserTreeTest, MergesKSortedStreams) {
  // Each player holds a sorted vector with a cursor.
  const std::vector<std::vector<int>> streams = {
      {1, 4, 7, 10}, {2, 5, 8}, {3, 6, 9, 11, 12}, {}, {0}};
  std::vector<size_t> cursors(streams.size(), 0);
  auto value = [&](size_t p) {
    return cursors[p] < streams[p].size()
               ? streams[p][cursors[p]]
               : std::numeric_limits<int>::max();
  };
  LoserTree tree(streams.size(),
                 [&](size_t a, size_t b) { return value(a) < value(b); });
  std::vector<int> merged;
  while (true) {
    const size_t w = tree.Winner();
    if (value(w) == std::numeric_limits<int>::max()) break;
    merged.push_back(value(w));
    ++cursors[w];
    tree.Replay();
  }
  const std::vector<int> expected = {0, 1, 2, 3, 4,  5,  6,
                                     7, 8, 9, 10, 11, 12};
  EXPECT_EQ(merged, expected);
}

TEST(LoserTreeTest, RandomizedAgainstStdSort) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    const size_t k = 1 + rng.Uniform(9);
    std::vector<std::vector<uint64_t>> streams(k);
    std::vector<uint64_t> all;
    for (auto& s : streams) {
      const size_t n = rng.Uniform(50);
      for (size_t i = 0; i < n; ++i) s.push_back(rng.Uniform(1000));
      std::sort(s.begin(), s.end());
      all.insert(all.end(), s.begin(), s.end());
    }
    std::sort(all.begin(), all.end());

    std::vector<size_t> cursors(k, 0);
    auto done = [&](size_t p) { return cursors[p] >= streams[p].size(); };
    LoserTree tree(k, [&](size_t a, size_t b) {
      if (done(a)) return false;
      if (done(b)) return true;
      return streams[a][cursors[a]] < streams[b][cursors[b]];
    });
    std::vector<uint64_t> merged;
    while (true) {
      const size_t w = tree.Winner();
      if (done(w)) break;
      merged.push_back(streams[w][cursors[w]]);
      ++cursors[w];
      tree.Replay();
    }
    ASSERT_EQ(merged, all) << "round " << round << " k=" << k;
  }
}

ExternalSorter::Options SmallSorterOptions(const std::string& dir,
                                           size_t record_size,
                                           size_t budget) {
  ExternalSorter::Options options;
  options.record_size = record_size;
  options.memory_budget_bytes = budget;
  options.temp_dir = dir;
  return options;
}

RecordComparator U32Less() {
  return [](const char* a, const char* b) {
    return DecodeFixed32(a) < DecodeFixed32(b);
  };
}

std::vector<uint32_t> DrainU32(RecordStream* stream) {
  std::vector<uint32_t> out;
  const char* rec = nullptr;
  while (true) {
    Status st = stream->Next(&rec);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (rec == nullptr) break;
    out.push_back(DecodeFixed32(rec));
  }
  return out;
}

TEST(ExternalSorterTest, InMemorySort) {
  const std::string dir = MakeTestDir("sort_mem");
  ExternalSorter sorter(SmallSorterOptions(dir, 4, 1 << 20), U32Less());
  Rng rng(5);
  std::vector<uint32_t> values;
  char buf[4];
  for (int i = 0; i < 1000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Uniform(10000));
    values.push_back(v);
    EncodeFixed32(buf, v);
    ASSERT_OK(sorter.Add(buf));
  }
  EXPECT_EQ(sorter.num_runs(), 0u);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(DrainU32(stream.get()), values);
}

TEST(ExternalSorterTest, SpillsAndMergesRuns) {
  const std::string dir = MakeTestDir("sort_spill");
  // Tiny budget: 100 records per run.
  ExternalSorter sorter(SmallSorterOptions(dir, 4, 400), U32Less());
  Rng rng(6);
  std::vector<uint32_t> values;
  char buf[4];
  for (int i = 0; i < 5000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 30));
    values.push_back(v);
    EncodeFixed32(buf, v);
    ASSERT_OK(sorter.Add(buf));
  }
  EXPECT_GT(sorter.num_runs(), 10u);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(DrainU32(stream.get()), values);
}

// Regression for the sorter teardown path: spilled run files must be
// removed when the sorter dies, including when it dies *without* Finish()
// (an abandoned sort — e.g. its refresh failed partway). The destructor
// used to drop the removal Status blind; it now logs, and this pins the
// success path: nothing left behind in the temp dir.
TEST(ExternalSorterTest, DestructorRemovesSpilledRunFiles) {
  const std::string dir = MakeTestDir("sort_dtor_cleanup");
  {
    ExternalSorter sorter(SmallSorterOptions(dir, 4, 400), U32Less());
    Rng rng(11);
    char buf[4];
    for (int i = 0; i < 2000; ++i) {
      EncodeFixed32(buf, static_cast<uint32_t>(rng.Uniform(1u << 30)));
      ASSERT_OK(sorter.Add(buf));
    }
    ASSERT_GT(sorter.num_runs(), 0u);  // The abandoned sort did spill.
  }
  size_t leftover = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++leftover;
    ADD_FAILURE() << "leaked run file: " << entry.path();
  }
  EXPECT_EQ(leftover, 0u);
}

TEST(ExternalSorterTest, SpillFailureLeavesNoPartialRunFile) {
  const std::string dir = MakeTestDir("sort_spill_enospc");
  {
    ExternalSorter sorter(SmallSorterOptions(dir, 4, 400), U32Less());
    // Fail the page append inside the first spill. The run is registered
    // for cleanup only after a complete write, so the partial file used to
    // be invisible even to the destructor's leak sweep; the error path
    // must delete it eagerly and surface the typed disk-full status.
    ASSERT_OK(
        FaultInjector::Instance().Arm("storage.page.append", "enospc"));
    Rng rng(7);
    char buf[4];
    Status status = Status::OK();
    for (int i = 0; i < 2000 && status.ok(); ++i) {
      EncodeFixed32(buf, static_cast<uint32_t>(rng.Uniform(1u << 30)));
      status = sorter.Add(buf);
    }
    EXPECT_TRUE(status.IsStorageFull()) << status.ToString();
    FaultInjector::Instance().DisarmAll();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ADD_FAILURE() << "leaked run file: " << entry.path();
  }
}

TEST(ExternalSorterTest, MergeFailureKeepsInputRunsAndNoPartialOutput) {
  const std::string dir = MakeTestDir("sort_merge_enospc");
  {
    ExternalSorter::Options options = SmallSorterOptions(dir, 4, 400);
    options.max_merge_fanin = 2;  // Merges kick in while adding.
    ExternalSorter sorter(options, U32Less());
    // Each 100-record run spills as one page, and the fourth spill
    // triggers ReduceRuns, whose merged output is the fifth page append:
    // let the spills succeed and fail the merge output's first page. The
    // partial merged file must be deleted while the input runs survive
    // registered for the destructor's cleanup.
    ASSERT_OK(
        FaultInjector::Instance().Arm("storage.page.append", "enospc@5"));
    Rng rng(13);
    char buf[4];
    Status status = Status::OK();
    for (int i = 0; i < 4000 && status.ok(); ++i) {
      EncodeFixed32(buf, static_cast<uint32_t>(rng.Uniform(1u << 30)));
      status = sorter.Add(buf);
    }
    EXPECT_TRUE(status.IsStorageFull()) << status.ToString();
    FaultInjector::Instance().DisarmAll();
  }
  // The destructor removed the registered input runs; nothing — neither
  // they nor a partial merge output — may remain.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ADD_FAILURE() << "leaked run file: " << entry.path();
  }
}

TEST(ExternalSorterTest, DuplicateKeysSurvive) {
  const std::string dir = MakeTestDir("sort_dup");
  ExternalSorter sorter(SmallSorterOptions(dir, 4, 64), U32Less());
  char buf[4];
  for (int i = 0; i < 300; ++i) {
    EncodeFixed32(buf, static_cast<uint32_t>(i % 3));
    ASSERT_OK(sorter.Add(buf));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::vector<uint32_t> out = DrainU32(stream.get());
  ASSERT_EQ(out.size(), 300u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::count(out.begin(), out.end(), 0u), 100);
}

TEST(ExternalSorterTest, EmptyInput) {
  const std::string dir = MakeTestDir("sort_empty");
  ExternalSorter sorter(SmallSorterOptions(dir, 8, 1024), U32Less());
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  const char* rec = nullptr;
  ASSERT_OK(stream->Next(&rec));
  EXPECT_EQ(rec, nullptr);
}

TEST(ExternalSorterTest, WideRecordsSortedByPrefixKey) {
  const std::string dir = MakeTestDir("sort_wide");
  const size_t record_size = 64;
  ExternalSorter sorter(SmallSorterOptions(dir, record_size, 1024),
                        U32Less());
  std::vector<char> rec(record_size, 0);
  for (int i = 99; i >= 0; --i) {
    EncodeFixed32(rec.data(), static_cast<uint32_t>(i));
    rec[10] = static_cast<char>('A' + (i % 26));  // Payload rides along.
    ASSERT_OK(sorter.Add(rec.data()));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  const char* out = nullptr;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(stream->Next(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(DecodeFixed32(out), static_cast<uint32_t>(i));
    EXPECT_EQ(out[10], static_cast<char>('A' + (i % 26)));
  }
  ASSERT_OK(stream->Next(&out));
  EXPECT_EQ(out, nullptr);
}

TEST(ExternalSorterTest, AddAfterFinishFails) {
  const std::string dir = MakeTestDir("sort_after");
  ExternalSorter sorter(SmallSorterOptions(dir, 4, 1024), U32Less());
  char buf[4] = {0};
  ASSERT_OK(sorter.Add(buf));
  ASSERT_OK(sorter.Finish().status());
  EXPECT_FALSE(sorter.Add(buf).ok());
}

// Regression: record_size == 0 or > kPageSize used to make the records-
// per-page division in SpillRun/RunReader come out as 0, looping forever
// (spill) or overrunning the page buffer (read). The constructor now
// latches InvalidArgument, surfaced by the first Add()/Finish().
TEST(ExternalSorterTest, RejectsRecordLargerThanPage) {
  const std::string dir = MakeTestDir("sort_oversize");
  // Tiny budget so a working sorter would be forced to spill — the exact
  // configuration that used to hang.
  ExternalSorter sorter(SmallSorterOptions(dir, kPageSize + 1, 64),
                        U32Less());
  std::vector<char> record(kPageSize + 1, 0);
  const Status add = sorter.Add(record.data());
  EXPECT_TRUE(add.IsInvalidArgument()) << add.ToString();
  const Status finish = sorter.Finish().status();
  EXPECT_TRUE(finish.IsInvalidArgument()) << finish.ToString();
}

TEST(ExternalSorterTest, RejectsZeroRecordSize) {
  const std::string dir = MakeTestDir("sort_zerosize");
  ExternalSorter sorter(SmallSorterOptions(dir, 0, 1024), U32Less());
  char buf[4] = {0};
  EXPECT_TRUE(sorter.Add(buf).IsInvalidArgument());
  EXPECT_TRUE(sorter.Finish().status().IsInvalidArgument());
}

TEST(ExternalSorterTest, PageSizedRecordStillSorts) {
  // The guard's boundary: exactly one record per page must keep working.
  const std::string dir = MakeTestDir("sort_pagesize");
  ExternalSorter sorter(SmallSorterOptions(dir, kPageSize, 2 * kPageSize),
                        U32Less());
  std::vector<char> record(kPageSize, 0);
  std::vector<uint32_t> values = {7, 3, 9, 1, 5};
  for (uint32_t v : values) {
    EncodeFixed32(record.data(), v);
    ASSERT_OK(sorter.Add(record.data()));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::vector<uint32_t> drained;
  const char* rec = nullptr;
  while (true) {
    ASSERT_OK(stream->Next(&rec));
    if (rec == nullptr) break;
    drained.push_back(DecodeFixed32(rec));
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(drained, values);
}

TEST(ExternalSorterTest, RunFileIoIsSequential) {
  const std::string dir = MakeTestDir("sort_io");
  auto stats = std::make_shared<IoStats>();
  ExternalSorter::Options options = SmallSorterOptions(dir, 4, 400);
  options.io_stats = stats;
  ExternalSorter sorter(options, U32Less());
  char buf[4];
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    EncodeFixed32(buf, static_cast<uint32_t>(rng.Next()));
    ASSERT_OK(sorter.Add(buf));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  DrainU32(stream.get());
  EXPECT_GT(stats->sequential_writes, 0u);
  EXPECT_EQ(stats->random_writes, 0u);
  // Each run is read front to back; only the first page of each run is a
  // "random" seek.
  EXPECT_EQ(stats->random_reads, sorter.num_runs());
}

TEST(ExternalSorterTest, MultiPassMergeWithTinyFanin) {
  const std::string dir = MakeTestDir("sort_multipass");
  ExternalSorter::Options options = SmallSorterOptions(dir, 4, 4 * 64);
  options.max_merge_fanin = 3;  // Forces several intermediate passes.
  ExternalSorter sorter(options, U32Less());
  Rng rng(41);
  std::vector<uint32_t> values;
  char buf[4];
  for (int i = 0; i < 20000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 28));
    values.push_back(v);
    EncodeFixed32(buf, v);
    ASSERT_OK(sorter.Add(buf));
  }
  // 20000/64 = ~312 raw runs, reduced during Add to stay under 2*fanin.
  EXPECT_LE(sorter.num_runs(), 6u);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::sort(values.begin(), values.end());
  EXPECT_EQ(DrainU32(stream.get()), values);
}

TEST(ExternalSorterTest, MultiPassKeepsDuplicatesAndPayloads) {
  const std::string dir = MakeTestDir("sort_multipass_dup");
  ExternalSorter::Options options = SmallSorterOptions(dir, 8, 8 * 64);
  options.max_merge_fanin = 2;
  ExternalSorter sorter(options, U32Less());
  char buf[8];
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    EncodeFixed32(buf, static_cast<uint32_t>(i % 100));
    EncodeFixed32(buf + 4, static_cast<uint32_t>(i));
    ASSERT_OK(sorter.Add(buf));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  const char* rec = nullptr;
  int count = 0;
  uint64_t payload_sum = 0;
  uint32_t prev = 0;
  while (true) {
    ASSERT_OK(stream->Next(&rec));
    if (rec == nullptr) break;
    const uint32_t key = DecodeFixed32(rec);
    ASSERT_GE(key, prev);
    prev = key;
    payload_sum += DecodeFixed32(rec + 4);
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_EQ(payload_sum, static_cast<uint64_t>(n) * (n - 1) / 2);
}

// Background run generation (spill_threads > 1) must produce exactly the
// output of the synchronous path: same records, same order, no leaked run
// files, and every replacement-buffer reservation returned to the process
// budget. The budget is large enough that every TryReserve succeeds, so
// the spills genuinely run on worker threads.
TEST(ExternalSorterTest, BackgroundSpillsProduceSameSortedOutput) {
  const std::string dir = MakeTestDir("sort_bg_spill");
  MemoryBudget budget(1u << 20);
  {
    ExternalSorter::Options options = SmallSorterOptions(dir, 4, 400);
    options.process_budget = &budget;
    options.spill_threads = 3;
    options.merge_read_ahead = true;
    ExternalSorter sorter(options, U32Less());
    Rng rng(29);
    std::vector<uint32_t> values;
    char buf[4];
    for (int i = 0; i < 5000; ++i) {
      const uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 30));
      values.push_back(v);
      EncodeFixed32(buf, v);
      ASSERT_OK(sorter.Add(buf));
    }
    EXPECT_GT(sorter.num_runs(), 10u);
    ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
    std::sort(values.begin(), values.end());
    EXPECT_EQ(DrainU32(stream.get()), values);
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ADD_FAILURE() << "leaked run file: " << entry.path();
  }
  EXPECT_EQ(budget.used(), 0u);
}

// A disk-full failure inside a *background* spill must still surface as a
// typed StorageFull status (on a later Add or at Finish — never swallowed),
// delete its partial run file eagerly, and leave the temp dir empty after
// the destructor's sweep of the successful runs.
TEST(ExternalSorterTest, BackgroundSpillFailureSurfacesTypedStatus) {
  const std::string dir = MakeTestDir("sort_bg_spill_enospc");
  MemoryBudget budget(1u << 20);
  {
    ExternalSorter::Options options = SmallSorterOptions(dir, 4, 400);
    options.process_budget = &budget;
    options.spill_threads = 3;
    ExternalSorter sorter(options, U32Less());
    ASSERT_OK(
        FaultInjector::Instance().Arm("storage.page.append", "enospc"));
    Rng rng(31);
    char buf[4];
    Status status = Status::OK();
    for (int i = 0; i < 5000 && status.ok(); ++i) {
      EncodeFixed32(buf, static_cast<uint32_t>(rng.Uniform(1u << 30)));
      status = sorter.Add(buf);
    }
    if (status.ok()) {
      // Every Add raced ahead of the worker's error latch; the join point
      // in Finish must still report it.
      status = sorter.Finish().status();
    }
    EXPECT_TRUE(status.IsStorageFull()) << status.ToString();
    FaultInjector::Instance().DisarmAll();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ADD_FAILURE() << "leaked run file: " << entry.path();
  }
  EXPECT_EQ(budget.used(), 0u);
}

TEST(RecordSpoolTest, AppendSealRead) {
  const std::string dir = MakeTestDir("spool_basic");
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 4));
  char buf[4];
  for (uint32_t i = 0; i < 5000; ++i) {
    EncodeFixed32(buf, i);
    ASSERT_OK(spool->Append(buf));
  }
  ASSERT_OK(spool->Seal());
  EXPECT_EQ(spool->num_records(), 5000u);
  ASSERT_OK_AND_ASSIGN(auto reader, spool->NewReader());
  std::vector<uint32_t> out = DrainU32(reader.get());
  ASSERT_EQ(out.size(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) EXPECT_EQ(out[i], i);
}

TEST(RecordSpoolTest, MultipleReaders) {
  const std::string dir = MakeTestDir("spool_multi");
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 4));
  char buf[4];
  for (uint32_t i = 0; i < 10; ++i) {
    EncodeFixed32(buf, i * 2);
    ASSERT_OK(spool->Append(buf));
  }
  ASSERT_OK(spool->Seal());
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(auto reader, spool->NewReader());
    EXPECT_EQ(DrainU32(reader.get()).size(), 10u);
  }
}

TEST(RecordSpoolTest, ReadBeforeSealFails) {
  const std::string dir = MakeTestDir("spool_seal");
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 4));
  EXPECT_FALSE(spool->NewReader().ok());
}

TEST(RecordSpoolTest, AppendAfterSealFails) {
  const std::string dir = MakeTestDir("spool_append");
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 4));
  ASSERT_OK(spool->Seal());
  char buf[4] = {0};
  EXPECT_FALSE(spool->Append(buf).ok());
}

TEST(RecordSpoolTest, EmptySpool) {
  const std::string dir = MakeTestDir("spool_empty");
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 16));
  ASSERT_OK(spool->Seal());
  ASSERT_OK_AND_ASSIGN(auto reader, spool->NewReader());
  const char* rec = nullptr;
  ASSERT_OK(reader->Next(&rec));
  EXPECT_EQ(rec, nullptr);
}

TEST(RecordSpoolTest, OddRecordSizeCrossingPages) {
  const std::string dir = MakeTestDir("spool_odd");
  // 28-byte records: 292 per page with slack.
  ASSERT_OK_AND_ASSIGN(auto spool, RecordSpool::Create(dir + "/s.spl", 28));
  std::vector<char> rec(28);
  for (uint32_t i = 0; i < 1000; ++i) {
    EncodeFixed32(rec.data(), i);
    EncodeFixed32(rec.data() + 24, i ^ 0xDEAD);
    ASSERT_OK(spool->Append(rec.data()));
  }
  ASSERT_OK(spool->Seal());
  ASSERT_OK_AND_ASSIGN(auto reader, spool->NewReader());
  const char* out = nullptr;
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_OK(reader->Next(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(DecodeFixed32(out), i);
    EXPECT_EQ(DecodeFixed32(out + 24), i ^ 0xDEAD);
  }
}

}  // namespace
}  // namespace cubetree
