#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/wal.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(WalTest, LogsAndForces) {
  const std::string dir = MakeTestDir("wal_basic");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(100, 'x');
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_EQ(wal->records(), 10u);
  EXPECT_EQ(wal->BytesLogged(), 10u * 104);
  // Nothing hit the disk yet (buffered within one page).
  EXPECT_EQ(stats->TotalWrites(), 0u);
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 1u);
  EXPECT_EQ(stats->sequential_writes, 1u);
}

TEST(WalTest, SpillsFullPages) {
  const std::string dir = MakeTestDir("wal_pages");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(1000, 'y');
  // 100 records x 1004 bytes > 12 pages.
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_GE(stats->sequential_writes, 12u);
  EXPECT_EQ(stats->random_writes, 0u);
}

TEST(WalTest, RecordsSpanPageBoundaries) {
  const std::string dir = MakeTestDir("wal_span");
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(dir + "/w.wal"));
  // A record larger than a page must be accepted and accounted fully.
  const std::string big(3 * kPageSize, 'z');
  ASSERT_OK(wal->LogRecord(big.data(), big.size()));
  ASSERT_OK(wal->Force());
  EXPECT_EQ(wal->BytesLogged(), big.size() + 4);
}

TEST(WalTest, ForceIsIdempotentWhenEmpty) {
  const std::string dir = MakeTestDir("wal_idem");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  ASSERT_OK(wal->Force());
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 0u);
}

}  // namespace
}  // namespace cubetree
