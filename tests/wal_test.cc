#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "engine/wal.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

constexpr size_t kHeader = WriteAheadLog::kRecordHeader;

TEST(WalTest, LogsAndForces) {
  const std::string dir = MakeTestDir("wal_basic");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(100, 'x');
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_EQ(wal->records(), 10u);
  EXPECT_EQ(wal->BytesLogged(), 10u * (100 + kHeader));
  // Nothing hit the disk yet (buffered within one page).
  EXPECT_EQ(stats->TotalWrites(), 0u);
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 1u);
  EXPECT_EQ(stats->sequential_writes, 1u);
}

TEST(WalTest, SpillsFullPages) {
  const std::string dir = MakeTestDir("wal_pages");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(1000, 'y');
  // 100 records x 1008 bytes > 12 pages.
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_GE(stats->sequential_writes, 12u);
  EXPECT_EQ(stats->random_writes, 0u);
}

TEST(WalTest, RecordsSpanPageBoundaries) {
  const std::string dir = MakeTestDir("wal_span");
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(dir + "/w.wal"));
  // A record larger than a page must be accepted and accounted fully.
  const std::string big(3 * kPageSize, 'z');
  ASSERT_OK(wal->LogRecord(big.data(), big.size()));
  ASSERT_OK(wal->Force());
  EXPECT_EQ(wal->BytesLogged(), big.size() + kHeader);
}

TEST(WalTest, ForceIsIdempotentWhenEmpty) {
  const std::string dir = MakeTestDir("wal_idem");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  ASSERT_OK(wal->Force());
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 0u);
}

TEST(WalTest, RejectsEmptyRecord) {
  const std::string dir = MakeTestDir("wal_empty");
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(dir + "/w.wal"));
  EXPECT_TRUE(wal->LogRecord("", 0).IsInvalidArgument());
}

TEST(WalTest, ReplayRoundTrip) {
  const std::string dir = MakeTestDir("wal_replay");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  std::vector<std::string> written;
  // Two commit batches with varied record sizes, including one spanning a
  // page boundary.
  for (size_t size : {1u, 100u, 4000u, 9000u}) {
    written.emplace_back(size, static_cast<char>('a' + written.size()));
    ASSERT_OK(wal->LogRecord(written.back().data(), written.back().size()));
  }
  ASSERT_OK(wal->Force());
  for (size_t size : {17u, 8200u}) {
    written.emplace_back(size, static_cast<char>('a' + written.size()));
    ASSERT_OK(wal->LogRecord(written.back().data(), written.back().size()));
  }
  ASSERT_OK(wal->Force());

  std::vector<std::string> replayed;
  ASSERT_OK_AND_ASSIGN(
      auto stats, WriteAheadLog::Replay(path, [&](const char* d, size_t n) {
        replayed.emplace_back(d, n);
      }));
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(stats.records, written.size());

  // Replay idempotence: a second pass observes the identical sequence.
  ASSERT_OK_AND_ASSIGN(auto again, WriteAheadLog::Replay(path));
  EXPECT_EQ(again.records, stats.records);
  EXPECT_EQ(again.payload_bytes, stats.payload_bytes);
  EXPECT_EQ(again.digest, stats.digest);
}

TEST(WalTest, ReplaySkipsUnforcedTail) {
  const std::string dir = MakeTestDir("wal_unforced");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  const std::string committed(64, 'c');
  ASSERT_OK(wal->LogRecord(committed.data(), committed.size()));
  ASSERT_OK(wal->Force());
  const std::string buffered(64, 'u');
  ASSERT_OK(wal->LogRecord(buffered.data(), buffered.size()));
  // No Force: the second record never reached the disk.
  ASSERT_OK_AND_ASSIGN(auto stats, WriteAheadLog::Replay(path));
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.payload_bytes, committed.size());
}

TEST(WalTest, ReplayDetectsBitFlip) {
  const std::string dir = MakeTestDir("wal_bitflip");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  const std::string record(200, 'r');
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  ASSERT_OK(wal->Force());
  wal.reset();
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    // Flip a payload byte in the middle of the third record.
    f.seekp(2 * (200 + kHeader) + kHeader + 100);
    char c;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(2 * (200 + kHeader) + kHeader + 100);
    c = static_cast<char>(c ^ 0x40);
    f.put(c);
  }
  auto result = WriteAheadLog::Replay(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

}  // namespace
}  // namespace cubetree
