#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "engine/wal.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

constexpr size_t kHeader = WriteAheadLog::kRecordHeader;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WritePrefix(const std::string& path, const std::string& bytes,
                 size_t count) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(count));
  ASSERT_TRUE(out.good()) << path;
}

TEST(WalTest, LogsAndForces) {
  const std::string dir = MakeTestDir("wal_basic");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(100, 'x');
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_EQ(wal->records(), 10u);
  EXPECT_EQ(wal->BytesLogged(), 10u * (100 + kHeader));
  // Nothing hit the disk yet (buffered within one page).
  EXPECT_EQ(stats->TotalWrites(), 0u);
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 1u);
  EXPECT_EQ(stats->sequential_writes, 1u);
}

TEST(WalTest, SpillsFullPages) {
  const std::string dir = MakeTestDir("wal_pages");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  const std::string record(1000, 'y');
  // 100 records x 1008 bytes > 12 pages.
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  EXPECT_GE(stats->sequential_writes, 12u);
  EXPECT_EQ(stats->random_writes, 0u);
}

TEST(WalTest, RecordsSpanPageBoundaries) {
  const std::string dir = MakeTestDir("wal_span");
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(dir + "/w.wal"));
  // A record larger than a page must be accepted and accounted fully.
  const std::string big(3 * kPageSize, 'z');
  ASSERT_OK(wal->LogRecord(big.data(), big.size()));
  ASSERT_OK(wal->Force());
  EXPECT_EQ(wal->BytesLogged(), big.size() + kHeader);
}

TEST(WalTest, ForceIsIdempotentWhenEmpty) {
  const std::string dir = MakeTestDir("wal_idem");
  auto stats = std::make_shared<IoStats>();
  ASSERT_OK_AND_ASSIGN(auto wal,
                       WriteAheadLog::Create(dir + "/w.wal", stats));
  ASSERT_OK(wal->Force());
  ASSERT_OK(wal->Force());
  EXPECT_EQ(stats->TotalWrites(), 0u);
}

TEST(WalTest, RejectsEmptyRecord) {
  const std::string dir = MakeTestDir("wal_empty");
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(dir + "/w.wal"));
  EXPECT_TRUE(wal->LogRecord("", 0).IsInvalidArgument());
}

TEST(WalTest, ReplayRoundTrip) {
  const std::string dir = MakeTestDir("wal_replay");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  std::vector<std::string> written;
  // Two commit batches with varied record sizes, including one spanning a
  // page boundary.
  for (size_t size : {1u, 100u, 4000u, 9000u}) {
    written.emplace_back(size, static_cast<char>('a' + written.size()));
    ASSERT_OK(wal->LogRecord(written.back().data(), written.back().size()));
  }
  ASSERT_OK(wal->Force());
  for (size_t size : {17u, 8200u}) {
    written.emplace_back(size, static_cast<char>('a' + written.size()));
    ASSERT_OK(wal->LogRecord(written.back().data(), written.back().size()));
  }
  ASSERT_OK(wal->Force());

  std::vector<std::string> replayed;
  ASSERT_OK_AND_ASSIGN(
      auto stats, WriteAheadLog::Replay(path, [&](const char* d, size_t n) {
        replayed.emplace_back(d, n);
      }));
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(stats.records, written.size());

  // Replay idempotence: a second pass observes the identical sequence.
  ASSERT_OK_AND_ASSIGN(auto again, WriteAheadLog::Replay(path));
  EXPECT_EQ(again.records, stats.records);
  EXPECT_EQ(again.payload_bytes, stats.payload_bytes);
  EXPECT_EQ(again.digest, stats.digest);
}

TEST(WalTest, ReplaySkipsUnforcedTail) {
  const std::string dir = MakeTestDir("wal_unforced");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  const std::string committed(64, 'c');
  ASSERT_OK(wal->LogRecord(committed.data(), committed.size()));
  ASSERT_OK(wal->Force());
  const std::string buffered(64, 'u');
  ASSERT_OK(wal->LogRecord(buffered.data(), buffered.size()));
  // No Force: the second record never reached the disk.
  ASSERT_OK_AND_ASSIGN(auto stats, WriteAheadLog::Replay(path));
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.payload_bytes, committed.size());
}

TEST(WalTest, ReplayDetectsBitFlip) {
  const std::string dir = MakeTestDir("wal_bitflip");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  const std::string record(200, 'r');
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  ASSERT_OK(wal->Force());
  wal.reset();
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    // Flip a payload byte in the middle of the third record.
    f.seekp(2 * (200 + kHeader) + kHeader + 100);
    char c;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(2 * (200 + kHeader) + kHeader + 100);
    c = static_cast<char>(c ^ 0x40);
    f.put(c);
  }
  auto result = WriteAheadLog::Replay(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(WalTest, TolerantReplayMatchesStrictOnCleanLogs) {
  const std::string dir = MakeTestDir("wal_tolerant_clean");
  const std::string path = dir + "/w.wal";
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  for (size_t size : {1u, 100u, 4000u, 9000u}) {
    const std::string record(size, 'q');
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  ASSERT_OK(wal->Force());
  wal.reset();
  ASSERT_OK_AND_ASSIGN(auto strict, WriteAheadLog::Replay(path));
  ASSERT_OK_AND_ASSIGN(auto tolerant, WriteAheadLog::ReplayTolerant(path));
  EXPECT_EQ(tolerant.records, strict.records);
  EXPECT_EQ(tolerant.payload_bytes, strict.payload_bytes);
  EXPECT_EQ(tolerant.digest, strict.digest);
  EXPECT_FALSE(tolerant.torn);
  EXPECT_EQ(tolerant.torn_bytes, 0u);
}

// Crash-mid-append sweep: cut the file at EVERY byte offset within the
// last record and assert tolerant replay recovers exactly the records
// before it — the longest valid prefix — and never surfaces a partial or
// corrupt record.
TEST(WalTest, TolerantReplayTruncationSweep) {
  const std::string dir = MakeTestDir("wal_sweep");
  const std::string path = dir + "/w.wal";
  const std::string cut_path = dir + "/cut.wal";
  std::vector<std::string> written;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
    for (size_t size : {100u, 200u, 300u, 500u}) {
      written.emplace_back(size,
                           static_cast<char>('a' + written.size()));
      ASSERT_OK(wal->LogRecord(written.back().data(),
                               written.back().size()));
    }
    ASSERT_OK(wal->Force());
  }
  // No record here is large enough to force header padding, so on-disk
  // offsets are just the running sum of header + payload.
  size_t last_start = 0;
  for (size_t i = 0; i + 1 < written.size(); ++i) {
    last_start += kHeader + written[i].size();
  }
  const size_t last_end = last_start + kHeader + written.back().size();
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), last_end);

  for (size_t cut = last_start; cut < last_end; ++cut) {
    WritePrefix(cut_path, bytes, cut);
    std::vector<std::string> replayed;
    auto result = WriteAheadLog::ReplayTolerant(
        cut_path,
        [&](const char* d, size_t n) { replayed.emplace_back(d, n); });
    ASSERT_TRUE(result.ok())
        << "cut at " << cut << ": " << result.status().ToString();
    ASSERT_EQ(result.value().records, written.size() - 1)
        << "cut at " << cut;
    for (size_t i = 0; i + 1 < written.size(); ++i) {
      ASSERT_EQ(replayed[i], written[i]) << "cut at " << cut;
    }
    // A cut inside the record body is reported as torn; a cut exactly at
    // the record start just looks like padding.
    if (result.value().torn) {
      EXPECT_EQ(result.value().torn_bytes, cut - last_start)
          << "cut at " << cut;
    }
  }
}

// Same sweep with the last record spanning multiple pages: cuts land both
// inside earlier whole pages and in the ragged tail.
TEST(WalTest, TolerantReplayTruncationSweepMultiPage) {
  const std::string dir = MakeTestDir("wal_sweep_multi");
  const std::string path = dir + "/w.wal";
  const std::string cut_path = dir + "/cut.wal";
  const std::string first(64, 'f');
  const std::string big(2 * kPageSize + 4000, 'g');
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
    ASSERT_OK(wal->LogRecord(first.data(), first.size()));
    ASSERT_OK(wal->LogRecord(big.data(), big.size()));
    ASSERT_OK(wal->Force());
  }
  const size_t last_start = kHeader + first.size();
  const size_t last_end = last_start + kHeader + big.size();
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), last_end);

  for (size_t cut = last_start; cut < last_end; ++cut) {
    WritePrefix(cut_path, bytes, cut);
    std::vector<std::string> replayed;
    auto result = WriteAheadLog::ReplayTolerant(
        cut_path,
        [&](const char* d, size_t n) { replayed.emplace_back(d, n); });
    ASSERT_TRUE(result.ok())
        << "cut at " << cut << ": " << result.status().ToString();
    ASSERT_EQ(result.value().records, 1u) << "cut at " << cut;
    ASSERT_EQ(replayed[0], first) << "cut at " << cut;
  }
}

// Torn tail at the exact CRC-frame boundary: the crash cut the log
// between a record's 4-byte length word and its 4-byte checksum word. The
// length is present and nonzero, the checksum and payload are gone — the
// nastiest framing state, because a replayer that trusts the length word
// alone would happily deliver garbage. Both replay modes must refuse:
// tolerant recovers exactly the preceding records and reports the tail
// torn; strict surfaces a typed error, never a partial record.
TEST(WalTest, TornTailAtHeaderCrcBoundary) {
  const std::string dir = MakeTestDir("wal_header_boundary");
  const std::string path = dir + "/w.wal";
  const std::string cut_path = dir + "/cut.wal";
  std::vector<std::string> written;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
    for (size_t size : {100u, 200u, 300u}) {
      written.emplace_back(size, static_cast<char>('a' + written.size()));
      ASSERT_OK(
          wal->LogRecord(written.back().data(), written.back().size()));
    }
    ASSERT_OK(wal->Force());
  }
  size_t last_start = 0;
  for (size_t i = 0; i + 1 < written.size(); ++i) {
    last_start += kHeader + written[i].size();
  }
  const std::string bytes = ReadFileBytes(path);
  // Cut exactly 4 bytes into the last record's header: after the length
  // word, before the checksum word.
  const size_t cut = last_start + 4;
  WritePrefix(cut_path, bytes, cut);

  std::vector<std::string> replayed;
  ASSERT_OK_AND_ASSIGN(
      auto tolerant,
      WriteAheadLog::ReplayTolerant(cut_path, [&](const char* d, size_t n) {
        replayed.emplace_back(d, n);
      }));
  EXPECT_EQ(tolerant.records, written.size() - 1);
  ASSERT_EQ(replayed.size(), written.size() - 1);
  for (size_t i = 0; i + 1 < written.size(); ++i) {
    EXPECT_EQ(replayed[i], written[i]);
  }
  EXPECT_TRUE(tolerant.torn);
  EXPECT_EQ(tolerant.torn_bytes, 4u);

  // Strict replay of the raw cut: the file is not page-aligned, so the
  // open itself refuses — no partial record can ever be delivered.
  size_t strict_applied = 0;
  auto strict_raw = WriteAheadLog::Replay(
      cut_path, [&](const char*, size_t) { ++strict_applied; });
  EXPECT_FALSE(strict_raw.ok());
  EXPECT_EQ(strict_applied, 0u);

  // Page-granular devices zero-fill the remainder of the torn sector:
  // extend the cut file to a whole zero page. Strict replay now parses a
  // nonzero length whose checksum word was zeroed — a typed Corruption at
  // the frame boundary, with the exact record sequence untouched.
  {
    std::string padded = bytes.substr(0, cut);
    padded.resize(kPageSize, '\0');
    WritePrefix(cut_path, padded, padded.size());
  }
  strict_applied = 0;
  auto strict_padded = WriteAheadLog::Replay(
      cut_path, [&](const char*, size_t) { ++strict_applied; });
  ASSERT_FALSE(strict_padded.ok());
  EXPECT_TRUE(strict_padded.status().IsCorruption())
      << strict_padded.status().ToString();
  // The two intact records preceding the boundary were applied; the torn
  // third never was.
  EXPECT_EQ(strict_applied, written.size() - 1);

  // Tolerant replay of the padded variant agrees with the raw cut on the
  // recovered prefix.
  replayed.clear();
  ASSERT_OK_AND_ASSIGN(
      auto tolerant_padded,
      WriteAheadLog::ReplayTolerant(cut_path, [&](const char* d, size_t n) {
        replayed.emplace_back(d, n);
      }));
  EXPECT_EQ(tolerant_padded.records, written.size() - 1);
  EXPECT_TRUE(tolerant_padded.torn);
}

// Crash mid-append simulated through the storage failpoint instead of
// after-the-fact truncation: the spilling page persists only a prefix, and
// tolerant replay recovers every record fully inside it.
TEST(WalTest, TolerantReplayAfterTornAppend) {
  const std::string dir = MakeTestDir("wal_torn_append");
  const std::string path = dir + "/w.wal";
  const std::string record(64, 't');
  const size_t framed = kHeader + record.size();
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.append", "torn"));
  Status status = Status::OK();
  while (status.ok()) {
    status = wal->LogRecord(record.data(), record.size());
  }
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  FaultInjector::Instance().DisarmAll();
  wal.reset();

  // The torn append persisted a kPageSize/3-byte prefix of the first page.
  const size_t persisted = kPageSize / 3;
  const size_t expect_records = persisted / framed;
  std::vector<std::string> replayed;
  ASSERT_OK_AND_ASSIGN(
      auto stats, WriteAheadLog::ReplayTolerant(
                      path, [&](const char* d, size_t n) {
                        replayed.emplace_back(d, n);
                      }));
  EXPECT_TRUE(stats.torn);
  ASSERT_EQ(stats.records, expect_records);
  for (const std::string& r : replayed) EXPECT_EQ(r, record);
}

TEST(WalTest, StrictAndTolerantReplayAfterEnospcAppend) {
  const std::string dir = MakeTestDir("wal_enospc_append");
  const std::string path = dir + "/w.wal";
  const std::string record(64, 'e');
  ASSERT_OK_AND_ASSIGN(auto wal, WriteAheadLog::Create(path));
  constexpr uint64_t kCommitted = 5;
  for (uint64_t i = 0; i < kCommitted; ++i) {
    ASSERT_OK(wal->LogRecord(record.data(), record.size()));
  }
  ASSERT_OK(wal->Force());  // The committed prefix, durable on disk.

  // The volume fills: every further page append fails with StorageFull and
  // persists nothing (ENOSPC before the write, unlike a torn append).
  ASSERT_OK(FaultInjector::Instance().Arm("storage.page.append", "enospc"));
  Status status = Status::OK();
  while (status.ok()) {
    status = wal->LogRecord(record.data(), record.size());
  }
  EXPECT_TRUE(status.IsStorageFull()) << status.ToString();
  FaultInjector::Instance().DisarmAll();
  wal.reset();

  // Nothing after the Force() reached disk, so the file still ends exactly
  // at the page boundary the flush left: even strict Replay — which
  // rejects ragged files outright — recovers the committed prefix, and
  // tolerant replay agrees without reporting a torn tail.
  for (const bool tolerant : {false, true}) {
    std::vector<std::string> replayed;
    const auto apply = [&](const char* d, size_t n) {
      replayed.emplace_back(d, n);
    };
    auto stats = tolerant ? WriteAheadLog::ReplayTolerant(path, apply)
                          : WriteAheadLog::Replay(path, apply);
    ASSERT_TRUE(stats.ok()) << (tolerant ? "tolerant" : "strict") << ": "
                            << stats.status().ToString();
    EXPECT_FALSE(stats->torn);
    EXPECT_EQ(stats->records, kCommitted);
    ASSERT_EQ(replayed.size(), kCommitted);
    for (const std::string& r : replayed) EXPECT_EQ(r, record);
  }
}

}  // namespace
}  // namespace cubetree
