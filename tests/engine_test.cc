#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "engine/conventional_engine.h"
#include "engine/cubetree_engine.h"
#include "engine/query_parser.h"
#include "olap/cube_builder.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

CubeSchema SmallSchema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {30, 8, 20};
  return schema;
}

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef v;
  v.id = id;
  v.attrs = std::move(attrs);
  return v;
}

/// Shared fixture: a small deterministic fact table, the paper's view set
/// shape (top view, ps, singletons, none), both engines loaded.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("engine");
    schema_ = SmallSchema();
    Rng rng(31);
    for (int i = 0; i < 3000; ++i) {
      FactTuple t;
      t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
      t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
      t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
      t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
      facts_.push_back(t);
    }
    views_ = {
        MakeView(7, {0, 1, 2}), MakeView(3, {0, 1}), MakeView(4, {2}),
        MakeView(2, {1}),       MakeView(1, {0}),    MakeView(0, {}),
    };
    indices_ = MakeIndices();
    pool_ = std::make_unique<BufferPool>(512);
    LoadEngines();
  }

  std::vector<IndexDef> MakeIndices() {
    std::vector<IndexDef> indices;
    IndexDef csp;
    csp.id = 1;
    csp.view_id = 7;
    csp.key_attrs = {2, 1, 0};
    IndexDef pcs;
    pcs.id = 2;
    pcs.view_id = 7;
    pcs.key_attrs = {0, 2, 1};
    IndexDef spc;
    spc.id = 3;
    spc.view_id = 7;
    spc.key_attrs = {1, 0, 2};
    indices.push_back(csp);
    indices.push_back(pcs);
    indices.push_back(spc);
    return indices;
  }

  class Provider : public FactProvider {
   public:
    explicit Provider(const std::vector<FactTuple>* facts) : facts_(facts) {}
    Result<std::unique_ptr<FactSource>> Open() override {
      return std::unique_ptr<FactSource>(new VectorFactSource(facts_));
    }

   private:
    const std::vector<FactTuple>* facts_;
  };

  std::unique_ptr<ComputedViews> Compute(
      const std::vector<ViewDef>& views,
      const std::vector<FactTuple>& facts, const std::string& tag) {
    CubeBuilder::Options options;
    options.temp_dir = dir_;
    options.sort_budget_bytes = 1 << 18;
    CubeBuilder builder(schema_, options);
    Provider provider(&facts);
    auto result = builder.ComputeAll(views, &provider, tag);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  void LoadEngines() {
    // Conventional: selected views + indices.
    auto data = Compute(views_, facts_, "base_conv");
    ConventionalEngine::Options conv_options;
    conv_options.dir = dir_;
    auto conv_result =
        ConventionalEngine::Create(schema_, conv_options, pool_.get());
    ASSERT_TRUE(conv_result.ok());
    conv_ = std::move(conv_result).value();
    ASSERT_OK(conv_->LoadTables(views_, data.get()));
    ASSERT_OK(conv_->BuildIndices(indices_));
    ASSERT_OK(data->Destroy());

    // Cubetrees: same views + the two replicas the paper materializes.
    cbt_views_ = views_;
    cbt_views_.push_back(MakeView(1000, {1, 2, 0}));  // (s,c,p) ~ I_pcs.
    cbt_views_.push_back(MakeView(1001, {2, 0, 1}));  // (c,p,s) ~ I_spc.
    auto cbt_data = Compute(cbt_views_, facts_, "base_cbt");
    CubetreeEngine::Options cbt_options;
    cbt_options.dir = dir_;
    auto cbt_result =
        CubetreeEngine::Create(schema_, cbt_options, pool_.get());
    ASSERT_TRUE(cbt_result.ok());
    cbt_ = std::move(cbt_result).value();
    ASSERT_OK(cbt_->Load(cbt_views_, cbt_data.get()));
    ASSERT_OK(cbt_data->Destroy());
  }

  /// Brute-force reference answer over the raw facts (equality and range
  /// predicates, explicit grouping).
  QueryResult Reference(const SliceQuery& query,
                        const std::vector<FactTuple>& facts) {
    QueryResult result;
    std::map<std::vector<Coord>, AggValue> groups;
    for (const FactTuple& t : facts) {
      bool match = true;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        const auto [lo, hi] = query.AttrInterval(i);
        const Coord value = t.attr_values[query.attrs[i]];
        if (value < lo || value > hi) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::vector<Coord> key;
      for (size_t i = 0; i < query.attrs.size(); ++i) {
        if (query.IsGrouped(i)) {
          key.push_back(t.attr_values[query.attrs[i]]);
        }
      }
      AggValue& agg = groups[key];
      agg.sum += t.measure;
      agg.count += 1;
    }
    for (auto& [key, agg] : groups) result.rows.push_back({key, agg});
    result.SortRows();
    return result;
  }

  void ExpectBothMatchReference(const SliceQuery& query,
                                const std::vector<FactTuple>& facts) {
    QueryResult expected = Reference(query, facts);
    QueryExecStats conv_stats, cbt_stats;
    auto conv_result = conv_->Execute(query, &conv_stats);
    ASSERT_TRUE(conv_result.ok()) << conv_result.status().ToString();
    conv_result->SortRows();
    EXPECT_TRUE(conv_result->SameRowsAs(expected))
        << "conventional mismatch on " << query.ToString(schema_)
        << " plan=" << conv_stats.plan << " got " << conv_result->rows.size()
        << " rows, want " << expected.rows.size();
    auto cbt_result = cbt_->Execute(query, &cbt_stats);
    ASSERT_TRUE(cbt_result.ok()) << cbt_result.status().ToString();
    cbt_result->SortRows();
    EXPECT_TRUE(cbt_result->SameRowsAs(expected))
        << "cubetree mismatch on " << query.ToString(schema_) << " plan="
        << cbt_stats.plan << " got " << cbt_result->rows.size()
        << " rows, want " << expected.rows.size();
  }

  std::string dir_;
  CubeSchema schema_;
  std::vector<FactTuple> facts_;
  std::vector<ViewDef> views_;
  std::vector<ViewDef> cbt_views_;
  std::vector<IndexDef> indices_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ConventionalEngine> conv_;
  std::unique_ptr<CubetreeEngine> cbt_;
};

TEST_F(EngineTest, AllSliceQueryTypesMatchBruteForce) {
  // Every (node, bound-subset) type of the 3-attribute lattice, several
  // random value draws each: both engines must equal brute force.
  SliceQueryGenerator gen(schema_, 77);
  CubeLattice lattice(schema_);
  for (size_t node = 0; node < lattice.num_nodes(); ++node) {
    const auto& attrs = lattice.node(node).attrs;
    for (int draw = 0; draw < 8; ++draw) {
      SliceQuery query = gen.ForNode(attrs, /*exclude_unbound=*/false);
      ExpectBothMatchReference(query, facts_);
    }
  }
}

TEST_F(EngineTest, QueriesOnUnmaterializedNodesUseSuperset) {
  // Nodes pc and sc are not materialized; both engines must re-aggregate
  // from the top view (the paper's "additional aggregate step").
  SliceQuery query;
  query.node_mask = 0b101;
  query.attrs = {0, 2};
  query.bindings = {std::nullopt, Coord{5}};
  QueryExecStats stats;
  auto result = cbt_->Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(stats.plan.find("agg"), std::string::npos) << stats.plan;
  ExpectBothMatchReference(query, facts_);
}

TEST_F(EngineTest, ConventionalUsesIndexWhenPredicateMatches) {
  SliceQuery query;
  query.node_mask = 0b111;
  query.attrs = {0, 1, 2};
  query.bindings = {std::nullopt, std::nullopt, Coord{7}};  // custkey = 7.
  QueryExecStats stats;
  auto result = conv_->Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(stats.plan.find("index"), std::string::npos) << stats.plan;
  // The csp index restricts to ~1/20 of the view.
  EXPECT_LT(stats.tuples_accessed, 3000u / 4);
}

TEST_F(EngineTest, ConventionalFallsBackToScan) {
  SliceQuery query;  // Unbound query on ps: no index prefix applies.
  query.node_mask = 0b011;
  query.attrs = {0, 1};
  query.bindings = {std::nullopt, std::nullopt};
  QueryExecStats stats;
  auto result = conv_->Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(stats.plan.find("scan"), std::string::npos) << stats.plan;
}

TEST_F(EngineTest, CubetreeRoutesToReplicaForBoundSuffix) {
  // partkey bound: best replica is (s,c,p) whose pack order leads with p.
  SliceQuery query;
  query.node_mask = 0b111;
  query.attrs = {0, 1, 2};
  query.bindings = {Coord{3}, std::nullopt, std::nullopt};
  QueryExecStats stats;
  auto result = cbt_->Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(stats.plan.find("V{suppkey,custkey,partkey}"),
            std::string::npos)
      << stats.plan;
  ExpectBothMatchReference(query, facts_);
}

TEST_F(EngineTest, CubetreeExaminesFewTuplesOnSelectiveSlices) {
  SliceQuery query;
  query.node_mask = 0b111;
  query.attrs = {0, 1, 2};
  query.bindings = {Coord{3}, Coord{2}, std::nullopt};
  QueryExecStats stats;
  auto result = cbt_->Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  // Pruning works at leaf-page granularity: a couple of leaves (~300
  // entries each) is the honest floor, far below the ~2900-row view.
  EXPECT_LT(stats.tuples_accessed, 1000u)
      << "selective slice should not scan the whole view";
  EXPECT_LE(stats.pages_accessed, 6u);
}

TEST_F(EngineTest, RangeQueriesMatchBruteForce) {
  // BETWEEN predicates on every node, both engines vs brute force.
  SliceQueryGenerator gen(schema_, 123);
  CubeLattice lattice(schema_);
  for (size_t node = 0; node < lattice.num_nodes(); ++node) {
    const auto& attrs = lattice.node(node).attrs;
    if (attrs.empty()) continue;
    for (double fraction : {0.1, 0.4}) {
      for (int draw = 0; draw < 4; ++draw) {
        SliceQuery query = gen.ForNodeRange(attrs, fraction, true);
        ExpectBothMatchReference(query, facts_);
      }
    }
  }
}

TEST_F(EngineTest, RangeQueryWithCollapsedAttr) {
  // WHERE custkey BETWEEN 5 AND 9, grouped by partkey only (the range
  // attr collapsed out of the output).
  SliceQuery query;
  query.node_mask = 0b101;
  query.attrs = {0, 2};
  query.bindings = {std::nullopt, std::nullopt};
  query.ranges = {std::nullopt, std::make_pair(Coord{5}, Coord{9})};
  query.grouped = {true, false};
  ExpectBothMatchReference(query, facts_);
  // Same predicates but grouped by both: more groups.
  SliceQuery grouped_query = query;
  grouped_query.grouped = {true, true};
  ExpectBothMatchReference(grouped_query, facts_);
  auto a = conv_->Execute(query, nullptr);
  auto b = conv_->Execute(grouped_query, nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->rows.size(), b->rows.size());
}

TEST_F(EngineTest, RangeOnIndexLeadingKeyBoundsTheScan) {
  // custkey BETWEEN uses the csp index: a band, not a full scan.
  SliceQuery query;
  query.node_mask = 0b111;
  query.attrs = {0, 1, 2};
  query.bindings = {std::nullopt, std::nullopt, std::nullopt};
  query.ranges = {std::nullopt, std::nullopt,
                  std::make_pair(Coord{3}, Coord{6})};
  QueryExecStats stats;
  auto result = conv_->Execute(query, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(stats.plan.find("index"), std::string::npos) << stats.plan;
  // ~4/20 of the view, twice (entry + heap fetch), with slack.
  EXPECT_LT(stats.tuples_accessed, 3000u);
  ExpectBothMatchReference(query, facts_);
}

TEST_F(EngineTest, StorageCubetreesSmallerThanConventional) {
  // The headline storage claim, at small scale: packed+compressed trees
  // (even with two extra replicas) undercut tables + B-trees.
  EXPECT_LT(cbt_->StorageBytes(), conv_->StorageBytes())
      << "cubetrees " << cbt_->StorageBytes() << " vs conventional "
      << conv_->StorageBytes();
}

TEST_F(EngineTest, IncrementalUpdatesKeepEnginesConsistent) {
  // Build a delta, apply per-tuple to conventional and merge-pack to the
  // cubetrees; answers must match brute force over base+delta.
  Rng rng(57);
  std::vector<FactTuple> delta;
  for (int i = 0; i < 400; ++i) {
    FactTuple t;
    t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
    t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
    t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
    t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
    delta.push_back(t);
  }
  ASSERT_OK(conv_->BuildMaintenanceIndices());
  auto conv_delta = Compute(views_, delta, "delta_conv");
  ASSERT_OK(conv_->ApplyDeltaIncremental(conv_delta.get()));
  ASSERT_OK(conv_delta->Destroy());

  auto cbt_delta = Compute(cbt_views_, delta, "delta_cbt");
  ASSERT_OK(cbt_->ApplyDelta(cbt_delta.get()));
  ASSERT_OK(cbt_delta->Destroy());

  std::vector<FactTuple> all = facts_;
  all.insert(all.end(), delta.begin(), delta.end());

  SliceQueryGenerator gen(schema_, 91);
  CubeLattice lattice(schema_);
  for (size_t node = 0; node < lattice.num_nodes(); ++node) {
    for (int draw = 0; draw < 4; ++draw) {
      SliceQuery query =
          gen.ForNode(lattice.node(node).attrs, /*exclude_unbound=*/false);
      ExpectBothMatchReference(query, all);
    }
  }
}

TEST_F(EngineTest, RebuildMatchesIncremental) {
  Rng rng(58);
  std::vector<FactTuple> delta;
  for (int i = 0; i < 200; ++i) {
    FactTuple t;
    t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
    t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
    t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
    t.measure = 3;
    delta.push_back(t);
  }
  std::vector<FactTuple> all = facts_;
  all.insert(all.end(), delta.begin(), delta.end());
  auto full = Compute(views_, all, "full");
  ASSERT_OK(conv_->Rebuild(full.get()));
  ASSERT_OK(full->Destroy());

  SliceQueryGenerator gen(schema_, 17);
  for (int draw = 0; draw < 10; ++draw) {
    SliceQuery query = gen.ForNode({0, 1, 2}, false);
    QueryResult expected = Reference(query, all);
    auto got = conv_->Execute(query, nullptr);
    ASSERT_TRUE(got.ok());
    got->SortRows();
    EXPECT_TRUE(got->SameRowsAs(expected));
  }
}

TEST_F(EngineTest, DeltaTreeRefreshMatchesBruteForce) {
  Rng rng(77);
  std::vector<FactTuple> all = facts_;
  for (int round = 0; round < 3; ++round) {
    std::vector<FactTuple> delta;
    for (int i = 0; i < 200; ++i) {
      FactTuple t;
      t.attr_values[0] = static_cast<Coord>(1 + rng.Uniform(30));
      t.attr_values[1] = static_cast<Coord>(1 + rng.Uniform(8));
      t.attr_values[2] = static_cast<Coord>(1 + rng.Uniform(20));
      t.measure = static_cast<int64_t>(1 + rng.Uniform(50));
      delta.push_back(t);
    }
    auto d = Compute(cbt_views_, delta, "dt" + std::to_string(round));
    ASSERT_OK(cbt_->ApplyDeltaPartial(d.get()));
    ASSERT_OK(d->Destroy());
    all.insert(all.end(), delta.begin(), delta.end());
  }
  EXPECT_GT(cbt_->forest()->TotalDeltas(), 0u);

  SliceQueryGenerator gen(schema_, 3);
  for (int draw = 0; draw < 10; ++draw) {
    SliceQuery query = gen.ForNode({0, 1, 2}, false);
    QueryResult expected = Reference(query, all);
    auto got = cbt_->Execute(query, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    got->SortRows();
    ASSERT_TRUE(got->SameRowsAs(expected))
        << "with deltas: " << query.ToString(schema_);
  }
  // Compaction preserves the answers and clears the deltas.
  ASSERT_OK(cbt_->Compact());
  EXPECT_EQ(cbt_->forest()->TotalDeltas(), 0u);
  for (int draw = 0; draw < 5; ++draw) {
    SliceQuery query = gen.ForNode({0, 2}, false);
    QueryResult expected = Reference(query, all);
    auto got = cbt_->Execute(query, nullptr);
    ASSERT_TRUE(got.ok());
    got->SortRows();
    ASSERT_TRUE(got->SameRowsAs(expected));
  }
}

TEST_F(EngineTest, WalAccountsForEveryLoadedRow) {
  // A fresh engine with WAL on: every view row it loads must be logged.
  const std::string dir = MakeTestDir("engine_wal");
  BufferPool pool(128);
  auto stats = std::make_shared<IoStats>();
  ConventionalEngine::Options options;
  options.dir = dir;
  options.io_stats = stats;
  options.enable_wal = true;
  ASSERT_OK_AND_ASSIGN(auto engine,
                       ConventionalEngine::Create(schema_, options, &pool));
  auto data = Compute(views_, facts_, "wal");
  const IoStats before = *stats;
  ASSERT_OK(engine->LoadTables(views_, data.get()));
  const IoStats during = *stats - before;
  ASSERT_OK(data->Destroy());
  // The WAL stream is sequential and non-trivial relative to the tables.
  EXPECT_GT(during.sequential_writes, 0u);

  // Same load without WAL writes measurably fewer pages.
  auto stats2 = std::make_shared<IoStats>();
  ConventionalEngine::Options no_wal = options;
  no_wal.name = "nowal";
  no_wal.io_stats = stats2;
  no_wal.enable_wal = false;
  ASSERT_OK_AND_ASSIGN(auto engine2, ConventionalEngine::Create(
                                         schema_, no_wal, &pool));
  auto data2 = Compute(views_, facts_, "nowal");
  ASSERT_OK(engine2->LoadTables(views_, data2.get()));
  ASSERT_OK(data2->Destroy());
  EXPECT_GT(during.TotalWrites(), stats2->TotalWrites());
}

TEST_F(EngineTest, IncrementalWithoutMaintenanceIndicesFails) {
  auto delta = Compute(views_, facts_, "delta_none");
  EXPECT_FALSE(conv_->ApplyDeltaIncremental(delta.get()).ok());
  ASSERT_OK(delta->Destroy());
}

TEST_F(EngineTest, UnknownNodeFails) {
  SliceQuery query;
  query.node_mask = 0b1000;  // Attribute 3 does not exist in any view.
  query.attrs = {3};
  query.bindings = {std::nullopt};
  EXPECT_FALSE(conv_->Execute(query, nullptr).ok());
  EXPECT_FALSE(cbt_->Execute(query, nullptr).ok());
}

// --- Query parser --------------------------------------------------------

TEST(QueryParserTest, ParsesFullQuery) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery("SELECT partkey, suppkey, SUM(quantity) FROM sales "
                      "WHERE custkey = 17 GROUP BY partkey, suppkey",
                      schema));
  EXPECT_EQ(parsed.fn, AggFn::kSum);
  EXPECT_EQ(parsed.query.node_mask, 0b111u);
  EXPECT_EQ(parsed.query.attrs, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_FALSE(parsed.query.bindings[0].has_value());
  EXPECT_FALSE(parsed.query.bindings[1].has_value());
  ASSERT_TRUE(parsed.query.bindings[2].has_value());
  EXPECT_EQ(*parsed.query.bindings[2], 17u);
}

TEST(QueryParserTest, ParsesAggregateOnlyQuery) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery(
          "select avg(quantity) from sales where partkey = 3 and suppkey = 4",
          schema));
  EXPECT_EQ(parsed.fn, AggFn::kAvg);
  EXPECT_EQ(parsed.query.node_mask, 0b011u);
  EXPECT_EQ(parsed.query.NumBound(), 2u);
}

TEST(QueryParserTest, CountStar) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery("SELECT custkey, COUNT(*) FROM f GROUP BY custkey",
                      schema));
  EXPECT_EQ(parsed.fn, AggFn::kCount);
  EXPECT_EQ(parsed.query.node_mask, 0b100u);
}

TEST(QueryParserTest, RejectsMalformedQueries) {
  CubeSchema schema = SmallSchema();
  EXPECT_FALSE(ParseSliceQuery("SELECT FROM x", schema).ok());
  EXPECT_FALSE(ParseSliceQuery("SELECT partkey FROM x GROUP BY partkey",
                               schema)
                   .ok());  // No aggregate.
  EXPECT_FALSE(
      ParseSliceQuery("SELECT nope, SUM(quantity) FROM x GROUP BY nope",
                      schema)
          .ok());  // Unknown attribute.
  EXPECT_FALSE(ParseSliceQuery(
                   "SELECT partkey, SUM(quantity) FROM x GROUP BY suppkey",
                   schema)
                   .ok());  // GROUP BY mismatch.
  EXPECT_FALSE(ParseSliceQuery(
                   "SELECT partkey, SUM(quantity) FROM x "
                   "WHERE partkey = 5 GROUP BY partkey",
                   schema)
                   .ok());  // Attr both grouped and bound.
  EXPECT_FALSE(ParseSliceQuery(
                   "SELECT SUM(price) FROM x WHERE partkey = 1", schema)
                   .ok());  // Wrong measure.
}

TEST(QueryParserTest, ParsesBetween) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery("SELECT partkey, SUM(quantity) FROM f "
                      "WHERE custkey BETWEEN 3 AND 9 AND suppkey = 2 "
                      "GROUP BY partkey",
                      schema));
  const SliceQuery& q = parsed.query;
  EXPECT_EQ(q.node_mask, 0b111u);
  // Canonical order: partkey(grouped), suppkey(=2), custkey(range).
  ASSERT_EQ(q.attrs, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(q.IsGrouped(0));
  EXPECT_FALSE(q.IsGrouped(1));
  EXPECT_FALSE(q.IsGrouped(2));  // Range attr absent from GROUP BY.
  ASSERT_TRUE(q.bindings[1].has_value());
  EXPECT_EQ(*q.bindings[1], 2u);
  ASSERT_TRUE(q.ranges[2].has_value());
  EXPECT_EQ(q.ranges[2]->first, 3u);
  EXPECT_EQ(q.ranges[2]->second, 9u);
}

TEST(QueryParserTest, BetweenAttrMayAlsoBeGrouped) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery("SELECT custkey, SUM(quantity) FROM f "
                      "WHERE custkey BETWEEN 3 AND 9 GROUP BY custkey",
                      schema));
  EXPECT_TRUE(parsed.query.IsGrouped(0));
  ASSERT_TRUE(parsed.query.ranges[0].has_value());
}

TEST(QueryParserTest, KeywordsAreCaseInsensitiveAndWhitespaceTolerant) {
  CubeSchema schema = SmallSchema();
  ASSERT_OK_AND_ASSIGN(
      ParsedQuery parsed,
      ParseSliceQuery("  SeLeCt   PARTKEY ,  sum( quantity )   fRoM x  "
                      "Where  SUPPKEY=4   GrOuP   By PartKey  ",
                      schema));
  EXPECT_EQ(parsed.query.node_mask, 0b011u);
  ASSERT_TRUE(parsed.query.bindings[1].has_value());
  EXPECT_EQ(*parsed.query.bindings[1], 4u);
}

TEST(QueryParserTest, RejectsEmptyBetween) {
  CubeSchema schema = SmallSchema();
  EXPECT_FALSE(ParseSliceQuery(
                   "SELECT SUM(quantity) FROM f WHERE custkey "
                   "BETWEEN 9 AND 3",
                   schema)
                   .ok());
}

TEST(QueryParserTest, RoundTripsThroughToString) {
  CubeSchema schema = SmallSchema();
  SliceQuery q;
  q.node_mask = 0b101;
  q.attrs = {0, 2};
  q.bindings = {std::nullopt, Coord{9}};
  ASSERT_OK_AND_ASSIGN(ParsedQuery parsed,
                       ParseSliceQuery(q.ToString(schema), schema));
  EXPECT_EQ(parsed.query.node_mask, q.node_mask);
  EXPECT_EQ(parsed.query.bindings, q.bindings);
}

}  // namespace
}  // namespace cubetree
