#ifndef CUBETREE_TESTS_TEST_UTIL_H_
#define CUBETREE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace cubetree {

#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::cubetree::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::cubetree::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                            \
  ASSERT_OK_AND_ASSIGN_IMPL(CT_CONCAT_(_r_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)                  \
  auto tmp = (expr);                                               \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                \
  lhs = std::move(tmp).value()

/// Per-test scratch directory under the build tree, wiped on creation.
/// The running test's suite.name is folded into the path: fixtures pass a
/// constant name from SetUp, and with `ctest -j` every test is its own
/// process in a shared working directory — two tests of one suite must
/// not wipe each other's directory mid-run.
inline std::string MakeTestDir(const std::string& name) {
  std::string dir = "./ct_test_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    std::string suffix =
        std::string("_") + info->test_suite_name() + "." + info->name();
    for (char& c : suffix) {
      if (c == '/') c = '_';  // Parameterized test names contain '/'.
    }
    dir += suffix;
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    ADD_FAILURE() << "failed to create test dir " << dir << ": "
                  << ec.message();
  }
  return dir;
}

}  // namespace cubetree

#endif  // CUBETREE_TESTS_TEST_UTIL_H_
