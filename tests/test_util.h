#ifndef CUBETREE_TESTS_TEST_UTIL_H_
#define CUBETREE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace cubetree {

#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::cubetree::Status _st = (expr);                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::cubetree::Status _st = (expr);                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                            \
  ASSERT_OK_AND_ASSIGN_IMPL(CT_CONCAT_(_r_, __LINE__), lhs, expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)                  \
  auto tmp = (expr);                                               \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                \
  lhs = std::move(tmp).value()

/// Per-test scratch directory under the build tree, wiped on creation.
inline std::string MakeTestDir(const std::string& name) {
  const std::string dir = "./ct_test_" + name;
  std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  if (std::system(cmd.c_str()) != 0) {
    ADD_FAILURE() << "failed to create test dir " << dir;
  }
  return dir;
}

}  // namespace cubetree

#endif  // CUBETREE_TESTS_TEST_UTIL_H_
