// Parameterized property tests: randomized workloads checked against
// reference implementations, swept across structural parameters
// (dimensionality, fill factors, memory budgets, key widths).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "btree/btree.h"
#include "common/coding.h"
#include "common/rng.h"
#include "cubetree/merge_pack.h"
#include "cubetree/select_mapping.h"
#include "rtree/packed_rtree.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

// --- Packed R-tree: (dims, points, leaf_fill, compress) sweep ------------

using RTreeParam = std::tuple<int, int, double, bool>;

class PackedRTreeProperty : public ::testing::TestWithParam<RTreeParam> {};

TEST_P(PackedRTreeProperty, RangeQueriesMatchBruteForce) {
  const auto [dims, n, leaf_fill, compress] = GetParam();
  const std::string dir = MakeTestDir(
      "rtprop_" + std::to_string(dims) + "_" + std::to_string(n) + "_" +
      std::to_string(static_cast<int>(leaf_fill * 100)) +
      (compress ? "_c" : "_u"));

  // Random unique points of a single view with full arity. The per-axis
  // domain must comfortably exceed n^(1/dims) or unique draws run dry.
  Rng rng(dims * 1000 + n);
  const uint64_t domain =
      dims == 1 ? static_cast<uint64_t>(n) * 4 : (dims == 2 ? 400 : 200);
  std::set<std::vector<Coord>> seen;
  std::vector<PointRecord> points;
  while (points.size() < static_cast<size_t>(n)) {
    PointRecord rec;
    rec.view_id = 1;
    std::vector<Coord> key;
    for (int d = 0; d < dims; ++d) {
      rec.coords[d] = static_cast<Coord>(1 + rng.Uniform(domain));
      key.push_back(rec.coords[d]);
    }
    if (!seen.insert(key).second) continue;
    rec.agg = AggValue{static_cast<int64_t>(rng.Uniform(1000)), 1};
    points.push_back(rec);
  }
  std::sort(points.begin(), points.end(),
            [&](const PointRecord& a, const PointRecord& b) {
              return PackOrderCompare(a.coords, b.coords, dims) < 0;
            });

  BufferPool pool(128);
  RTreeOptions options;
  options.dims = static_cast<uint8_t>(dims);
  options.leaf_fill = leaf_fill;
  options.compress_leaves = compress;
  VectorPointSource source(points);
  ASSERT_OK_AND_ASSIGN(
      auto tree,
      PackedRTree::Build(dir + "/t.ctr", options, &pool, &source,
                         [dims](uint32_t) {
                           return static_cast<uint8_t>(dims);
                         }));
  ASSERT_EQ(tree->num_points(), points.size());

  // 25 random boxes: tree results must equal brute force exactly.
  for (int q = 0; q < 25; ++q) {
    Rect query;
    for (int d = 0; d < dims; ++d) {
      Coord a = static_cast<Coord>(1 + rng.Uniform(domain));
      Coord b = static_cast<Coord>(1 + rng.Uniform(domain));
      query.lo[d] = std::min(a, b);
      query.hi[d] = std::max(a, b);
    }
    int64_t expected_sum = 0;
    uint64_t expected_count = 0;
    for (const PointRecord& rec : points) {
      if (query.ContainsPoint(rec.coords, dims)) {
        expected_sum += rec.agg.sum;
        ++expected_count;
      }
    }
    int64_t sum = 0;
    uint64_t count = 0;
    ASSERT_OK(tree->Search(query, [&](const PointRecord& rec) {
      sum += rec.agg.sum;
      ++count;
    }));
    ASSERT_EQ(count, expected_count) << "query " << q;
    ASSERT_EQ(sum, expected_sum) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackedRTreeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(500, 5000),
                       ::testing::Values(0.5, 1.0),
                       ::testing::Bool()));

// --- External sorter: (record_size, budget) sweep ------------------------

using SorterParam = std::tuple<int, int>;

class SorterProperty : public ::testing::TestWithParam<SorterParam> {};

TEST_P(SorterProperty, SortsRandomInput) {
  const auto [record_size, budget] = GetParam();
  const std::string dir = MakeTestDir("sortprop_" +
                                      std::to_string(record_size) + "_" +
                                      std::to_string(budget));
  ExternalSorter::Options options;
  options.record_size = record_size;
  options.memory_budget_bytes = budget;
  options.temp_dir = dir;
  ExternalSorter sorter(options, [](const char* a, const char* b) {
    return DecodeFixed32(a) < DecodeFixed32(b);
  });
  Rng rng(record_size * 31 + budget);
  std::vector<uint32_t> keys;
  std::vector<char> record(record_size, 0);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const uint32_t key = static_cast<uint32_t>(rng.Uniform(1u << 24));
    keys.push_back(key);
    EncodeFixed32(record.data(), key);
    // Payload derived from the key, to verify records stay intact.
    if (record_size >= 8) {
      EncodeFixed32(record.data() + record_size - 4, key ^ 0xABCD);
    }
    ASSERT_OK(sorter.Add(record.data()));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::sort(keys.begin(), keys.end());
  const char* out = nullptr;
  for (int i = 0; i < n; ++i) {
    ASSERT_OK(stream->Next(&out));
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(DecodeFixed32(out), keys[i]) << i;
    if (record_size >= 8) {
      ASSERT_EQ(DecodeFixed32(out + record_size - 4), keys[i] ^ 0xABCD);
    }
  }
  ASSERT_OK(stream->Next(&out));
  EXPECT_EQ(out, nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SorterProperty,
    ::testing::Combine(::testing::Values(4, 8, 24, 100),
                       ::testing::Values(128, 4096, 1 << 20)));

// --- B+-tree: key_parts sweep against std::map ---------------------------

class BTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BTreeProperty, RandomOpsMatchReference) {
  const int key_parts = GetParam();
  const std::string dir = MakeTestDir("btprop_" + std::to_string(key_parts));
  BufferPool pool(64);
  BTreeOptions options;
  options.key_parts = static_cast<uint8_t>(key_parts);
  options.value_size = 8;
  ASSERT_OK_AND_ASSIGN(auto tree, BPlusTree::Create(dir + "/t.idx", options,
                                                    &pool));
  Rng rng(key_parts * 7);
  std::map<std::vector<uint32_t>, uint64_t> reference;
  char value[8];
  char out[8];
  for (int op = 0; op < 8000; ++op) {
    std::vector<uint32_t> key(key_parts);
    for (int i = 0; i < key_parts; ++i) {
      key[i] = static_cast<uint32_t>(rng.Uniform(16));
    }
    const int kind = static_cast<int>(rng.Uniform(3));
    if (kind == 0) {  // Insert.
      const uint64_t v = rng.Next();
      EncodeFixed64(value, v);
      Status st = tree->Insert(key.data(), value);
      if (reference.count(key)) {
        ASSERT_EQ(st.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        reference[key] = v;
      }
    } else if (kind == 1) {  // Lookup.
      ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key.data(), out));
      ASSERT_EQ(found, reference.count(key) > 0);
      if (found) {
        ASSERT_EQ(DecodeFixed64(out), reference[key]);
      }
    } else {  // Update.
      const uint64_t v = rng.Next();
      EncodeFixed64(value, v);
      Status st = tree->Update(key.data(), value);
      if (reference.count(key)) {
        ASSERT_TRUE(st.ok());
        reference[key] = v;
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    }
  }
  ASSERT_EQ(tree->num_entries(), reference.size());
  // Full scan equals the reference in order.
  std::vector<uint32_t> low(key_parts, 0), high(key_parts, 0xFFFFFFFFu);
  BPlusTree::Iterator it = tree->Scan(low.data(), high.data());
  auto expect = reference.begin();
  while (true) {
    const uint32_t* key = nullptr;
    const char* val = nullptr;
    ASSERT_OK(it.Next(&key, &val));
    if (key == nullptr) break;
    ASSERT_NE(expect, reference.end());
    ASSERT_TRUE(std::equal(key, key + key_parts, expect->first.begin()));
    ASSERT_EQ(DecodeFixed64(val), expect->second);
    ++expect;
  }
  ASSERT_EQ(expect, reference.end());
}

INSTANTIATE_TEST_SUITE_P(Sweep, BTreeProperty,
                         ::testing::Values(1, 2, 3, 4, 8));

// --- Merge-pack: repeated random deltas against a reference map ----------

class MergePackProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergePackProperty, RepeatedDeltasConverge) {
  const int dims = GetParam();
  const std::string dir = MakeTestDir("mpprop_" + std::to_string(dims));
  BufferPool pool(64);
  RTreeOptions options;
  options.dims = static_cast<uint8_t>(dims);

  Rng rng(dims * 13);
  std::map<std::vector<Coord>, AggValue> reference;
  std::unique_ptr<PackedRTree> tree;
  auto arity_fn = [dims](uint32_t) { return static_cast<uint8_t>(dims); };

  for (int round = 0; round < 6; ++round) {
    // Random delta (unique keys within the delta, overlapping across
    // rounds).
    std::map<std::vector<Coord>, AggValue> delta;
    for (int i = 0; i < 400; ++i) {
      std::vector<Coord> key(dims);
      for (int d = 0; d < dims; ++d) {
        key[d] = static_cast<Coord>(1 + rng.Uniform(30));
      }
      AggValue agg{static_cast<int64_t>(rng.Uniform(100)), 1};
      delta[key].Merge(agg);
    }
    std::vector<PointRecord> delta_points;
    for (const auto& [key, agg] : delta) {
      PointRecord rec;
      rec.view_id = 1;
      for (int d = 0; d < dims; ++d) rec.coords[d] = key[d];
      rec.agg = agg;
      delta_points.push_back(rec);
      reference[key].Merge(agg);
    }
    std::sort(delta_points.begin(), delta_points.end(),
              [&](const PointRecord& a, const PointRecord& b) {
                return PackOrderCompare(a.coords, b.coords, dims) < 0;
              });
    VectorPointSource delta_source(std::move(delta_points));
    const std::string path =
        dir + "/t_g" + std::to_string(round) + ".ctr";
    ASSERT_OK_AND_ASSIGN(
        auto merged, MergePack(tree.get(), &delta_source, path, options,
                               &pool, arity_fn));
    tree = std::move(merged);
    ASSERT_EQ(tree->num_points(), reference.size()) << "round " << round;
  }

  // Final content equals the reference exactly.
  auto scanner = tree->ScanAll();
  size_t count = 0;
  while (true) {
    const PointRecord* rec = nullptr;
    ASSERT_OK(scanner.Next(&rec));
    if (rec == nullptr) break;
    std::vector<Coord> key(rec->coords, rec->coords + dims);
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    ASSERT_EQ(rec->agg, it->second);
    ++count;
  }
  ASSERT_EQ(count, reference.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergePackProperty,
                         ::testing::Values(1, 2, 3, 5));

// --- SelectMapping invariants over random view sets ----------------------

class SelectMappingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelectMappingProperty, InvariantsHoldOnRandomViewSets) {
  const int seed = GetParam();
  Rng rng(seed);
  const size_t num_views = 1 + rng.Uniform(20);
  std::vector<ViewDef> views;
  std::vector<size_t> arity_histogram(kMaxDims + 1, 0);
  for (size_t i = 0; i < num_views; ++i) {
    ViewDef v;
    v.id = static_cast<uint32_t>(i);
    const size_t arity = rng.Uniform(kMaxDims + 1);
    for (size_t a = 0; a < arity; ++a) {
      v.attrs.push_back(static_cast<uint32_t>(a));
    }
    ++arity_histogram[arity];
    views.push_back(std::move(v));
  }
  ForestPlan plan = SelectMapping(views);

  // 1. Every view is placed exactly once.
  ASSERT_EQ(plan.view_to_tree.size(), views.size());
  size_t placed = 0;
  for (const auto& tree : plan.trees) placed += tree.view_ids.size();
  ASSERT_EQ(placed, views.size());

  // 2. Minimality: tree count equals the largest arity class.
  const size_t max_class =
      *std::max_element(arity_histogram.begin(), arity_histogram.end());
  ASSERT_EQ(plan.trees.size(), max_class);

  // 3. No tree holds two views of the same arity, and each tree's dims is
  //    the max arity of its views (at least 1).
  for (const auto& tree : plan.trees) {
    std::set<uint8_t> arities;
    uint8_t max_arity = 0;
    for (uint32_t vid : tree.view_ids) {
      const ViewDef& v = views[vid];
      ASSERT_TRUE(arities.insert(v.arity()).second);
      max_arity = std::max(max_arity, v.arity());
    }
    ASSERT_EQ(tree.dims, std::max<uint8_t>(1, max_arity));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelectMappingProperty,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace cubetree
