#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cubetree/cubetree.h"
#include "cubetree/forest.h"
#include "cubetree/merge_pack.h"
#include "cubetree/select_mapping.h"
#include "cubetree/view_def.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

CubeSchema PaperSchema() {
  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {200, 50, 150};
  return schema;
}

ViewDef MakeView(uint32_t id, std::vector<uint32_t> attrs) {
  ViewDef view;
  view.id = id;
  view.attrs = std::move(attrs);
  return view;
}

TEST(ViewDefTest, ArityMaskAndName) {
  CubeSchema schema = PaperSchema();
  ViewDef v = MakeView(1, {0, 1});
  EXPECT_EQ(v.arity(), 2);
  EXPECT_EQ(v.AttrMask(), 0b011u);
  EXPECT_EQ(v.Name(schema), "V{partkey,suppkey}");
  EXPECT_TRUE(v.Covers(0b001));
  EXPECT_TRUE(v.Covers(0b011));
  EXPECT_FALSE(v.Covers(0b100));
  ViewDef none = MakeView(2, {});
  EXPECT_EQ(none.Name(schema), "V{none}");
  EXPECT_EQ(none.arity(), 0);
}

TEST(ViewDefTest, RecordRoundTrip) {
  Coord coords[3] = {10, 20, 30};
  AggValue agg{-5, 2};
  std::vector<char> buf(ViewRecordBytes(3));
  EncodeViewRecord(buf.data(), coords, 3, agg);
  Coord out[kMaxDims];
  AggValue agg_out;
  DecodeViewRecord(buf.data(), 3, out, &agg_out);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[2], 30u);
  EXPECT_EQ(agg_out, agg);
}

TEST(ViewDefTest, RecordCompareUsesPackOrder) {
  // (9, 1) < (1, 2): last attribute is the most significant.
  Coord a[2] = {9, 1};
  Coord b[2] = {1, 2};
  std::vector<char> ra(ViewRecordBytes(2)), rb(ViewRecordBytes(2));
  EncodeViewRecord(ra.data(), a, 2, AggValue{});
  EncodeViewRecord(rb.data(), b, 2, AggValue{});
  EXPECT_LT(ViewRecordCompare(ra.data(), rb.data(), 2), 0);
  EXPECT_GT(ViewRecordCompare(rb.data(), ra.data(), 2), 0);
  EXPECT_EQ(ViewRecordCompare(ra.data(), ra.data(), 2), 0);
}

// --- SelectMapping -------------------------------------------------------

TEST(SelectMappingTest, PaperTable5Allocation) {
  // Views in decreasing selection benefit, as in the paper's Section 3:
  // psc, ps, c, s, p, none.
  std::vector<ViewDef> views = {
      MakeView(100, {0, 1, 2}), MakeView(101, {0, 1}), MakeView(102, {2}),
      MakeView(103, {1}),       MakeView(104, {0}),    MakeView(105, {}),
  };
  ForestPlan plan = SelectMapping(views);
  // Paper Table 5: R1 = {psc, ps, c, none}, R2 = {s}, R3 = {p}.
  ASSERT_EQ(plan.trees.size(), 3u);
  EXPECT_EQ(plan.trees[0].dims, 3u);
  EXPECT_EQ(plan.trees[0].view_ids,
            (std::vector<uint32_t>{100, 101, 102, 105}));
  EXPECT_EQ(plan.trees[1].view_ids, (std::vector<uint32_t>{103}));
  EXPECT_EQ(plan.trees[2].view_ids, (std::vector<uint32_t>{104}));
  EXPECT_EQ(plan.view_to_tree.at(101), 0u);
  EXPECT_EQ(plan.view_to_tree.at(104), 2u);
}

TEST(SelectMappingTest, PaperFigure7Allocation) {
  // The Section 2.4 example: V1..V9 with arities 1,2,4,4,3,1,2,1,2.
  std::vector<ViewDef> views = {
      MakeView(1, {3}),           // V1 {brand}
      MakeView(2, {1, 0}),        // V2 {suppkey, partkey}
      MakeView(3, {3, 1, 2, 6}),  // V3 {brand, suppkey, custkey, month}
      MakeView(4, {0, 1, 2, 5}),  // V4 {partkey, suppkey, custkey, year}
      MakeView(5, {0, 2, 5}),     // V5 {partkey, custkey, year}
      MakeView(6, {2}),           // V6 {custkey}
      MakeView(7, {2, 0}),        // V7 {custkey, partkey}
      MakeView(8, {0}),           // V8 {partkey}
      MakeView(9, {1, 2}),        // V9 {suppkey, custkey}
  };
  ForestPlan plan = SelectMapping(views);
  ASSERT_EQ(plan.trees.size(), 3u);
  // Figure 7: R1{4d} = {V3, V5, V2, V1}, R2{4d} = {V4, V7, V6},
  //           R3{2d} = {V9, V8}.
  EXPECT_EQ(plan.trees[0].dims, 4u);
  EXPECT_EQ(plan.trees[0].view_ids, (std::vector<uint32_t>{3, 5, 2, 1}));
  EXPECT_EQ(plan.trees[1].dims, 4u);
  EXPECT_EQ(plan.trees[1].view_ids, (std::vector<uint32_t>{4, 7, 6}));
  EXPECT_EQ(plan.trees[2].dims, 2u);
  EXPECT_EQ(plan.trees[2].view_ids, (std::vector<uint32_t>{9, 8}));
}

TEST(SelectMappingTest, NoTreeHoldsTwoViewsOfSameArity) {
  std::vector<ViewDef> views;
  for (uint32_t i = 0; i < 12; ++i) {
    std::vector<uint32_t> attrs;
    for (uint32_t a = 0; a <= i % 4; ++a) attrs.push_back(a);
    views.push_back(MakeView(i, std::move(attrs)));
  }
  ForestPlan plan = SelectMapping(views);
  std::map<uint32_t, std::vector<uint32_t>> tree_views;
  for (const ViewDef& v : views) {
    tree_views[plan.view_to_tree.at(v.id)].push_back(v.arity());
  }
  for (auto& [tree, arities] : tree_views) {
    std::sort(arities.begin(), arities.end());
    EXPECT_EQ(std::adjacent_find(arities.begin(), arities.end()),
              arities.end())
        << "tree " << tree << " holds two views of equal arity";
  }
}

TEST(SelectMappingTest, EmptyAndSingle) {
  EXPECT_TRUE(SelectMapping({}).trees.empty());
  ForestPlan plan = SelectMapping({MakeView(5, {0, 1})});
  ASSERT_EQ(plan.trees.size(), 1u);
  EXPECT_EQ(plan.trees[0].dims, 2u);
}

TEST(SelectMappingTest, MinimalTreeCount) {
  // Tree count must equal the largest arity class.
  std::vector<ViewDef> views = {
      MakeView(1, {0}), MakeView(2, {1}), MakeView(3, {2}),
      MakeView(4, {0, 1}), MakeView(5, {0, 1, 2}),
  };
  ForestPlan plan = SelectMapping(views);
  EXPECT_EQ(plan.trees.size(), 3u);  // Three arity-1 views force 3 trees.
}

// --- Forest / provider helpers ------------------------------------------

/// In-memory ViewDataProvider for tests: per-view vectors of (coords, agg),
/// sorted on demand.
class VectorViewProvider : public CubetreeForest::ViewDataProvider {
 public:
  void Add(const ViewDef& view, std::vector<Coord> coords, AggValue agg) {
    auto& rows = data_[view.id];
    std::vector<char> rec(ViewRecordBytes(view.arity()));
    coords.resize(kMaxDims, 0);
    EncodeViewRecord(rec.data(), coords.data(), view.arity(), agg);
    rows.push_back(std::move(rec));
  }

  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    auto rows = data_[view.id];  // Copy.
    const uint8_t arity = view.arity();
    std::sort(rows.begin(), rows.end(),
              [arity](const std::vector<char>& a, const std::vector<char>& b) {
                return ViewRecordCompare(a.data(), b.data(), arity) < 0;
              });
    std::vector<char> flat;
    for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());
    return std::unique_ptr<RecordStream>(new MemoryRecordStream(
        std::move(flat), ViewRecordBytes(arity)));
  }

 private:
  std::map<uint32_t, std::vector<std::vector<char>>> data_;
};

class ForestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("forest");
    pool_ = std::make_unique<BufferPool>(256);
  }

  Result<std::unique_ptr<CubetreeForest>> MakeForest() {
    CubetreeForest::Options options;
    options.dir = dir_;
    options.name = "f" + std::to_string(++count_);
    return CubetreeForest::Create(options, pool_.get());
  }

  std::string dir_;
  std::unique_ptr<BufferPool> pool_;
  int count_ = 0;
};

TEST_F(ForestTest, BuildQueryPaperViews) {
  // The paper's running example: V1{partkey,suppkey}, V2{suppkey,custkey},
  // V3{partkey} and the none view.
  std::vector<ViewDef> views = {
      MakeView(1, {0, 1}),
      MakeView(2, {1, 2}),
      MakeView(3, {0}),
      MakeView(4, {}),
  };
  VectorViewProvider provider;
  int64_t total = 0;
  for (uint32_t p = 1; p <= 20; ++p) {
    for (uint32_t s = 1; s <= 5; ++s) {
      provider.Add(views[0], {p, s}, AggValue{int64_t(p * 100 + s), 1});
    }
  }
  for (uint32_t s = 1; s <= 5; ++s) {
    for (uint32_t c = 1; c <= 8; ++c) {
      provider.Add(views[1], {s, c}, AggValue{int64_t(s * 10 + c), 1});
    }
  }
  for (uint32_t p = 1; p <= 20; ++p) {
    provider.Add(views[2], {p}, AggValue{int64_t(p), 1});
    total += p;
  }
  provider.Add(views[3], {}, AggValue{total, 20});

  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &provider));
  // V1 and V2 have the same arity: they must land in different trees.
  EXPECT_EQ(forest->num_trees(), 2u);
  EXPECT_NE(forest->plan().view_to_tree.at(1),
            forest->plan().view_to_tree.at(2));
  EXPECT_EQ(forest->TotalPoints(), 100u + 40u + 20u + 1u);

  // Slice on V1: partkey free, suppkey = 3 (the paper's Q1 shape).
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  std::vector<std::pair<Coord, int64_t>> hits;
  ASSERT_OK(tree->QuerySlice(
      1, {std::nullopt, Coord{3}},
      [&](const Coord* coords, const AggValue& agg) {
        hits.push_back({coords[0], agg.sum});
      }));
  ASSERT_EQ(hits.size(), 20u);
  for (const auto& [p, sum] : hits) {
    EXPECT_EQ(sum, int64_t(p * 100 + 3));
  }

  // The none view is the origin point.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree_none, forest->TreeForView(4));
  int none_hits = 0;
  ASSERT_OK(tree_none->QuerySlice(
      4, {},
      [&](const Coord*, const AggValue& agg) {
        EXPECT_EQ(agg.sum, total);
        EXPECT_EQ(agg.count, 20u);
        ++none_hits;
      }));
  EXPECT_EQ(none_hits, 1);
}

TEST_F(ForestTest, SliceRectValidation) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1})};
  VectorViewProvider provider;
  provider.Add(views[0], {1, 1}, AggValue{1, 1});
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &provider));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  // Wrong binding arity.
  EXPECT_FALSE(tree->SliceRect(1, {std::nullopt}).ok());
  // Unknown view.
  EXPECT_FALSE(tree->SliceRect(99, {}).ok());
  ASSERT_OK_AND_ASSIGN(Rect rect,
                       tree->SliceRect(1, {Coord{5}, std::nullopt}));
  EXPECT_EQ(rect.lo[0], 5u);
  EXPECT_EQ(rect.hi[0], 5u);
  EXPECT_EQ(rect.lo[1], 1u);  // Open dims exclude 0.
  EXPECT_EQ(rect.hi[1], kCoordMax);
}

TEST_F(ForestTest, TreeForUnknownViewFails) {
  std::vector<ViewDef> views = {MakeView(1, {0})};
  VectorViewProvider provider;
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &provider));
  EXPECT_FALSE(forest->TreeForView(42).ok());
}

TEST_F(ForestTest, DuplicateViewIdRejected) {
  std::vector<ViewDef> views = {MakeView(1, {0}), MakeView(1, {1})};
  VectorViewProvider provider;
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  EXPECT_FALSE(forest->Build(views, &provider).ok());
}

// --- Merge-pack ----------------------------------------------------------

TEST(MergePointSourceTest, MergesAndCombines) {
  std::vector<PointRecord> a_points, b_points;
  auto mk = [](uint32_t x, uint32_t y, int64_t sum) {
    PointRecord rec;
    rec.view_id = 1;
    rec.coords[0] = x;
    rec.coords[1] = y;
    rec.agg = AggValue{sum, 1};
    return rec;
  };
  a_points = {mk(1, 1, 10), mk(3, 1, 30), mk(1, 2, 100)};
  b_points = {mk(2, 1, 20), mk(3, 1, 5), mk(5, 3, 50)};
  VectorPointSource a(a_points), b(b_points);
  MergePointSource merged(&a, &b, 2);
  std::vector<PointRecord> out;
  while (true) {
    const PointRecord* rec = nullptr;
    ASSERT_OK(merged.Next(&rec));
    if (rec == nullptr) break;
    out.push_back(*rec);
  }
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].coords[0], 1u);
  EXPECT_EQ(out[1].coords[0], 2u);
  EXPECT_EQ(out[2].coords[0], 3u);
  EXPECT_EQ(out[2].agg.sum, 35);   // Combined.
  EXPECT_EQ(out[2].agg.count, 2u);
  EXPECT_EQ(out[3].coords[1], 2u);
  EXPECT_EQ(out[4].coords[1], 3u);
}

TEST(MergePointSourceTest, EmptySides) {
  std::vector<PointRecord> points(1);
  points[0].view_id = 1;
  points[0].coords[0] = 7;
  {
    VectorPointSource a(points), b({});
    MergePointSource merged(&a, &b, 1);
    const PointRecord* rec = nullptr;
    ASSERT_OK(merged.Next(&rec));
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->coords[0], 7u);
    ASSERT_OK(merged.Next(&rec));
    EXPECT_EQ(rec, nullptr);
  }
  {
    VectorPointSource a({}), b({});
    MergePointSource merged(&a, &b, 1);
    const PointRecord* rec = nullptr;
    ASSERT_OK(merged.Next(&rec));
    EXPECT_EQ(rec, nullptr);
  }
}

TEST_F(ForestTest, ApplyDeltaMergePacks) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1}), MakeView(2, {0})};
  VectorViewProvider base;
  for (uint32_t p = 1; p <= 50; ++p) {
    for (uint32_t s = 1; s <= 4; ++s) {
      base.Add(views[0], {p, s}, AggValue{int64_t(p), 1});
    }
    base.Add(views[1], {p}, AggValue{int64_t(4 * p), 4});
  }
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &base));
  const uint64_t points_before = forest->TotalPoints();

  // Delta: updates to existing groups (p <= 50) and brand-new groups.
  VectorViewProvider delta;
  delta.Add(views[0], {10, 1}, AggValue{1000, 1});
  delta.Add(views[0], {60, 1}, AggValue{600, 1});
  delta.Add(views[1], {10}, AggValue{1000, 1});
  delta.Add(views[1], {60}, AggValue{600, 1});
  ASSERT_OK(forest->ApplyDelta(&delta));
  EXPECT_EQ(forest->TotalPoints(), points_before + 2);

  // Existing group merged.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  int64_t sum = 0;
  ASSERT_OK(tree->QuerySlice(1, {Coord{10}, Coord{1}},
                             [&](const Coord*, const AggValue& agg) {
                               sum = agg.sum;
                             }));
  EXPECT_EQ(sum, 10 + 1000);
  // New group present.
  int found = 0;
  ASSERT_OK(tree->QuerySlice(1, {Coord{60}, Coord{1}},
                             [&](const Coord*, const AggValue& agg) {
                               EXPECT_EQ(agg.sum, 600);
                               ++found;
                             }));
  EXPECT_EQ(found, 1);
  // Untouched group unchanged.
  ASSERT_OK(tree->QuerySlice(1, {Coord{20}, Coord{2}},
                             [&](const Coord*, const AggValue& agg) {
                               EXPECT_EQ(agg.sum, 20);
                             }));
}

TEST_F(ForestTest, RepeatedDeltasAccumulate) {
  std::vector<ViewDef> views = {MakeView(1, {0})};
  VectorViewProvider base;
  base.Add(views[0], {1}, AggValue{1, 1});
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &base));
  for (int i = 0; i < 5; ++i) {
    VectorViewProvider delta;
    delta.Add(views[0], {1}, AggValue{10, 1});
    ASSERT_OK(forest->ApplyDelta(&delta));
  }
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  int64_t sum = 0;
  uint32_t count = 0;
  ASSERT_OK(tree->QuerySlice(1, {Coord{1}},
                             [&](const Coord*, const AggValue& agg) {
                               sum = agg.sum;
                               count = agg.count;
                             }));
  EXPECT_EQ(sum, 51);
  EXPECT_EQ(count, 6u);
  EXPECT_EQ(forest->TotalPoints(), 1u);
}

TEST_F(ForestTest, PartialDeltasAnswerLikeMergedDeltas) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1}), MakeView(2, {0})};
  auto make_base = [&](VectorViewProvider* p) {
    for (uint32_t x = 1; x <= 80; ++x) {
      p->Add(views[0], {x, x % 4 + 1}, AggValue{int64_t(x), 1});
      p->Add(views[1], {x}, AggValue{int64_t(x), 1});
    }
  };
  auto make_delta = [&](VectorViewProvider* p, uint32_t shift) {
    p->Add(views[0], {10 + shift, 1}, AggValue{100, 1});
    p->Add(views[0], {200 + shift, 2}, AggValue{7, 1});
    p->Add(views[1], {10 + shift}, AggValue{100, 1});
  };

  // Forest A: two partial (delta-tree) refreshes.
  CubetreeForest::Options options_a;
  options_a.dir = dir_;
  options_a.name = "partial";
  ASSERT_OK_AND_ASSIGN(auto partial,
                       CubetreeForest::Create(options_a, pool_.get()));
  VectorViewProvider base_a;
  make_base(&base_a);
  ASSERT_OK(partial->Build(views, &base_a));
  for (uint32_t k = 0; k < 2; ++k) {
    VectorViewProvider delta;
    make_delta(&delta, k);
    ASSERT_OK(partial->ApplyDeltaPartial(&delta));
  }
  EXPECT_GT(partial->TotalDeltas(), 0u);

  // Forest B: same increments via full merge-packs.
  CubetreeForest::Options options_b;
  options_b.dir = dir_;
  options_b.name = "merged";
  ASSERT_OK_AND_ASSIGN(auto merged,
                       CubetreeForest::Create(options_b, pool_.get()));
  VectorViewProvider base_b;
  make_base(&base_b);
  ASSERT_OK(merged->Build(views, &base_b));
  for (uint32_t k = 0; k < 2; ++k) {
    VectorViewProvider delta;
    make_delta(&delta, k);
    ASSERT_OK(merged->ApplyDelta(&delta));
  }

  // Both forests must agree on every group of both views (the partial
  // forest emits per-tree, so aggregate across emissions).
  auto collect = [&](CubetreeForest* forest, uint32_t view_id,
                     uint8_t arity) {
    std::map<std::vector<Coord>, AggValue> out;
    auto tree_result = forest->TreeForView(view_id);
    EXPECT_TRUE(tree_result.ok());
    std::vector<std::optional<Coord>> open(arity, std::nullopt);
    EXPECT_OK((*tree_result)
                  ->QuerySlice(view_id, open,
                               [&](const Coord* coords,
                                   const AggValue& agg) {
                                 out[std::vector<Coord>(coords,
                                                        coords + arity)]
                                     .Merge(agg);
                               }));
    return out;
  };
  for (const ViewDef& view : views) {
    auto a = collect(partial.get(), view.id, view.arity());
    auto b = collect(merged.get(), view.id, view.arity());
    ASSERT_EQ(a, b) << "view " << view.id;
  }

  // Compaction folds the deltas away and preserves the answers.
  auto before = collect(partial.get(), 1, 2);
  ASSERT_OK(partial->Compact());
  EXPECT_EQ(partial->TotalDeltas(), 0u);
  auto after = collect(partial.get(), 1, 2);
  EXPECT_EQ(before, after);
  for (size_t t = 0; t < partial->num_trees(); ++t) {
    EXPECT_OK(partial->tree(t)->rtree()->Validate());
  }
}

// Regression: Compact() used to read trees_ before taking the refresh
// lock. The unlocked pre-check is gone; the not-built error must still
// surface through ApplyDelta's locked check.
TEST_F(ForestTest, CompactBeforeBuildFails) {
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  Status status = forest->Compact();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST_F(ForestTest, PartialDeltasSurviveReopen) {
  std::vector<ViewDef> views = {MakeView(1, {0})};
  CubetreeForest::Options options;
  options.dir = dir_;
  options.name = "persist_delta";
  {
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Create(options, pool_.get()));
    VectorViewProvider base;
    base.Add(views[0], {1}, AggValue{5, 1});
    ASSERT_OK(forest->Build(views, &base));
    VectorViewProvider delta;
    delta.Add(views[0], {1}, AggValue{10, 1});
    delta.Add(views[0], {2}, AggValue{20, 1});
    ASSERT_OK(forest->ApplyDeltaPartial(&delta));
  }
  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Open(options, pool_.get()));
  EXPECT_EQ(forest->TotalDeltas(), 1u);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  std::map<Coord, AggValue> got;
  ASSERT_OK(tree->QuerySlice(1, {std::nullopt},
                             [&](const Coord* coords, const AggValue& agg) {
                               got[coords[0]].Merge(agg);
                             }));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], (AggValue{15, 2}));
  EXPECT_EQ(got[2], (AggValue{20, 1}));
}

TEST_F(ForestTest, DeltaBeforeBuildFails) {
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  VectorViewProvider delta;
  EXPECT_FALSE(forest->ApplyDelta(&delta).ok());
}

TEST_F(ForestTest, ReopenFromManifest) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1}), MakeView(2, {0}),
                                MakeView(3, {})};
  CubetreeForest::Options options;
  options.dir = dir_;
  options.name = "persist";
  VectorViewProvider base;
  for (uint32_t p = 1; p <= 100; ++p) {
    base.Add(views[0], {p, p % 5 + 1}, AggValue{int64_t(p), 1});
    base.Add(views[1], {p}, AggValue{int64_t(p), 1});
  }
  base.Add(views[2], {}, AggValue{5050, 100});
  {
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Create(options, pool_.get()));
    ASSERT_OK(forest->Build(views, &base));
  }  // Forest object gone; only the files and the manifest remain.

  ASSERT_OK_AND_ASSIGN(auto forest,
                       CubetreeForest::Open(options, pool_.get()));
  EXPECT_EQ(forest->views().size(), 3u);
  EXPECT_EQ(forest->TotalPoints(), 201u);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  int64_t sum = -1;
  ASSERT_OK(tree->QuerySlice(1, {Coord{42}, Coord{3}},
                             [&](const Coord*, const AggValue& agg) {
                               sum = agg.sum;
                             }));
  EXPECT_EQ(sum, 42);
  ASSERT_OK(tree->rtree()->Validate());

  // Updates persist across another reopen, and generations advance.
  VectorViewProvider delta;
  delta.Add(views[1], {42}, AggValue{1000, 1});
  delta.Add(views[0], {42, 3}, AggValue{1000, 1});
  delta.Add(views[2], {}, AggValue{2000, 2});
  ASSERT_OK(forest->ApplyDelta(&delta));
  {
    ASSERT_OK_AND_ASSIGN(auto reopened,
                         CubetreeForest::Open(options, pool_.get()));
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> t2, reopened->TreeForView(1));
    int64_t sum2 = -1;
    ASSERT_OK(t2->QuerySlice(1, {Coord{42}, Coord{3}},
                             [&](const Coord*, const AggValue& agg) {
                               sum2 = agg.sum;
                             }));
    EXPECT_EQ(sum2, 1042);
  }
}

TEST_F(ForestTest, CorruptManifestRejected) {
  std::vector<ViewDef> views = {MakeView(1, {0})};
  CubetreeForest::Options options;
  options.dir = dir_;
  options.name = "corrupt";
  {
    ASSERT_OK_AND_ASSIGN(auto forest,
                         CubetreeForest::Create(options, pool_.get()));
    VectorViewProvider base;
    base.Add(views[0], {1}, AggValue{1, 1});
    ASSERT_OK(forest->Build(views, &base));
  }
  // Truncate the manifest mid-line.
  const std::string path = dir_ + "/corrupt.manifest";
  ASSERT_EQ(truncate(path.c_str(), 40), 0);
  auto result = CubetreeForest::Open(options, pool_.get());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption())
      << result.status().ToString();
}

TEST_F(ForestTest, BoxRectClampsZeroLowerBound) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1})};
  VectorViewProvider base;
  base.Add(views[0], {1, 1}, AggValue{1, 1});
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &base));
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<Cubetree> tree, forest->TreeForView(1));
  // A caller-provided interval starting at 0 must still exclude the zero
  // plane (it belongs to lower-arity views).
  ASSERT_OK_AND_ASSIGN(Rect rect, tree->BoxRect(1, {{0, 10}, {0, 5}}));
  EXPECT_EQ(rect.lo[0], 1u);
  EXPECT_EQ(rect.lo[1], 1u);
  EXPECT_EQ(rect.hi[0], 10u);
}

TEST_F(ForestTest, OpenWithoutManifestFails) {
  CubetreeForest::Options options;
  options.dir = dir_;
  options.name = "missing";
  EXPECT_TRUE(CubetreeForest::Open(options, pool_.get())
                  .status()
                  .IsNotFound());
}

TEST_F(ForestTest, StorageAccounting) {
  std::vector<ViewDef> views = {MakeView(1, {0, 1})};
  VectorViewProvider base;
  for (uint32_t p = 1; p <= 2000; ++p) {
    base.Add(views[0], {p, p % 7 + 1}, AggValue{1, 1});
  }
  ASSERT_OK_AND_ASSIGN(auto forest, MakeForest());
  ASSERT_OK(forest->Build(views, &base));
  EXPECT_GT(forest->TotalSizeBytes(), 0u);
  // Destroy removes all files.
  ASSERT_OK(forest->Destroy());
  EXPECT_EQ(forest->TotalSizeBytes(), 0u);
}

}  // namespace
}  // namespace cubetree
