#include <gtest/gtest.h>

#include <set>

#include "engine/warehouse.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

/// End-to-end warehouse test at a small scale factor: runs the paper's
/// entire experimental protocol (generate, select, load both
/// configurations, query both, refresh both) and checks correctness plus
/// the qualitative shape of the headline claims.
class WarehouseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WarehouseOptions options;
    options.scale_factor = 0.002;  // ~12k fact rows: fast but non-trivial.
    options.dir = MakeTestDir("warehouse");
    options.buffer_pool_pages = 1024;
    options.sort_budget_bytes = 1 << 20;
    auto result = Warehouse::Create(options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    warehouse_ = std::move(result).value();
  }

  std::unique_ptr<Warehouse> warehouse_;
};

TEST_F(WarehouseTest, SelectionMatchesPaperConfiguration) {
  const SelectionResult& selection = warehouse_->selection();
  std::vector<uint32_t> masks;
  for (const ViewDef& v : selection.views) masks.push_back(v.AttrMask());
  EXPECT_EQ(masks,
            (std::vector<uint32_t>{0b111, 0b011, 0b100, 0b010, 0b001, 0}));
  ASSERT_EQ(selection.indices.size(), 3u);
  std::set<std::vector<uint32_t>> keys;
  for (const IndexDef& index : selection.indices) {
    keys.insert(index.key_attrs);
  }
  EXPECT_TRUE(keys.count({2, 1, 0}));  // I_csp
  EXPECT_TRUE(keys.count({0, 2, 1}));  // I_pcs
  EXPECT_TRUE(keys.count({1, 0, 2}));  // I_spc

  // Cubetree configuration: the 6 views + 2 replicas of the top view.
  EXPECT_EQ(warehouse_->cubetree_views().size(), 8u);
}

TEST_F(WarehouseTest, FullProtocolLoadQueryUpdate) {
  // --- Load both configurations (Table 6 shape) ---
  ASSERT_OK_AND_ASSIGN(LoadReport conv_load,
                       warehouse_->LoadConventional());
  ASSERT_OK_AND_ASSIGN(LoadReport cbt_load, warehouse_->LoadCubetrees());
  EXPECT_GT(conv_load.views.wall_seconds, 0.0);
  EXPECT_GT(conv_load.indices.io.TotalOps(), 0u);
  EXPECT_GT(cbt_load.views.io.TotalOps(), 0u);
  // Cubetree load writes sequentially: almost no random writes.
  EXPECT_LT(cbt_load.views.io.random_writes,
            cbt_load.views.io.sequential_writes / 4 + 16);

  // --- Storage (the 2:1 claim's direction) ---
  const uint64_t conv_bytes = warehouse_->conventional()->StorageBytes();
  const uint64_t cbt_bytes = warehouse_->cubetrees()->StorageBytes();
  EXPECT_LT(cbt_bytes, conv_bytes);

  // --- Queries: both engines agree on 100 random slice queries ---
  SliceQueryGenerator gen = warehouse_->MakeQueryGenerator(1);
  const CubeLattice& lattice = warehouse_->lattice();
  int compared = 0;
  for (int i = 0; i < 100; ++i) {
    SliceQuery query = gen.UniformOverLattice(lattice,
                                              /*exclude_unbound=*/true,
                                              /*skip_none_node=*/true);
    auto conv = warehouse_->conventional()->Execute(query, nullptr);
    ASSERT_TRUE(conv.ok()) << conv.status().ToString();
    auto cbt = warehouse_->cubetrees()->Execute(query, nullptr);
    ASSERT_TRUE(cbt.ok()) << cbt.status().ToString();
    conv->SortRows();
    cbt->SortRows();
    ASSERT_TRUE(conv->SameRowsAs(*cbt))
        << "disagreement on " << query.ToString(warehouse_->schema());
    ++compared;
  }
  EXPECT_EQ(compared, 100);

  // --- Refresh (Table 7 shape) ---
  ASSERT_OK_AND_ASSIGN(PhaseReport cbt_update,
                       warehouse_->UpdateCubetrees(0));
  ASSERT_OK_AND_ASSIGN(PhaseReport conv_update,
                       warehouse_->UpdateConventionalIncremental(0));
  EXPECT_GT(conv_update.io.TotalOps(), 0u);
  // The conventional path random-writes; merge-pack does not (beyond
  // metadata pages).
  EXPECT_GT(conv_update.io.random_reads + conv_update.io.random_writes,
            cbt_update.io.random_reads + cbt_update.io.random_writes);

  // Post-update agreement on fresh queries.
  SliceQueryGenerator gen2 = warehouse_->MakeQueryGenerator(2);
  for (int i = 0; i < 40; ++i) {
    SliceQuery query = gen2.UniformOverLattice(lattice, true, true);
    auto conv = warehouse_->conventional()->Execute(query, nullptr);
    ASSERT_TRUE(conv.ok());
    auto cbt = warehouse_->cubetrees()->Execute(query, nullptr);
    ASSERT_TRUE(cbt.ok());
    conv->SortRows();
    cbt->SortRows();
    ASSERT_TRUE(conv->SameRowsAs(*cbt))
        << "post-update disagreement on "
        << query.ToString(warehouse_->schema());
  }

  // --- Recompute-from-scratch also lands in the same state ---
  ASSERT_OK_AND_ASSIGN(PhaseReport recompute,
                       warehouse_->UpdateConventionalRecompute(0));
  EXPECT_GT(recompute.wall_seconds, 0.0);
  SliceQueryGenerator gen3 = warehouse_->MakeQueryGenerator(3);
  for (int i = 0; i < 20; ++i) {
    SliceQuery query = gen3.UniformOverLattice(lattice, true, true);
    auto conv = warehouse_->conventional()->Execute(query, nullptr);
    ASSERT_TRUE(conv.ok());
    auto cbt = warehouse_->cubetrees()->Execute(query, nullptr);
    ASSERT_TRUE(cbt.ok());
    conv->SortRows();
    cbt->SortRows();
    ASSERT_TRUE(conv->SameRowsAs(*cbt))
        << "post-recompute disagreement on "
        << query.ToString(warehouse_->schema());
  }
}

TEST_F(WarehouseTest, ScaledStatisticsSelectionDiffers) {
  // With paper_statistics off at this tiny scale, |suppkey x custkey|
  // stops being ~|F| and the greedy genuinely changes its selection.
  WarehouseOptions options;
  options.scale_factor = 0.002;
  options.dir = MakeTestDir("warehouse_scaled");
  options.paper_statistics = false;
  ASSERT_OK_AND_ASSIGN(auto scaled, Warehouse::Create(options));
  EXPECT_EQ(scaled->selection().views[0].AttrMask(), 0b111u)
      << "top view is always first";
  bool same = scaled->selection().views.size() ==
              warehouse_->selection().views.size();
  if (same) {
    for (size_t i = 0; i < scaled->selection().views.size(); ++i) {
      same &= scaled->selection().views[i].AttrMask() ==
              warehouse_->selection().views[i].AttrMask();
    }
  }
  EXPECT_FALSE(same) << "scaled statistics should alter the selection";
}

TEST_F(WarehouseTest, DeltaTreeRefreshThenCompactionAgrees) {
  ASSERT_OK(warehouse_->LoadConventional().status());
  ASSERT_OK(warehouse_->LoadCubetrees().status());
  // Same increment through both refresh paths: per-tuple on the
  // conventional side, delta trees on the cubetree side.
  ASSERT_OK(warehouse_->UpdateConventionalIncremental(0).status());
  ASSERT_OK_AND_ASSIGN(PhaseReport partial,
                       warehouse_->UpdateCubetreesPartial(0));
  EXPECT_GT(partial.io.TotalOps(), 0u);
  EXPECT_GT(warehouse_->cubetrees()->forest()->TotalDeltas(), 0u);
  SliceQueryGenerator gen = warehouse_->MakeQueryGenerator(8);
  auto agree = [&](int n) {
    for (int i = 0; i < n; ++i) {
      SliceQuery query = gen.UniformOverLattice(warehouse_->lattice(),
                                                true, true);
      auto a = warehouse_->conventional()->Execute(query, nullptr);
      ASSERT_TRUE(a.ok());
      auto b = warehouse_->cubetrees()->Execute(query, nullptr);
      ASSERT_TRUE(b.ok());
      a->SortRows();
      b->SortRows();
      ASSERT_TRUE(a->SameRowsAs(*b)) << query.ToString(warehouse_->schema());
    }
  };
  agree(30);
  ASSERT_OK_AND_ASSIGN(PhaseReport compaction,
                       warehouse_->CompactCubetrees());
  EXPECT_EQ(warehouse_->cubetrees()->forest()->TotalDeltas(), 0u);
  agree(20);
}

TEST_F(WarehouseTest, UpdateBeforeLoadFails) {
  EXPECT_FALSE(warehouse_->UpdateCubetrees(0).ok());
  EXPECT_FALSE(warehouse_->UpdateConventionalIncremental(0).ok());
}

TEST_F(WarehouseTest, ModeledIoFavorsCubetreesOnUpdates) {
  ASSERT_OK(warehouse_->LoadConventional().status());
  ASSERT_OK(warehouse_->LoadCubetrees().status());
  ASSERT_OK_AND_ASSIGN(PhaseReport cbt, warehouse_->UpdateCubetrees(0));
  ASSERT_OK_AND_ASSIGN(PhaseReport conv,
                       warehouse_->UpdateConventionalIncremental(0));
  // Under the 1997 disk model the per-tuple path pays a seek per touched
  // page; the merge-pack path streams. Even at tiny scale the gap shows.
  EXPECT_GT(conv.modeled_seconds, cbt.modeled_seconds)
      << "conventional " << conv.modeled_seconds << "s vs cubetree "
      << cbt.modeled_seconds << "s";
}

}  // namespace
}  // namespace cubetree
