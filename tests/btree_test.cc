#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/btree.h"
#include "common/coding.h"
#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("btree");
    pool_ = std::make_unique<BufferPool>(64);
  }

  std::unique_ptr<BPlusTree> MakeTree(uint8_t key_parts,
                                      uint32_t value_size = 8) {
    BTreeOptions options;
    options.key_parts = key_parts;
    options.value_size = value_size;
    auto result = BPlusTree::Create(
        dir_ + "/t" + std::to_string(++count_) + ".idx", options,
        pool_.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::string dir_;
  std::unique_ptr<BufferPool> pool_;
  int count_ = 0;
};

TEST_F(BTreeTest, InsertLookupSingleKey) {
  auto tree = MakeTree(1);
  uint32_t key[1] = {42};
  char value[8];
  EncodeFixed64(value, 4242);
  ASSERT_OK(tree->Insert(key, value));

  char out[8];
  ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
  EXPECT_TRUE(found);
  EXPECT_EQ(DecodeFixed64(out), 4242u);

  uint32_t missing[1] = {43};
  ASSERT_OK_AND_ASSIGN(found, tree->Lookup(missing, out));
  EXPECT_FALSE(found);
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  auto tree = MakeTree(1);
  uint32_t key[1] = {7};
  char value[8] = {0};
  ASSERT_OK(tree->Insert(key, value));
  EXPECT_EQ(tree->Insert(key, value).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BTreeTest, UpdateExistingValue) {
  auto tree = MakeTree(2);
  uint32_t key[2] = {1, 2};
  char value[8];
  EncodeFixed64(value, 10);
  ASSERT_OK(tree->Insert(key, value));
  EncodeFixed64(value, 20);
  ASSERT_OK(tree->Update(key, value));
  char out[8];
  ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
  ASSERT_TRUE(found);
  EXPECT_EQ(DecodeFixed64(out), 20u);

  uint32_t missing[2] = {9, 9};
  EXPECT_TRUE(tree->Update(missing, value).IsNotFound());
}

TEST_F(BTreeTest, ManyRandomInsertsSplitsAndHeightGrowth) {
  auto tree = MakeTree(1);
  Rng rng(3);
  std::map<uint32_t, uint64_t> reference;
  char value[8];
  while (reference.size() < 20000) {
    const uint32_t k = static_cast<uint32_t>(rng.Uniform(1u << 30));
    if (reference.count(k)) continue;
    reference[k] = k * 3ull;
    uint32_t key[1] = {k};
    EncodeFixed64(value, k * 3ull);
    ASSERT_OK(tree->Insert(key, value));
  }
  EXPECT_EQ(tree->num_entries(), 20000u);
  EXPECT_GE(tree->height(), 2u);

  // Spot-check lookups.
  char out[8];
  int i = 0;
  for (const auto& [k, v] : reference) {
    if (++i % 37 != 0) continue;
    uint32_t key[1] = {k};
    ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
    ASSERT_TRUE(found) << k;
    ASSERT_EQ(DecodeFixed64(out), v);
  }

  // Full scan returns everything in order.
  uint32_t low[1] = {0}, high[1] = {0xFFFFFFFFu};
  BPlusTree::Iterator it = tree->Scan(low, high);
  auto expect = reference.begin();
  while (true) {
    const uint32_t* key = nullptr;
    const char* val = nullptr;
    ASSERT_OK(it.Next(&key, &val));
    if (key == nullptr) break;
    ASSERT_NE(expect, reference.end());
    ASSERT_EQ(key[0], expect->first);
    ASSERT_EQ(DecodeFixed64(val), expect->second);
    ++expect;
  }
  EXPECT_EQ(expect, reference.end());
}

TEST_F(BTreeTest, CompositeKeyLexicographicOrder) {
  auto tree = MakeTree(3);
  char value[8] = {0};
  // Insert in shuffled order.
  std::vector<std::array<uint32_t, 3>> keys;
  for (uint32_t a = 1; a <= 5; ++a) {
    for (uint32_t b = 1; b <= 5; ++b) {
      for (uint32_t c = 1; c <= 5; ++c) keys.push_back({a, b, c});
    }
  }
  Rng rng(4);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  for (const auto& k : keys) {
    ASSERT_OK(tree->Insert(k.data(), value));
  }
  // Scan a composite prefix: a=3 -> exactly 25 entries, ordered by (b,c).
  uint32_t low[3] = {3, 0, 0}, high[3] = {3, 0xFFFFFFFFu, 0xFFFFFFFFu};
  BPlusTree::Iterator it = tree->Scan(low, high);
  uint32_t expected_b = 1, expected_c = 1;
  int n = 0;
  while (true) {
    const uint32_t* key = nullptr;
    const char* val = nullptr;
    ASSERT_OK(it.Next(&key, &val));
    if (key == nullptr) break;
    EXPECT_EQ(key[0], 3u);
    EXPECT_EQ(key[1], expected_b);
    EXPECT_EQ(key[2], expected_c);
    if (++expected_c > 5) {
      expected_c = 1;
      ++expected_b;
    }
    ++n;
  }
  EXPECT_EQ(n, 25);
}

TEST_F(BTreeTest, RangeScanBounds) {
  auto tree = MakeTree(1);
  char value[8] = {0};
  for (uint32_t k = 10; k <= 100; k += 10) {
    uint32_t key[1] = {k};
    ASSERT_OK(tree->Insert(key, value));
  }
  uint32_t low[1] = {25}, high[1] = {75};
  BPlusTree::Iterator it = tree->Scan(low, high);
  std::vector<uint32_t> seen;
  while (true) {
    const uint32_t* key = nullptr;
    const char* val = nullptr;
    ASSERT_OK(it.Next(&key, &val));
    if (key == nullptr) break;
    seen.push_back(key[0]);
  }
  EXPECT_EQ(seen, (std::vector<uint32_t>{30, 40, 50, 60, 70}));
}

TEST_F(BTreeTest, EmptyTreeScanAndLookup) {
  auto tree = MakeTree(1);
  uint32_t key[1] = {5};
  char out[8];
  ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
  EXPECT_FALSE(found);
  uint32_t low[1] = {0}, high[1] = {0xFFFFFFFFu};
  BPlusTree::Iterator it = tree->Scan(low, high);
  const uint32_t* k = nullptr;
  const char* v = nullptr;
  ASSERT_OK(it.Next(&k, &v));
  EXPECT_EQ(k, nullptr);
}

class VectorEntrySource : public BPlusTree::EntrySource {
 public:
  VectorEntrySource(const std::vector<std::pair<uint32_t, uint64_t>>* entries)
      : entries_(entries) {}

  Status Next(const uint32_t** key, const char** value) override {
    if (pos_ >= entries_->size()) {
      *key = nullptr;
      *value = nullptr;
      return Status::OK();
    }
    key_[0] = (*entries_)[pos_].first;
    EncodeFixed64(value_, (*entries_)[pos_].second);
    ++pos_;
    *key = key_;
    *value = value_;
    return Status::OK();
  }

 private:
  const std::vector<std::pair<uint32_t, uint64_t>>* entries_;
  size_t pos_ = 0;
  uint32_t key_[1];
  char value_[8];
};

TEST_F(BTreeTest, BulkBuildMatchesInserts) {
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  for (uint32_t i = 0; i < 50000; ++i) {
    entries.push_back({i * 2 + 1, i * 7ull});
  }
  auto tree = MakeTree(1);
  VectorEntrySource source(&entries);
  ASSERT_OK(tree->BulkBuild(&source));
  EXPECT_EQ(tree->num_entries(), entries.size());
  EXPECT_GE(tree->height(), 2u);

  char out[8];
  for (uint32_t i = 0; i < 50000; i += 997) {
    uint32_t key[1] = {i * 2 + 1};
    ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
    ASSERT_TRUE(found) << i;
    ASSERT_EQ(DecodeFixed64(out), i * 7ull);
  }
  // Absent (even) keys miss.
  uint32_t even[1] = {40};
  ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(even, out));
  EXPECT_FALSE(found);

  // Ordered scan of a sub-range.
  uint32_t low[1] = {1001}, high[1] = {1101};
  BPlusTree::Iterator it = tree->Scan(low, high);
  uint32_t expected = 1001;
  while (true) {
    const uint32_t* key = nullptr;
    const char* val = nullptr;
    ASSERT_OK(it.Next(&key, &val));
    if (key == nullptr) break;
    ASSERT_EQ(key[0], expected);
    expected += 2;
  }
  EXPECT_EQ(expected, 1103u);
}

TEST_F(BTreeTest, BulkBuildThenInsertMore) {
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  for (uint32_t i = 1; i <= 1000; ++i) entries.push_back({i * 3, i});
  auto tree = MakeTree(1);
  VectorEntrySource source(&entries);
  ASSERT_OK(tree->BulkBuild(&source));
  // Packed leaves must still absorb subsequent inserts via splits.
  char value[8] = {0};
  for (uint32_t i = 1; i <= 1000; ++i) {
    uint32_t key[1] = {i * 3 + 1};
    ASSERT_OK(tree->Insert(key, value));
  }
  EXPECT_EQ(tree->num_entries(), 2000u);
  char out[8];
  for (uint32_t i = 1; i <= 1000; i += 111) {
    uint32_t key[1] = {i * 3};
    ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
    EXPECT_TRUE(found);
    uint32_t key2[1] = {i * 3 + 1};
    ASSERT_OK_AND_ASSIGN(found, tree->Lookup(key2, out));
    EXPECT_TRUE(found);
  }
}

TEST_F(BTreeTest, BulkBuildEmptySource) {
  std::vector<std::pair<uint32_t, uint64_t>> entries;
  auto tree = MakeTree(1);
  VectorEntrySource source(&entries);
  ASSERT_OK(tree->BulkBuild(&source));
  EXPECT_EQ(tree->num_entries(), 0u);
}

TEST_F(BTreeTest, BulkBuildOnNonEmptyTreeFails) {
  auto tree = MakeTree(1);
  uint32_t key[1] = {1};
  char value[8] = {0};
  ASSERT_OK(tree->Insert(key, value));
  std::vector<std::pair<uint32_t, uint64_t>> entries = {{5, 5}};
  VectorEntrySource source(&entries);
  EXPECT_FALSE(tree->BulkBuild(&source).ok());
}

TEST_F(BTreeTest, WideValuesSupported) {
  auto tree = MakeTree(2, 12);  // e.g. sum + count payload.
  uint32_t key[2] = {3, 4};
  char value[12];
  EncodeFixed64(value, 999);
  EncodeFixed32(value + 8, 5);
  ASSERT_OK(tree->Insert(key, value));
  char out[12];
  ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
  ASSERT_TRUE(found);
  EXPECT_EQ(DecodeFixed64(out), 999u);
  EXPECT_EQ(DecodeFixed32(out + 8), 5u);
}

TEST_F(BTreeTest, SequentialInsertionKeepsWorking) {
  auto tree = MakeTree(1);
  char value[8] = {0};
  for (uint32_t i = 1; i <= 30000; ++i) {
    uint32_t key[1] = {i};
    ASSERT_OK(tree->Insert(key, value));
  }
  EXPECT_EQ(tree->num_entries(), 30000u);
  char out[8];
  for (uint32_t i = 1; i <= 30000; i += 1777) {
    uint32_t key[1] = {i};
    ASSERT_OK_AND_ASSIGN(bool found, tree->Lookup(key, out));
    ASSERT_TRUE(found) << i;
  }
}

TEST_F(BTreeTest, KeyPartsValidation) {
  BTreeOptions options;
  options.key_parts = 0;
  EXPECT_FALSE(BPlusTree::Create(dir_ + "/bad.idx", options, pool_.get())
                   .ok());
  options.key_parts = kMaxBTreeKeyParts + 1;
  EXPECT_FALSE(BPlusTree::Create(dir_ + "/bad2.idx", options, pool_.get())
                   .ok());
}

}  // namespace
}  // namespace cubetree
