// Tests of the src/check invariant-checker subsystem: clean stores must
// produce zero findings, and injected corruption (bit flips in leaf pages,
// internal pages, WAL segments, B-tree pages; manifest tampering; leaked
// pins) must be reported in the right category.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "check/checkers.h"
#include "check/invariant_checker.h"
#include "cubetree/forest.h"
#include "engine/wal.h"
#include "rtree/node.h"
#include "rtree/packed_rtree.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

/// XORs one byte of `path` at `offset` with `mask` (a targeted bit flip).
void FlipByte(const std::string& path, uint64_t offset, char mask) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good());
  byte = static_cast<char>(byte ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

bool HasCode(const CheckReport& report, const std::string& code) {
  for (const Finding& f : report.findings()) {
    if (f.code == code) return true;
  }
  return false;
}

std::string CodeList(const CheckReport& report) {
  std::string out;
  for (const Finding& f : report.findings()) out += f.code + " ";
  return out;
}

// --- CheckReport / InvariantChecker framework ---------------------------

TEST(CheckReportTest, CountsBySeverity) {
  CheckReport report;
  report.AddError("rtree", "pack-order", "broken");
  report.AddWarning("rtree", "leaf-fill", "thin");
  report.AddInfo("wal", "replayed", "ok");
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.findings().size(), 3u);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.ToString().find("pack-order"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"code\":\"pack-order\""),
            std::string::npos);
}

TEST(CheckReportTest, CapsFindingsPerCode) {
  CheckReport report;
  for (size_t i = 0; i < CheckReport::kMaxFindingsPerCode + 5; ++i) {
    report.AddError("rtree", "pack-order", "violation " + std::to_string(i));
  }
  report.AddError("rtree", "mbr-containment", "different code still lands");
  EXPECT_EQ(report.findings().size(), CheckReport::kMaxFindingsPerCode + 1);
  EXPECT_EQ(report.suppressed(), 5u);
  // Suppressed findings still count toward the severity totals.
  EXPECT_EQ(report.errors(), CheckReport::kMaxFindingsPerCode + 6);
}

TEST(InvariantCheckerTest, RunAllTurnsCheckerFailureIntoFinding) {
  class FailingChecker : public Checker {
   public:
    std::string name() const override { return "failing"; }
    Status Run(CheckReport*) override {
      return Status::NotFound("no such file");
    }
  };
  class CleanChecker : public Checker {
   public:
    std::string name() const override { return "fine"; }
    Status Run(CheckReport*) override { return Status::OK(); }
  };
  InvariantChecker driver;
  driver.Add(std::make_unique<FailingChecker>());
  driver.Add(std::make_unique<CleanChecker>());
  EXPECT_EQ(driver.num_checkers(), 2u);
  CheckReport report;
  ASSERT_OK(driver.RunAll(&report));
  EXPECT_TRUE(HasCode(report, "check-failed"));
  EXPECT_EQ(report.errors(), 1u);
}

// --- RTreeChecker -------------------------------------------------------

class RTreeCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("check_rtree");
    path_ = dir_ + "/tree.ctr";
    pool_ = std::make_unique<BufferPool>(256);
    // 2000 arity-1 points of one view: with 511 entries per leaf this makes
    // four leaves (pages 1..4) under one internal root (page 5).
    std::vector<PointRecord> points;
    for (Coord x = 1; x <= 2000; ++x) {
      PointRecord rec;
      rec.view_id = 7;
      rec.coords[0] = x;
      rec.agg = AggValue{static_cast<int64_t>(x), 1};
      points.push_back(rec);
    }
    VectorPointSource source(std::move(points));
    RTreeOptions options;
    options.dims = 1;
    auto built = PackedRTree::Build(path_, options, pool_.get(), &source,
                                    [](uint32_t) -> uint8_t { return 1; });
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    num_leaf_pages_ = (*built)->num_leaf_pages();
    ASSERT_GE(num_leaf_pages_, 2u);
  }

  CheckReport DeepCheck() {
    CheckOptions options;
    options.deep = true;
    RTreeChecker checker(path_, options, [](uint32_t) -> uint8_t {
      return 1;
    });
    CheckReport report;
    EXPECT_OK(checker.Run(&report));
    return report;
  }

  std::string dir_;
  std::string path_;
  std::unique_ptr<BufferPool> pool_;
  uint32_t num_leaf_pages_ = 0;
};

TEST_F(RTreeCheckerTest, CleanTreeHasNoFindings) {
  CheckReport report = DeepCheck();
  EXPECT_EQ(report.errors(), 0u) << report.ToString();
  EXPECT_EQ(report.warnings(), 0u) << report.ToString();
}

TEST_F(RTreeCheckerTest, DetectsLeafBitFlip) {
  // High byte of the first coordinate of leaf page 1, entry 0: the point
  // jumps far ahead of its neighbours, breaking pack order and escaping
  // the parent's MBR.
  FlipByte(path_, 1 * kPageSize + kRNodeHeaderSize + 3, 0x40);
  CheckReport report = DeepCheck();
  EXPECT_GT(report.errors(), 0u);
  EXPECT_TRUE(HasCode(report, "pack-order") ||
              HasCode(report, "mbr-containment"))
      << CodeList(report);
}

TEST_F(RTreeCheckerTest, DetectsInternalBitFlip) {
  // High byte of lo[0] of the root's first MBR: claimed MBR no longer
  // matches the child's actual bounding box.
  const uint64_t root_page = num_leaf_pages_ + 1;
  FlipByte(path_, root_page * kPageSize + kRNodeHeaderSize + 3, 0x40);
  CheckReport report = DeepCheck();
  EXPECT_GT(report.errors(), 0u);
  EXPECT_TRUE(HasCode(report, "mbr-containment")) << CodeList(report);
}

TEST_F(RTreeCheckerTest, DetectsMetaBitFlip) {
  FlipByte(path_, 0, 0x01);  // Magic.
  CheckReport report = DeepCheck();
  EXPECT_TRUE(HasCode(report, "meta-magic")) << CodeList(report);
}

// --- ForestChecker ------------------------------------------------------

class ForestCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("check_forest");
    pool_ = std::make_unique<BufferPool>(256);
    CubetreeForest::Options options;
    options.dir = dir_;
    options.name = "f";
    auto forest = std::move(CubetreeForest::Create(options, pool_.get())
                                .value());
    // Arity-1 and arity-2 views: SelectMapping places both in one 2-d tree.
    ViewDef v1;
    v1.id = 1;
    v1.attrs = {0};
    ViewDef v2;
    v2.id = 2;
    v2.attrs = {0, 1};
    struct Provider : CubetreeForest::ViewDataProvider {
      Result<std::unique_ptr<RecordStream>> OpenViewStream(
          const ViewDef& view) override {
        std::vector<char> flat;
        std::vector<char> rec(ViewRecordBytes(view.arity()));
        // Pack order sorts by the last coordinate first, so keep the
        // second coordinate constant and ascend on the first.
        for (Coord x = 1; x <= 100; ++x) {
          Coord coords[kMaxDims] = {x, 5};
          EncodeViewRecord(rec.data(), coords, view.arity(),
                           AggValue{static_cast<int64_t>(x), 1});
          flat.insert(flat.end(), rec.begin(), rec.end());
        }
        return std::unique_ptr<RecordStream>(new MemoryRecordStream(
            std::move(flat), ViewRecordBytes(view.arity())));
      }
    } provider;
    ASSERT_OK(forest->Build({v1, v2}, &provider));
    manifest_path_ = dir_ + "/f.manifest";
  }

  CheckReport Check() {
    BufferPool check_pool(256);
    CheckOptions options;
    options.deep = true;
    ForestChecker checker(dir_, "f", &check_pool, options);
    CheckReport report;
    EXPECT_OK(checker.Run(&report));
    return report;
  }

  std::string dir_;
  std::string manifest_path_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(ForestCheckerTest, CleanForestHasNoFindings) {
  CheckReport report = Check();
  EXPECT_EQ(report.errors(), 0u) << report.ToString();
  EXPECT_EQ(report.warnings(), 0u) << report.ToString();
}

TEST_F(ForestCheckerTest, DetectsSelectMappingViolation) {
  // Tamper with the manifest: list view 1 twice on its tree line, so the
  // tree claims two views of arity 1.
  std::ifstream in(manifest_path_);
  ASSERT_TRUE(in.is_open());
  std::string text, line;
  while (std::getline(in, line)) {
    if (line.rfind("tree ", 0) == 0) line += " 1";
    text += line + "\n";
  }
  in.close();
  std::ofstream out(manifest_path_, std::ios::trunc);
  out << text;
  out.close();

  CheckReport report = Check();
  EXPECT_GT(report.errors(), 0u);
  EXPECT_TRUE(HasCode(report, "select-mapping")) << CodeList(report);
  EXPECT_TRUE(HasCode(report, "duplicate-placement")) << CodeList(report);
}

TEST_F(ForestCheckerTest, DetectsManifestHeaderCorruption) {
  FlipByte(manifest_path_, 0, 0x20);
  CheckReport report = Check();
  EXPECT_TRUE(HasCode(report, "manifest-corrupt")) << CodeList(report);
}

TEST_F(ForestCheckerTest, DeepModeFindsTreeFileCorruption) {
  // First Build writes generation 0 of tree 0.
  const std::string tree_path = dir_ + "/f_t0_g0.ctr";
  FlipByte(tree_path, 1 * kPageSize + kRNodeHeaderSize + 3, 0x40);
  CheckReport report = Check();
  EXPECT_GT(report.errors(), 0u) << report.ToString();
}

// --- WalChecker ---------------------------------------------------------

class WalCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("check_wal");
    path_ = dir_ + "/log.wal";
    auto wal = std::move(WriteAheadLog::Create(path_).value());
    std::string record(100, 'r');
    for (int i = 0; i < 20; ++i) {
      record[0] = static_cast<char>('a' + i);
      ASSERT_OK(wal->LogRecord(record.data(), record.size()));
    }
    ASSERT_OK(wal->Force());
  }

  CheckReport Check() {
    WalChecker checker(path_);
    CheckReport report;
    EXPECT_OK(checker.Run(&report));
    return report;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalCheckerTest, CleanLogHasNoErrors) {
  CheckReport report = Check();
  EXPECT_EQ(report.errors(), 0u) << report.ToString();
  EXPECT_EQ(report.warnings(), 0u) << report.ToString();
  EXPECT_TRUE(HasCode(report, "replayed"));
}

TEST_F(WalCheckerTest, DetectsPayloadBitFlip) {
  // Byte 10 of the third record's payload.
  const uint64_t offset =
      2 * (100 + WriteAheadLog::kRecordHeader) + WriteAheadLog::kRecordHeader +
      10;
  FlipByte(path_, offset, 0x01);
  CheckReport report = Check();
  EXPECT_TRUE(HasCode(report, "framing-or-crc")) << CodeList(report);
}

TEST_F(WalCheckerTest, DetectsHeaderBitFlip) {
  // Length field of the first record.
  FlipByte(path_, 0, 0x10);
  CheckReport report = Check();
  EXPECT_TRUE(HasCode(report, "framing-or-crc")) << CodeList(report);
}

// --- BTreeChecker -------------------------------------------------------

class BTreeCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("check_btree");
    path_ = dir_ + "/index.ctb";
    pool_ = std::make_unique<BufferPool>(256);
    BTreeOptions options;
    options.key_parts = 1;
    options.value_size = 8;
    auto tree =
        std::move(BPlusTree::Create(path_, options, pool_.get()).value());
    char value[8] = {0};
    for (uint32_t k = 1; k <= 200; ++k) {
      ASSERT_OK(tree->Insert(&k, value));
    }
    ASSERT_OK(tree->Flush());
  }

  CheckReport DeepCheck() {
    CheckOptions options;
    options.deep = true;
    BTreeChecker checker(path_, options);
    CheckReport report;
    EXPECT_OK(checker.Run(&report));
    return report;
  }

  std::string dir_;
  std::string path_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BTreeCheckerTest, CleanTreeHasNoFindings) {
  CheckReport report = DeepCheck();
  EXPECT_EQ(report.errors(), 0u) << report.ToString();
  EXPECT_EQ(report.warnings(), 0u) << report.ToString();
}

TEST_F(BTreeCheckerTest, DetectsKeyBitFlip) {
  // High byte of entry 10's key in the first leaf (page 1): the key jumps
  // far out of order.
  const size_t entry_bytes = BTreeLeafEntryBytes(1, 8);
  FlipByte(path_, 1 * kPageSize + kBTreeNodeHeaderSize + 10 * entry_bytes + 3,
           0x40);
  CheckReport report = DeepCheck();
  EXPECT_GT(report.errors(), 0u);
  EXPECT_TRUE(HasCode(report, "key-order") ||
              HasCode(report, "separator-bound"))
      << CodeList(report);
}

TEST_F(BTreeCheckerTest, DetectsCountBitFlip) {
  // Entry-count field of the first leaf's header.
  FlipByte(path_, 1 * kPageSize + 2, 0x20);
  CheckReport report = DeepCheck();
  EXPECT_GT(report.errors(), 0u) << report.ToString();
}

TEST_F(BTreeCheckerTest, DetectsMetaBitFlip) {
  FlipByte(path_, 0, 0x01);  // Magic.
  CheckReport report = DeepCheck();
  EXPECT_TRUE(HasCode(report, "meta-magic")) << CodeList(report);
}

// --- BufferPoolChecker --------------------------------------------------

TEST(BufferPoolCheckerTest, DetectsAndClearsPinLeak) {
  const std::string dir = MakeTestDir("check_pool");
  auto file =
      std::move(PageManager::Create(dir + "/pages.db").value());
  ASSERT_TRUE(file->AllocatePage().ok());
  BufferPool pool(16);
  {
    auto handle = std::move(pool.Fetch(file.get(), 0).value());
    BufferPoolChecker checker(&pool);
    CheckReport report;
    ASSERT_OK(checker.Run(&report));
    EXPECT_TRUE(HasCode(report, "pin-leak")) << CodeList(report);
    EXPECT_EQ(pool.PinnedPages(), 1u);
    handle.Release();
  }
  BufferPoolChecker checker(&pool);
  CheckReport report;
  ASSERT_OK(checker.Run(&report));
  EXPECT_EQ(report.errors(), 0u) << report.ToString();
  EXPECT_EQ(pool.PinnedPages(), 0u);
}

}  // namespace
}  // namespace cubetree
