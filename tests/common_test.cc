#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::IOError("x").IsNotFound());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    CT_RETURN_NOT_OK(Status::IOError("disk died"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIOError());
  auto succeeds = []() -> Status {
    CT_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    CT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 8);
  EXPECT_FALSE(outer(true).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(CodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0x12345678u, 0xFFFFFFFFu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed32IsLittleEndianOnDisk) {
  char buf[4];
  EncodeFixed32(buf, 0x04030201u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
}

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {0ull, 1ull, 0x123456789ABCDEF0ull, ~0ull}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, PutFixedAppends) {
  std::string s;
  PutFixed32(&s, 7);
  PutFixed64(&s, 9);
  ASSERT_EQ(s.size(), 12u);
  EXPECT_EQ(DecodeFixed32(s.data()), 7u);
  EXPECT_EQ(DecodeFixed64(s.data() + 4), 9u);
}

TEST(CodingTest, Varint32RoundTrip) {
  std::vector<uint32_t> values = {0, 1, 127, 128, 16383, 16384,
                                  0x0FFFFFFF, 0xFFFFFFFF};
  std::string buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  for (uint32_t expected : values) {
    uint32_t v = 0;
    p = GetVarint32(p, limit, &v);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(p, limit);
}

TEST(CodingTest, Varint64RoundTrip) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 1ull << 40, ~0ull};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  const char* p = buf.data();
  const char* limit = buf.data() + buf.size();
  for (uint64_t expected : values) {
    uint64_t v = 0;
    p = GetVarint64(p, limit, &v);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, VarintTruncatedInputReturnsNull) {
  std::string buf;
  PutVarint32(&buf, 0xFFFFFFFF);  // 5 bytes.
  uint32_t v;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + 2, &v), nullptr);
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint32_t v : {0u, 127u, 128u, 16384u, 0xFFFFFFFFu}) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(VarintLength32(v), buf.size());
  }
}

TEST(CodingTest, ZigZagRoundTrip) {
  const std::vector<int64_t> values = {
      0, 1, -1, 1234567, -1234567, std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LT(ZigZagEncode64(-3), 10u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next());
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformRange(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(RngTest, UniformCoversDomain) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 (iSCSI) CRC-32C test vectors — these pin the polynomial,
  // reflection, and init/final inversion, so the hardware (SSE4.2) and
  // slice-by-8 software paths cannot silently disagree with the spec.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  unsigned char buf[32];
  std::memset(buf, 0x00, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x8A9136AAu);
  std::memset(buf, 0xFF, sizeof(buf));
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x62A8AB43u);
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32c(buf, sizeof(buf)), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(buf, 0), 0u);
}

TEST(Crc32cTest, SeedChainingEqualsConcatenation) {
  // Extending via the seed must equal one pass over the concatenation,
  // at every split point — including splits that leave the second chunk
  // misaligned and shorter than one 8-byte word.
  Rng rng(123);
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{63}, size_t{500}, size_t{999}, data.size()}) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t chained =
        Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(LoggingTest, RespectsLevel) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CT_LOG(Info) << "should be suppressed";
  SetLogLevel(old);
  SUCCEED();
}

}  // namespace
}  // namespace cubetree
