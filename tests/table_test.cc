#include <gtest/gtest.h>

#include <vector>

#include "storage/buffer_pool.h"
#include "table/heap_table.h"
#include "table/schema.h"
#include "tests/test_util.h"

namespace cubetree {
namespace {

Schema MakeViewSchema() {
  return Schema({Schema::UInt32("partkey"), Schema::UInt32("suppkey"),
                 Schema::Int64("sum_quantity"), Schema::UInt32("cnt")});
}

TEST(SchemaTest, OffsetsAndRowSize) {
  Schema schema = MakeViewSchema();
  EXPECT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.column_offset(0), 0u);
  EXPECT_EQ(schema.column_offset(1), 4u);
  EXPECT_EQ(schema.column_offset(2), 8u);
  EXPECT_EQ(schema.column_offset(3), 16u);
  EXPECT_EQ(schema.row_size(), 20u);
}

TEST(SchemaTest, CharColumnsWidthCounted) {
  Schema schema({Schema::UInt32("k"), Schema::Char("name", 25),
                 Schema::Int64("v")});
  EXPECT_EQ(schema.row_size(), 4u + 25u + 8u);
  EXPECT_EQ(schema.column_offset(2), 29u);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema schema = MakeViewSchema();
  ASSERT_OK_AND_ASSIGN(size_t i, schema.ColumnIndex("sum_quantity"));
  EXPECT_EQ(i, 2u);
  EXPECT_FALSE(schema.ColumnIndex("nope").ok());
}

TEST(SchemaTest, ToStringDescribesColumns) {
  Schema schema({Schema::UInt32("k"), Schema::Char("c", 7)});
  EXPECT_EQ(schema.ToString(), "(k uint32, c char(7))");
}

TEST(RowTest, SetGetRoundTrip) {
  Schema schema = MakeViewSchema();
  RowBuffer row(&schema);
  RowRef ref = row.ref();
  ref.SetUInt32(0, 123);
  ref.SetUInt32(1, 456);
  ref.SetInt64(2, -789);
  ref.SetUInt32(3, 7);
  EXPECT_EQ(ref.GetUInt32(0), 123u);
  EXPECT_EQ(ref.GetUInt32(1), 456u);
  EXPECT_EQ(ref.GetInt64(2), -789);
  EXPECT_EQ(ref.GetUInt32(3), 7u);
}

TEST(RowTest, StringTruncationAndPadding) {
  Schema schema({Schema::Char("name", 5)});
  RowBuffer row(&schema);
  RowRef ref = row.ref();
  ref.SetString(0, "ab");
  EXPECT_EQ(ref.GetString(0), "ab");
  ref.SetString(0, "abcdefgh");
  EXPECT_EQ(ref.GetString(0), "abcde");
}

class HeapTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTestDir("heap");
    schema_ = MakeViewSchema();
    pool_ = std::make_unique<BufferPool>(16);
    auto result =
        HeapTable::Create(dir_ + "/t.tbl", &schema_, pool_.get());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    table_ = std::move(result).value();
  }

  RowId AppendRow(uint32_t p, uint32_t s, int64_t sum, uint32_t cnt) {
    RowBuffer row(&schema_);
    RowRef ref = row.ref();
    ref.SetUInt32(0, p);
    ref.SetUInt32(1, s);
    ref.SetInt64(2, sum);
    ref.SetUInt32(3, cnt);
    auto result = table_->Append(row.data());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  }

  std::string dir_;
  Schema schema_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapTable> table_;
};

TEST_F(HeapTableTest, AppendAndGet) {
  RowId rid = AppendRow(1, 2, 30, 1);
  std::vector<char> buf(schema_.row_size());
  ASSERT_OK(table_->Get(rid, buf.data()));
  RowRef ref(&schema_, buf.data());
  EXPECT_EQ(ref.GetUInt32(0), 1u);
  EXPECT_EQ(ref.GetInt64(2), 30);
  EXPECT_EQ(table_->num_rows(), 1u);
}

TEST_F(HeapTableTest, ManyRowsSpanPages) {
  const int n = 3000;  // > 400 rows/page at 20B rows.
  for (int i = 0; i < n; ++i) {
    AppendRow(static_cast<uint32_t>(i), 0, i * 10, 1);
  }
  EXPECT_EQ(table_->num_rows(), static_cast<uint64_t>(n));
  EXPECT_GT(table_->FileSizeBytes(), kPageSize * 5);

  HeapTable::Iterator it = table_->Scan();
  const char* row = nullptr;
  int count = 0;
  while (true) {
    ASSERT_OK(it.Next(&row));
    if (row == nullptr) break;
    RowRef ref(&schema_, const_cast<char*>(row));
    EXPECT_EQ(ref.GetUInt32(0), static_cast<uint32_t>(count));
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST_F(HeapTableTest, UpdateInPlace) {
  RowId rid = AppendRow(5, 6, 100, 2);
  AppendRow(7, 8, 200, 3);
  std::vector<char> buf(schema_.row_size());
  ASSERT_OK(table_->Get(rid, buf.data()));
  RowRef ref(&schema_, buf.data());
  ref.SetInt64(2, 150);
  ref.SetUInt32(3, 4);
  ASSERT_OK(table_->Update(rid, buf.data()));

  std::vector<char> buf2(schema_.row_size());
  ASSERT_OK(table_->Get(rid, buf2.data()));
  RowRef ref2(&schema_, buf2.data());
  EXPECT_EQ(ref2.GetInt64(2), 150);
  EXPECT_EQ(ref2.GetUInt32(3), 4u);
  EXPECT_EQ(table_->num_rows(), 2u);
}

TEST_F(HeapTableTest, GetBadSlotFails) {
  AppendRow(1, 1, 1, 1);
  std::vector<char> buf(schema_.row_size());
  EXPECT_FALSE(table_->Get(RowId{0, 99}, buf.data()).ok());
}

TEST_F(HeapTableTest, ScanEmptyTable) {
  HeapTable::Iterator it = table_->Scan();
  const char* row = nullptr;
  ASSERT_OK(it.Next(&row));
  EXPECT_EQ(row, nullptr);
}

TEST_F(HeapTableTest, RowIdEncodeDecode) {
  RowId rid{12345, 67};
  EXPECT_EQ(RowId::Decode(rid.Encode()), rid);
}

TEST_F(HeapTableTest, IteratorReportsRowIds) {
  std::vector<RowId> rids;
  for (int i = 0; i < 1000; ++i) {
    rids.push_back(AppendRow(static_cast<uint32_t>(i), 0, 0, 1));
  }
  HeapTable::Iterator it = table_->Scan();
  const char* row = nullptr;
  size_t i = 0;
  while (true) {
    ASSERT_OK(it.Next(&row));
    if (row == nullptr) break;
    ASSERT_LT(i, rids.size());
    EXPECT_EQ(it.current_rid(), rids[i]);
    ++i;
  }
  EXPECT_EQ(i, rids.size());
}

TEST_F(HeapTableTest, SurvivesBufferPoolPressure) {
  // Pool of 16 pages, table of ~25 pages: appends force evictions.
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    AppendRow(static_cast<uint32_t>(i), static_cast<uint32_t>(i * 2), i, 1);
  }
  ASSERT_OK(table_->Flush());
  // Validate every row, including pages that were evicted and re-read.
  HeapTable::Iterator it = table_->Scan();
  const char* row = nullptr;
  int count = 0;
  while (true) {
    ASSERT_OK(it.Next(&row));
    if (row == nullptr) break;
    RowRef ref(&schema_, const_cast<char*>(row));
    ASSERT_EQ(ref.GetUInt32(0), static_cast<uint32_t>(count));
    ASSERT_EQ(ref.GetUInt32(1), static_cast<uint32_t>(count * 2));
    ++count;
  }
  EXPECT_EQ(count, n);
}

}  // namespace
}  // namespace cubetree
