// Ablation: the SelectMapping placement (Section 2.3) versus the naive
// one-tree-per-view placement. The paper argues SelectMapping minimizes
// the number of trees, and thereby the non-leaf space overhead and the
// buffer hit ratio of the trees' top levels.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/cubetree_engine.h"
#include "storage/buffer_pool.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_mapping");
  bench::PrintHeader(
      "Ablation: SelectMapping vs one tree per view", args);

  auto setup = bench::ComputeTpcdViews(args, bench::PaperViews(true),
                                       "abl_map");

  struct Variant {
    const char* name;
    bool per_view;
  } variants[] = {{"SelectMapping", false}, {"tree-per-view", true}};

  std::printf("\n%-16s %7s %12s %14s %16s %10s\n", "placement", "trees",
              "bytes", "build wall(s)", "query 1997(s)", "hit ratio");
  for (const auto& variant : variants) {
    auto io = std::make_shared<IoStats>();
    BufferPool pool(bench::ScaledPoolPages(args));
    CubetreeEngine::Options options;
    options.dir = args.dir + "_abl_map";
    options.name = variant.name;
    options.one_tree_per_view = variant.per_view;
    options.io_stats = io;
    auto engine = bench::CheckOk(
        CubetreeEngine::Create(setup.schema, options, &pool), "engine");
    Timer build;
    bench::CheckOk(engine->Load(bench::PaperViews(true), setup.data.get()),
                   "load");
    const double build_s = build.ElapsedSeconds();

    DiskModel disk;
    SliceQueryGenerator gen(setup.schema, args.seed);
    CubeLattice lattice(setup.schema);
    pool.mutable_stats()->Clear();
    const IoStats before = *io;
    for (size_t i = 0; i < lattice.num_nodes(); ++i) {
      if (lattice.node(i).attrs.empty()) continue;
      for (int q = 0; q < args.queries; ++q) {
        SliceQuery query = gen.ForNode(lattice.node(i).attrs, true);
        bench::CheckOk(engine->Execute(query, nullptr).status(), "query");
      }
    }
    const size_t trees = engine->forest()->num_trees();
    const uint64_t bytes = engine->StorageBytes();
    const double query_s = disk.ModeledSeconds(*io - before);
    const double hit_ratio = pool.stats().HitRatio();
    std::printf("%-16s %7zu %12llu %14.3f %16.3f %9.1f%%\n", variant.name,
                trees, static_cast<unsigned long long>(bytes), build_s,
                query_s, 100.0 * hit_ratio);
    if (json.enabled()) {
      obs::JsonValue& entry =
          json.results().Set(variant.name, obs::JsonValue::MakeObject());
      entry.Set("trees", obs::JsonValue(static_cast<uint64_t>(trees)));
      entry.Set("bytes", obs::JsonValue(bytes));
      entry.Set("build_wall_seconds", obs::JsonValue(build_s));
      entry.Set("query_modeled_seconds", obs::JsonValue(query_s));
      entry.Set("buffer_hit_ratio", obs::JsonValue(hit_ratio));
    }
  }
  std::printf("\n(paper: SelectMapping uses the minimal number of trees "
              "while keeping every view in a contiguous leaf run)\n");
  bench::CheckOk(setup.data->Destroy(), "cleanup");
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
