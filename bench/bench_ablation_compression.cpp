// Ablation: the Cubetree leaf compression (zero-suppression of implicit
// coordinates, Section 2.4). Builds the same forest with compression on
// and off and compares storage, build throughput and query I/O. The paper
// attributes the "less space than unindexed tables" result to exactly this
// mechanism plus packing.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/cubetree_engine.h"
#include "storage/buffer_pool.h"

namespace cubetree {
namespace {

struct Variant {
  const char* name;
  bool compress;
};

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_compression");
  bench::PrintHeader("Ablation: packed-leaf compression on/off", args);

  auto setup = bench::ComputeTpcdViews(args, bench::PaperViews(true),
                                       "abl_comp");
  const Variant variants[] = {{"compressed", true}, {"uncompressed", false}};

  std::printf("\n%-14s %12s %12s %14s %16s\n", "variant", "bytes",
              "leaf pages", "build wall(s)", "query 1997(s)");
  uint64_t sizes[2] = {0, 0};
  for (int v = 0; v < 2; ++v) {
    auto io = std::make_shared<IoStats>();
    BufferPool pool(bench::ScaledPoolPages(args));
    CubetreeEngine::Options options;
    options.dir = args.dir + "_abl_comp";
    options.name = variants[v].name;
    options.rtree.compress_leaves = variants[v].compress;
    options.io_stats = io;
    auto engine = bench::CheckOk(
        CubetreeEngine::Create(setup.schema, options, &pool), "engine");
    Timer build;
    bench::CheckOk(engine->Load(bench::PaperViews(true), setup.data.get()),
                   "load");
    const double build_s = build.ElapsedSeconds();
    sizes[v] = engine->StorageBytes();

    uint64_t leaf_pages = 0;
    for (size_t t = 0; t < engine->forest()->num_trees(); ++t) {
      leaf_pages += engine->forest()->tree(t)->rtree()->num_leaf_pages();
    }

    // Query cost: the Figure-12 batch over all views.
    DiskModel disk;
    SliceQueryGenerator gen(setup.schema, args.seed);
    CubeLattice lattice(setup.schema);
    const IoStats before = *io;
    for (size_t i = 0; i < lattice.num_nodes(); ++i) {
      if (lattice.node(i).attrs.empty()) continue;
      for (int q = 0; q < args.queries; ++q) {
        SliceQuery query = gen.ForNode(lattice.node(i).attrs, true);
        bench::CheckOk(engine->Execute(query, nullptr).status(), "query");
      }
    }
    std::printf("%-14s %12llu %12llu %14.3f %16.3f\n", variants[v].name,
                static_cast<unsigned long long>(sizes[v]),
                static_cast<unsigned long long>(leaf_pages), build_s,
                disk.ModeledSeconds(*io - before));
  }
  std::printf("\ncompression saves %.0f%% of the TPC-D forest. The saving "
              "is small here because the\ntop view dominates and its arity "
              "equals the tree dimensionality (nothing to\nsuppress); the "
              "mechanism's real job is making each view's leaf footprint "
              "equal\nto its unindexed relational width.\n",
              100.0 * (1.0 - static_cast<double>(sizes[0]) / sizes[1]));
  bench::CheckOk(setup.data->Destroy(), "cleanup");

  // --- Scenario 2: the Section 2.4 shape — many low-arity views placed in
  // 4-dimensional trees, where zero-suppression has real leverage.
  std::printf("\nScenario 2: Section 2.4 view set (low-arity views in 4-d "
              "trees)\n");
  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = args.sf;
  gen_options.seed = args.seed;
  tpcd::Generator generator(gen_options);
  CubeSchema ext = generator.MakeExtendedSchema();
  auto mk = [](uint32_t id, std::vector<uint32_t> attrs) {
    ViewDef v;
    v.id = id;
    v.attrs = std::move(attrs);
    return v;
  };
  // Figure 6: V1{brand}, V2{s,p}, V3{brand,s,c,month}, V4{p,s,c,year},
  // V5{p,c,year}, V6{c}, V7{c,p}, V8{p}, V9{s,c}.
  std::vector<ViewDef> fig6 = {
      mk(1, {tpcd::kBrand}),
      mk(2, {tpcd::kSuppkey, tpcd::kPartkey}),
      mk(3, {tpcd::kBrand, tpcd::kSuppkey, tpcd::kCustkey, tpcd::kMonth}),
      mk(4, {tpcd::kPartkey, tpcd::kSuppkey, tpcd::kCustkey, tpcd::kYear}),
      mk(5, {tpcd::kPartkey, tpcd::kCustkey, tpcd::kYear}),
      mk(6, {tpcd::kCustkey}),
      mk(7, {tpcd::kCustkey, tpcd::kPartkey}),
      mk(8, {tpcd::kPartkey}),
      mk(9, {tpcd::kSuppkey, tpcd::kCustkey}),
  };
  CubeBuilder::Options build_options;
  build_options.temp_dir = args.dir + "_abl_comp";
  CubeBuilder builder(ext, build_options);
  auto facts = generator.BaseFacts(/*extended_attrs=*/true);
  auto data = bench::CheckOk(builder.ComputeAll(fig6, facts.get(), "fig6"),
                             "compute fig6");
  uint64_t fig6_sizes[2] = {0, 0};
  for (int v = 0; v < 2; ++v) {
    BufferPool pool(bench::ScaledPoolPages(args));
    CubetreeEngine::Options options;
    options.dir = args.dir + "_abl_comp";
    options.name = std::string("fig6_") + variants[v].name;
    options.rtree.compress_leaves = variants[v].compress;
    auto engine = bench::CheckOk(
        CubetreeEngine::Create(ext, options, &pool), "engine");
    bench::CheckOk(engine->Load(fig6, data.get()), "load fig6");
    fig6_sizes[v] = engine->StorageBytes();
    std::printf("  %-14s %12llu bytes across %zu trees\n",
                variants[v].name,
                static_cast<unsigned long long>(fig6_sizes[v]),
                engine->forest()->num_trees());
  }
  std::printf("  compression saves %.0f%% on this configuration\n",
              100.0 * (1.0 - static_cast<double>(fig6_sizes[0]) /
                                 fig6_sizes[1]));
  bench::CheckOk(data->Destroy(), "cleanup fig6");
  if (json.enabled()) {
    json.results().Set("tpcd_compressed_bytes", obs::JsonValue(sizes[0]));
    json.results().Set("tpcd_uncompressed_bytes", obs::JsonValue(sizes[1]));
    json.results().Set("fig6_compressed_bytes",
                       obs::JsonValue(fig6_sizes[0]));
    json.results().Set("fig6_uncompressed_bytes",
                       obs::JsonValue(fig6_sizes[1]));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
