// Reproduces the view/index selection of Section 3 of the paper: the
// 1-greedy of [GHRU97] over the TPC-D {partkey, suppkey, custkey} lattice
// (Figure 9) must select
//   V = {V{psc}, V{ps}, V{c}, V{s}, V{p}, V{none}}
//   I = {I{c,s,p}, I{p,c,s}, I{s,p,c}}
// in decreasing order of benefit.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "olap/lattice.h"
#include "olap/selection.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_selection");
  bench::PrintHeader("Section 3: 1-greedy view & index selection (SF=1 "
                     "statistics)",
                     args);

  CubeSchema schema;
  schema.attr_names = {"partkey", "suppkey", "custkey"};
  schema.attr_domains = {200000, 10000, 150000};
  CubeLattice lattice(schema);
  lattice.EstimateRowCounts(6001215);  // Paper: 6,001,215 fact rows.
  bench::CheckOk(
      lattice.SetRowCount(0b011, 800000),  // 4 suppliers per part.
      "set |ps|");

  std::printf("\nLattice nodes (estimated rows):\n");
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const LatticeNode& node = lattice.node(i);
    std::printf("  %-28s %10llu\n",
                bench::NodeName(schema, node.attrs).c_str(),
                static_cast<unsigned long long>(node.row_count));
  }
  std::printf("slice query types: %llu (paper: 27)\n\n",
              static_cast<unsigned long long>(lattice.NumSliceQueryTypes()));

  GreedyOptions options;
  options.max_structures = 9;
  SelectionResult result =
      bench::CheckOk(GreedySelect(lattice, options), "greedy");

  std::printf("%-6s %-34s %16s\n", "pick", "structure", "benefit (tuples)");
  size_t view_i = 0, index_i = 0;
  for (size_t i = 0; i < result.picks.size(); ++i) {
    const SelectionPick& pick = result.picks[i];
    std::string name = pick.is_index
                           ? result.indices[index_i++].Name(schema)
                           : result.views[view_i++].Name(schema);
    std::printf("%-6zu %-34s %16.0f\n", i + 1, name.c_str(), pick.benefit);
  }
  std::printf("\nSelected views  (paper: psc, ps, c, s, p, none):\n  ");
  for (const ViewDef& v : result.views) {
    std::printf("%s ", v.Name(schema).c_str());
  }
  std::printf("\nSelected indices (paper: I_csp, I_pcs, I_spc):\n  ");
  for (const IndexDef& index : result.indices) {
    std::printf("%s ", index.Name(schema).c_str());
  }
  std::printf("\n");
  if (json.enabled()) {
    obs::JsonValue views = obs::JsonValue::MakeArray();
    for (const ViewDef& v : result.views) {
      views.Append(obs::JsonValue(v.Name(schema)));
    }
    obs::JsonValue indices = obs::JsonValue::MakeArray();
    for (const IndexDef& index : result.indices) {
      indices.Append(obs::JsonValue(index.Name(schema)));
    }
    json.results().Set("selected_views", std::move(views));
    json.results().Set("selected_indices", std::move(indices));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
