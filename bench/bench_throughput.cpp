// Reproduces Figure 13 of the paper: minimum and maximum system
// throughput (queries/second) of the two configurations, measured over
// the per-view batches of random slice queries.
//
// Throughput is computed on "1997-equivalent" time = wall-clock CPU time
// on this machine plus the batch's physical page I/O replayed through the
// 1997 disk model (the paper's queries paid both CPU and disk).
//
// Paper (SF=1): conventional avg 1.1 q/s, Cubetrees avg 10.1 q/s; the
// conventional peak barely matches the Cubetree low.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

struct Throughput {
  double min_qps = 0;
  double max_qps = 0;
  double avg_qps = 0;
};

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_throughput");
  bench::PrintHeader("Figure 13: system throughput (queries/sec)", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("throughput")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");

  const CubeLattice& lattice = warehouse->lattice();
  const DiskModel& disk = warehouse->options().disk;

  auto measure = [&](ViewStore* engine, IoStats* io) {
    std::vector<double> rates;
    double total_queries = 0, total_seconds = 0;
    for (size_t i = 0; i < lattice.num_nodes(); ++i) {
      const LatticeNode& node = lattice.node(i);
      if (node.attrs.empty()) continue;
      SliceQueryGenerator gen =
          warehouse->MakeQueryGenerator(args.seed + i);
      const IoStats before = *io;
      Timer timer;
      for (int q = 0; q < args.queries; ++q) {
        SliceQuery query = gen.ForNode(node.attrs, true);
        auto result = engine->Execute(query, nullptr);
        bench::CheckOk(result.status(), "query");
      }
      const double seconds =
          timer.ElapsedSeconds() + disk.ModeledSeconds(*io - before);
      rates.push_back(args.queries / seconds);
      total_queries += args.queries;
      total_seconds += seconds;
    }
    Throughput t;
    t.min_qps = *std::min_element(rates.begin(), rates.end());
    t.max_qps = *std::max_element(rates.begin(), rates.end());
    t.avg_qps = total_queries / total_seconds;
    return t;
  };

  const Throughput conv = measure(warehouse->conventional(),
                                  warehouse->conventional_io().get());
  const Throughput cbt = measure(warehouse->cubetrees(),
                                 warehouse->cubetree_io().get());

  std::printf("\n%-14s %12s %12s %12s\n", "Configuration", "min q/s",
              "avg q/s", "max q/s");
  std::printf("%-14s %12.1f %12.1f %12.1f\n", "Conventional", conv.min_qps,
              conv.avg_qps, conv.max_qps);
  std::printf("%-14s %12.1f %12.1f %12.1f\n", "Cubetrees", cbt.min_qps,
              cbt.avg_qps, cbt.max_qps);
  std::printf("\naverage throughput ratio: %.1fx (paper: ~10x; "
              "1.1 vs 10.1 q/s)\n",
              cbt.avg_qps / conv.avg_qps);
  std::printf("conventional max vs cubetree min: %.2f (paper: peak of "
              "conventional barely matches the cubetree low)\n",
              conv.max_qps / cbt.min_qps);
  if (json.enabled()) {
    json.AddIoStats("conventional", *warehouse->conventional_io(), disk);
    json.AddIoStats("cubetrees", *warehouse->cubetree_io(), disk);
    auto emit = [&](const char* name, const Throughput& t) {
      obs::JsonValue& entry =
          json.results().Set(name, obs::JsonValue::MakeObject());
      entry.Set("min_qps", obs::JsonValue(t.min_qps));
      entry.Set("avg_qps", obs::JsonValue(t.avg_qps));
      entry.Set("max_qps", obs::JsonValue(t.max_qps));
    };
    emit("conventional", conv);
    emit("cubetrees", cbt);
    json.results().Set("avg_throughput_ratio",
                       obs::JsonValue(cbt.avg_qps / conv.avg_qps));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
