// Reproduces the storage comparison of Section 3.2: the conventional
// representation (view tables + B-tree indices) versus the Cubetree forest
// (storage and indexing combined, packed and compressed).
//
// Paper (SF=1): conventional 602 MB, Cubetrees 293 MB — 51% less, with the
// forest even smaller than the unindexed tables alone.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "cubetree/forest.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_storage");
  bench::PrintHeader("Section 3.2: storage of the two organizations", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("storage")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");

  ConventionalEngine* conv = warehouse->conventional();
  CubetreeEngine* cbt = warehouse->cubetrees();

  const uint64_t tables = conv->TableBytes();
  const uint64_t indices = conv->IndexBytes();
  const uint64_t conv_total = conv->StorageBytes();
  const uint64_t forest = cbt->StorageBytes();

  std::printf("\nConventional organization:\n");
  std::printf("  view tables          %12s\n",
              bench::HumanBytes(tables).c_str());
  std::printf("  B-tree indices       %12s\n",
              bench::HumanBytes(indices).c_str());
  std::printf("  total                %12s\n",
              bench::HumanBytes(conv_total).c_str());
  std::printf("Cubetree organization (storage + indexing combined):\n");
  std::printf("  forest (incl. 2 sort-order replicas) %12s\n",
              bench::HumanBytes(forest).c_str());

  std::printf("\nsavings: %.0f%% (paper: 51%%), ratio %.2f:1 "
              "(paper: >2:1)\n",
              100.0 * (1.0 - static_cast<double>(forest) / conv_total),
              static_cast<double>(conv_total) / forest);

  // The paper's "less space than the unindexed relational representation"
  // claim compares one copy of each view, so build a forest without the
  // replicas for that comparison.
  {
    WarehouseOptions options = args.ToWarehouseOptions("storage_norep");
    options.replicate_top_view = false;
    auto norep = bench::CheckOk(Warehouse::Create(options),
                                "no-replica warehouse");
    bench::CheckOk(norep->LoadCubetrees().status(), "load no-replica");
    const uint64_t norep_bytes = norep->cubetrees()->StorageBytes();
    std::printf("forest without replicas: %s = %.2fx the unindexed tables "
                "(paper: < 1 due to compression)\n",
                bench::HumanBytes(norep_bytes).c_str(),
                static_cast<double>(norep_bytes) / tables);
  }

  std::printf("\nPer-tree breakdown:\n");
  CubetreeForest* f = cbt->forest();
  for (size_t t = 0; t < f->num_trees(); ++t) {
    std::shared_ptr<Cubetree> tree = f->tree(t);
    std::printf("  R%zu (dims %u): %8llu points, %5u leaf pages, %10s —",
                t + 1, tree->dims(),
                static_cast<unsigned long long>(tree->rtree()->num_points()),
                tree->rtree()->num_leaf_pages(),
                bench::HumanBytes(tree->rtree()->FileSizeBytes()).c_str());
    for (const ViewDef& v : tree->views()) {
      std::printf(" %s", v.Name(warehouse->schema()).c_str());
    }
    std::printf("\n");
    const double leaf_fraction =
        static_cast<double>(tree->rtree()->num_leaf_pages()) /
        (tree->rtree()->FileSizeBytes() / kPageSize);
    std::printf("      leaf pages are %.0f%% of the file (paper: ~90%% "
                "compressed leaves)\n",
                100.0 * leaf_fraction);
  }
  if (json.enabled()) {
    const DiskModel& disk = warehouse->options().disk;
    json.AddIoStats("conventional", *warehouse->conventional_io(), disk);
    json.AddIoStats("cubetrees", *warehouse->cubetree_io(), disk);
    json.results().Set("conv_table_bytes", obs::JsonValue(tables));
    json.results().Set("conv_index_bytes", obs::JsonValue(indices));
    json.results().Set("conv_total_bytes", obs::JsonValue(conv_total));
    json.results().Set("cbt_forest_bytes", obs::JsonValue(forest));
    json.results().Set(
        "storage_ratio",
        obs::JsonValue(static_cast<double>(conv_total) /
                       static_cast<double>(forest)));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
