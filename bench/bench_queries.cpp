// Reproduces Figure 12 of the paper: total execution time of 100 random
// slice queries against each view of the lattice, for both storage
// organizations. Queries are uniform over the types of each node,
// excluding the no-predicate type (its output size dilutes retrieval
// cost), exactly as in Section 3.3.
//
// Two time columns per configuration: wall-clock on this machine (mostly
// CPU + page cache) and the same queries' physical page I/O replayed
// through the 1997 disk model — the latter is the paper-comparable number,
// since the paper's queries were disk-bound on a 32 MB machine.
//
// Paper (SF=1): Cubetrees beat the conventional organization on every
// view; most queries run sub-second; average throughput gap ~10x.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

struct BatchCost {
  double wall = 0;
  double modeled = 0;
};

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_queries");
  bench::PrintHeader(
      "Figure 12: 100 random slice queries per lattice view", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("queries")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");

  const CubeLattice& lattice = warehouse->lattice();
  const CubeSchema& schema = warehouse->schema();
  const DiskModel& disk = warehouse->options().disk;

  auto run_batch = [&](ViewStore* engine, IoStats* io,
                       const std::vector<uint32_t>& attrs, uint64_t seed) {
    SliceQueryGenerator gen = warehouse->MakeQueryGenerator(seed);
    const IoStats before = *io;
    Timer timer;
    for (int q = 0; q < args.queries; ++q) {
      SliceQuery query = gen.ForNode(attrs, /*exclude_unbound=*/true);
      auto result = engine->Execute(query, nullptr);
      bench::CheckOk(result.status(), "query");
      volatile size_t sink = result->rows.size();
      (void)sink;
    }
    BatchCost cost;
    cost.wall = timer.ElapsedSeconds();
    cost.modeled = disk.ModeledSeconds(*io - before);
    return cost;
  };

  std::printf("\n%-26s | %12s %12s | %12s %12s | %8s\n", "view",
              "conv wall(s)", "cbt wall(s)", "conv 1997(s)", "cbt 1997(s)",
              "speedup");
  BatchCost conv_total, cbt_total;
  obs::JsonValue per_view = obs::JsonValue::MakeObject();
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const LatticeNode& node = lattice.node(i);
    if (node.attrs.empty()) continue;  // Skip the scalar node, as paper.
    const uint64_t seed = args.seed + i;
    BatchCost conv = run_batch(warehouse->conventional(),
                               warehouse->conventional_io().get(),
                               node.attrs, seed);
    BatchCost cbt = run_batch(warehouse->cubetrees(),
                              warehouse->cubetree_io().get(), node.attrs,
                              seed);
    conv_total.wall += conv.wall;
    conv_total.modeled += conv.modeled;
    cbt_total.wall += cbt.wall;
    cbt_total.modeled += cbt.modeled;
    std::printf("%-26s | %12.3f %12.3f | %12.3f %12.3f | %7.1fx\n",
                bench::NodeName(schema, node.attrs).c_str(), conv.wall,
                cbt.wall, conv.modeled, cbt.modeled,
                (conv.wall + conv.modeled) / (cbt.wall + cbt.modeled));
    if (json.enabled()) {
      obs::JsonValue& entry = per_view.Set(
          bench::NodeName(schema, node.attrs), obs::JsonValue::MakeObject());
      entry.Set("conv_wall_seconds", obs::JsonValue(conv.wall));
      entry.Set("cbt_wall_seconds", obs::JsonValue(cbt.wall));
      entry.Set("conv_modeled_seconds", obs::JsonValue(conv.modeled));
      entry.Set("cbt_modeled_seconds", obs::JsonValue(cbt.modeled));
    }
  }
  std::printf("%-26s | %12.3f %12.3f | %12.3f %12.3f | %7.1fx\n", "TOTAL",
              conv_total.wall, cbt_total.wall, conv_total.modeled,
              cbt_total.modeled,
              (conv_total.wall + conv_total.modeled) /
                  (cbt_total.wall + cbt_total.modeled));
  std::printf("\n(speedup = (wall + modeled I/O) ratio; paper: cubetrees "
              "faster on every view, ~10x average)\n");
  if (json.enabled()) {
    json.AddIoStats("conventional", *warehouse->conventional_io(), disk);
    json.AddIoStats("cubetrees", *warehouse->cubetree_io(), disk);
    json.results().Set("per_view", std::move(per_view));
    json.results().Set("conv_total_wall_seconds",
                       obs::JsonValue(conv_total.wall));
    json.results().Set("cbt_total_wall_seconds",
                       obs::JsonValue(cbt_total.wall));
    json.results().Set("conv_total_modeled_seconds",
                       obs::JsonValue(conv_total.modeled));
    json.results().Set("cbt_total_modeled_seconds",
                       obs::JsonValue(cbt_total.modeled));
    json.results().Set(
        "speedup", obs::JsonValue((conv_total.wall + conv_total.modeled) /
                                  (cbt_total.wall + cbt_total.modeled)));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
