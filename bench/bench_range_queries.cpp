// Extension experiment (the closing remark of Section 3.1): the paper's
// TPC-D workload uses equality slices only, because the grouping
// attributes are foreign keys; the authors note that "in a more general
// experiment where arbitrary range queries are allowed we expect that the
// Cubetrees would be even faster", since R-trees excel at bounded boxes.
// This bench runs BETWEEN-band workloads at several selectivities and
// compares both configurations, like Figure 12 but with ranges.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_range_queries");
  bench::PrintHeader(
      "Range-query extension: BETWEEN bands at several widths", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("ranges")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");

  const CubeLattice& lattice = warehouse->lattice();
  const DiskModel& disk = warehouse->options().disk;

  std::printf("\n%-12s %16s %16s %9s\n", "band width",
              "conv 1997(s)", "cubetrees 1997(s)", "ratio");
  for (double fraction : {0.01, 0.05, 0.20, 0.50}) {
    double conv_total = 0, cbt_total = 0;
    for (size_t i = 0; i < lattice.num_nodes(); ++i) {
      const LatticeNode& node = lattice.node(i);
      if (node.attrs.empty()) continue;
      auto run_batch = [&](ViewStore* engine, IoStats* io) {
        SliceQueryGenerator gen = warehouse->MakeQueryGenerator(
            args.seed + i + static_cast<uint64_t>(fraction * 1000));
        const IoStats before = *io;
        Timer timer;
        for (int q = 0; q < args.queries; ++q) {
          SliceQuery query = gen.ForNodeRange(node.attrs, fraction, true);
          auto result = engine->Execute(query, nullptr);
          bench::CheckOk(result.status(), "query");
        }
        return timer.ElapsedSeconds() + disk.ModeledSeconds(*io - before);
      };
      conv_total += run_batch(warehouse->conventional(),
                              warehouse->conventional_io().get());
      cbt_total += run_batch(warehouse->cubetrees(),
                             warehouse->cubetree_io().get());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f%%", fraction * 100);
    std::printf("%-12s %16.3f %16.3f %8.1fx\n", label, conv_total,
                cbt_total, conv_total / cbt_total);
    if (json.enabled()) {
      obs::JsonValue& entry =
          json.results().Set(label, obs::JsonValue::MakeObject());
      entry.Set("conv_modeled_seconds", obs::JsonValue(conv_total));
      entry.Set("cbt_modeled_seconds", obs::JsonValue(cbt_total));
      entry.Set("ratio", obs::JsonValue(conv_total / cbt_total));
    }
  }
  std::printf("\n(paper's expectation: the Cubetree advantage grows when "
              "predicates are bounded ranges — boxes prune leaf runs, "
              "while B-trees only use a range on their leading key)\n");
  if (json.enabled()) {
    json.AddIoStats("conventional", *warehouse->conventional_io(), disk);
    json.AddIoStats("cubetrees", *warehouse->cubetree_io(), disk);
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
