#ifndef CUBETREE_BENCH_BENCH_JSON_H_
#define CUBETREE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "obs/workload.h"
#include "storage/io_stats.h"

namespace cubetree {
namespace bench {

/// Machine-readable result emitter shared by every bench_* binary. When
/// the run was started with --json=<path>, Finish() writes one JSON
/// document with a stable envelope:
///
///   {
///     "schema_version": 1,
///     "bench": "<binary name>",
///     "config": {"sf": .., "queries": .., "dir": "..", "seed": ..},
///     "wall_seconds": <construction-to-Finish wall time>,
///     "modeled_disk_seconds": <sum over AddIoStats on the 1997 disk>,
///     "io": {"<phase>": {sequential_reads, random_reads,
///                        sequential_writes, random_writes,
///                        modeled_seconds}, ...},
///     "metrics": <MetricsRegistry snapshot>,
///     "traces": {...}            (only when --trace=<path> was given)
///     "workload": {...}          (only when CUBETREE_QUERY_LOG is set)
///     "results": {<bench-specific numbers via results()>}
///   }
///
/// Without --json every method is a cheap no-op, so the human-readable
/// output path is untouched. The process-wide metrics registry is zeroed
/// at construction so the embedded snapshot covers exactly this run.
///
/// --trace=<path> arms the process tracer at construction and writes the
/// completed-trace ring as Chrome trace-event JSON (loadable in Perfetto /
/// chrome://tracing) to that path at Finish() — or at destruction, so
/// --trace works without --json too. The envelope additionally gets a
/// "traces" summary section (count + per-trace name/duration/span count).
class JsonWriter {
 public:
  JsonWriter(const BenchArgs& args, std::string bench_name)
      : path_(args.json_path),
        trace_path_(args.trace_path),
        bench_name_(std::move(bench_name)) {
    if (tracing()) {
      obs::Tracer::Instance().Enable(true);
      obs::Tracer::Instance().Clear();
    }
    if (!enabled()) return;
    obs::MetricsRegistry::Instance().ResetAll();
    if (obs::QueryLog::Default() != nullptr) {
      // The durable query log is armed, so profile the run live and embed
      // the workload report (per-view latencies, heavy-hitter shapes,
      // replica misses) in the envelope alongside the raw JSONL log.
      profiler_ = std::make_unique<obs::WorkloadProfiler>();
      obs::WorkloadProfiler::SetDefault(profiler_.get());
    }
    root_ = obs::JsonValue::MakeObject();
    root_.Set("schema_version", obs::JsonValue(static_cast<int64_t>(1)));
    root_.Set("bench", obs::JsonValue(bench_name_));
    obs::JsonValue& config = root_.Set("config", obs::JsonValue::MakeObject());
    config.Set("sf", obs::JsonValue(args.sf));
    config.Set("queries", obs::JsonValue(static_cast<int64_t>(args.queries)));
    config.Set("dir", obs::JsonValue(args.dir));
    config.Set("seed", obs::JsonValue(args.seed));
    io_ = obs::JsonValue::MakeObject();
    results_ = obs::JsonValue::MakeObject();
  }

  /// Benches only call Finish() on the --json path; the destructor covers
  /// the trace file for --trace-only runs.
  ~JsonWriter() {
    WriteTraceFile();
    if (profiler_ != nullptr) obs::WorkloadProfiler::SetDefault(nullptr);
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const { return !path_.empty(); }
  bool tracing() const { return !trace_path_.empty(); }

  /// Records the I/O counters of one phase/configuration under `name` and
  /// adds its modeled 1997-disk time to the run total.
  void AddIoStats(const std::string& name, const IoStats& io,
                  const DiskModel& model = DiskModel()) {
    if (!enabled()) return;
    const double modeled = model.ModeledSeconds(io);
    modeled_disk_seconds_ += modeled;
    obs::JsonValue& entry = io_.Set(name, obs::JsonValue::MakeObject());
    entry.Set("sequential_reads", obs::JsonValue(io.sequential_reads.load()));
    entry.Set("random_reads", obs::JsonValue(io.random_reads.load()));
    entry.Set("sequential_writes",
              obs::JsonValue(io.sequential_writes.load()));
    entry.Set("random_writes", obs::JsonValue(io.random_writes.load()));
    entry.Set("modeled_seconds", obs::JsonValue(modeled));
  }

  /// Bench-specific payload; populate freely (no-op sink when disabled).
  obs::JsonValue& results() { return results_; }

  /// Assembles the envelope and writes it to the --json path. Exits with
  /// a message on write failure so CI never mistakes a truncated file for
  /// a result.
  void Finish() {
    WriteTraceFile();
    if (!enabled() || finished_) return;
    finished_ = true;
    root_.Set("wall_seconds", obs::JsonValue(timer_.ElapsedSeconds()));
    root_.Set("modeled_disk_seconds", obs::JsonValue(modeled_disk_seconds_));
    root_.Set("io", std::move(io_));
    root_.Set("metrics", obs::MetricsRegistry::Instance().SnapshotJson());
    if (tracing()) root_.Set("traces", TraceSummary());
    if (profiler_ != nullptr) {
      // Detach before reporting so a straggler query can't race the
      // snapshot, and flush the durable log so ctstat sees every record
      // this run appended even if the process is later killed.
      obs::WorkloadProfiler::SetDefault(nullptr);
      if (obs::QueryLog* log = obs::QueryLog::Default()) log->Flush();
      root_.Set("workload", profiler_->ReportJson());
    }
    root_.Set("results", std::move(results_));
    const std::string text = root_.Dump() + "\n";
    WriteFileOrDie(path_, text);
    std::printf("json results written to %s\n", path_.c_str());
  }

 private:
  static void WriteFileOrDie(const std::string& path,
                             const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    bool ok = f != nullptr &&
              std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (f != nullptr) ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
      std::fprintf(stderr, "FATAL cannot write %s\n", path.c_str());
      std::exit(1);
    }
  }

  obs::JsonValue TraceSummary() const {
    auto traces = obs::Tracer::Instance().AllTraces();
    obs::JsonValue summary = obs::JsonValue::MakeObject();
    summary.Set("path", obs::JsonValue(trace_path_));
    summary.Set("count", obs::JsonValue(static_cast<uint64_t>(traces.size())));
    obs::JsonValue& list =
        summary.Set("traces", obs::JsonValue::MakeArray());
    for (const auto& trace : traces) {
      obs::JsonValue entry = obs::JsonValue::MakeObject();
      entry.Set("trace_id", obs::JsonValue(trace->id()));
      entry.Set("name", obs::JsonValue(trace->name()));
      entry.Set("duration_us", obs::JsonValue(trace->DurationMicros()));
      entry.Set("spans",
                obs::JsonValue(static_cast<uint64_t>(trace->spans().size())));
      list.Append(std::move(entry));
    }
    return summary;
  }

  void WriteTraceFile() {
    if (!tracing() || trace_written_) return;
    trace_written_ = true;
    const std::string text =
        obs::Tracer::Instance().ExportAllJson().Dump(2) + "\n";
    WriteFileOrDie(trace_path_, text);
    std::printf("trace written to %s\n", trace_path_.c_str());
  }

  const std::string path_;
  const std::string trace_path_;
  const std::string bench_name_;
  Timer timer_;
  double modeled_disk_seconds_ = 0;
  bool finished_ = false;
  bool trace_written_ = false;
  obs::JsonValue root_;
  obs::JsonValue io_;
  obs::JsonValue results_;
  std::unique_ptr<obs::WorkloadProfiler> profiler_;
};

}  // namespace bench
}  // namespace cubetree

#endif  // CUBETREE_BENCH_BENCH_JSON_H_
