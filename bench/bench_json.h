#ifndef CUBETREE_BENCH_BENCH_JSON_H_
#define CUBETREE_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "storage/io_stats.h"

namespace cubetree {
namespace bench {

/// Machine-readable result emitter shared by every bench_* binary. When
/// the run was started with --json=<path>, Finish() writes one JSON
/// document with a stable envelope:
///
///   {
///     "schema_version": 1,
///     "bench": "<binary name>",
///     "config": {"sf": .., "queries": .., "dir": "..", "seed": ..},
///     "wall_seconds": <construction-to-Finish wall time>,
///     "modeled_disk_seconds": <sum over AddIoStats on the 1997 disk>,
///     "io": {"<phase>": {sequential_reads, random_reads,
///                        sequential_writes, random_writes,
///                        modeled_seconds}, ...},
///     "metrics": <MetricsRegistry snapshot>,
///     "results": {<bench-specific numbers via results()>}
///   }
///
/// Without --json every method is a cheap no-op, so the human-readable
/// output path is untouched. The process-wide metrics registry is zeroed
/// at construction so the embedded snapshot covers exactly this run.
class JsonWriter {
 public:
  JsonWriter(const BenchArgs& args, std::string bench_name)
      : path_(args.json_path), bench_name_(std::move(bench_name)) {
    if (!enabled()) return;
    obs::MetricsRegistry::Instance().ResetAll();
    root_ = obs::JsonValue::MakeObject();
    root_.Set("schema_version", obs::JsonValue(static_cast<int64_t>(1)));
    root_.Set("bench", obs::JsonValue(bench_name_));
    obs::JsonValue& config = root_.Set("config", obs::JsonValue::MakeObject());
    config.Set("sf", obs::JsonValue(args.sf));
    config.Set("queries", obs::JsonValue(static_cast<int64_t>(args.queries)));
    config.Set("dir", obs::JsonValue(args.dir));
    config.Set("seed", obs::JsonValue(args.seed));
    io_ = obs::JsonValue::MakeObject();
    results_ = obs::JsonValue::MakeObject();
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Records the I/O counters of one phase/configuration under `name` and
  /// adds its modeled 1997-disk time to the run total.
  void AddIoStats(const std::string& name, const IoStats& io,
                  const DiskModel& model = DiskModel()) {
    if (!enabled()) return;
    const double modeled = model.ModeledSeconds(io);
    modeled_disk_seconds_ += modeled;
    obs::JsonValue& entry = io_.Set(name, obs::JsonValue::MakeObject());
    entry.Set("sequential_reads", obs::JsonValue(io.sequential_reads.load()));
    entry.Set("random_reads", obs::JsonValue(io.random_reads.load()));
    entry.Set("sequential_writes",
              obs::JsonValue(io.sequential_writes.load()));
    entry.Set("random_writes", obs::JsonValue(io.random_writes.load()));
    entry.Set("modeled_seconds", obs::JsonValue(modeled));
  }

  /// Bench-specific payload; populate freely (no-op sink when disabled).
  obs::JsonValue& results() { return results_; }

  /// Assembles the envelope and writes it to the --json path. Exits with
  /// a message on write failure so CI never mistakes a truncated file for
  /// a result.
  void Finish() {
    if (!enabled() || finished_) return;
    finished_ = true;
    root_.Set("wall_seconds", obs::JsonValue(timer_.ElapsedSeconds()));
    root_.Set("modeled_disk_seconds", obs::JsonValue(modeled_disk_seconds_));
    root_.Set("io", std::move(io_));
    root_.Set("metrics", obs::MetricsRegistry::Instance().SnapshotJson());
    root_.Set("results", std::move(results_));
    const std::string text = root_.Dump() + "\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    bool ok = f != nullptr &&
              std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (f != nullptr) ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
      std::fprintf(stderr, "FATAL cannot write %s\n", path_.c_str());
      std::exit(1);
    }
    std::printf("json results written to %s\n", path_.c_str());
  }

 private:
  const std::string path_;
  const std::string bench_name_;
  Timer timer_;
  double modeled_disk_seconds_ = 0;
  bool finished_ = false;
  obs::JsonValue root_;
  obs::JsonValue io_;
  obs::JsonValue results_;
};

}  // namespace bench
}  // namespace cubetree

#endif  // CUBETREE_BENCH_BENCH_JSON_H_
