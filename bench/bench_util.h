#ifndef CUBETREE_BENCH_BENCH_UTIL_H_
#define CUBETREE_BENCH_BENCH_UTIL_H_

#include <climits>
#include <cstdio>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/status.h"
#include "engine/warehouse.h"
#include "obs/trace.h"
#include "olap/cube_builder.h"
#include "tpcd/dbgen.h"

namespace cubetree {
namespace bench {

/// Strict numeric flag parsing: the whole value must parse, so --sf=abc
/// fails loudly instead of silently becoming 0 (atof/atoi) and running a
/// degenerate benchmark that still "reports results". Each returns false
/// on malformed input (including empty values and trailing junk).
inline bool ParseDoubleArg(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

inline bool ParseIntArg(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

inline bool ParseUint64Arg(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0' || *text == '-') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Command-line/environment configuration shared by the experiment
/// binaries. Each accepts:
///   --sf=<double>        scale factor (default 0.05; paper = 1.0)
///   --queries=<int>      queries per lattice view (default 100, as paper)
///   --dir=<path>         working directory (default ./ctbench_data)
///   --seed=<uint64>
///   --json=<path>        also emit machine-readable results (JsonWriter)
///   --trace=<path>       record span traces; written as Chrome trace-event
///                        JSON (Perfetto / chrome://tracing) on Finish/exit
///   --replicas=<0|1>     materialize the top view's sort-order replicas
///                        (default 1, the paper's configuration; 0 exposes
///                        replica misses to the workload profiler)
struct BenchArgs {
  double sf = 0.05;
  int queries = 100;
  std::string dir = "ctbench_data";
  uint64_t seed = 19980601;
  std::string json_path;   // Empty = no JSON output.
  std::string trace_path;  // Empty = tracing stays disabled.
  bool replicas = true;

  static BenchArgs Parse(int argc, char** argv) {
    InitLogLevelFromEnv();
    BenchArgs args;
    auto malformed = [](const char* flag, const char* value) {
      std::fprintf(stderr, "malformed value for %s: '%s'\n", flag, value);
      std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--sf=", 5) == 0) {
        if (!ParseDoubleArg(a + 5, &args.sf)) malformed("--sf", a + 5);
      } else if (std::strncmp(a, "--queries=", 10) == 0) {
        if (!ParseIntArg(a + 10, &args.queries)) {
          malformed("--queries", a + 10);
        }
      } else if (std::strncmp(a, "--dir=", 6) == 0) {
        args.dir = a + 6;
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        if (!ParseUint64Arg(a + 7, &args.seed)) malformed("--seed", a + 7);
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        args.json_path = a + 7;
      } else if (std::strncmp(a, "--trace=", 8) == 0) {
        args.trace_path = a + 8;
        if (args.trace_path.empty()) malformed("--trace", a + 8);
      } else if (std::strncmp(a, "--replicas=", 11) == 0) {
        int replicas = -1;
        if (!ParseIntArg(a + 11, &replicas) ||
            (replicas != 0 && replicas != 1)) {
          malformed("--replicas", a + 11);
        }
        args.replicas = replicas != 0;
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", a);
        std::exit(2);
      }
    }
    return args;
  }

  WarehouseOptions ToWarehouseOptions(const std::string& subdir) const {
    WarehouseOptions options;
    options.scale_factor = sf;
    options.seed = seed;
    options.dir = dir + "_" + subdir;
    options.replicate_top_view = replicas;
    return options;
  }
};

/// Aborts the benchmark with a readable message on error.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

inline void PrintHeader(const char* title, const BenchArgs& args) {
  std::printf("==================================================\n");
  std::printf("%s\n", title);
  std::printf("scale factor %.3f (paper: 1.0), seed %llu\n", args.sf,
              static_cast<unsigned long long>(args.seed));
  std::printf("==================================================\n");
}

inline std::string HumanBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

inline std::string HumanSeconds(double s) {
  char buf[64];
  if (s >= 3600) {
    std::snprintf(buf, sizeof(buf), "%dh %02dm %02ds",
                  static_cast<int>(s / 3600),
                  static_cast<int>(s / 60) % 60, static_cast<int>(s) % 60);
  } else if (s >= 60) {
    std::snprintf(buf, sizeof(buf), "%dm %02ds", static_cast<int>(s / 60),
                  static_cast<int>(s) % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

/// The paper's selected view set (ids = attribute masks), optionally with
/// the two top-view replicas of the Cubetree configuration.
inline std::vector<ViewDef> PaperViews(bool with_replicas) {
  auto mk = [](uint32_t id, std::vector<uint32_t> attrs) {
    ViewDef v;
    v.id = id;
    v.attrs = std::move(attrs);
    return v;
  };
  std::vector<ViewDef> views = {
      mk(0b111, {0, 1, 2}), mk(0b011, {0, 1}), mk(0b100, {2}),
      mk(0b010, {1}),       mk(0b001, {0}),    mk(0b000, {}),
  };
  if (with_replicas) {
    views.push_back(mk(1000, {1, 2, 0}));  // ~ I{partkey,custkey,suppkey}
    views.push_back(mk(1001, {2, 0, 1}));  // ~ I{suppkey,partkey,custkey}
  }
  return views;
}

/// Generates TPC-D data at args.sf and computes the given views' sorted
/// aggregate spools (shared setup of the ablation benches).
struct TpcdViewData {
  std::unique_ptr<tpcd::Generator> generator;
  CubeSchema schema;
  std::unique_ptr<ComputedViews> data;
};

inline TpcdViewData ComputeTpcdViews(const BenchArgs& args,
                                     const std::vector<ViewDef>& views,
                                     const std::string& subdir,
                                     std::shared_ptr<IoStats> io = nullptr) {
  const std::string dir = args.dir + "_" + subdir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "mkdir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    std::exit(1);
  }
  TpcdViewData out;
  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = args.sf;
  gen_options.seed = args.seed;
  out.generator = std::make_unique<tpcd::Generator>(gen_options);
  out.schema = out.generator->MakeBaseSchema();
  CubeBuilder::Options build_options;
  build_options.temp_dir = dir;
  build_options.sort_budget_bytes = std::max<size_t>(
      256u << 10, static_cast<size_t>((16u << 20) * args.sf));
  build_options.io_stats = std::move(io);
  CubeBuilder builder(out.schema, build_options);
  auto facts = out.generator->BaseFacts();
  out.data =
      CheckOk(builder.ComputeAll(views, facts.get(), subdir), "compute");
  return out;
}

/// Buffer-pool pages preserving the paper's memory:data ratio at args.sf.
inline size_t ScaledPoolPages(const BenchArgs& args) {
  return std::max<size_t>(64, static_cast<size_t>(4096 * args.sf));
}

/// Name of a lattice node like "partkey,suppkey".
inline std::string NodeName(const CubeSchema& schema,
                            const std::vector<uint32_t>& attrs) {
  if (attrs.empty()) return "none";
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.attr_names[attrs[i]];
  }
  return out;
}

}  // namespace bench
}  // namespace cubetree

#endif  // CUBETREE_BENCH_BENCH_UTIL_H_
