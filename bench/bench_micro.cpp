// Google-benchmark microbenchmarks of the core operations: packed R-tree
// bulk load (the paper reports a 6 GB/hour packing rate on 1997 hardware),
// range search, merge-pack, B-tree insert/lookup/bulk-build and the
// external sorter.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "btree/btree.h"
#include "common/coding.h"
#include "common/rng.h"
#include "cubetree/merge_pack.h"
#include "rtree/packed_rtree.h"
#include "sort/external_sorter.h"
#include "storage/buffer_pool.h"
#include "storage/checksum.h"

namespace cubetree {
namespace {

const char* kDir = "ctbench_micro";

void MakeBenchDir(const char* dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "mkdir %s: %s\n", dir, ec.message().c_str());
    std::exit(1);
  }
}

std::vector<PointRecord> MakeSortedPoints(uint32_t n) {
  std::vector<PointRecord> points;
  points.reserve(n);
  Rng rng(11);
  for (uint32_t i = 0; i < n; ++i) {
    PointRecord rec;
    rec.view_id = 1;
    rec.coords[0] = 1 + static_cast<Coord>(rng.Uniform(1u << 20));
    rec.coords[1] = 1 + static_cast<Coord>(rng.Uniform(1u << 10));
    rec.coords[2] = static_cast<Coord>(i + 1);  // Guarantees uniqueness.
    rec.agg = AggValue{static_cast<int64_t>(i), 1};
    points.push_back(rec);
  }
  std::sort(points.begin(), points.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return PackOrderCompare(a.coords, b.coords, 3) < 0;
            });
  return points;
}

void BM_PackedRTreeBuild(benchmark::State& state) {
  MakeBenchDir(kDir);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto points = MakeSortedPoints(n);
  BufferPool pool(256);
  RTreeOptions options;
  options.dims = 3;
  for (auto _ : state) {
    VectorPointSource source(points);
    auto tree = PackedRTree::Build(std::string(kDir) + "/build.ctr",
                                   options, &pool, &source,
                                   [](uint32_t) { return 3; });
    if (!tree.ok()) state.SkipWithError("build failed");
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(BM_PackedRTreeBuild)->Arg(10000)->Arg(100000)->Arg(500000);

void BM_PackedRTreeSearch(benchmark::State& state) {
  MakeBenchDir(kDir);
  const uint32_t n = 200000;
  auto points = MakeSortedPoints(n);
  BufferPool pool(4096);
  RTreeOptions options;
  options.dims = 3;
  VectorPointSource source(points);
  auto tree_result = PackedRTree::Build(std::string(kDir) + "/search.ctr",
                                        options, &pool, &source,
                                        [](uint32_t) { return 3; });
  if (!tree_result.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  auto tree = std::move(tree_result).value();
  Rng rng(5);
  uint64_t found = 0;
  for (auto _ : state) {
    Rect query = Rect::Full(3);
    // Slice on the most-significant pack dimension.
    const Coord z = 1 + static_cast<Coord>(rng.Uniform(n));
    query.lo[2] = z;
    query.hi[2] = z + 200;
    Status st = tree->Search(query, [&](const PointRecord&) { ++found; });
    if (!st.ok()) state.SkipWithError("search failed");
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedRTreeSearch);

// Verify-on-read overhead: the same slice workload through a pool far
// smaller than the tree, so every search performs physical reads. Arg 1
// searches the tree as built (every page CRC-verified on read); Arg 0
// searches a copy whose .crc sidecar was removed (the pre-checksum open
// path — reads unverified). The wall-clock ratio is the checksum cost;
// the integrity design budgets ≤3% (DESIGN.md §13).
void BM_PackedRTreeSearchColdRead(benchmark::State& state) {
  MakeBenchDir(kDir);
  const bool verify = state.range(0) != 0;
  const uint32_t n = 200000;
  auto points = MakeSortedPoints(n);
  BufferPool pool(8);
  RTreeOptions options;
  options.dims = 3;
  const std::string verified_path = std::string(kDir) + "/cold.ctr";
  {
    VectorPointSource source(points);
    auto built = PackedRTree::Build(verified_path, options, &pool, &source,
                                    [](uint32_t) { return 3; });
    if (!built.ok()) {
      state.SkipWithError("build failed");
      return;
    }
  }
  std::string path = verified_path;
  if (!verify) {
    path = std::string(kDir) + "/cold_nocrc.ctr";
    std::error_code ec;
    std::filesystem::copy_file(
        verified_path, path, std::filesystem::copy_options::overwrite_existing,
        ec);
    if (ec || !RemoveChecksumSidecar(path).ok()) {
      state.SkipWithError("copy failed");
      return;
    }
  }
  auto opened = PackedRTree::Open(path, &pool);
  if (!opened.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto tree = std::move(opened).value();
  Rng rng(5);
  uint64_t found = 0;
  for (auto _ : state) {
    Rect query = Rect::Full(3);
    const Coord z = 1 + static_cast<Coord>(rng.Uniform(n));
    query.lo[2] = z;
    query.hi[2] = z + 2000;
    Status st = tree->Search(query, [&](const PointRecord&) { ++found; });
    if (!st.ok()) state.SkipWithError("search failed");
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedRTreeSearchColdRead)->Arg(1)->Arg(0);

void BM_MergePack(benchmark::State& state) {
  MakeBenchDir(kDir);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  auto base = MakeSortedPoints(n);
  auto delta = MakeSortedPoints(n / 10);
  BufferPool pool(256);
  RTreeOptions options;
  options.dims = 3;
  VectorPointSource base_source(base);
  auto old_tree = std::move(
      PackedRTree::Build(std::string(kDir) + "/mp_base.ctr", options, &pool,
                         &base_source, [](uint32_t) { return 3; })
          .value());
  for (auto _ : state) {
    VectorPointSource delta_source(delta);
    auto merged = MergePack(old_tree.get(), &delta_source,
                            std::string(kDir) + "/mp_out.ctr", options,
                            &pool, [](uint32_t) { return 3; });
    if (!merged.ok()) state.SkipWithError("merge failed");
  }
  state.SetItemsProcessed(state.iterations() * (n + n / 10));
}
BENCHMARK(BM_MergePack)->Arg(100000);

void BM_BTreeInsertRandom(benchmark::State& state) {
  MakeBenchDir(kDir);
  for (auto _ : state) {
    state.PauseTiming();
    BufferPool pool(1024);
    BTreeOptions options;
    options.key_parts = 3;
    options.value_size = 12;
    auto tree = std::move(
        BPlusTree::Create(std::string(kDir) + "/bt.idx", options, &pool)
            .value());
    Rng rng(7);
    char value[12] = {0};
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      uint32_t key[3] = {static_cast<uint32_t>(rng.Next()),
                         static_cast<uint32_t>(rng.Next()),
                         static_cast<uint32_t>(i)};
      Status st = tree->Insert(key, value);
      if (!st.ok()) state.SkipWithError("insert failed");
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsertRandom)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  MakeBenchDir(kDir);
  BufferPool pool(4096);
  BTreeOptions options;
  options.key_parts = 1;
  options.value_size = 8;
  auto tree = std::move(
      BPlusTree::Create(std::string(kDir) + "/btl.idx", options, &pool)
          .value());
  char value[8] = {0};
  const uint32_t n = 200000;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key[1] = {i * 2 + 1};
    Status st = tree->Insert(key, value);
    if (!st.ok()) {
      // A dropped error here would make the lookup loop silently measure a
      // partially-populated tree.
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  Rng rng(9);
  char out[8];
  for (auto _ : state) {
    uint32_t key[1] = {static_cast<uint32_t>(rng.Uniform(2 * n))};
    auto found = tree->Lookup(key, out);
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_ExternalSort(benchmark::State& state) {
  MakeBenchDir(kDir);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExternalSorter::Options options;
    options.record_size = 24;
    options.memory_budget_bytes = 1 << 20;  // Forces spills at 100k+.
    options.temp_dir = kDir;
    ExternalSorter sorter(options, [](const char* a, const char* b) {
      return DecodeFixed64(a) < DecodeFixed64(b);
    });
    Rng rng(3);
    char record[24] = {0};
    for (int i = 0; i < n; ++i) {
      EncodeFixed64(record, rng.Next());
      if (!sorter.Add(record).ok()) state.SkipWithError("add failed");
    }
    auto stream = sorter.Finish();
    if (!stream.ok()) {
      state.SkipWithError("finish failed");
      continue;
    }
    const char* rec = nullptr;
    uint64_t count = 0;
    do {
      if (!(*stream)->Next(&rec).ok()) break;
      ++count;
    } while (rec != nullptr);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * n * 24);
}
BENCHMARK(BM_ExternalSort)->Arg(100000)->Arg(500000);

}  // namespace
}  // namespace cubetree

// Custom main instead of BENCHMARK_MAIN(): peels off --json=<path> before
// handing the remaining flags to google-benchmark, then embeds the
// library's own JSON report inside the shared bench envelope so this
// binary emits the same schema as the macro benches. The library insists
// on writing its file report itself, so we route it through a sidecar
// file (--benchmark_out) and fold that into the envelope afterwards.
int main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> pass_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      pass_args.push_back(argv[i]);
    }
  }
  const std::string gbench_path = json_path + ".gbench";
  std::string out_flag = "--benchmark_out=" + gbench_path;
  std::string format_flag = "--benchmark_out_format=json";
  if (!json_path.empty()) {
    pass_args.push_back(out_flag.data());
    pass_args.push_back(format_flag.data());
  }
  int pass_argc = static_cast<int>(pass_args.size());
  benchmark::Initialize(&pass_argc, pass_args.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass_args.data())) {
    return 1;
  }
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  cubetree::bench::BenchArgs args;
  args.json_path = json_path;
  cubetree::bench::JsonWriter json(args, "bench_micro");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string report;
  if (std::FILE* f = std::fopen(gbench_path.c_str(), "rb")) {
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      report.append(buf, n);
    }
    std::fclose(f);
    std::remove(gbench_path.c_str());
  }
  auto parsed = cubetree::obs::JsonValue::Parse(report);
  if (parsed.ok()) {
    json.results().Set("google_benchmark", std::move(*parsed));
  } else {
    json.results().Set("google_benchmark_parse_error",
                       cubetree::obs::JsonValue(parsed.status().message()));
  }
  json.Finish();
  return 0;
}
