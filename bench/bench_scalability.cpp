// Reproduces Figure 14 of the paper: Cubetree query performance when the
// dataset doubles (paper: 1 GB vs 2 GB TPC-D). The per-view query time of
// the Cubetree configuration should be practically unaffected, with small
// differences explained by larger output sizes.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

struct PerViewTimes {
  std::vector<std::string> names;
  std::vector<double> seconds;
};

PerViewTimes Measure(Warehouse* warehouse, const bench::BenchArgs& args) {
  const CubeLattice& lattice = warehouse->lattice();
  const DiskModel& disk = warehouse->options().disk;
  IoStats* io = warehouse->cubetree_io().get();
  PerViewTimes result;
  for (size_t i = 0; i < lattice.num_nodes(); ++i) {
    const LatticeNode& node = lattice.node(i);
    if (node.attrs.empty()) continue;
    SliceQueryGenerator gen = warehouse->MakeQueryGenerator(args.seed + i);
    const IoStats before = *io;
    Timer timer;
    for (int q = 0; q < args.queries; ++q) {
      SliceQuery query = gen.ForNode(node.attrs, true);
      auto r = warehouse->cubetrees()->Execute(query, nullptr);
      bench::CheckOk(r.status(), "query");
    }
    result.names.push_back(
        bench::NodeName(warehouse->schema(), node.attrs));
    result.seconds.push_back(timer.ElapsedSeconds() +
                             disk.ModeledSeconds(*io - before));
  }
  return result;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_scalability");
  bench::PrintHeader(
      "Figure 14: Cubetree scalability (dataset x1 vs x2)", args);

  // Note: query *values* are drawn from each scale's own key domains, as
  // DBGEN data would be at 1 GB vs 2 GB.
  auto run_at = [&](double sf, const char* tag) {
    bench::BenchArgs scaled = args;
    scaled.sf = sf;
    auto warehouse = bench::CheckOk(
        Warehouse::Create(scaled.ToWarehouseOptions(tag)), "warehouse");
    bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");
    std::printf("  [%s] fact rows: %llu, forest: %s\n", tag,
                static_cast<unsigned long long>(
                    warehouse->generator().NumBaseLineitems()),
                bench::HumanBytes(warehouse->cubetrees()->StorageBytes())
                    .c_str());
    return Measure(warehouse.get(), scaled);
  };

  std::printf("\nloading both scales (cubetrees only, as in the paper)\n");
  PerViewTimes base = run_at(args.sf, "scale1");
  PerViewTimes doubled = run_at(args.sf * 2, "scale2");

  std::printf("\n%-26s %12s %12s %8s\n", "view", "x1 (s)", "x2 (s)",
              "ratio");
  double total1 = 0, total2 = 0;
  for (size_t i = 0; i < base.names.size(); ++i) {
    total1 += base.seconds[i];
    total2 += doubled.seconds[i];
    std::printf("%-26s %12.3f %12.3f %7.2fx\n", base.names[i].c_str(),
                base.seconds[i], doubled.seconds[i],
                doubled.seconds[i] / base.seconds[i]);
  }
  std::printf("%-26s %12.3f %12.3f %7.2fx\n", "TOTAL", total1, total2,
              total2 / total1);
  std::printf("\n(paper: query time practically unaffected by doubling "
              "the input; small growth tracks output size)\n");
  if (json.enabled()) {
    obs::JsonValue per_view = obs::JsonValue::MakeObject();
    for (size_t i = 0; i < base.names.size(); ++i) {
      obs::JsonValue& entry =
          per_view.Set(base.names[i], obs::JsonValue::MakeObject());
      entry.Set("x1_seconds", obs::JsonValue(base.seconds[i]));
      entry.Set("x2_seconds", obs::JsonValue(doubled.seconds[i]));
    }
    json.results().Set("per_view", std::move(per_view));
    json.results().Set("x1_total_seconds", obs::JsonValue(total1));
    json.results().Set("x2_total_seconds", obs::JsonValue(total2));
    json.results().Set("ratio", obs::JsonValue(total2 / total1));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
