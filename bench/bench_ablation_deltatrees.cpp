// Extension ablation: delta-tree refresh vs full merge-pack. The paper's
// merge-pack already brings the down-time window from hours to minutes;
// delta trees shrink it further to ~increment-sized work, at the price of
// one extra (small) tree search per pending delta until compaction. This
// bench plays a week of daily increments under both policies and reports
// per-day refresh cost, query cost as deltas accumulate, and the final
// compaction.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

double QueryBatchSeconds(Warehouse* warehouse, int queries, uint64_t seed) {
  const DiskModel& disk = warehouse->options().disk;
  IoStats* io = warehouse->cubetree_io().get();
  const CubeLattice& lattice = warehouse->lattice();
  SliceQueryGenerator gen = warehouse->MakeQueryGenerator(seed);
  const IoStats before = *io;
  Timer timer;
  for (int q = 0; q < queries; ++q) {
    SliceQuery query = gen.UniformOverLattice(lattice, true, true);
    bench::CheckOk(warehouse->cubetrees()->Execute(query, nullptr).status(),
                   "query");
  }
  return timer.ElapsedSeconds() + disk.ModeledSeconds(*io - before);
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_deltatrees");
  bench::PrintHeader(
      "Ablation: delta-tree refresh vs full merge-pack (1 week of 2% "
      "daily increments)",
      args);

  const int kDays = 7;
  for (bool partial : {false, true}) {
    WarehouseOptions options = args.ToWarehouseOptions(
        partial ? "deltatrees" : "mergepack");
    options.increment_fraction = 0.02;
    auto warehouse =
        bench::CheckOk(Warehouse::Create(options), "warehouse");
    bench::CheckOk(warehouse->LoadCubetrees().status(), "load");

    std::printf("\n--- policy: %s ---\n",
                partial ? "delta trees (+ final compaction)"
                        : "full merge-pack each day");
    std::printf("%-6s %14s %16s %16s %10s\n", "day", "refresh wall",
                "refresh 1997(s)", "queries 1997(s)", "deltas");
    double refresh_total = 0;
    for (uint32_t day = 0; day < kDays; ++day) {
      auto report = partial ? warehouse->UpdateCubetreesPartial(day)
                            : warehouse->UpdateCubetrees(day);
      PhaseReport phase = bench::CheckOk(std::move(report), "refresh");
      const double queries =
          QueryBatchSeconds(warehouse.get(), args.queries, args.seed + day);
      refresh_total += phase.modeled_seconds;
      std::printf("%-6u %13.3fs %16.3f %16.3f %10zu\n", day + 1,
                  phase.wall_seconds, phase.modeled_seconds, queries,
                  warehouse->cubetrees()->forest()->TotalDeltas());
    }
    if (partial) {
      PhaseReport compaction =
          bench::CheckOk(warehouse->CompactCubetrees(), "compact");
      refresh_total += compaction.modeled_seconds;
      std::printf("compaction: %.3fs wall, %.3f modeled; deltas now %zu\n",
                  compaction.wall_seconds, compaction.modeled_seconds,
                  warehouse->cubetrees()->forest()->TotalDeltas());
    }
    std::printf("total refresh (1997 disk): %.3f s; forest %s\n",
                refresh_total,
                bench::HumanBytes(warehouse->cubetrees()->StorageBytes())
                    .c_str());
    if (json.enabled()) {
      obs::JsonValue& entry = json.results().Set(
          partial ? "delta_trees" : "merge_pack",
          obs::JsonValue::MakeObject());
      entry.Set("total_refresh_modeled_seconds",
                obs::JsonValue(refresh_total));
      entry.Set("forest_bytes",
                obs::JsonValue(warehouse->cubetrees()->StorageBytes()));
    }
  }
  std::printf("\n(delta trees make each day's window ~increment-sized and "
              "defer the full rewrite to one compaction; query cost drifts "
              "up slightly as deltas accumulate)\n");
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
