// Ablation: buffer pool size sweep. Subsection 2.4 argues that minimizing
// the number of Cubetrees raises the probability of keeping the trees'
// top-level pages resident, so the organization degrades gracefully as
// memory shrinks; the conventional configuration leans on large B-trees
// plus heap fetches and suffers much earlier.

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "engine/conventional_engine.h"
#include "engine/cubetree_engine.h"
#include "storage/buffer_pool.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_bufferpool");
  bench::PrintHeader("Ablation: query I/O vs buffer pool size", args);

  auto setup = bench::ComputeTpcdViews(args, bench::PaperViews(true),
                                       "abl_pool");
  DiskModel disk;
  CubeLattice lattice(setup.schema);

  const std::vector<size_t> pool_sizes = {64, 128, 256, 512, 1024, 2048};
  std::printf("\n%-12s %18s %18s\n", "pool pages", "conventional 1997(s)",
              "cubetrees 1997(s)");
  for (size_t pages : pool_sizes) {
    // Cubetree configuration.
    double cbt_seconds;
    {
      auto io = std::make_shared<IoStats>();
      BufferPool pool(pages);
      CubetreeEngine::Options options;
      options.dir = args.dir + "_abl_pool";
      options.name = "cbt" + std::to_string(pages);
      options.io_stats = io;
      auto engine = bench::CheckOk(
          CubetreeEngine::Create(setup.schema, options, &pool), "engine");
      bench::CheckOk(
          engine->Load(bench::PaperViews(true), setup.data.get()), "load");
      const IoStats before = *io;
      SliceQueryGenerator gen(setup.schema, args.seed);
      for (size_t i = 0; i < lattice.num_nodes(); ++i) {
        if (lattice.node(i).attrs.empty()) continue;
        for (int q = 0; q < args.queries; ++q) {
          SliceQuery query = gen.ForNode(lattice.node(i).attrs, true);
          bench::CheckOk(engine->Execute(query, nullptr).status(), "q");
        }
      }
      cbt_seconds = disk.ModeledSeconds(*io - before);
    }
    // Conventional configuration (views + the 3 selected indices).
    double conv_seconds;
    {
      auto io = std::make_shared<IoStats>();
      BufferPool pool(pages);
      ConventionalEngine::Options options;
      options.dir = args.dir + "_abl_pool";
      options.name = "conv" + std::to_string(pages);
      options.io_stats = io;
      auto engine = bench::CheckOk(
          ConventionalEngine::Create(setup.schema, options, &pool),
          "engine");
      bench::CheckOk(
          engine->LoadTables(bench::PaperViews(false), setup.data.get()),
          "tables");
      std::vector<IndexDef> indices;
      IndexDef csp{1, 0b111, {2, 1, 0}};
      IndexDef pcs{2, 0b111, {0, 2, 1}};
      IndexDef spc{3, 0b111, {1, 0, 2}};
      indices = {csp, pcs, spc};
      bench::CheckOk(engine->BuildIndices(indices), "indices");
      const IoStats before = *io;
      SliceQueryGenerator gen(setup.schema, args.seed);
      for (size_t i = 0; i < lattice.num_nodes(); ++i) {
        if (lattice.node(i).attrs.empty()) continue;
        for (int q = 0; q < args.queries; ++q) {
          SliceQuery query = gen.ForNode(lattice.node(i).attrs, true);
          bench::CheckOk(engine->Execute(query, nullptr).status(), "q");
        }
      }
      conv_seconds = disk.ModeledSeconds(*io - before);
    }
    std::printf("%-12zu %18.3f %18.3f\n", pages, conv_seconds, cbt_seconds);
    if (json.enabled()) {
      obs::JsonValue& entry = json.results().Set(
          std::to_string(pages) + "_pages", obs::JsonValue::MakeObject());
      entry.Set("conv_modeled_seconds", obs::JsonValue(conv_seconds));
      entry.Set("cbt_modeled_seconds", obs::JsonValue(cbt_seconds));
    }
  }
  std::printf("\n(cubetree query I/O should be nearly flat across pool "
              "sizes; the conventional path degrades as index+heap "
              "working sets fall out of memory)\n");
  bench::CheckOk(setup.data->Destroy(), "cleanup");
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
