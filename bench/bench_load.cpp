// Reproduces Table 6 of the paper: total time to load the TPC-D view set
// under the conventional organization (materialize views as tables, then
// build the selected B-trees) versus the Cubetree organization (sort +
// compute + pack in one pass).
//
// Paper (SF=1, Ultra Sparc I):
//   Conventional: views 10h58m23s + indices 51m05s = 11h49m28s
//   Cubetrees:    45m04s  (~16x faster)
//
// We report wall-clock on this machine and, more comparably, the modeled
// time of the same physical I/O on a 1997-class disk.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_load");
  bench::PrintHeader("Table 6: initial load of the TPC-D view set", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("load")), "warehouse");
  std::printf("fact rows: %llu\n\n",
              static_cast<unsigned long long>(
                  warehouse->generator().NumBaseLineitems()));

  LoadReport conv =
      bench::CheckOk(warehouse->LoadConventional(), "load conventional");
  LoadReport cbt =
      bench::CheckOk(warehouse->LoadCubetrees(), "load cubetrees");

  std::printf("%-14s %-14s %-14s %-14s | %-16s\n", "Configuration",
              "Views", "Indices", "Total(wall)", "Total(1997 disk)");
  std::printf("%-14s %-14s %-14s %-14s | %-16s\n", "Conventional",
              bench::HumanSeconds(conv.views.wall_seconds).c_str(),
              bench::HumanSeconds(conv.indices.wall_seconds).c_str(),
              bench::HumanSeconds(conv.TotalWallSeconds()).c_str(),
              bench::HumanSeconds(conv.TotalModeledSeconds()).c_str());
  std::printf("%-14s %-14s %-14s %-14s | %-16s\n", "Cubetrees",
              bench::HumanSeconds(cbt.views.wall_seconds).c_str(), "-",
              bench::HumanSeconds(cbt.TotalWallSeconds()).c_str(),
              bench::HumanSeconds(cbt.TotalModeledSeconds()).c_str());

  std::printf("\nload speedup: %.1fx wall, %.1fx modeled "
              "(paper: ~16x)\n",
              conv.TotalWallSeconds() / cbt.TotalWallSeconds(),
              conv.TotalModeledSeconds() / cbt.TotalModeledSeconds());

  std::printf("\nI/O during load (pages):\n");
  std::printf("  conventional: %llu seq reads, %llu rand reads, "
              "%llu seq writes, %llu rand writes\n",
              static_cast<unsigned long long>(
                  conv.views.io.sequential_reads +
                  conv.indices.io.sequential_reads),
              static_cast<unsigned long long>(conv.views.io.random_reads +
                                              conv.indices.io.random_reads),
              static_cast<unsigned long long>(
                  conv.views.io.sequential_writes +
                  conv.indices.io.sequential_writes),
              static_cast<unsigned long long>(
                  conv.views.io.random_writes +
                  conv.indices.io.random_writes));
  std::printf("  cubetrees:    %llu seq reads, %llu rand reads, "
              "%llu seq writes, %llu rand writes\n",
              static_cast<unsigned long long>(
                  cbt.views.io.sequential_reads),
              static_cast<unsigned long long>(cbt.views.io.random_reads),
              static_cast<unsigned long long>(
                  cbt.views.io.sequential_writes),
              static_cast<unsigned long long>(cbt.views.io.random_writes));

  std::printf("\nstorage after load: conventional %s, cubetrees %s "
              "(see bench_storage)\n",
              bench::HumanBytes(warehouse->conventional()->StorageBytes())
                  .c_str(),
              bench::HumanBytes(warehouse->cubetrees()->StorageBytes())
                  .c_str());
  if (json.enabled()) {
    const DiskModel& disk = warehouse->options().disk;
    IoStats conv_io = conv.views.io;
    conv_io += conv.indices.io;
    json.AddIoStats("conventional", conv_io, disk);
    json.AddIoStats("cubetrees", cbt.views.io, disk);
    json.results().Set("conv_wall_seconds",
                       obs::JsonValue(conv.TotalWallSeconds()));
    json.results().Set("cbt_wall_seconds",
                       obs::JsonValue(cbt.TotalWallSeconds()));
    json.results().Set("conv_modeled_seconds",
                       obs::JsonValue(conv.TotalModeledSeconds()));
    json.results().Set("cbt_modeled_seconds",
                       obs::JsonValue(cbt.TotalModeledSeconds()));
    json.results().Set(
        "speedup_modeled",
        obs::JsonValue(conv.TotalModeledSeconds() /
                       cbt.TotalModeledSeconds()));
    json.results().Set(
        "conv_storage_bytes",
        obs::JsonValue(warehouse->conventional()->StorageBytes()));
    json.results().Set(
        "cbt_storage_bytes",
        obs::JsonValue(warehouse->cubetrees()->StorageBytes()));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
