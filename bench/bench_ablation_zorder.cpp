// Ablation: pack-order sorting vs a space-filling-curve (Z-order) sort.
// Section 2.3: "This is true because of the sorting and is one of the
// reasons for considering only sorts based on lowY, lowX and not space
// filling curves [FR89] when packing the trees."
//
// We bulk-load the top view twice — once in pack order (with the two
// replicas standing in for the other sort orders, as the real system
// does) and once in Z-order (single copy; SFC packing is pitched as
// one-order-fits-all) — and compare leaf I/O per query class.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <array>
#include <map>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "rtree/packed_rtree.h"
#include "rtree/zorder.h"
#include "storage/buffer_pool.h"

namespace cubetree {
namespace {

std::vector<PointRecord> TopViewPoints(const bench::BenchArgs& args) {
  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = args.sf;
  gen_options.seed = args.seed;
  tpcd::Generator generator(gen_options);
  // Aggregate the facts into the top view in memory (bench-local).
  std::map<std::array<Coord, 3>, AggValue> groups;
  auto source = generator.BaseFacts()->Open();
  bench::CheckOk(source.status(), "facts");
  const FactTuple* t = nullptr;
  while (true) {
    bench::CheckOk((*source)->Next(&t), "next");
    if (t == nullptr) break;
    groups[{t->attr_values[0], t->attr_values[1], t->attr_values[2]}].Merge(
        AggValue{t->measure, 1});
  }
  std::vector<PointRecord> points;
  points.reserve(groups.size());
  for (const auto& [key, agg] : groups) {
    PointRecord rec;
    rec.view_id = 1;
    rec.coords[0] = key[0];
    rec.coords[1] = key[1];
    rec.coords[2] = key[2];
    rec.agg = agg;
    points.push_back(rec);
  }
  return points;
}

/// Leaf pages touched by `queries` boxes, averaged.
double AvgLeafPages(PackedRTree* tree, const std::vector<Rect>& queries) {
  uint64_t total = 0;
  for (const Rect& query : queries) {
    SearchStats stats;
    bench::CheckOk(tree->Search(query, [](const PointRecord&) {}, &stats),
                   "search");
    total += stats.leaf_pages;
  }
  return static_cast<double>(total) / queries.size();
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_zorder");
  bench::PrintHeader(
      "Ablation: pack-order vs Z-order (space-filling curve) packing",
      args);

  auto points = TopViewPoints(args);
  std::printf("top view: %zu groups\n", points.size());
  BufferPool pool(4096);
  const std::string dir = args.dir + "_zorder";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "mkdir %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  // Variant 1: pack order, one tree per sort order (as the system does:
  // base + 2 replicas — here we build the base (p,s,c) order only and
  // query the classes its order serves, the replica classes being
  // symmetric).
  RTreeOptions pack_options;
  pack_options.dims = 3;
  std::sort(points.begin(), points.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return PackOrderCompare(a.coords, b.coords, 3) < 0;
            });
  VectorPointSource pack_source(points);
  auto pack_tree = bench::CheckOk(
      PackedRTree::Build(dir + "/pack.ctr", pack_options, &pool,
                         &pack_source, [](uint32_t) { return 3; }),
      "pack build");

  // Variant 2: Z-order.
  RTreeOptions z_options;
  z_options.dims = 3;
  z_options.enforce_pack_order = false;
  std::sort(points.begin(), points.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return ZOrderCompare(a.coords, b.coords, 3) < 0;
            });
  VectorPointSource z_source(points);
  auto z_tree = bench::CheckOk(
      PackedRTree::Build(dir + "/zorder.ctr", z_options, &pool, &z_source,
                         [](uint32_t) { return 3; }),
      "zorder build");

  std::printf("files: pack %s, z-order %s (same size: same leaves, "
              "different order)\n\n",
              bench::HumanBytes(pack_tree->FileSizeBytes()).c_str(),
              bench::HumanBytes(z_tree->FileSizeBytes()).c_str());

  // Query classes: slice on each single attribute, and a 3-d band box.
  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = args.sf;
  tpcd::Generator generator(gen_options);
  Rng rng(args.seed);
  const uint32_t domains[3] = {generator.sizes().parts,
                               generator.sizes().suppliers,
                               generator.sizes().customers};
  const char* names[3] = {"partkey", "suppkey", "custkey"};

  std::printf("%-26s %18s %18s\n", "query class",
              "pack: leaf pages/q", "z-order: leaf pages/q");
  for (int attr = 0; attr < 3; ++attr) {
    std::vector<Rect> queries;
    for (int q = 0; q < args.queries; ++q) {
      Rect rect = Rect::Full(3);
      const Coord v = static_cast<Coord>(1 + rng.Uniform(domains[attr]));
      rect.lo[attr] = v;
      rect.hi[attr] = v;
      for (int d = 0; d < 3; ++d) {
        if (d != attr) rect.lo[d] = 1;  // Exclude the (empty) zero planes.
      }
      queries.push_back(rect);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "slice %s = const", names[attr]);
    const double pack_pages = AvgLeafPages(pack_tree.get(), queries);
    const double z_pages = AvgLeafPages(z_tree.get(), queries);
    std::printf("%-26s %18.1f %18.1f\n", label, pack_pages, z_pages);
    if (json.enabled()) {
      obs::JsonValue& entry =
          json.results().Set(label, obs::JsonValue::MakeObject());
      entry.Set("pack_leaf_pages_per_query", obs::JsonValue(pack_pages));
      entry.Set("zorder_leaf_pages_per_query", obs::JsonValue(z_pages));
    }
  }
  {
    std::vector<Rect> queries;
    for (int q = 0; q < args.queries; ++q) {
      Rect rect;
      for (int d = 0; d < 3; ++d) {
        const uint32_t span = std::max(1u, domains[d] / 10);
        const Coord lo =
            static_cast<Coord>(1 + rng.Uniform(domains[d] - span + 1));
        rect.lo[d] = lo;
        rect.hi[d] = lo + span - 1;
      }
      queries.push_back(rect);
    }
    std::printf("%-26s %18.1f %18.1f\n", "3-d band (10% per axis)",
                AvgLeafPages(pack_tree.get(), queries),
                AvgLeafPages(z_tree.get(), queries));
  }
  std::printf("\n(pack order is unbeatable on the sort-leading slice and "
              "relies on replicas for the others; Z-order is middling "
              "everywhere — and it would interleave the views of a shared "
              "tree, forfeiting compression and merge-pack, which is why "
              "the paper rules it out)\n");
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
