// Reproduces Table 7 of the paper: refreshing the warehouse with a 10%
// TPC-D increment under three methods:
//   1. Incremental maintenance of the relational views (one group row at
//      a time through the primary-key index)       — paper: > 24 hours
//   2. Recomputation of the relational views from scratch
//                                                   — paper: 12h 59m 11s
//   3. Bulk-incremental merge-pack of the Cubetrees — paper:     8m 24s
//
// The headline 100:1 comes from the random-I/O bound per-tuple path vs
// the purely sequential merge-pack; the modeled 1997-disk column makes
// that visible on modern hardware.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_updates");
  bench::PrintHeader("Table 7: 10% increment refresh, three methods", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("updates")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");
  std::printf("base fact rows: %llu, increment: %llu rows\n\n",
              static_cast<unsigned long long>(
                  warehouse->generator().NumBaseLineitems()),
              static_cast<unsigned long long>(
                  warehouse->generator().NumIncrementLineitems(0.10, 0)));

  // Method 3 first (it does not disturb the conventional store).
  PhaseReport cbt = bench::CheckOk(warehouse->UpdateCubetrees(0),
                                   "cubetree merge-pack");
  // Method 1: per-tuple incremental maintenance.
  PhaseReport inc = bench::CheckOk(
      warehouse->UpdateConventionalIncremental(0), "incremental");
  // Method 2: recompute from scratch over base + increment.
  PhaseReport rec = bench::CheckOk(
      warehouse->UpdateConventionalRecompute(0), "recompute");

  std::printf("%-44s %12s %16s\n", "Method", "wall", "1997-disk model");
  std::printf("%-44s %12s %16s\n",
              "Incremental update of materialized views",
              bench::HumanSeconds(inc.wall_seconds).c_str(),
              bench::HumanSeconds(inc.modeled_seconds).c_str());
  std::printf("%-44s %12s %16s\n", "Re-computation of materialized views",
              bench::HumanSeconds(rec.wall_seconds).c_str(),
              bench::HumanSeconds(rec.modeled_seconds).c_str());
  std::printf("%-44s %12s %16s\n", "Incremental update of Cubetrees",
              bench::HumanSeconds(cbt.wall_seconds).c_str(),
              bench::HumanSeconds(cbt.modeled_seconds).c_str());

  std::printf("\nmerge-pack vs per-tuple:  %6.1fx wall, %6.1fx modeled "
              "(paper: >100x)\n",
              inc.wall_seconds / cbt.wall_seconds,
              inc.modeled_seconds / cbt.modeled_seconds);
  std::printf("merge-pack vs recompute:  %6.1fx wall, %6.1fx modeled "
              "(paper: ~93x)\n",
              rec.wall_seconds / cbt.wall_seconds,
              rec.modeled_seconds / cbt.modeled_seconds);

  std::printf("\nrandom page I/O during refresh:\n");
  std::printf("  per-tuple:  %llu random ops (of %llu total)\n",
              static_cast<unsigned long long>(inc.io.random_reads +
                                              inc.io.random_writes),
              static_cast<unsigned long long>(inc.io.TotalOps()));
  std::printf("  merge-pack: %llu random ops (of %llu total)\n",
              static_cast<unsigned long long>(cbt.io.random_reads +
                                              cbt.io.random_writes),
              static_cast<unsigned long long>(cbt.io.TotalOps()));
  if (json.enabled()) {
    const DiskModel& disk = warehouse->options().disk;
    json.AddIoStats("incremental", inc.io, disk);
    json.AddIoStats("recompute", rec.io, disk);
    json.AddIoStats("merge_pack", cbt.io, disk);
    auto method = [&](const char* name, const PhaseReport& r) {
      obs::JsonValue& entry =
          json.results().Set(name, obs::JsonValue::MakeObject());
      entry.Set("wall_seconds", obs::JsonValue(r.wall_seconds));
      entry.Set("modeled_seconds", obs::JsonValue(r.modeled_seconds));
    };
    method("incremental", inc);
    method("recompute", rec);
    method("merge_pack", cbt);
    json.results().Set(
        "speedup_vs_incremental_modeled",
        obs::JsonValue(inc.modeled_seconds / cbt.modeled_seconds));
    json.results().Set(
        "speedup_vs_recompute_modeled",
        obs::JsonValue(rec.modeled_seconds / cbt.modeled_seconds));
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
