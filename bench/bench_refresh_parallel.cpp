// Refresh scalability: the same TPC-D increment is merge-packed into a
// fresh forest with the refresh worker pool at widths 1/2/4/8 while four
// reader threads keep serving old-epoch snapshot queries throughout.
//
// On one spindle the merge-pack is transfer-bound, so wall-clock speedup
// needs real cores AND independent disks — neither of which a small CI
// container reliably has. Next to wall time the bench therefore reports
// the modeled per-spindle refresh time: each worker streams its trees on
// its own 1997-class disk, so the modeled refresh is the makespan of the
// per-tree transfer costs under ParallelFor's earliest-free-worker
// dispatch. The speedup column compares that makespan against the serial
// sum of the same costs.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "cubetree/forest.h"

namespace cubetree {
namespace {

/// Earliest-free-worker schedule of `costs` taken in index order —
/// ParallelFor's dynamic dispatch with one modeled spindle per worker.
double Makespan(const std::vector<double>& costs, unsigned workers) {
  std::vector<double> free_at(std::max(1u, workers), 0.0);
  for (double cost : costs) {
    *std::min_element(free_at.begin(), free_at.end()) += cost;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_refresh_parallel");
  bench::PrintHeader(
      "Parallel refresh: merge-pack worker pool at 1/2/4/8 threads with "
      "concurrent readers",
      args);

  // The paper's view set with its two sort-order replicas, plus one more
  // replica order: four arity-3 views land in four similarly sized trees,
  // so the pool has balanced work at width 4.
  std::vector<ViewDef> views = bench::PaperViews(true);
  {
    ViewDef extra;
    extra.id = 1002;
    extra.attrs = {0, 2, 1};
    views.push_back(extra);
  }

  auto io = std::make_shared<IoStats>();
  bench::TpcdViewData base =
      bench::ComputeTpcdViews(args, views, "refreshpar", io);
  const std::string dir = args.dir + "_refreshpar";

  // The paper's 10% increment, computed once into its own sorted spools
  // and replayed against every pool width.
  CubeBuilder::Options build_options;
  build_options.temp_dir = dir;
  build_options.sort_budget_bytes = std::max<size_t>(
      256u << 10, static_cast<size_t>((16u << 20) * args.sf));
  build_options.io_stats = io;
  CubeBuilder builder(base.schema, build_options);
  auto inc_facts = base.generator->IncrementFacts(0.10, 0);
  auto delta = bench::CheckOk(
      builder.ComputeAll(views, inc_facts.get(), "refreshpar_inc"),
      "compute increment");

  const DiskModel disk;
  const std::vector<unsigned> widths = {1, 2, 4, 8};
  uint64_t expected_points = 0;
  double speedup_at_4 = 0;
  size_t num_trees = 0;

  std::printf("\n%-8s %12s %17s %17s %9s %14s\n", "threads", "wall",
              "modeled refresh", "modeled makespan", "speedup",
              "reader queries");
  for (unsigned width : widths) {
    const std::string sub = dir + "/t" + std::to_string(width);
    std::error_code ec;
    std::filesystem::create_directories(sub, ec);
    if (ec) {
      std::fprintf(stderr, "mkdir %s: %s\n", sub.c_str(),
                   ec.message().c_str());
      return 1;
    }
    auto run_io = std::make_shared<IoStats>();
    BufferPool pool(bench::ScaledPoolPages(args));
    CubetreeForest::Options forest_options;
    forest_options.dir = sub;
    forest_options.name = "f";
    forest_options.refresh_threads = width;
    auto forest = bench::CheckOk(
        CubetreeForest::Create(forest_options, &pool, run_io), "forest");
    bench::CheckOk(forest->Build(views, base.data.get()), "build");
    num_trees = forest->num_trees();

    std::vector<uint64_t> old_pages;
    for (size_t t = 0; t < forest->num_trees(); ++t) {
      old_pages.push_back(forest->tree(t)->TotalSizeBytes() / kPageSize);
    }

    // Four readers serve snapshot queries (the small views, so the reader
    // traffic does not swamp the refresh's I/O accounting) for the whole
    // refresh window. Old epochs stay pinned and readable throughout.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> read_errors{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_relaxed)) {
          ForestSnapshot snap = forest->AcquireSnapshot();
          for (const ViewDef& view : views) {
            if (view.arity() > 1) continue;
            auto tree = snap.TreeForView(view.id);
            if (!tree.ok()) {
              read_errors.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            uint64_t rows = 0;
            std::vector<std::optional<Coord>> open(view.arity(),
                                                   std::nullopt);
            const Status status = (*tree)->QuerySlice(
                view.id, open,
                [&rows](const Coord*, const AggValue&) { ++rows; });
            if (status.ok() && rows > 0) {
              reads.fetch_add(1, std::memory_order_relaxed);
            } else if (!status.ok()) {
              read_errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }

    const IoStats before = *run_io;
    Timer timer;
    bench::CheckOk(forest->ApplyDelta(delta.get()), "refresh");
    const double wall = timer.ElapsedSeconds();
    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();
    const IoStats refresh_io = *run_io - before;

    // Every width must converge to the identical refreshed forest.
    const uint64_t points = forest->TotalPoints();
    if (expected_points == 0) {
      expected_points = points;
    } else if (points != expected_points) {
      std::fprintf(stderr,
                   "FATAL width %u produced %llu points, width 1 produced "
                   "%llu\n",
                   width, static_cast<unsigned long long>(points),
                   static_cast<unsigned long long>(expected_points));
      return 1;
    }

    // Per-tree modeled transfer cost of this refresh: stream the old tree
    // in, stream the repacked tree out (the delta read rides along and is
    // proportionally small).
    std::vector<double> costs;
    for (size_t t = 0; t < forest->num_trees(); ++t) {
      const uint64_t new_pages =
          forest->tree(t)->TotalSizeBytes() / kPageSize;
      costs.push_back(static_cast<double>(old_pages[t] + new_pages) *
                      disk.PageTransferSeconds());
    }
    const double serial = Makespan(costs, 1);
    const double makespan = Makespan(costs, width);
    const double speedup = serial / makespan;
    if (width == 4) speedup_at_4 = speedup;

    std::printf("%-8u %11.3fs %16.3fs %16.3fs %8.2fx %14llu\n", width,
                wall, disk.ModeledSeconds(refresh_io), makespan, speedup,
                static_cast<unsigned long long>(reads.load()));
    if (read_errors.load() != 0) {
      std::fprintf(stderr, "FATAL %llu reader queries failed at width %u\n",
                   static_cast<unsigned long long>(read_errors.load()),
                   width);
      return 1;
    }
    if (json.enabled()) {
      const std::string tag = "t" + std::to_string(width);
      json.AddIoStats("refresh_" + tag, refresh_io, disk);
      obs::JsonValue& entry =
          json.results().Set(tag, obs::JsonValue::MakeObject());
      entry.Set("wall_seconds", obs::JsonValue(wall));
      entry.Set("modeled_refresh_seconds",
                obs::JsonValue(disk.ModeledSeconds(refresh_io)));
      entry.Set("modeled_makespan_seconds", obs::JsonValue(makespan));
      entry.Set("modeled_speedup_vs_serial", obs::JsonValue(speedup));
      entry.Set("reader_queries", obs::JsonValue(reads.load()));
    }
  }

  std::printf("\n%zu trees; modeled per-spindle speedup at 4 workers: "
              "%.2fx (target: >= 2.5x)\n",
              num_trees, speedup_at_4);
  if (json.enabled()) {
    json.results().Set("num_trees",
                       obs::JsonValue(static_cast<uint64_t>(num_trees)));
    json.results().Set("modeled_speedup_at_4_threads",
                       obs::JsonValue(speedup_at_4));
    json.Finish();
  }
  return speedup_at_4 >= 2.5 ? 0 : 1;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
