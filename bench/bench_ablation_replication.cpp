// Ablation: the sort-order replication of the top view (Section 3, "data
// replication scheme, where selected views are stored in multiple sort
// orders"). Compares query cost with and without the two replicas for
// slice queries that bind each single attribute of the top view — each
// replica serves the attribute its pack order leads with.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "engine/cubetree_engine.h"
#include "storage/buffer_pool.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_ablation_replication");
  bench::PrintHeader("Ablation: top-view sort-order replication", args);

  struct Variant {
    const char* name;
    bool replicas;
  } variants[] = {{"with-replicas", true}, {"without-replicas", false}};

  DiskModel disk;
  for (const auto& variant : variants) {
    const std::string subdir =
        std::string("abl_rep_") + (variant.replicas ? "on" : "off");
    auto setup = bench::ComputeTpcdViews(
        args, bench::PaperViews(variant.replicas), subdir);
    auto io = std::make_shared<IoStats>();
    BufferPool pool(bench::ScaledPoolPages(args));
    CubetreeEngine::Options options;
    options.dir = args.dir + "_" + subdir;
    options.name = variant.name;
    options.io_stats = io;
    auto engine = bench::CheckOk(
        CubetreeEngine::Create(setup.schema, options, &pool), "engine");
    bench::CheckOk(
        engine->Load(bench::PaperViews(variant.replicas), setup.data.get()),
        "load");

    std::printf("\n%s: storage %s\n", variant.name,
                bench::HumanBytes(engine->StorageBytes()).c_str());
    obs::JsonValue* variant_json = nullptr;
    if (json.enabled()) {
      variant_json = &json.results().Set(variant.name,
                                         obs::JsonValue::MakeObject());
      variant_json->Set("storage_bytes",
                        obs::JsonValue(engine->StorageBytes()));
    }
    std::printf("  %-34s %16s %14s\n", "query class (on V{p,s,c})",
                "query 1997(s)", "tuples/query");
    // One class per bound attribute of the top view.
    for (uint32_t bound = 0; bound < 3; ++bound) {
      SliceQueryGenerator gen(setup.schema, args.seed + bound);
      const IoStats before = *io;
      uint64_t tuples = 0;
      for (int q = 0; q < args.queries; ++q) {
        SliceQuery query;
        query.node_mask = 0b111;
        query.attrs = {0, 1, 2};
        query.bindings = {std::nullopt, std::nullopt, std::nullopt};
        // Draw a random key for the bound attribute.
        SliceQuery draw = gen.ForNode({bound}, true);
        query.bindings[bound] = draw.bindings[0];
        QueryExecStats stats;
        bench::CheckOk(engine->Execute(query, &stats).status(), "query");
        tuples += stats.tuples_accessed;
      }
      const double modeled_s = disk.ModeledSeconds(*io - before);
      const double tuples_per_query =
          static_cast<double>(tuples) / args.queries;
      std::printf("  bind %-29s %16.3f %14.0f\n",
                  setup.schema.attr_names[bound].c_str(), modeled_s,
                  tuples_per_query);
      if (variant_json != nullptr) {
        obs::JsonValue& entry = variant_json->Set(
            "bind_" + setup.schema.attr_names[bound],
            obs::JsonValue::MakeObject());
        entry.Set("modeled_seconds", obs::JsonValue(modeled_s));
        entry.Set("tuples_per_query", obs::JsonValue(tuples_per_query));
      }
    }
    bench::CheckOk(setup.data->Destroy(), "cleanup");
  }
  std::printf("\n(paper: replicas substitute for the 3 selected B-tree "
              "orders; without them, queries binding attributes early in "
              "the projection list scan far more of the view)\n");
  json.Finish();
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
