// Reproduces the "preliminary set of experiments" of Section 3.3: for each
// query type, which SQL formulation / access path is fastest? The paper's
// example: Q1 ("total sales per part from supplier S") can be answered by
// scanning V{partkey,suppkey} or by the I{suppkey,partkey,custkey} index
// over the top view with an extra aggregation step — and the indexed plan
// wins despite touching the bigger view. This bench measures both plans
// explicitly on both organizations.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/timer.h"

namespace cubetree {
namespace {

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::JsonWriter json(args, "bench_query_plans");
  bench::PrintHeader(
      "Section 3.3: plan validation — view scan vs top-view index", args);

  auto warehouse = bench::CheckOk(
      Warehouse::Create(args.ToWarehouseOptions("plans")), "warehouse");
  bench::CheckOk(warehouse->LoadConventional().status(), "load conv");
  bench::CheckOk(warehouse->LoadCubetrees().status(), "load cbt");
  const DiskModel& disk = warehouse->options().disk;

  // Q1: SELECT partkey, SUM(quantity) FROM F WHERE suppkey = S
  //     GROUP BY partkey — the paper's example query.
  auto measure = [&](ViewStore* engine, IoStats* io, std::string* plan,
                     const char* tag) {
    SliceQueryGenerator gen = warehouse->MakeQueryGenerator(args.seed);
    const IoStats before = *io;
    Timer timer;
    uint64_t tuples = 0;
    for (int q = 0; q < args.queries; ++q) {
      SliceQuery query;
      query.node_mask = 0b011;
      query.attrs = {0, 1};
      query.bindings = {std::nullopt, std::nullopt};
      SliceQuery draw = gen.ForNode({1}, true);
      query.bindings[1] = draw.bindings[0];
      QueryExecStats stats;
      auto result = engine->Execute(query, &stats);
      bench::CheckOk(result.status(), "q1");
      tuples += stats.tuples_accessed;
      *plan = stats.plan;
    }
    const double seconds =
        timer.ElapsedSeconds() + disk.ModeledSeconds(*io - before);
    std::printf("    plan: %-46s %10.3fs (1997)  %8.0f tuples/query\n",
                plan->c_str(), seconds,
                static_cast<double>(tuples) / args.queries);
    if (json.enabled()) {
      obs::JsonValue& entry =
          json.results().Set(tag, obs::JsonValue::MakeObject());
      entry.Set("plan", obs::JsonValue(*plan));
      entry.Set("seconds_1997", obs::JsonValue(seconds));
      entry.Set("tuples_per_query",
                obs::JsonValue(static_cast<double>(tuples) / args.queries));
    }
  };

  std::string plan;
  std::printf("\nQ1 = SELECT partkey, SUM(quantity) FROM F WHERE suppkey=S "
              "GROUP BY partkey (x%d)\n", args.queries);
  std::printf("  conventional (planner's choice):\n");
  measure(warehouse->conventional(), warehouse->conventional_io().get(),
          &plan, "conventional");
  std::printf("  cubetrees (router's choice):\n");
  measure(warehouse->cubetrees(), warehouse->cubetree_io().get(), &plan,
          "cubetrees");

  std::printf("\n(the paper found the indexed top-view plan beats scanning "
              "the smaller V{partkey,suppkey} on the relational side — the "
              "conventional planner makes the same call here. The cubetree "
              "side has no such dilemma: V{partkey,suppkey} is packed with "
              "suppkey as the most significant sort key, so the exact view "
              "IS the indexed plan.)\n");
  if (json.enabled()) {
    json.AddIoStats("conventional", *warehouse->conventional_io(), disk);
    json.AddIoStats("cubetrees", *warehouse->cubetree_io(), disk);
    json.Finish();
  }
  return 0;
}

}  // namespace
}  // namespace cubetree

int main(int argc, char** argv) { return cubetree::Run(argc, argv); }
