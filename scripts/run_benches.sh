#!/usr/bin/env bash
# Runs the headline benchmarks (the paper's query, load, update and
# storage comparisons, plus the parallel-refresh scalability sweep) and
# collects their machine-readable results as
#   BENCH_queries.json  BENCH_load.json  BENCH_updates.json
#   BENCH_storage.json  BENCH_refresh_parallel.json
# in the output directory. Each file follows the bench::JsonWriter envelope
# (schema_version, bench, config, wall_seconds, modeled_disk_seconds, io,
# metrics, results) — see DESIGN.md section 10.
#
# Usage:
#   scripts/run_benches.sh [--sf=<scale>] [--queries=<n>] \
#                          [--build=<build dir>] [--out=<output dir>]
#
# Defaults: --sf=0.05 --queries=100 --build=build --out=.
# Exits non-zero if any bench fails or emits invalid/missing JSON.

set -u

SF=0.05
QUERIES=100
BUILD_DIR=build
OUT_DIR=.

for arg in "$@"; do
  case "$arg" in
    --sf=*)      SF="${arg#--sf=}" ;;
    --queries=*) QUERIES="${arg#--queries=}" ;;
    --build=*)   BUILD_DIR="${arg#--build=}" ;;
    --out=*)     OUT_DIR="${arg#--out=}" ;;
    --help|-h)
      sed -n '2,15p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "run_benches.sh: unknown argument: $arg" >&2
      exit 2
      ;;
  esac
done

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "run_benches.sh: no such directory: $BENCH_DIR (build first, or pass --build=)" >&2
  exit 2
fi
mkdir -p "$OUT_DIR"

failures=0

validate_json() {
  # Prefer python's parser when present; otherwise settle for a non-empty
  # file that ends in a closing brace.
  local path="$1"
  if [ ! -s "$path" ]; then
    echo "run_benches.sh: $path missing or empty" >&2
    return 1
  fi
  if command -v python3 >/dev/null 2>&1; then
    if ! python3 -m json.tool "$path" >/dev/null 2>&1; then
      echo "run_benches.sh: $path is not valid JSON" >&2
      return 1
    fi
  elif ! tail -c 8 "$path" | grep -q '}'; then
    echo "run_benches.sh: $path does not look like JSON" >&2
    return 1
  fi
  return 0
}

run_one() {
  local bench="$1" label="$2"
  local binary="$BENCH_DIR/$bench"
  local out="$OUT_DIR/BENCH_${label}.json"
  if [ ! -x "$binary" ]; then
    echo "run_benches.sh: missing binary $binary" >&2
    failures=$((failures + 1))
    return
  fi
  echo "=== $bench (sf=$SF, queries=$QUERIES) -> $out"
  if ! "$binary" "--sf=$SF" "--queries=$QUERIES" "--json=$out"; then
    echo "run_benches.sh: $bench exited non-zero" >&2
    failures=$((failures + 1))
    return
  fi
  validate_json "$out" || failures=$((failures + 1))
}

run_one bench_queries queries
run_one bench_load load
run_one bench_updates updates
run_one bench_storage storage
run_one bench_refresh_parallel refresh_parallel

if [ "$failures" -ne 0 ]; then
  echo "run_benches.sh: $failures benchmark(s) failed" >&2
  exit 1
fi
echo "run_benches.sh: all results written to $OUT_DIR/BENCH_{queries,load,updates,storage,refresh_parallel}.json"
