#!/usr/bin/env python3
"""ct_lint: repo-local discipline checks that the compiler cannot express.

Rules (each line reported as ``path:line: [rule] message``):

  raw-mutex   Raw standard-library locking primitives (std::mutex,
              std::lock_guard, std::condition_variable, ...) are forbidden
              outside src/common/thread_annotations.h.  Everything else
              must use the annotated ct::Mutex / ct::MutexLock wrappers so
              Clang's thread-safety analysis sees every acquisition.

  no-system   system(3) forks a shell; error reporting is an exit code at
              best and the command string is a quoting/injection hazard.
              Use std::filesystem or the Status-returning file helpers.

  no-assert   Bare assert() vanishes under NDEBUG, so release builds skip
              the check entirely.  Use CT_CHECK / CT_DCHECK (logged, and
              CT_CHECK stays on in release) or return a Status.

  no-naked-new  A new-expression assigned to a raw pointer (or returned)
              leaks on every early exit.  Use std::make_unique /
              std::make_shared, or annotate intentional leaks (static
              singletons) with an allow comment.

  fault-pair  fsync()/rename() commit points must be covered by fault
              injection: a CT_FAULT(...) / MaybeFail(...) within the
              preceding 10 lines, so crash tests can fail the commit.

Escape hatch: ``// ct-lint: allow(<rule>)`` on the same line or the
immediately preceding line suppresses that rule for that line.  Allows are
for documented exceptions (leaky singletons, the one primitive fsync
wrapper), not for routine use.

Usage:
  ct_lint.py [--root DIR] [paths...]    # default: src bench examples tests
  ct_lint.py --self-test                # run the linter's own unit tests
"""

import argparse
import os
import re
import sys

RULES = ("raw-mutex", "no-system", "no-assert", "no-naked-new", "fault-pair")

DEFAULT_DIRS = ("src", "bench", "examples", "tests", "tools")
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# The one file allowed to hold raw primitives: it defines the annotated
# wrappers everything else must use.
RAW_MUTEX_HOME = "src/common/thread_annotations.h"

ALLOW_RE = re.compile(r"//\s*ct-lint:\s*allow\(([a-z-]+)\)")

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_)?mutex\b"
    r"|std::shared_(?:mutex|timed_mutex)\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)
SYSTEM_RE = re.compile(r"(?:\bstd::|::|\b)system\s*\(")
ASSERT_RE = re.compile(r"\bassert\s*\(")
NAKED_NEW_RE = re.compile(r"(?:=\s*new\b|\breturn\s+new\b)")
COMMIT_POINT_RE = re.compile(r"(?:\bfsync\s*\(|\brename\s*\()")
FAULT_COVER_RE = re.compile(r"CT_FAULT\s*\(|MaybeFail\s*\(|FaultInjector")
FAULT_WINDOW = 10  # lines of context in which fault coverage must appear


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers match the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_allows(text):
    """Maps rule -> set of line numbers (1-based) the allow covers: the
    comment's own line and the next line."""
    allows = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in ALLOW_RE.finditer(line):
            rule = match.group(1)
            allows.setdefault(rule, set()).update((lineno, lineno + 1))
    return allows


def lint_text(text, relpath):
    """Returns a list of (lineno, rule, message) findings for one file."""
    allows = collect_allows(text)
    stripped = strip_comments_and_strings(text)
    lines = stripped.splitlines()
    findings = []

    def report(lineno, rule, message):
        if lineno in allows.get(rule, ()):
            return
        findings.append((lineno, rule, message))

    unix_path = relpath.replace(os.sep, "/")
    for lineno, line in enumerate(lines, start=1):
        if RAW_MUTEX_RE.search(line) and unix_path != RAW_MUTEX_HOME:
            report(lineno, "raw-mutex",
                   "raw std:: locking primitive; use the annotated "
                   "wrappers from common/thread_annotations.h")
        if SYSTEM_RE.search(line):
            report(lineno, "no-system",
                   "system() call; use std::filesystem or the "
                   "Status-returning file helpers")
        match = ASSERT_RE.search(line)
        if match and not line[:match.start()].endswith("static_"):
            report(lineno, "no-assert",
                   "bare assert() vanishes under NDEBUG; use CT_CHECK / "
                   "CT_DCHECK or return a Status")
        if NAKED_NEW_RE.search(line):
            report(lineno, "no-naked-new",
                   "naked new-expression; use std::make_unique or "
                   "annotate the intentional leak")
        if COMMIT_POINT_RE.search(line):
            window = lines[max(0, lineno - 1 - FAULT_WINDOW):lineno]
            if not any(FAULT_COVER_RE.search(w) for w in window):
                report(lineno, "fault-pair",
                       "fsync/rename commit point without a CT_FAULT "
                       "injection point within %d lines" % FAULT_WINDOW)
    return findings


def iter_files(root, paths):
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            yield path
            continue
        for dirpath, _, filenames in os.walk(full):
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def run_lint(root, paths):
    total = 0
    for relpath in sorted(set(iter_files(root, paths))):
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        for lineno, rule, message in lint_text(text, relpath):
            print("%s:%d: [%s] %s" % (relpath, lineno, rule, message))
            total += 1
    if total:
        print("ct_lint: %d finding(s)" % total, file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Self-test: table-driven checks of every rule, the allow escape, comment
# and string stripping, and the thread_annotations.h exemption.

SELF_TESTS = [
    # (name, source, relpath, expected list of (lineno, rule))
    ("raw mutex flagged",
     "std::mutex mu;\n", "src/x.h", [(1, "raw-mutex")]),
    ("lock_guard flagged",
     "std::lock_guard<std::mutex> l(mu);\n", "src/x.cc",
     [(1, "raw-mutex")]),
    ("condition_variable flagged",
     "std::condition_variable cv;\n", "src/x.cc", [(1, "raw-mutex")]),
    ("annotations header exempt from raw-mutex",
     "std::mutex mu_;\n", "src/common/thread_annotations.h", []),
    ("ct wrappers clean",
     "ct::Mutex mu_;\nct::MutexLock lock(mu_);\n", "src/x.cc", []),
    ("system() flagged",
     'int r = system("rm -rf x");\n', "examples/x.cpp",
     [(1, "no-system")]),
    ("std::system flagged",
     'std::system("ls");\n', "src/x.cc", [(1, "no-system")]),
    ("subsystem identifier not flagged",
     "int subsystem(int);\nsubsystem(3);\n", "src/x.cc", []),
    ("bare assert flagged",
     "assert(x > 0);\n", "src/x.cc", [(1, "no-assert")]),
    ("static_assert not flagged",
     "static_assert(sizeof(int) == 4);\n", "src/x.cc", []),
    ("CT_DCHECK not flagged",
     "CT_DCHECK(x > 0);\n", "src/x.cc", []),
    ("naked new assignment flagged",
     "Foo* f = new Foo();\n", "src/x.cc", [(1, "no-naked-new")]),
    ("return new flagged",
     "return new Foo();\n", "src/x.cc", [(1, "no-naked-new")]),
    ("make_unique clean",
     "auto f = std::make_unique<Foo>();\n", "src/x.cc", []),
    ("wrapped new clean",
     "return std::unique_ptr<S>(new MemoryRecordStream(x));\n",
     "src/x.cc", []),
    ("fsync without fault point flagged",
     "if (::fsync(fd) != 0) return Err();\n", "src/x.cc",
     [(1, "fault-pair")]),
    ("rename without fault point flagged",
     "std::rename(a, b);\n", "src/x.cc", [(1, "fault-pair")]),
    ("fsync near CT_FAULT clean",
     'CT_FAULT("x.sync");\nif (::fsync(fd) != 0) return Err();\n',
     "src/x.cc", []),
    ("rename near MaybeFail clean",
     'st = inj.MaybeFail("x.rename");\n'
     "if (std::rename(a, b) != 0) return Err();\n", "src/x.cc", []),
    ("fault cover outside window ignored",
     'CT_FAULT("x");\n' + "\n" * 12 + "::fsync(fd);\n", "src/x.cc",
     [(14, "fault-pair")]),
    ("same-line allow suppresses",
     "Foo* f = new Foo();  // ct-lint: allow(no-naked-new)\n",
     "src/x.cc", []),
    ("preceding-line allow suppresses",
     "// ct-lint: allow(raw-mutex)\nstd::mutex mu;\n", "src/x.cc", []),
    ("allow is rule-specific",
     "std::mutex mu;  // ct-lint: allow(no-system)\n", "src/x.cc",
     [(1, "raw-mutex")]),
    ("pattern inside line comment ignored",
     "// the old code used std::mutex and system() here\n", "src/x.cc",
     []),
    ("pattern inside block comment ignored",
     "/* std::mutex\n   assert(x) */\nint x;\n", "src/x.cc", []),
    ("pattern inside string literal ignored",
     'const char* s = "std::mutex via system(x)";\n', "src/x.cc", []),
    ("line numbers survive stripping",
     "/* comment\n spanning\n lines */\nstd::mutex mu;\n", "src/x.cc",
     [(4, "raw-mutex")]),
    ("multiple rules on one file",
     'std::mutex mu;\nint r = system("x");\nassert(r);\n', "src/x.cc",
     [(1, "raw-mutex"), (2, "no-system"), (3, "no-assert")]),
]


def self_test():
    failures = 0
    for name, source, relpath, expected in SELF_TESTS:
        got = [(lineno, rule) for lineno, rule, _ in
               lint_text(source, relpath)]
        if got != expected:
            print("FAIL %s: expected %r, got %r" % (name, expected, got))
            failures += 1
        else:
            print("ok   %s" % name)
    if failures:
        print("ct_lint self-test: %d failure(s)" % failures,
              file=sys.stderr)
        return 1
    print("ct_lint self-test: %d checks passed" % len(SELF_TESTS))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own unit tests")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to the root "
                             "(default: %s)" % " ".join(DEFAULT_DIRS))
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or list(DEFAULT_DIRS)
    return run_lint(root, paths)


if __name__ == "__main__":
    sys.exit(main())
