#include "table/heap_table.h"

#include <cstring>

#include "common/coding.h"

namespace cubetree {

namespace {
constexpr size_t kPageHeaderSize = sizeof(uint32_t);  // Row count.
}  // namespace

HeapTable::HeapTable(std::unique_ptr<PageManager> file, const Schema* schema,
                     BufferPool* pool, uint32_t row_overhead_bytes)
    : file_(std::move(file)),
      schema_(schema),
      pool_(pool),
      row_overhead_bytes_(row_overhead_bytes) {}

HeapTable::~HeapTable() {
  // Evict our pages so the pool never holds frames for a dead PageManager.
  if (pool_ != nullptr) (void)pool_->DropFile(file_.get());
}

Result<std::unique_ptr<HeapTable>> HeapTable::Create(
    const std::string& path, const Schema* schema, BufferPool* pool,
    std::shared_ptr<IoStats> io_stats, uint32_t row_overhead_bytes) {
  if (schema->row_size() == 0 ||
      schema->row_size() + row_overhead_bytes >
          kPageSize - kPageHeaderSize) {
    return Status::InvalidArgument("heap table: unsupported row size");
  }
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  return std::unique_ptr<HeapTable>(
      new HeapTable(std::move(file), schema, pool, row_overhead_bytes));
}

uint32_t HeapTable::RowsPerPage() const {
  return static_cast<uint32_t>(
      (kPageSize - kPageHeaderSize) /
      (schema_->row_size() + row_overhead_bytes_));
}

Result<RowId> HeapTable::Append(const char* row) {
  const uint32_t per_page = RowsPerPage();
  PageHandle handle;
  if (tail_page_ != kInvalidPageId) {
    CT_ASSIGN_OR_RETURN(handle, pool_->Fetch(file_.get(), tail_page_));
    const uint32_t count = DecodeFixed32(handle.data());
    if (count >= per_page) {
      handle.Release();
      CT_ASSIGN_OR_RETURN(handle, pool_->New(file_.get()));
      tail_page_ = handle.id();
    }
  } else {
    CT_ASSIGN_OR_RETURN(handle, pool_->New(file_.get()));
    tail_page_ = handle.id();
  }
  const uint32_t count = DecodeFixed32(handle.data());
  char* dest = handle.data() + kPageHeaderSize +
               static_cast<size_t>(count) * schema_->row_size();
  std::memcpy(dest, row, schema_->row_size());
  EncodeFixed32(handle.data(), count + 1);
  handle.MarkDirty();
  ++num_rows_;
  return RowId{tail_page_, count};
}

Status HeapTable::Get(RowId rid, char* out) {
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), rid.page));
  const uint32_t count = DecodeFixed32(handle.data());
  if (rid.slot >= count) {
    return Status::InvalidArgument("heap table: row slot out of range");
  }
  const char* src = handle.data() + kPageHeaderSize +
                    static_cast<size_t>(rid.slot) * schema_->row_size();
  std::memcpy(out, src, schema_->row_size());
  return Status::OK();
}

Status HeapTable::Update(RowId rid, const char* row) {
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), rid.page));
  const uint32_t count = DecodeFixed32(handle.data());
  if (rid.slot >= count) {
    return Status::InvalidArgument("heap table: row slot out of range");
  }
  char* dest = handle.data() + kPageHeaderSize +
               static_cast<size_t>(rid.slot) * schema_->row_size();
  std::memcpy(dest, row, schema_->row_size());
  handle.MarkDirty();
  return Status::OK();
}

Status HeapTable::Flush() { return pool_->FlushAll(); }

Status HeapTable::Iterator::Next(const char** row) {
  while (true) {
    if (!loaded_) {
      if (page_ >= table_->file_->NumPages()) {
        *row = nullptr;
        return Status::OK();
      }
      CT_ASSIGN_OR_RETURN(handle_, table_->pool_->Fetch(table_->file_.get(),
                                                        page_));
      rows_in_page_ = DecodeFixed32(handle_.data());
      slot_ = 0;
      loaded_ = true;
    }
    if (slot_ < rows_in_page_) {
      *row = handle_.data() + kPageHeaderSize +
             static_cast<size_t>(slot_) * table_->schema_->row_size();
      rid_ = RowId{page_, slot_};
      ++slot_;
      return Status::OK();
    }
    handle_.Release();
    loaded_ = false;
    ++page_;
  }
}

}  // namespace cubetree
