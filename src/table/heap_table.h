#ifndef CUBETREE_TABLE_HEAP_TABLE_H_
#define CUBETREE_TABLE_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"
#include "table/schema.h"

namespace cubetree {

/// Identifies one row in a heap table: page number plus slot within the
/// page. This is the locator B-tree indices point at.
struct RowId {
  PageId page = kInvalidPageId;
  uint32_t slot = 0;

  bool operator==(const RowId&) const = default;
  uint64_t Encode() const {
    return (static_cast<uint64_t>(page) << 32) | slot;
  }
  static RowId Decode(uint64_t v) {
    return RowId{static_cast<PageId>(v >> 32),
                 static_cast<uint32_t>(v & 0xFFFFFFFFu)};
  }
};

/// Unordered (insertion-ordered) fixed-width-row table on the page manager —
/// the storage organization of the paper's "conventional" materialized
/// views: rows land wherever the append frontier is, so the table itself
/// provides no clustering and all selective access goes through B-trees.
///
/// Page layout: [uint32 row_count][row 0][row 1]... All access goes through
/// the shared BufferPool.
class HeapTable {
 public:
  /// Creates a new, empty heap table file at `path`.
  /// `row_overhead_bytes` models the per-row cost a slotted-page engine
  /// pays beyond the column data (row header + slot-directory entry; ~8
  /// bytes in 1990s relational engines). It reduces rows-per-page without
  /// changing the row image.
  static Result<std::unique_ptr<HeapTable>> Create(
      const std::string& path, const Schema* schema, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr,
      uint32_t row_overhead_bytes = 0);

  ~HeapTable();

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  /// Appends a row image (schema->row_size() bytes); returns its RowId.
  Result<RowId> Append(const char* row);

  /// Reads row `rid` into `out` (schema->row_size() bytes).
  Status Get(RowId rid, char* out);

  /// Overwrites row `rid` in place — the conventional engine's
  /// one-row-at-a-time view maintenance path.
  Status Update(RowId rid, const char* row);

  /// Flushes buffered pages of this table to its file.
  Status Flush();

  uint64_t num_rows() const { return num_rows_; }
  const Schema& schema() const { return *schema_; }

  /// Rows stored per page under this schema/overhead.
  uint32_t rows_per_page() const { return RowsPerPage(); }

  /// RowId of the n-th appended row (0-based). Valid because the table is
  /// append-only with a fixed per-page capacity — this is what makes
  /// dense-keyed dimension tables addressable in O(1).
  RowId OrdinalToRowId(uint64_t ordinal) const {
    const uint32_t per_page = RowsPerPage();
    return RowId{static_cast<PageId>(ordinal / per_page),
                 static_cast<uint32_t>(ordinal % per_page)};
  }
  uint64_t FileSizeBytes() const { return file_->FileSizeBytes(); }
  PageManager* file() { return file_.get(); }

  /// Forward scan over all rows in storage order.
  class Iterator {
   public:
    /// Positions at the first row.
    explicit Iterator(HeapTable* table) : table_(table) {}

    /// Sets *row to the next row image (valid until the next call or until
    /// the underlying page is evicted — callers copy if they keep it) or to
    /// nullptr at end.
    Status Next(const char** row);

    RowId current_rid() const { return rid_; }

   private:
    HeapTable* table_;
    PageHandle handle_;
    PageId page_ = 0;
    uint32_t slot_ = 0;
    uint32_t rows_in_page_ = 0;
    bool loaded_ = false;
    RowId rid_;
  };

  Iterator Scan() { return Iterator(this); }

 private:
  HeapTable(std::unique_ptr<PageManager> file, const Schema* schema,
            BufferPool* pool, uint32_t row_overhead_bytes);

  uint32_t RowsPerPage() const;

  std::unique_ptr<PageManager> file_;
  const Schema* schema_;
  BufferPool* pool_;
  uint32_t row_overhead_bytes_ = 0;
  uint64_t num_rows_ = 0;
  PageId tail_page_ = kInvalidPageId;
};

}  // namespace cubetree

#endif  // CUBETREE_TABLE_HEAP_TABLE_H_
