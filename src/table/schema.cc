#include "table/schema.h"

#include <cstring>

#include "common/coding.h"

namespace cubetree {

namespace {

size_t TypeWidth(const Column& col) {
  switch (col.type) {
    case ColumnType::kUInt32:
      return 4;
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kChar:
      return col.char_width;
  }
  return 0;
}

}  // namespace

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  size_t offset = 0;
  for (const Column& col : columns_) {
    offsets_.push_back(offset);
    offset += TypeWidth(col);
  }
  row_size_ = offset;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    switch (columns_[i].type) {
      case ColumnType::kUInt32:
        out += " uint32";
        break;
      case ColumnType::kInt64:
        out += " int64";
        break;
      case ColumnType::kChar:
        out += " char(" + std::to_string(columns_[i].char_width) + ")";
        break;
    }
  }
  out += ")";
  return out;
}

uint32_t RowRef::GetUInt32(size_t col) const {
  return DecodeFixed32(data_ + schema_->column_offset(col));
}

int64_t RowRef::GetInt64(size_t col) const {
  return static_cast<int64_t>(
      DecodeFixed64(data_ + schema_->column_offset(col)));
}

std::string RowRef::GetString(size_t col) const {
  const char* start = data_ + schema_->column_offset(col);
  const size_t width = schema_->column(col).char_width;
  size_t len = 0;
  while (len < width && start[len] != '\0') ++len;
  return std::string(start, len);
}

void RowRef::SetUInt32(size_t col, uint32_t value) {
  EncodeFixed32(data_ + schema_->column_offset(col), value);
}

void RowRef::SetInt64(size_t col, int64_t value) {
  EncodeFixed64(data_ + schema_->column_offset(col),
                static_cast<uint64_t>(value));
}

void RowRef::SetString(size_t col, const std::string& value) {
  char* start = data_ + schema_->column_offset(col);
  const size_t width = schema_->column(col).char_width;
  std::memset(start, 0, width);
  std::memcpy(start, value.data(), std::min(width, value.size()));
}

}  // namespace cubetree
