#ifndef CUBETREE_TABLE_SCHEMA_H_
#define CUBETREE_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace cubetree {

/// Column types supported by the relational substrate. Strings are
/// fixed-width CHAR(n) (padded with NUL), which keeps rows fixed width — the
/// layout the paper's summary tables and dimension tables need.
enum class ColumnType : uint8_t {
  kUInt32 = 0,  // Keys / foreign keys / group-by attributes.
  kInt64 = 1,   // Aggregate sums, measures.
  kChar = 2,    // Fixed-width text.
};

struct Column {
  std::string name;
  ColumnType type = ColumnType::kUInt32;
  /// Width in bytes for kChar; ignored (derived) for numeric types.
  uint32_t char_width = 0;
};

/// A fixed-width row layout: ordered columns with computed byte offsets.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  static Column UInt32(std::string name) {
    return Column{std::move(name), ColumnType::kUInt32, 0};
  }
  static Column Int64(std::string name) {
    return Column{std::move(name), ColumnType::kInt64, 0};
  }
  static Column Char(std::string name, uint32_t width) {
    return Column{std::move(name), ColumnType::kChar, width};
  }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  size_t column_offset(size_t i) const { return offsets_[i]; }
  size_t row_size() const { return row_size_; }

  /// Index of the column named `name`, or error if absent.
  Result<size_t> ColumnIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<size_t> offsets_;
  size_t row_size_ = 0;
};

/// Read/write accessors over one fixed-width row image laid out by `schema`.
/// RowRef does not own the bytes.
class RowRef {
 public:
  RowRef(const Schema* schema, char* data) : schema_(schema), data_(data) {}

  uint32_t GetUInt32(size_t col) const;
  int64_t GetInt64(size_t col) const;
  std::string GetString(size_t col) const;

  void SetUInt32(size_t col, uint32_t value);
  void SetInt64(size_t col, int64_t value);
  /// Copies `value` into the CHAR column, truncating/padding to width.
  void SetString(size_t col, const std::string& value);

  const char* data() const { return data_; }
  char* data() { return data_; }

 private:
  const Schema* schema_;
  char* data_;
};

/// An owning row buffer for building rows before appending them.
class RowBuffer {
 public:
  explicit RowBuffer(const Schema* schema)
      : schema_(schema), bytes_(schema->row_size(), '\0') {}

  RowRef ref() { return RowRef(schema_, bytes_.data()); }
  const char* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }

 private:
  const Schema* schema_;
  std::vector<char> bytes_;
};

}  // namespace cubetree

#endif  // CUBETREE_TABLE_SCHEMA_H_
