#ifndef CUBETREE_OBS_WORKLOAD_H_
#define CUBETREE_OBS_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace cubetree {
namespace obs {

/// Space-saving heavy-hitter sketch (Metwally et al.): tracks at most
/// `capacity` distinct keys; when a new key arrives at capacity, it
/// inherits (and overestimates by at most) the smallest tracked count,
/// which becomes the entry's error bound. Counts of keys that stayed
/// resident the whole stream are exact.
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity) : capacity_(capacity) {}

  void Observe(const std::string& key);

  struct Entry {
    std::string key;
    uint64_t count = 0;      // Upper bound on the key's true frequency.
    uint64_t overcount = 0;  // count - overcount lower-bounds it.
  };
  /// The k heaviest tracked keys, by count descending (ties by key).
  std::vector<Entry> TopK(size_t k) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Cell {
    uint64_t count = 0;
    uint64_t overcount = 0;
  };
  size_t capacity_;
  std::map<std::string, Cell> entries_;
};

/// A query served by a sort order that could not fully prune its
/// predicates, scored against the best permutation of the same view: the
/// paper's replication feature (extra sort orders instead of secondary
/// indices) applied in reverse — which replica *should* have existed.
struct ReplicaMiss {
  std::string view;                           // The routed view.
  std::vector<std::string> recommended_order;  // Permutation that serves it.
  double cost_ratio = 1.0;  // best/actual estimated tuple cost, < 1 = miss.
  double est_pages_saved = 0;  // pages_touched * (1 - cost_ratio).
  uint64_t pages_touched = 0;  // pages_read + pool_hits of the record.
};

/// Scores one record against the routed view's best same-set sort order.
/// The cost model mirrors CubetreeEngine::EstimateCost: constrained
/// attributes forming a suffix of the projection list prune fully (their
/// selectivity product); any other constrained attribute only halves the
/// cost via partial MBR pruning. The best permutation moves every
/// constrained attribute into the suffix, so its cost is the full
/// selectivity product — the ratio needs only the record's [lo, hi]
/// intervals and domains, not row counts. Returns nullopt when the routed
/// order was already optimal (or the record carries no routed view).
std::optional<ReplicaMiss> ScoreReplicaMiss(const QueryLogRecord& record);

/// Streaming workload profiler: aggregates per-query records — live (the
/// engine feeds the attached Default() profiler as it logs) and/or from
/// query-log files — into per-view and per-outcome latency distributions,
/// a top-K heavy-hitter sketch of query shapes, and the replica-miss
/// score table the ROADMAP item-5 replica advisor consumes. Observe is
/// thread-safe (one short mutex hold; only paid when a profiler is
/// attached).
class WorkloadProfiler {
 public:
  struct Options {
    size_t sketch_capacity = 64;
    size_t top_k = 10;
  };

  WorkloadProfiler() : WorkloadProfiler(Options()) {}
  explicit WorkloadProfiler(Options options);
  WorkloadProfiler(const WorkloadProfiler&) = delete;
  WorkloadProfiler& operator=(const WorkloadProfiler&) = delete;

  void Observe(const QueryLogRecord& record) EXCLUDES(mu_);

  /// Parses one JSONL log file, Observing every valid record. Unparseable
  /// lines are counted (invalid_records), a torn final line is skipped;
  /// only file-level failures return an error.
  Status AddLogFile(const std::string& path) EXCLUDES(mu_);
  /// AddLogFile over every on-disk segment of the rotating log at `path`,
  /// oldest first.
  Status AddLog(const std::string& path) EXCLUDES(mu_);

  uint64_t records() const EXCLUDES(mu_);
  uint64_t invalid_records() const EXCLUDES(mu_);

  /// The profiler report: {"schema_version", "records", "invalid_records",
  /// "torn_lines", "outcomes", "views", "top_shapes", "replica_misses"}.
  /// Orderings are deterministic (sorted maps; shapes by count, misses by
  /// estimated pages saved) so reports diff cleanly.
  JsonValue ReportJson() const EXCLUDES(mu_);
  /// Human-readable rendering of the same report (ctstat report, ctsql's
  /// \workload command).
  std::string ReportText() const EXCLUDES(mu_);

  /// The process-wide profiler the engine feeds (nullptr = none attached;
  /// the disabled check is one atomic load). Not env-driven: surfaces that
  /// want live profiling (ctsql, the bench JSON writer) attach one.
  static WorkloadProfiler* Default();
  static void SetDefault(WorkloadProfiler* profiler);

 private:
  struct LatencyAgg {
    uint64_t count = 0;
    std::unique_ptr<Histogram> latency_us = std::make_unique<Histogram>();
  };
  struct ViewAgg {
    LatencyAgg latency;
    uint64_t pages_read = 0;
    uint64_t pool_hits = 0;
    uint64_t points_examined = 0;
    std::map<std::string, uint64_t> routes;  // exact/replica/superset count.
  };
  struct MissAgg {
    std::string view;
    std::vector<std::string> recommended_order;
    uint64_t queries = 0;
    double est_pages_saved = 0;
    uint64_t pages_touched = 0;
  };

  const Options options_;
  mutable Mutex mu_;
  uint64_t records_ GUARDED_BY(mu_) = 0;
  uint64_t invalid_records_ GUARDED_BY(mu_) = 0;
  uint64_t torn_lines_ GUARDED_BY(mu_) = 0;
  std::map<std::string, LatencyAgg> outcomes_ GUARDED_BY(mu_);
  std::map<std::string, ViewAgg> views_ GUARDED_BY(mu_);
  SpaceSavingSketch shapes_ GUARDED_BY(mu_);
  /// Keyed on "view|order" so recommendations aggregate across queries.
  std::map<std::string, MissAgg> misses_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cubetree

#endif  // CUBETREE_OBS_WORKLOAD_H_
