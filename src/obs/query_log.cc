#include "obs/query_log.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace cubetree {
namespace obs {

namespace {

struct QueryLogMetrics {
  Counter* records;
  Counter* dropped;
  Counter* rotations;
  Counter* bytes_written;
  Counter* write_errors;

  static const QueryLogMetrics& Get() {
    static const QueryLogMetrics m = [] {
      auto& reg = MetricsRegistry::Instance();
      return QueryLogMetrics{reg.GetCounter("query_log.records"),
                             reg.GetCounter("query_log.dropped"),
                             reg.GetCounter("query_log.rotations"),
                             reg.GetCounter("query_log.bytes_written"),
                             reg.GetCounter("query_log.write_errors")};
    }();
    return m;
  }
};

std::string SegmentName(const std::string& path, int n) {
  return path + "." + std::to_string(n);
}

const JsonValue* RequireMember(const JsonValue& doc, const char* key,
                               JsonValue::Type type, Status* status) {
  const JsonValue* member = doc.Find(key);
  if (member == nullptr || member->type() != type) {
    *status = Status::InvalidArgument(
        std::string("query log record: missing or mistyped field '") + key +
        "'");
    return nullptr;
  }
  return member;
}

uint64_t AsU64(const JsonValue& v) {
  return v.number() < 0 ? 0 : static_cast<uint64_t>(v.number());
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryLogRecord

JsonValue QueryLogRecord::ToJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema_version", JsonValue(kSchemaVersion));
  doc.Set("ts_us", JsonValue(ts_us));
  doc.Set("outcome", JsonValue(outcome));
  doc.Set("route", JsonValue(route));
  doc.Set("view", JsonValue(view));
  JsonValue& order_arr = doc.Set("order", JsonValue::MakeArray());
  for (const std::string& attr : order) order_arr.Append(JsonValue(attr));
  JsonValue& attrs_arr = doc.Set("attrs", JsonValue::MakeArray());
  for (const QueryLogAttr& attr : attrs) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("name", JsonValue(attr.name));
    entry.Set("domain", JsonValue(attr.domain));
    entry.Set("lo", JsonValue(attr.lo));
    entry.Set("hi", JsonValue(attr.hi));
    entry.Set("bound", JsonValue(attr.bound));
    entry.Set("grouped", JsonValue(attr.grouped));
    attrs_arr.Append(std::move(entry));
  }
  doc.Set("latency_us", JsonValue(latency_us));
  doc.Set("admission_wait_us", JsonValue(admission_wait_us));
  doc.Set("pages_read", JsonValue(pages_read));
  doc.Set("pool_hits", JsonValue(pool_hits));
  doc.Set("points_examined", JsonValue(points_examined));
  doc.Set("rows", JsonValue(rows));
  if (trace_id != 0) doc.Set("trace_id", JsonValue(trace_id));
  return doc;
}

Result<QueryLogRecord> QueryLogRecord::FromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("query log record: not a JSON object");
  }
  Status bad = Status::OK();
  const JsonValue* version =
      RequireMember(doc, "schema_version", JsonValue::Type::kNumber, &bad);
  if (version == nullptr) return bad;
  if (static_cast<int64_t>(version->number()) != kSchemaVersion) {
    return Status::InvalidArgument(
        "query log record: unknown schema_version " +
        std::to_string(static_cast<int64_t>(version->number())));
  }
  QueryLogRecord rec;
  struct U64Field {
    const char* key;
    uint64_t* dst;
  };
  const U64Field u64_fields[] = {
      {"ts_us", &rec.ts_us},
      {"latency_us", &rec.latency_us},
      {"admission_wait_us", &rec.admission_wait_us},
      {"pages_read", &rec.pages_read},
      {"pool_hits", &rec.pool_hits},
      {"points_examined", &rec.points_examined},
      {"rows", &rec.rows},
  };
  for (const U64Field& field : u64_fields) {
    const JsonValue* v =
        RequireMember(doc, field.key, JsonValue::Type::kNumber, &bad);
    if (v == nullptr) return bad;
    *field.dst = AsU64(*v);
  }
  struct StrField {
    const char* key;
    std::string* dst;
  };
  const StrField str_fields[] = {
      {"outcome", &rec.outcome}, {"route", &rec.route}, {"view", &rec.view}};
  for (const StrField& field : str_fields) {
    const JsonValue* v =
        RequireMember(doc, field.key, JsonValue::Type::kString, &bad);
    if (v == nullptr) return bad;
    *field.dst = v->str();
  }
  const JsonValue* order =
      RequireMember(doc, "order", JsonValue::Type::kArray, &bad);
  if (order == nullptr) return bad;
  for (const JsonValue& entry : order->elements()) {
    if (!entry.is_string()) {
      return Status::InvalidArgument(
          "query log record: non-string entry in 'order'");
    }
    rec.order.push_back(entry.str());
  }
  const JsonValue* attrs =
      RequireMember(doc, "attrs", JsonValue::Type::kArray, &bad);
  if (attrs == nullptr) return bad;
  for (const JsonValue& entry : attrs->elements()) {
    if (!entry.is_object()) {
      return Status::InvalidArgument(
          "query log record: non-object entry in 'attrs'");
    }
    QueryLogAttr attr;
    const JsonValue* name =
        RequireMember(entry, "name", JsonValue::Type::kString, &bad);
    if (name == nullptr) return bad;
    attr.name = name->str();
    const U64Field attr_u64[] = {{"domain", &attr.domain},
                                 {"lo", &attr.lo},
                                 {"hi", &attr.hi}};
    for (const U64Field& field : attr_u64) {
      const JsonValue* v =
          RequireMember(entry, field.key, JsonValue::Type::kNumber, &bad);
      if (v == nullptr) return bad;
      *field.dst = AsU64(*v);
    }
    const JsonValue* bound =
        RequireMember(entry, "bound", JsonValue::Type::kBool, &bad);
    if (bound == nullptr) return bad;
    attr.bound = bound->boolean();
    const JsonValue* grouped =
        RequireMember(entry, "grouped", JsonValue::Type::kBool, &bad);
    if (grouped == nullptr) return bad;
    attr.grouped = grouped->boolean();
    rec.attrs.push_back(std::move(attr));
  }
  if (const JsonValue* trace = doc.Find("trace_id");
      trace != nullptr && trace->is_number()) {
    rec.trace_id = AsU64(*trace);
  }
  return rec;
}

// ---------------------------------------------------------------------------
// RotatingFile

RotatingFile::~RotatingFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RotatingFile::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(options_.path.c_str(), "a");
  if (file_ == nullptr) {
    return Status::IOError("query log: cannot open " + options_.path + ": " +
                           std::strerror(errno));
  }
  // Appending to a survivor from a previous run: resume its size so the
  // rotation threshold covers the whole segment, not just this process's
  // contribution.
  const long pos = std::ftell(file_);
  size_ = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return Status::OK();
}

Status RotatingFile::Rotate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  // Drop the segment rotating past the retention bound, then shift the
  // survivors up one slot and move the active file into `.1`.
  std::filesystem::remove(SegmentName(options_.path, options_.max_segments),
                          ec);
  for (int n = options_.max_segments; n > 1; --n) {
    std::error_code shift_ec;
    CT_FAULT("obs.querylog.rotate");
    std::filesystem::rename(SegmentName(options_.path, n - 1),
                            SegmentName(options_.path, n), shift_ec);
    // Missing source segments are normal until the log has wrapped
    // max_segments times; only the final active-file rename must succeed.
  }
  std::error_code active_ec;
  CT_FAULT("obs.querylog.rotate");
  std::filesystem::rename(options_.path, SegmentName(options_.path, 1),
                          active_ec);
  if (active_ec) {
    return Status::IOError("query log: rotate " + options_.path + ": " +
                           active_ec.message());
  }
  ++rotations_;
  size_ = 0;
  return Status::OK();
}

Status RotatingFile::Append(const std::string& line) {
  const uint64_t incoming = line.size() + 1;
  if (size_ != 0 && size_ + incoming > options_.max_bytes) {
    CT_RETURN_NOT_OK(Rotate());
  }
  CT_RETURN_NOT_OK(EnsureOpen());
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
      std::fputc('\n', file_) != EOF && std::fflush(file_) == 0;
  if (!ok) {
    return Status::IOError("query log: write to " + options_.path + ": " +
                           std::strerror(errno));
  }
  size_ += incoming;
  bytes_written_ += incoming;
  return Status::OK();
}

std::vector<std::string> RotatingFile::Segments(const std::string& path,
                                                int max_segments) {
  std::vector<std::string> out;
  for (int n = max_segments; n >= 1; --n) {
    const std::string segment = SegmentName(path, n);
    std::error_code ec;
    if (std::filesystem::exists(segment, ec)) out.push_back(segment);
  }
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) out.push_back(path);
  return out;
}

// ---------------------------------------------------------------------------
// QueryLog

QueryLog::QueryLog(Options options)
    : options_(options),
      file_(RotatingFile::Options{options.path, options.max_bytes,
                                  options.max_segments}) {
  writer_ = std::thread([this] { WriterLoop(); });
}

QueryLog::~QueryLog() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  if (writer_.joinable()) writer_.join();
}

void QueryLog::Append(QueryLogRecord record) {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    if (queue_.size() >= options_.queue_capacity) {
      // Never block the query path on the writer: the record is lost and
      // the loss is visible in query_log.dropped.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      QueryLogMetrics::Get().dropped->Increment();
      return;
    }
    queue_.push_back(std::move(record));
  }
  work_cv_.NotifyOne();
}

void QueryLog::Flush() {
  MutexLock lock(mu_);
  while (!queue_.empty() || writer_busy_) {
    drained_cv_.Wait(lock);
  }
}

void QueryLog::WriterLoop() {
  const QueryLogMetrics& metrics = QueryLogMetrics::Get();
  bool warned = false;
  for (;;) {
    std::vector<QueryLogRecord> batch;
    {
      MutexLock lock(mu_);
      writer_busy_ = false;
      if (queue_.empty()) {
        drained_cv_.NotifyAll();
        if (stop_) return;
        work_cv_.Wait(lock);
        continue;
      }
      batch.swap(queue_);
      writer_busy_ = true;
    }
    for (QueryLogRecord& record : batch) {
      const uint64_t rotations_before = file_.rotations();
      const uint64_t bytes_before = file_.bytes_written();
      const Status status = file_.Append(record.ToJson().Dump(-1));
      if (status.ok()) {
        metrics.records->Increment();
        metrics.bytes_written->Increment(file_.bytes_written() -
                                         bytes_before);
        metrics.rotations->Increment(file_.rotations() - rotations_before);
      } else {
        metrics.write_errors->Increment();
        if (!warned) {
          warned = true;
          CT_LOG(Warn) << "query log: " << status.ToString()
                       << " (further write errors counted in "
                          "query_log.write_errors)";
        }
      }
    }
  }
}

namespace {

// Test override for QueryLog::Default(). A separate "overridden" flag lets
// tests force the disabled state (nullptr) even when CUBETREE_QUERY_LOG is
// set in the environment.
std::atomic<bool> g_default_overridden{false};
std::atomic<QueryLog*> g_default_override{nullptr};

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) {
    CT_LOG(Warn) << name << ": ignoring malformed value '" << text << "'";
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

QueryLog* QueryLog::Default() {
  if (g_default_overridden.load(std::memory_order_acquire)) {
    return g_default_override.load(std::memory_order_acquire);
  }
  static QueryLog* env_log = []() -> QueryLog* {
    const char* path = std::getenv("CUBETREE_QUERY_LOG");
    if (path == nullptr || *path == '\0') return nullptr;
    Options options;
    options.path = path;
    options.max_bytes =
        EnvU64("CUBETREE_QUERY_LOG_MAX_BYTES", options.max_bytes);
    options.max_segments = static_cast<int>(
        EnvU64("CUBETREE_QUERY_LOG_SEGMENTS",
               static_cast<uint64_t>(options.max_segments)));
    // Function-local static (not leaked): destroyed at process exit, which
    // drains the queue so a clean exit leaves every record on disk.
    static QueryLog log(options);
    return &log;
  }();
  return env_log;
}

void QueryLog::SetDefaultForTest(QueryLog* log) {
  if (log == nullptr) {
    g_default_overridden.store(false, std::memory_order_release);
    g_default_override.store(nullptr, std::memory_order_release);
    return;
  }
  g_default_override.store(log, std::memory_order_release);
  g_default_overridden.store(true, std::memory_order_release);
}

std::vector<std::string> QueryLog::Segments(const std::string& path,
                                            int max_segments) {
  return RotatingFile::Segments(path, max_segments);
}

// ---------------------------------------------------------------------------
// ForEachLogLine

Status ForEachLogLine(const std::string& path,
                      const std::function<void(const std::string&)>& fn,
                      QueryLogReadStats* stats) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("query log: cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string line;
  char buf[64 << 10];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    size_t start = 0;
    for (size_t i = 0; i < got; ++i) {
      if (buf[i] != '\n') continue;
      line.append(buf + start, i - start);
      start = i + 1;
      fn(line);
      if (stats != nullptr) ++stats->lines;
      line.clear();
    }
    line.append(buf + start, got - start);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("query log: read " + path + ": " +
                           std::strerror(errno));
  }
  // A trailing fragment without a newline is the signature of a crash (or
  // concurrent writer) mid-append: tolerated, counted, never parsed.
  if (!line.empty() && stats != nullptr) ++stats->torn;
  return Status::OK();
}

}  // namespace obs
}  // namespace cubetree
