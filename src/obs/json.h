#ifndef CUBETREE_OBS_JSON_H_
#define CUBETREE_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace cubetree {
namespace obs {

/// Minimal JSON document model shared by the metrics registry, the bench
/// --json emitters, and the golden-schema tests that parse the emitted
/// files back. Objects preserve insertion order so dumps are stable and
/// diffable; lookup is linear, which is fine at the sizes involved
/// (dozens of keys).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(int64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  explicit JsonValue(uint64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue MakeObject() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }
  static JsonValue MakeArray() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }

  /// Object: sets (or replaces) `key` and returns a reference to the
  /// stored value, so nested structures can be built in place.
  JsonValue& Set(const std::string& key, JsonValue value);
  /// Object: the value at `key`, or nullptr when absent (or not an
  /// object).
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array: appends an element.
  void Append(JsonValue value) { elements_.push_back(std::move(value)); }
  const std::vector<JsonValue>& elements() const { return elements_; }

  size_t size() const {
    return type_ == Type::kObject ? members_.size() : elements_.size();
  }

  /// Serializes the value. `indent` spaces per nesting level; negative
  /// emits the compact single-line form. Numbers that hold an integral
  /// value print without a decimal point so counters stay exact-looking.
  std::string Dump(int indent = 2) const;

  /// Strict parser for the emitted subset (full JSON minus exotic number
  /// forms): returns InvalidArgument with an offset on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace obs
}  // namespace cubetree

#endif  // CUBETREE_OBS_JSON_H_
