#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/query_log.h"

namespace cubetree {
namespace obs {

namespace trace_internal {
thread_local AmbientTrace t_ambient;
thread_local QueryCounters* t_query_counters = nullptr;
}  // namespace trace_internal

using trace_internal::t_ambient;

namespace {

uint64_t SteadyNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::string& EmptyString() {
  static const std::string empty;
  return empty;
}

bool IoStatsNonZero(const IoStats& io) { return io.TotalOps() != 0; }

JsonValue IoStatsJson(const IoStats& io) {
  JsonValue v = JsonValue::MakeObject();
  v.Set("sequential_reads",
        JsonValue(io.sequential_reads.load(std::memory_order_relaxed)));
  v.Set("random_reads",
        JsonValue(io.random_reads.load(std::memory_order_relaxed)));
  v.Set("sequential_writes",
        JsonValue(io.sequential_writes.load(std::memory_order_relaxed)));
  v.Set("random_writes",
        JsonValue(io.random_writes.load(std::memory_order_relaxed)));
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace

const std::string& Trace::name() const {
  return spans_.empty() ? EmptyString() : spans_[0].name;
}

uint64_t Trace::DurationMicros() const {
  return spans_.empty() ? 0 : spans_[0].DurationMicros();
}

int32_t Trace::OpenSpan(const char* name, int32_t parent) {
  const int32_t index = static_cast<int32_t>(spans_.size());
  spans_.emplace_back();
  SpanRecord& span = spans_.back();
  span.name = name;
  span.parent = parent;
  span.start_ns = NowNanos();
  open_io_.emplace_back();
  if (io_ != nullptr) open_io_.back() = *io_;  // Snapshot at open.
  return index;
}

void Trace::CloseSpan(int32_t index) {
  SpanRecord& span = spans_[index];
  span.end_ns = NowNanos();
  if (io_ != nullptr) {
    span.io = *io_ - open_io_[index];
  }
}

void Trace::Annotate(int32_t index, const char* key, JsonValue value) {
  spans_[index].annotations.emplace_back(key, std::move(value));
}

void Trace::SpliceChild(const Trace& child, int32_t attach_parent) {
  const int32_t offset = static_cast<int32_t>(spans_.size());
  spans_.reserve(spans_.size() + child.spans_.size());
  open_io_.reserve(open_io_.size() + child.open_io_.size());
  for (size_t i = 0; i < child.spans_.size(); ++i) {
    spans_.push_back(child.spans_[i]);
    SpanRecord& span = spans_.back();
    span.parent = span.parent < 0 ? attach_parent : span.parent + offset;
    // Keep spans_ and open_io_ index-aligned: CloseSpan and the IoStats
    // delta logic address both by the same span index.
    open_io_.push_back(child.open_io_[i]);
  }
}

namespace {

JsonValue SpanTreeJson(const Trace& trace,
                       const std::vector<std::vector<int32_t>>& children,
                       int32_t index) {
  const SpanRecord& span = trace.spans()[index];
  const uint64_t root_start = trace.spans()[0].start_ns;
  JsonValue node = JsonValue::MakeObject();
  node.Set("name", JsonValue(span.name));
  node.Set("start_us", JsonValue((span.start_ns - root_start) / 1000));
  node.Set("duration_us", JsonValue(span.DurationMicros()));
  if (span.pages_read != 0) node.Set("pages_read", JsonValue(span.pages_read));
  if (span.pool_hits != 0) node.Set("pool_hits", JsonValue(span.pool_hits));
  if (IoStatsNonZero(span.io)) node.Set("io", IoStatsJson(span.io));
  if (!span.annotations.empty()) {
    JsonValue& args = node.Set("annotations", JsonValue::MakeObject());
    for (const auto& [key, value] : span.annotations) args.Set(key, value);
  }
  if (!children[index].empty()) {
    JsonValue& kids = node.Set("children", JsonValue::MakeArray());
    for (int32_t child : children[index]) {
      kids.Append(SpanTreeJson(trace, children, child));
    }
  }
  return node;
}

std::vector<std::vector<int32_t>> ChildIndex(const Trace& trace) {
  std::vector<std::vector<int32_t>> children(trace.spans().size());
  for (size_t i = 0; i < trace.spans().size(); ++i) {
    const int32_t parent = trace.spans()[i].parent;
    if (parent >= 0) children[parent].push_back(static_cast<int32_t>(i));
  }
  return children;
}

}  // namespace

JsonValue Trace::TreeJson() const {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("trace_id", JsonValue(id_));
  doc.Set("name", JsonValue(name()));
  doc.Set("duration_us", JsonValue(DurationMicros()));
  if (!spans_.empty()) {
    doc.Set("root", SpanTreeJson(*this, ChildIndex(*this), 0));
  }
  return doc;
}

JsonValue Trace::TraceEventsJson() const {
  JsonValue events = JsonValue::MakeArray();
  for (const SpanRecord& span : spans_) {
    JsonValue event = JsonValue::MakeObject();
    event.Set("name", JsonValue(span.name));
    event.Set("cat", JsonValue("cubetree"));
    event.Set("ph", JsonValue("X"));
    event.Set("ts", JsonValue(span.start_ns / 1000));
    event.Set("dur", JsonValue(span.DurationMicros()));
    event.Set("pid", JsonValue(static_cast<uint64_t>(1)));
    event.Set("tid", JsonValue(id_));
    JsonValue& args = event.Set("args", JsonValue::MakeObject());
    args.Set("trace_id", JsonValue(id_));
    if (span.pages_read != 0) {
      args.Set("pages_read", JsonValue(span.pages_read));
    }
    if (span.pool_hits != 0) args.Set("pool_hits", JsonValue(span.pool_hits));
    if (IoStatsNonZero(span.io)) {
      args.Set("io_reads", JsonValue(span.io.TotalReads()));
      args.Set("io_writes", JsonValue(span.io.TotalWrites()));
    }
    for (const auto& [key, value] : span.annotations) args.Set(key, value);
    events.Append(std::move(event));
  }
  return events;
}

namespace {

void DebugStringNode(const Trace& trace,
                     const std::vector<std::vector<int32_t>>& children,
                     int32_t index, int depth, std::string* out) {
  const SpanRecord& span = trace.spans()[index];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  %llu us",
                static_cast<unsigned long long>(span.DurationMicros()));
  out->append(buf);
  if (span.pages_read != 0 || span.pool_hits != 0) {
    std::snprintf(buf, sizeof(buf), "  [reads=%llu hits=%llu]",
                  static_cast<unsigned long long>(span.pages_read),
                  static_cast<unsigned long long>(span.pool_hits));
    out->append(buf);
  }
  for (const auto& [key, value] : span.annotations) {
    out->append("  ");
    out->append(key);
    out->push_back('=');
    out->append(value.is_string() ? value.str() : value.Dump(-1));
  }
  out->push_back('\n');
  for (int32_t child : children[index]) {
    DebugStringNode(trace, children, child, depth + 1, out);
  }
}

}  // namespace

std::string Trace::DebugString() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "trace %llu\n",
                static_cast<unsigned long long>(id_));
  out.append(buf);
  if (!spans_.empty()) {
    DebugStringNode(*this, ChildIndex(*this), 0, 1, &out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(const char* name) {
  Trace* trace = t_ambient.trace;
  if (trace == nullptr) return;
  trace_ = trace;
  parent_ = t_ambient.span;
  index_ = trace->OpenSpan(name, parent_);
  t_ambient.span = index_;
}

Span::~Span() {
  if (trace_ == nullptr) return;
  trace_->CloseSpan(index_);
  t_ambient.span = parent_;
}

void Span::Annotate(const char* key, const std::string& value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void Span::Annotate(const char* key, const char* value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void Span::Annotate(const char* key, int64_t value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void Span::Annotate(const char* key, uint64_t value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void Span::Annotate(const char* key, double value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}

// ---------------------------------------------------------------------------
// TraceScope

TraceScope::TraceScope(const char* name, const IoStats* io) {
  if (t_ambient.trace != nullptr) {
    // Nested inside another traced operation: contribute a child span
    // rather than starting a competing trace.
    trace_ = t_ambient.trace;
    parent_ = t_ambient.span;
    index_ = trace_->OpenSpan(name, parent_);
    t_ambient.span = index_;
    return;
  }
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  owned_ = std::make_unique<Trace>(tracer.NextTraceId(), io);
  trace_ = owned_.get();
  parent_ = -1;
  index_ = trace_->OpenSpan(name, -1);
  t_ambient.trace = trace_;
  t_ambient.span = index_;
}

TraceScope::~TraceScope() {
  if (trace_ == nullptr) return;
  trace_->CloseSpan(index_);
  t_ambient.span = parent_;
  if (owned_ == nullptr) return;  // Nested scope: parent trace continues.
  t_ambient.trace = nullptr;
  std::shared_ptr<const Trace> done = std::move(owned_);
  Tracer& tracer = Tracer::Instance();
  tracer.MaybeLogSlowTrace(*done);
  tracer.Publish(std::move(done));
}

uint64_t TraceScope::trace_id() const {
  return trace_ == nullptr ? 0 : trace_->id();
}

void TraceScope::Annotate(const char* key, const std::string& value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void TraceScope::Annotate(const char* key, int64_t value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}
void TraceScope::Annotate(const char* key, uint64_t value) {
  if (trace_ != nullptr) trace_->Annotate(index_, key, JsonValue(value));
}

// ---------------------------------------------------------------------------
// TraceHandoff

TraceHandoff::TraceHandoff()
    : parent_trace_(t_ambient.trace), parent_span_(t_ambient.span) {}

TraceHandoff::Adopt::Adopt(TraceHandoff& handoff) {
  if (!handoff.active()) return;
  handoff_ = &handoff;
  saved_ = t_ambient;
  // The child trace shares the parent's id (it is the same logical trace)
  // but carries no IoStats pointer: the stats object is process-wide, so a
  // per-worker delta would mostly measure the other workers.
  local_ = std::make_unique<Trace>(handoff.parent_trace_->id(), nullptr);
  t_ambient.trace = local_.get();
  t_ambient.span = -1;
}

TraceHandoff::Adopt::~Adopt() {
  if (handoff_ == nullptr) return;
  t_ambient = saved_;
  if (local_->spans().empty()) return;
  // Workers may close their Adopt scopes concurrently; the coordinator is
  // blocked joining them, so the parent trace itself is quiescent and the
  // mutex only has to serialize the splices against each other.
  MutexLock lock(handoff_->splice_mu_);
  handoff_->parent_trace_->SpliceChild(*local_, handoff_->parent_span_);
}

TraceHandoff::Defer::Defer(TraceHandoff& handoff) {
  if (!handoff.active()) return;
  handoff_ = &handoff;
  saved_ = t_ambient;
  local_ = std::make_unique<Trace>(handoff.parent_trace_->id(), nullptr);
  t_ambient.trace = local_.get();
  t_ambient.span = -1;
}

TraceHandoff::Defer::~Defer() {
  if (handoff_ == nullptr) return;
  t_ambient = saved_;
  if (local_->spans().empty()) return;
  // Unlike Adopt, the parent trace may still be in active use on its
  // owning thread, so only queue here; SpliceQueued grafts later.
  MutexLock lock(handoff_->splice_mu_);
  handoff_->queued_.push_back(std::move(local_));
}

void TraceHandoff::SpliceQueued() {
  if (!active()) return;
  MutexLock lock(splice_mu_);
  for (const std::unique_ptr<Trace>& child : queued_) {
    parent_trace_->SpliceChild(*child, parent_span_);
  }
  queued_.clear();
}

// ---------------------------------------------------------------------------
// Tracer

Tracer& Tracer::Instance() {
  static Tracer* tracer = [] {
    // ct-lint: allow(no-naked-new)
    Tracer* t = new Tracer(kDefaultCapacity);  // Intentionally leaked singleton.
    const char* enable = std::getenv("CUBETREE_TRACE");
    if (enable != nullptr && std::strcmp(enable, "0") != 0 &&
        enable[0] != '\0') {
      t->Enable(true);
    }
    const char* slow = std::getenv("CUBETREE_SLOW_QUERY_US");
    if (slow != nullptr && slow[0] != '\0') {
      char* end = nullptr;
      const long long us = std::strtoll(slow, &end, 10);
      if (end != slow && *end == '\0') {
        t->SetSlowTraceThresholdMicros(us);
        t->Enable(true);  // A slow-query log needs traces to log.
      }
    }
    const char* slow_path = std::getenv("CUBETREE_SLOW_QUERY_PATH");
    if (slow_path != nullptr && slow_path[0] != '\0') {
      t->SetSlowTraceFile(slow_path);
    }
    return t;
  }();
  return *tracer;
}

Tracer::Tracer(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

// Out of line so trace.h needs only RotatingFile's forward declaration.
Tracer::~Tracer() = default;

void Tracer::Publish(std::shared_ptr<const Trace> trace) {
  MutexLock lock(ring_mu_);
  slots_[next_slot_++ % capacity_] = std::move(trace);
}

std::shared_ptr<const Trace> Tracer::LastTrace() const {
  MutexLock lock(ring_mu_);
  if (next_slot_ == 0) return nullptr;
  return slots_[(next_slot_ - 1) % capacity_];
}

std::vector<std::shared_ptr<const Trace>> Tracer::AllTraces() const {
  MutexLock lock(ring_mu_);
  const uint64_t count = next_slot_ < capacity_ ? next_slot_ : capacity_;
  std::vector<std::shared_ptr<const Trace>> out;
  out.reserve(count);
  // Oldest resident lives at next_slot_ % capacity_ once the ring wrapped.
  const uint64_t first = next_slot_ < capacity_ ? 0 : next_slot_ - count;
  for (uint64_t i = 0; i < count; ++i) {
    const auto& trace = slots_[(first + i) % capacity_];
    if (trace != nullptr) out.push_back(trace);
  }
  return out;
}

void Tracer::Clear() {
  MutexLock lock(ring_mu_);
  for (auto& slot : slots_) slot = nullptr;
  next_slot_ = 0;
}

JsonValue Tracer::ChromeTraceJson(
    const std::vector<std::shared_ptr<const Trace>>& traces) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("displayTimeUnit", JsonValue("ms"));
  JsonValue& events = doc.Set("traceEvents", JsonValue::MakeArray());
  for (const auto& trace : traces) {
    if (trace == nullptr) continue;
    const JsonValue trace_events = trace->TraceEventsJson();
    for (const JsonValue& event : trace_events.elements()) {
      events.Append(event);
    }
  }
  return doc;
}

void Tracer::SetSlowTraceSinkForTest(
    std::function<void(const std::string&)> sink) {
  MutexLock lock(sink_mu_);
  sink_ = std::move(sink);
}

void Tracer::SetSlowTraceFile(const std::string& path, uint64_t max_bytes,
                              int max_segments) {
  MutexLock lock(sink_mu_);
  if (path.empty()) {
    slow_file_.reset();
    return;
  }
  RotatingFile::Options options;
  options.path = path;
  options.max_bytes = max_bytes;
  options.max_segments = max_segments;
  slow_file_ = std::make_unique<RotatingFile>(std::move(options));
  slow_file_warned_ = false;
}

void Tracer::MaybeLogSlowTrace(const Trace& trace) {
  const int64_t threshold = slow_threshold_us_.load(std::memory_order_relaxed);
  if (threshold < 0) return;
  const uint64_t duration = trace.DurationMicros();
  if (duration < static_cast<uint64_t>(threshold)) return;

  // Rate limit: one emitter wins the CAS per interval; losers are counted
  // and reported by the next winner.
  const uint64_t now = SteadyNowMicros();
  const uint64_t interval = static_cast<uint64_t>(
      slow_interval_us_.load(std::memory_order_relaxed));
  uint64_t last = slow_last_emit_us_.load(std::memory_order_relaxed);
  for (;;) {
    if (last != 0 && now - last < interval) {
      slow_suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slow_last_emit_us_.compare_exchange_weak(last, now,
                                                 std::memory_order_relaxed)) {
      break;
    }
  }

  JsonValue line = JsonValue::MakeObject();
  line.Set("slow_trace", JsonValue(true));
  line.Set("threshold_us", JsonValue(static_cast<int64_t>(threshold)));
  const uint64_t suppressed =
      slow_suppressed_.exchange(0, std::memory_order_relaxed);
  if (suppressed != 0) line.Set("suppressed", JsonValue(suppressed));
  const JsonValue tree = trace.TreeJson();
  for (const auto& [key, value] : tree.members()) {
    line.Set(key, value);
  }
  const std::string text = line.Dump(-1);

  // Precedence: test sink, then the rotating file, then stderr. The file
  // append happens under sink_mu_ (RotatingFile is not thread-safe); slow
  // traces are rate-limited above, so the hold is rare and short.
  std::function<void(const std::string&)> sink;
  {
    MutexLock lock(sink_mu_);
    sink = sink_;
    if (!sink && slow_file_ != nullptr) {
      const Status status = slow_file_->Append(text);
      if (!status.ok() && !slow_file_warned_) {
        slow_file_warned_ = true;
        CT_LOG(Warn) << "slow-trace file sink: " << status.ToString();
      }
      return;
    }
  }
  if (sink) {
    sink(text);
  } else {
    std::fprintf(stderr, "%s\n", text.c_str());
  }
}

}  // namespace obs
}  // namespace cubetree
