#include "obs/workload.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace cubetree {
namespace obs {

namespace {

/// Selectivity of one recorded attribute interval, in (0, 1]. Records
/// carry the effective [lo, hi] (clamped to [1, domain]), so an
/// unconstrained attribute comes out as exactly 1.
double AttrSelectivity(const QueryLogAttr& attr) {
  if (attr.domain == 0 || attr.hi < attr.lo) return 1.0;
  const double width = static_cast<double>(attr.hi - attr.lo + 1);
  const double sel = width / static_cast<double>(attr.domain);
  return sel >= 1.0 ? 1.0 : sel;
}

bool AttrConstrained(const QueryLogAttr& attr) {
  return AttrSelectivity(attr) < 1.0;
}

/// The query-shape grouping key: each attribute of the node in projection
/// order, suffixed with "=" when equality-bound and "~" when
/// range-restricted. E.g. "partkey=,suppkey,custkey~".
std::string ShapeKey(const QueryLogRecord& record) {
  std::string key;
  for (const QueryLogAttr& attr : record.attrs) {
    if (!key.empty()) key.push_back(',');
    key += attr.name;
    if (attr.bound) {
      key.push_back('=');
    } else if (AttrConstrained(attr)) {
      key.push_back('~');
    }
  }
  return key.empty() ? "(apex)" : key;
}

std::string JoinOrder(const std::vector<std::string>& order) {
  std::string out;
  for (const std::string& attr : order) {
    if (!out.empty()) out.push_back(',');
    out += attr;
  }
  return out;
}

JsonValue LatencyJson(uint64_t count, const Histogram& h) {
  JsonValue out = JsonValue::MakeObject();
  out.Set("count", JsonValue(static_cast<int64_t>(count)));
  out.Set("mean_us", JsonValue(h.Mean()));
  out.Set("p50_us", JsonValue(static_cast<int64_t>(h.ValueAtPercentile(50))));
  out.Set("p95_us", JsonValue(static_cast<int64_t>(h.ValueAtPercentile(95))));
  out.Set("p99_us", JsonValue(static_cast<int64_t>(h.ValueAtPercentile(99))));
  out.Set("max_us", JsonValue(static_cast<int64_t>(h.max())));
  return out;
}

std::atomic<WorkloadProfiler*> g_default_profiler{nullptr};

}  // namespace

void SpaceSavingSketch::Observe(const std::string& key) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    return;
  }
  if (entries_.size() < capacity_ || capacity_ == 0) {
    entries_.emplace(key, Cell{1, 0});
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as the
  // classic space-saving overestimate.
  auto min_it = entries_.begin();
  for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
    if (cand->second.count < min_it->second.count) min_it = cand;
  }
  const uint64_t floor = min_it->second.count;
  entries_.erase(min_it);
  entries_.emplace(key, Cell{floor + 1, floor});
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::TopK(size_t k) const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, cell] : entries_) {
    out.push_back(Entry{key, cell.count, cell.overcount});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

std::optional<ReplicaMiss> ScoreReplicaMiss(const QueryLogRecord& record) {
  if (record.view.empty() || record.order.empty()) return std::nullopt;

  // Look attrs up by name so the scorer does not assume record.attrs and
  // record.order agree on ordering.
  auto find_attr = [&](const std::string& name) -> const QueryLogAttr* {
    for (const QueryLogAttr& attr : record.attrs) {
      if (attr.name == name) return &attr;
    }
    return nullptr;
  };

  // Actual cost factor under the routed order, mirroring
  // CubetreeEngine::EstimateCost: walk from the pack-order-major end (the
  // back of the projection list); constrained attributes in that suffix
  // multiply in their full selectivity, every other constrained attribute
  // contributes only a halving.
  double actual = 1.0;
  size_t suffix_end = record.order.size();
  while (suffix_end > 0) {
    const QueryLogAttr* attr = find_attr(record.order[suffix_end - 1]);
    if (attr == nullptr || !AttrConstrained(*attr)) break;
    actual *= AttrSelectivity(*attr);
    --suffix_end;
  }
  double best = actual;
  for (size_t i = 0; i < suffix_end; ++i) {
    const QueryLogAttr* attr = find_attr(record.order[i]);
    if (attr == nullptr || !AttrConstrained(*attr)) continue;
    actual *= 0.5;
    best *= AttrSelectivity(*attr);
  }
  if (best >= actual * (1.0 - 1e-9)) return std::nullopt;  // Already optimal.

  ReplicaMiss miss;
  miss.view = record.view;
  // Recommended permutation: unconstrained attributes first (least
  // significant), constrained ones moved to the suffix, both keeping their
  // relative order — deterministic, so recommendations aggregate.
  for (const std::string& name : record.order) {
    const QueryLogAttr* attr = find_attr(name);
    if (attr == nullptr || !AttrConstrained(*attr)) {
      miss.recommended_order.push_back(name);
    }
  }
  for (const std::string& name : record.order) {
    const QueryLogAttr* attr = find_attr(name);
    if (attr != nullptr && AttrConstrained(*attr)) {
      miss.recommended_order.push_back(name);
    }
  }
  miss.cost_ratio = best / actual;
  miss.pages_touched = record.pages_read + record.pool_hits;
  miss.est_pages_saved =
      static_cast<double>(miss.pages_touched) * (1.0 - miss.cost_ratio);
  return miss;
}

WorkloadProfiler::WorkloadProfiler(Options options)
    : options_(options), shapes_(options.sketch_capacity) {}

void WorkloadProfiler::Observe(const QueryLogRecord& record) {
  std::optional<ReplicaMiss> miss = ScoreReplicaMiss(record);
  const std::string shape = ShapeKey(record);
  MutexLock lock(mu_);
  ++records_;
  LatencyAgg& outcome = outcomes_[record.outcome.empty() ? "unknown"
                                                         : record.outcome];
  ++outcome.count;
  outcome.latency_us->Record(record.latency_us);
  if (!record.view.empty()) {
    ViewAgg& view = views_[record.view];
    ++view.latency.count;
    view.latency.latency_us->Record(record.latency_us);
    view.pages_read += record.pages_read;
    view.pool_hits += record.pool_hits;
    view.points_examined += record.points_examined;
    ++view.routes[record.route.empty() ? "unknown" : record.route];
  }
  shapes_.Observe(shape);
  if (miss.has_value()) {
    const std::string key =
        miss->view + "|" + JoinOrder(miss->recommended_order);
    MissAgg& agg = misses_[key];
    if (agg.queries == 0) {
      agg.view = miss->view;
      agg.recommended_order = miss->recommended_order;
    }
    ++agg.queries;
    agg.est_pages_saved += miss->est_pages_saved;
    agg.pages_touched += miss->pages_touched;
  }
}

Status WorkloadProfiler::AddLogFile(const std::string& path) {
  QueryLogReadStats stats;
  uint64_t invalid = 0;
  Status status = ForEachLogLine(
      path,
      [&](const std::string& line) {
        Result<JsonValue> doc = JsonValue::Parse(line);
        if (!doc.ok()) {
          ++invalid;
          return;
        }
        Result<QueryLogRecord> record = QueryLogRecord::FromJson(*doc);
        if (!record.ok()) {
          ++invalid;
          return;
        }
        Observe(*record);
      },
      &stats);
  CT_RETURN_NOT_OK(status);
  MutexLock lock(mu_);
  invalid_records_ += invalid;
  torn_lines_ += stats.torn;
  return Status::OK();
}

Status WorkloadProfiler::AddLog(const std::string& path) {
  for (const std::string& segment : QueryLog::Segments(path)) {
    CT_RETURN_NOT_OK(AddLogFile(segment));
  }
  return Status::OK();
}

uint64_t WorkloadProfiler::records() const {
  MutexLock lock(mu_);
  return records_;
}

uint64_t WorkloadProfiler::invalid_records() const {
  MutexLock lock(mu_);
  return invalid_records_;
}

JsonValue WorkloadProfiler::ReportJson() const {
  MutexLock lock(mu_);
  JsonValue out = JsonValue::MakeObject();
  out.Set("schema_version", JsonValue(static_cast<int64_t>(1)));
  out.Set("records", JsonValue(static_cast<int64_t>(records_)));
  out.Set("invalid_records", JsonValue(static_cast<int64_t>(invalid_records_)));
  out.Set("torn_lines", JsonValue(static_cast<int64_t>(torn_lines_)));

  JsonValue outcomes = JsonValue::MakeObject();
  for (const auto& [name, agg] : outcomes_) {
    outcomes.Set(name, LatencyJson(agg.count, *agg.latency_us));
  }
  out.Set("outcomes", std::move(outcomes));

  JsonValue views = JsonValue::MakeObject();
  for (const auto& [name, agg] : views_) {
    JsonValue view = LatencyJson(agg.latency.count, *agg.latency.latency_us);
    view.Set("pages_read", JsonValue(static_cast<int64_t>(agg.pages_read)));
    view.Set("pool_hits", JsonValue(static_cast<int64_t>(agg.pool_hits)));
    view.Set("points_examined",
             JsonValue(static_cast<int64_t>(agg.points_examined)));
    JsonValue routes = JsonValue::MakeObject();
    for (const auto& [route, count] : agg.routes) {
      routes.Set(route, JsonValue(static_cast<int64_t>(count)));
    }
    view.Set("routes", std::move(routes));
    views.Set(name, std::move(view));
  }
  out.Set("views", std::move(views));

  JsonValue shapes = JsonValue::MakeArray();
  for (const SpaceSavingSketch::Entry& entry : shapes_.TopK(options_.top_k)) {
    JsonValue shape = JsonValue::MakeObject();
    shape.Set("shape", JsonValue(entry.key));
    shape.Set("count", JsonValue(static_cast<int64_t>(entry.count)));
    shape.Set("max_overcount",
              JsonValue(static_cast<int64_t>(entry.overcount)));
    shapes.Append(std::move(shape));
  }
  out.Set("top_shapes", std::move(shapes));

  // Misses sorted by estimated pages saved (desc), then key, so the top
  // recommendation is first — this ordering is the item-5 advisor's input.
  std::vector<const MissAgg*> misses;
  misses.reserve(misses_.size());
  for (const auto& [key, agg] : misses_) misses.push_back(&agg);
  std::sort(misses.begin(), misses.end(),
            [](const MissAgg* a, const MissAgg* b) {
              if (a->est_pages_saved != b->est_pages_saved) {
                return a->est_pages_saved > b->est_pages_saved;
              }
              if (a->view != b->view) return a->view < b->view;
              return a->recommended_order < b->recommended_order;
            });
  JsonValue miss_json = JsonValue::MakeArray();
  for (const MissAgg* agg : misses) {
    JsonValue miss = JsonValue::MakeObject();
    miss.Set("view", JsonValue(agg->view));
    JsonValue order = JsonValue::MakeArray();
    for (const std::string& attr : agg->recommended_order) {
      order.Append(JsonValue(attr));
    }
    miss.Set("recommended_order", std::move(order));
    miss.Set("queries", JsonValue(static_cast<int64_t>(agg->queries)));
    miss.Set("est_pages_saved", JsonValue(agg->est_pages_saved));
    miss.Set("pages_touched",
             JsonValue(static_cast<int64_t>(agg->pages_touched)));
    miss_json.Append(std::move(miss));
  }
  out.Set("replica_misses", std::move(miss_json));
  return out;
}

std::string WorkloadProfiler::ReportText() const {
  const JsonValue report = ReportJson();
  std::ostringstream out;
  auto i64 = [&](const JsonValue& obj, const char* key) -> int64_t {
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_number() ? static_cast<int64_t>(v->number())
                                          : 0;
  };
  auto f64 = [&](const JsonValue& obj, const char* key) -> double {
    const JsonValue* v = obj.Find(key);
    return v != nullptr && v->is_number() ? v->number() : 0.0;
  };

  out << "workload profile: " << i64(report, "records") << " records";
  if (i64(report, "invalid_records") > 0 || i64(report, "torn_lines") > 0) {
    out << " (" << i64(report, "invalid_records") << " invalid, "
        << i64(report, "torn_lines") << " torn)";
  }
  out << "\n\noutcomes:\n";
  const JsonValue* outcomes = report.Find("outcomes");
  if (outcomes != nullptr) {
    for (const auto& [name, agg] : outcomes->members()) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-20s %8" PRId64 "  mean %.0fus  p50 %" PRId64
                    "us  p95 %" PRId64 "us  p99 %" PRId64 "us\n",
                    name.c_str(), i64(agg, "count"), f64(agg, "mean_us"),
                    i64(agg, "p50_us"), i64(agg, "p95_us"), i64(agg, "p99_us"));
      out << line;
    }
  }
  out << "\nviews:\n";
  const JsonValue* views = report.Find("views");
  if (views != nullptr) {
    for (const auto& [name, agg] : views->members()) {
      char line[200];
      std::snprintf(line, sizeof(line),
                    "  %-28s %8" PRId64 " queries  p95 %" PRId64
                    "us  pages %" PRId64 " (+%" PRId64 " pool)  points %" PRId64
                    "\n",
                    name.c_str(), i64(agg, "count"), i64(agg, "p95_us"),
                    i64(agg, "pages_read"), i64(agg, "pool_hits"),
                    i64(agg, "points_examined"));
      out << line;
      const JsonValue* routes = agg.Find("routes");
      if (routes != nullptr) {
        out << "    routes:";
        for (const auto& [route, count] : routes->members()) {
          out << " " << route << "="
              << (count.is_number() ? static_cast<int64_t>(count.number())
                                    : 0);
        }
        out << "\n";
      }
    }
  }
  out << "\ntop query shapes ('=' bound, '~' ranged):\n";
  const JsonValue* shapes = report.Find("top_shapes");
  if (shapes != nullptr) {
    for (const JsonValue& shape : shapes->elements()) {
      out << "  " << i64(shape, "count");
      if (i64(shape, "max_overcount") > 0) {
        out << " (±" << i64(shape, "max_overcount") << ")";
      }
      const JsonValue* key = shape.Find("shape");
      out << "  " << (key != nullptr && key->is_string() ? key->str() : "")
          << "\n";
    }
  }
  out << "\nreplica misses (orderings that would have served better):\n";
  const JsonValue* misses = report.Find("replica_misses");
  if (misses == nullptr || misses->elements().empty()) {
    out << "  none — every query was served by an optimal sort order\n";
  } else {
    for (const JsonValue& miss : misses->elements()) {
      const JsonValue* view = miss.Find("view");
      const JsonValue* order = miss.Find("recommended_order");
      std::string order_text;
      if (order != nullptr) {
        for (const JsonValue& attr : order->elements()) {
          if (!order_text.empty()) order_text += ",";
          if (attr.is_string()) order_text += attr.str();
        }
      }
      char line[240];
      std::snprintf(line, sizeof(line),
                    "  view %-24s add order (%s): %" PRId64
                    " queries, est. %.1f pages saved (of %" PRId64
                    " touched)\n",
                    view != nullptr && view->is_string() ? view->str().c_str()
                                                         : "?",
                    order_text.c_str(), i64(miss, "queries"),
                    f64(miss, "est_pages_saved"), i64(miss, "pages_touched"));
      out << line;
    }
  }
  return out.str();
}

WorkloadProfiler* WorkloadProfiler::Default() {
  return g_default_profiler.load(std::memory_order_acquire);
}

void WorkloadProfiler::SetDefault(WorkloadProfiler* profiler) {
  g_default_profiler.store(profiler, std::memory_order_release);
}

}  // namespace obs
}  // namespace cubetree
