#ifndef CUBETREE_OBS_METRICS_H_
#define CUBETREE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace cubetree {
namespace obs {

/// Monotonic event count. All mutation is a single relaxed fetch_add, so
/// counters are safe (and cheap) to bump from any thread, including the
/// buffer-pool fetch path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, files awaiting GC). Unlike a
/// Counter it can go down.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Bounded log-scale histogram in the HdrHistogram style: each power of
/// two is split into 2^kSubBucketBits linear sub-buckets, so any recorded
/// value lands in a bucket whose width is at most value/16 — percentile
/// estimates carry at most ~6.7% relative error while the whole uint64
/// range fits in kNumBuckets fixed slots. Recording is one relaxed
/// fetch_add per bucket plus count/sum upkeep; no allocation, no locks.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;  // 16
  // Values below kSubBucketCount get exact unit buckets; above, each of
  // the 60 remaining bit positions contributes 16 sub-buckets.
  static constexpr int kNumBuckets =
      kSubBucketCount + (64 - kSubBucketBits) * kSubBucketCount;  // 976

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Value at percentile `p` in [0, 100]: the representative (midpoint)
  /// value of the bucket holding the p-th ranked recording, 0 when empty.
  uint64_t ValueAtPercentile(double p) const;

  void Reset();

  /// Bucket index for `value`; exposed for the boundary unit tests.
  static int BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `index` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(int index);
  /// Recordings in bucket `index`; used by the Prometheus exposition.
  uint64_t BucketCount(int index) const {
    return buckets_[static_cast<size_t>(index)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Process-wide registry of named metrics. Get* registers on first use
/// and returns a pointer that stays valid for the process lifetime, so
/// hot paths can cache it in a function-local static and pay only the
/// atomic bump per event. Names are sorted in snapshots so dumps diff
/// cleanly.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Zeroes every registered metric (names stay registered). Benches use
  /// this to isolate per-phase deltas; tests use it for a clean slate.
  void ResetAll() EXCLUDES(mu_);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count,sum,max,mean,p50,p95,p99}}}.
  JsonValue SnapshotJson() const EXCLUDES(mu_);
  std::string DumpJson(int indent = 2) const;
  /// One metric per line, for --stats terminal output.
  std::string DumpText() const;
  /// Prometheus text exposition (version 0.0.4): counters and gauges as-is,
  /// histograms as cumulative `_bucket{le="..."}` series (non-empty buckets
  /// plus `+Inf`) with `_sum` and `_count`. Metric names are prefixed with
  /// `cubetree_` and sanitized (non-[a-zA-Z0-9_] → `_`), so
  /// "engine.query_latency_us" scrapes as "cubetree_engine_query_latency_us".
  std::string DumpPrometheus() const;

 private:
  MetricsRegistry() = default;

  /// Guards registration and snapshots only — recording through the
  /// returned Counter/Gauge/Histogram pointers is lock-free.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cubetree

#endif  // CUBETREE_OBS_METRICS_H_
