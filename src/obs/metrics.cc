#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace cubetree {
namespace obs {

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<int>(value);
  // b = position of the top set bit (>= kSubBucketBits here). The bucket
  // group for bit position b starts where the previous groups end, and
  // the sub-bucket is the kSubBucketBits bits below the top bit.
  const int b = std::bit_width(value) - 1;
  const int group = b - kSubBucketBits + 1;
  const int sub =
      static_cast<int>((value >> (b - kSubBucketBits)) & (kSubBucketCount - 1));
  return group * kSubBucketCount + sub;
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  const int b = index / kSubBucketCount + kSubBucketBits - 1;
  const uint64_t sub = static_cast<uint64_t>(index & (kSubBucketCount - 1));
  return (static_cast<uint64_t>(kSubBucketCount) + sub) << (b - kSubBucketBits);
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ValueAtPercentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target recording, 1-based; p=0 picks the first.
  uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(total) + 0.5);
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Midpoint of [lower, next lower) halves the worst-case error.
      const uint64_t lo = BucketLowerBound(i);
      const uint64_t hi =
          i + 1 < kNumBuckets ? BucketLowerBound(i + 1) : lo + 1;
      return lo + (hi - lo - 1) / 2;
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  // ct-lint: allow(no-naked-new)
  static MetricsRegistry* registry =
      new MetricsRegistry();  // Intentionally leaked singleton.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

JsonValue MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::MakeObject();
  JsonValue& counters = root.Set("counters", JsonValue::MakeObject());
  for (const auto& [name, c] : counters_) {
    counters.Set(name, JsonValue(c->value()));
  }
  JsonValue& gauges = root.Set("gauges", JsonValue::MakeObject());
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, JsonValue(g->value()));
  }
  JsonValue& histograms = root.Set("histograms", JsonValue::MakeObject());
  for (const auto& [name, h] : histograms_) {
    JsonValue& entry = histograms.Set(name, JsonValue::MakeObject());
    entry.Set("count", JsonValue(h->count()));
    entry.Set("sum", JsonValue(h->sum()));
    entry.Set("max", JsonValue(h->max()));
    entry.Set("mean", JsonValue(h->Mean()));
    entry.Set("p50", JsonValue(h->ValueAtPercentile(50)));
    entry.Set("p95", JsonValue(h->ValueAtPercentile(95)));
    entry.Set("p99", JsonValue(h->ValueAtPercentile(99)));
  }
  return root;
}

std::string MetricsRegistry::DumpJson(int indent) const {
  return SnapshotJson().Dump(indent);
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter   %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge     %-44s %lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %-44s count=%llu mean=%.1f p50=%llu p95=%llu "
                  "p99=%llu max=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->Mean(),
                  static_cast<unsigned long long>(h->ValueAtPercentile(50)),
                  static_cast<unsigned long long>(h->ValueAtPercentile(95)),
                  static_cast<unsigned long long>(h->ValueAtPercentile(99)),
                  static_cast<unsigned long long>(h->max()));
    out += buf;
  }
  return out;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "cubetree_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    const std::string prom = PrometheusName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %llu\n",
                  prom.c_str(), prom.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = PrometheusName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %lld\n", prom.c_str(),
                  prom.c_str(), static_cast<long long>(g->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets over the non-empty slots only: 976 mostly-zero
    // series per histogram would bloat every scrape. `le` is the bucket's
    // inclusive upper bound (the next bucket's lower bound minus one).
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t in_bucket = h->BucketCount(i);
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      const uint64_t le = i + 1 < Histogram::kNumBuckets
                              ? Histogram::BucketLowerBound(i + 1) - 1
                              : Histogram::BucketLowerBound(i);
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%llu\"} %llu\n",
                    prom.c_str(), static_cast<unsigned long long>(le),
                    static_cast<unsigned long long>(cumulative));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  prom.c_str(), static_cast<unsigned long long>(h->count()),
                  prom.c_str(), static_cast<unsigned long long>(h->sum()),
                  prom.c_str(), static_cast<unsigned long long>(h->count()));
    out += buf;
  }
  return out;
}

}  // namespace obs
}  // namespace cubetree
