#ifndef CUBETREE_OBS_QUERY_LOG_H_
#define CUBETREE_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/json.h"

namespace cubetree {
namespace obs {

class Counter;

/// One attribute of a query's shape: the lattice-node attribute, its key
/// domain, and the effective [lo, hi] interval the query restricts it to
/// (degenerate when equality-bound, [1, domain] when unconstrained). The
/// domain rides along so a log record is self-contained: the profiler's
/// replica-miss scorer recomputes selectivities offline without the schema.
struct QueryLogAttr {
  std::string name;
  uint64_t domain = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool bound = false;    // Equality predicate (lo == hi by construction).
  bool grouped = false;  // Appears in the output grouping.
};

/// The per-query accounting record CubetreeEngine::Execute assembles: the
/// query's shape, where it was routed, what it cost, and how it ended.
/// Serialized as one JSON line in the durable query log and consumed
/// directly by the in-process workload profiler.
struct QueryLogRecord {
  static constexpr int64_t kSchemaVersion = 1;

  uint64_t ts_us = 0;  // Wall clock, microseconds since the Unix epoch.
  /// ok | deadline | cancelled | shed | degraded | corruption_rerouted |
  /// error. `degraded` = answered correctly but with at least one covering
  /// view quarantined out of the routing set; `corruption_rerouted` =
  /// answered after at least one read-repair re-route.
  std::string outcome;
  /// exact | replica | superset | none. `replica` = an extra-sort-order
  /// copy (same attribute set as the query's node, not the family's
  /// primary); `none` = no view was routed (e.g. shed before routing).
  std::string route;
  std::string view;                 // Routed view name ("" when route=none).
  std::vector<std::string> order;   // Routed view's projection/sort order.
  std::vector<QueryLogAttr> attrs;  // Query shape over the node's attrs.
  uint64_t latency_us = 0;          // End-to-end, including admission wait.
  uint64_t admission_wait_us = 0;
  uint64_t pages_read = 0;  // Physical page reads (below the buffer pool).
  uint64_t pool_hits = 0;   // Buffer-pool hits.
  uint64_t points_examined = 0;  // Leaf points scanned (rtree.scan).
  uint64_t rows = 0;             // Result rows returned.
  uint64_t trace_id = 0;         // Span-trace id, 0 when untraced.

  JsonValue ToJson() const;
  /// Strict inverse of ToJson: InvalidArgument on a missing/mistyped field
  /// or an unknown schema_version. Used by `ctstat check` and the offline
  /// profiler, so a truncated or hand-edited record fails loudly.
  static Result<QueryLogRecord> FromJson(const JsonValue& doc);
};

/// Append-only line file with size-based rotation and bounded retention:
/// when the active file at `path` would exceed `max_bytes`, it is rotated
/// to `path.1` (existing `path.N` shift to `path.N+1`, the oldest beyond
/// `max_segments` is deleted) and a fresh active file is started. Writes
/// are line-buffered (fflush per Append), not fsynced: the log survives a
/// process crash, not a power cut. Not thread-safe; callers serialize
/// (the query log has a single writer thread, the slow-trace sink
/// appends under the tracer's sink mutex).
class RotatingFile {
 public:
  struct Options {
    std::string path;
    uint64_t max_bytes = 64ull << 20;
    int max_segments = 4;  // Retained rotated segments, beyond the active.
  };

  explicit RotatingFile(Options options) : options_(std::move(options)) {}
  ~RotatingFile();
  RotatingFile(const RotatingFile&) = delete;
  RotatingFile& operator=(const RotatingFile&) = delete;

  /// Appends `line` plus a trailing newline, rotating first when the write
  /// would push the active file past max_bytes.
  Status Append(const std::string& line);

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t rotations() const { return rotations_; }
  const Options& options() const { return options_; }

  /// The on-disk segments of a rotating file, oldest first (highest .N
  /// down to .1, then the active file), existing files only.
  static std::vector<std::string> Segments(const std::string& path,
                                           int max_segments);

 private:
  Status EnsureOpen();
  Status Rotate();

  Options options_;
  std::FILE* file_ = nullptr;
  uint64_t size_ = 0;  // Bytes in the active segment.
  uint64_t bytes_written_ = 0;
  uint64_t rotations_ = 0;
};

/// Durable structured query log: an async JSONL writer with a bounded
/// queue. Append never blocks the query path — it moves the record into
/// the queue under a short mutex hold, or drops it (counted in
/// query_log.dropped) when the writer has fallen `queue_capacity` records
/// behind. A background thread serializes and writes batches through a
/// RotatingFile. Destruction drains the queue, so records appended before
/// a clean exit are on disk.
///
/// Environment (read once, on the first Default() call):
///   CUBETREE_QUERY_LOG=<path>        enable, append to <path>
///   CUBETREE_QUERY_LOG_MAX_BYTES=<n> rotate segments at n bytes (default 64 MiB)
///   CUBETREE_QUERY_LOG_SEGMENTS=<n>  retained rotated segments (default 4)
class QueryLog {
 public:
  struct Options {
    std::string path;
    uint64_t max_bytes = 64ull << 20;
    int max_segments = 4;
    size_t queue_capacity = 4096;
  };

  explicit QueryLog(Options options);
  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Enqueues the record for the writer thread; drops (and counts) when
  /// the queue is full. Never blocks on I/O.
  void Append(QueryLogRecord record) EXCLUDES(mu_);

  /// Blocks until every record appended so far is written and flushed.
  void Flush() EXCLUDES(mu_);

  const Options& options() const { return options_; }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// The process-wide log configured from CUBETREE_QUERY_LOG, or nullptr
  /// when the env var is unset — the disabled path is one static pointer
  /// load, no allocation. The instance is destroyed (drained) at exit.
  static QueryLog* Default();
  /// Test hook: overrides Default() (nullptr restores the env instance).
  static void SetDefaultForTest(QueryLog* log);

  /// The log's on-disk segments, oldest first (see RotatingFile::Segments,
  /// using this log's retention bound).
  static std::vector<std::string> Segments(const std::string& path,
                                           int max_segments = 16);

 private:
  void WriterLoop();

  const Options options_;
  RotatingFile file_;  // Writer-thread only (after construction).
  std::atomic<uint64_t> dropped_{0};

  Mutex mu_;
  CondVar work_cv_;     // Signals the writer: queue non-empty or stopping.
  CondVar drained_cv_;  // Signals Flush(): queue empty and writer idle.
  std::vector<QueryLogRecord> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  bool writer_busy_ GUARDED_BY(mu_) = false;
  std::thread writer_;
};

/// Statistics of one torn-tolerant log read.
struct QueryLogReadStats {
  uint64_t lines = 0;    // Complete ('\n'-terminated) lines seen.
  uint64_t torn = 0;     // Trailing bytes without a newline (0 or 1).
  uint64_t invalid = 0;  // Lines the callback rejected (callers count).
};

/// Reads `path` and invokes `fn` for each complete line (without the
/// newline). A final partial line — the signature of a crash mid-append —
/// is skipped and counted in stats->torn rather than surfaced as an
/// error. Returns NotFound / IOError only for file-level failures.
Status ForEachLogLine(const std::string& path,
                      const std::function<void(const std::string&)>& fn,
                      QueryLogReadStats* stats = nullptr);

}  // namespace obs
}  // namespace cubetree

#endif  // CUBETREE_OBS_QUERY_LOG_H_
