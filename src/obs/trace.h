#ifndef CUBETREE_OBS_TRACE_H_
#define CUBETREE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"
#include "storage/io_stats.h"

namespace cubetree {
namespace obs {

class Trace;
class Tracer;
class RotatingFile;

namespace trace_internal {

/// The ambient trace of this thread: set by TraceScope, consulted by every
/// Span constructor and by the storage-layer attribution hooks
/// (NotePageRead / NotePoolHit). One thread builds one trace at a time, so
/// no synchronization is needed until the trace is published.
struct AmbientTrace {
  Trace* trace = nullptr;
  int32_t span = -1;  // Index of the innermost open span.
};

extern thread_local AmbientTrace t_ambient;

/// Per-query storage attribution, independent of tracing: the engine
/// installs a stack-allocated QueryCounters for the duration of one
/// Execute (QueryAccountingScope), and the same storage hooks that feed
/// span attribution bump it. This is what gives a query-log record its
/// pages_read / pool_hits split without requiring a trace.
struct QueryCounters {
  uint64_t pages_read = 0;
  uint64_t pool_hits = 0;
};

extern thread_local QueryCounters* t_query_counters;

}  // namespace trace_internal

/// RAII installer for the ambient per-query counters (see QueryCounters).
/// Nesting restores the outer scope's counters, so a query executed inside
/// an instrumented refresh attributes to the query only.
class QueryAccountingScope {
 public:
  explicit QueryAccountingScope(trace_internal::QueryCounters* counters)
      : saved_(trace_internal::t_query_counters) {
    trace_internal::t_query_counters = counters;
  }
  ~QueryAccountingScope() { trace_internal::t_query_counters = saved_; }
  QueryAccountingScope(const QueryAccountingScope&) = delete;
  QueryAccountingScope& operator=(const QueryAccountingScope&) = delete;

 private:
  trace_internal::QueryCounters* saved_;
};

/// One node of a trace's span tree. Timestamps are steady-clock
/// nanoseconds, so spans of different traces in one process share a
/// timeline (which is what makes the Chrome trace-event export coherent).
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // 0 while the span is still open.
  int32_t parent = -1;  // Index into Trace::spans(); -1 = root.
  std::vector<std::pair<std::string, JsonValue>> annotations;

  /// Storage attribution, self only (not including child spans): physical
  /// page reads (PageManager::ReadPage) and buffer-pool hits
  /// (BufferPool::Fetch) that happened while this span was innermost.
  uint64_t pages_read = 0;
  uint64_t pool_hits = 0;

  /// Delta of the trace's attached IoStats over the span's lifetime
  /// (sequential/random split). Zero when no IoStats was attached. Unlike
  /// pages_read this is process-wide, so concurrent activity on the same
  /// IoStats pollutes it; single-threaded phases (refresh, one query) read
  /// it exactly.
  IoStats io;

  uint64_t DurationMicros() const { return (end_ns - start_ns) / 1000; }
};

/// A completed or in-flight span tree. Built single-threaded by the thread
/// that owns the TraceScope; published to the Tracer as an immutable
/// shared_ptr<const Trace> when the scope closes.
class Trace {
 public:
  Trace(uint64_t id, const IoStats* io) : id_(id), io_(io) {}

  uint64_t id() const { return id_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Name and duration of the root span ("" / 0 before any span opened).
  const std::string& name() const;
  uint64_t DurationMicros() const;

  /// Nested span-tree document: {"trace_id", "name", "duration_us",
  /// "root": {"name", "start_us", "duration_us", "pages_read",
  /// "pool_hits", ["io"], ["annotations"], ["children"]}}. start_us is
  /// relative to the root span.
  JsonValue TreeJson() const;

  /// This trace's spans as an array of Chrome trace-event objects
  /// (ph = "X" complete events; tid = trace id so each trace gets its own
  /// track). Tracer::ChromeTraceJson wraps them in the file envelope.
  JsonValue TraceEventsJson() const;

  /// Indented human-readable rendering for ctsql's \trace command.
  std::string DebugString() const;

  // --- Builder API (used by Span / TraceScope / the attribution hooks;
  // all calls must come from the owning thread). ---
  int32_t OpenSpan(const char* name, int32_t parent);
  void CloseSpan(int32_t index);
  void Annotate(int32_t index, const char* key, JsonValue value);
  void AddPageRead(int32_t index) { ++spans_[index].pages_read; }
  void AddPoolHit(int32_t index) { ++spans_[index].pool_hits; }

  /// Appends every span of `child` into this trace, re-rooting child roots
  /// (parent < 0) under `attach_parent` and shifting all other parent
  /// indices. Used by TraceHandoff to graft worker-thread span subtrees
  /// back into the coordinator's trace; the caller is responsible for
  /// serializing splices (TraceHandoff holds a mutex) and for making sure
  /// this trace is not concurrently being built on another thread.
  void SpliceChild(const Trace& child, int32_t attach_parent);

 private:
  static uint64_t NowNanos() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t id_;
  const IoStats* io_;  // Nullable; snapshotted per span when present.
  std::vector<SpanRecord> spans_;
  std::vector<IoStats> open_io_;  // Per-span IoStats snapshot at open.
};

/// RAII span. Construction is a no-op (one thread-local load and a branch)
/// when the thread has no ambient trace, so instrumentation points in hot
/// paths cost nothing while tracing is off.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return trace_ != nullptr; }

  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, const char* value);
  void Annotate(const char* key, int64_t value);
  void Annotate(const char* key, uint64_t value);
  void Annotate(const char* key, double value);

 private:
  Trace* trace_ = nullptr;
  int32_t index_ = -1;
  int32_t parent_ = -1;
};

/// RAII trace root. If the process tracer is enabled and the thread has no
/// ambient trace, starts a new trace (with `io` attached for per-span
/// IoStats deltas) and publishes it to the tracer's ring on destruction —
/// also feeding the slow-query log. If a trace is already ambient
/// (e.g. a query executed inside a traced refresh), degrades to a plain
/// child span. If the tracer is disabled, a complete no-op.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const IoStats* io = nullptr);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return trace_ != nullptr; }
  /// Id of the trace this scope writes into (0 when inactive).
  uint64_t trace_id() const;

  void Annotate(const char* key, const std::string& value);
  void Annotate(const char* key, int64_t value);
  void Annotate(const char* key, uint64_t value);

 private:
  std::unique_ptr<Trace> owned_;  // Set only when this scope started the trace.
  Trace* trace_ = nullptr;
  int32_t index_ = -1;
  int32_t parent_ = -1;
};

/// Explicit parent-handoff for spans built on worker threads. Spans use
/// the thread-local ambient, so work moved onto a pool thread would
/// silently detach from the trace that spawned it. The coordinating thread
/// constructs a TraceHandoff while its trace is ambient; each worker
/// enters a TraceHandoff::Adopt scope, which gives the worker a private
/// child trace (so span building stays single-threaded and lock-free) and,
/// when the scope closes, splices the child's spans back under the
/// coordinator's current span — serialized by the handoff's mutex.
///
/// The coordinator must not close the parent span (or destroy the parent
/// trace) until every adopting worker has exited its Adopt scope; in
/// practice it blocks joining the pool, which is exactly that barrier.
/// Page-read / pool-hit attribution on the worker lands in the child spans
/// and survives the splice; per-span IoStats deltas do not (the attached
/// IoStats is process-wide, so a per-worker delta would be noise anyway).
class TraceHandoff {
 public:
  /// Captures the calling thread's ambient trace and innermost span.
  /// Inactive (all Adopts become no-ops) when no trace is ambient.
  TraceHandoff();
  TraceHandoff(const TraceHandoff&) = delete;
  TraceHandoff& operator=(const TraceHandoff&) = delete;

  bool active() const { return parent_trace_ != nullptr; }

  /// RAII adoption of the handoff's trace on the current thread.
  class Adopt {
   public:
    explicit Adopt(TraceHandoff& handoff);
    ~Adopt();
    Adopt(const Adopt&) = delete;
    Adopt& operator=(const Adopt&) = delete;

   private:
    TraceHandoff* handoff_ = nullptr;
    std::unique_ptr<Trace> local_;
    trace_internal::AmbientTrace saved_;
  };

  /// Like Adopt, for pools whose parent thread KEEPS TRACING while the
  /// workers run (the sorter's background spills: the adding thread still
  /// opens spans and attributes page reads between Add calls). Splicing
  /// from the worker would then race with the parent thread's own span
  /// writes, so the closing Defer scope queues the finished child trace on
  /// the handoff instead; the parent thread grafts the queue in with
  /// SpliceQueued() after joining the workers.
  class Defer {
   public:
    explicit Defer(TraceHandoff& handoff);
    ~Defer();
    Defer(const Defer&) = delete;
    Defer& operator=(const Defer&) = delete;

   private:
    TraceHandoff* handoff_ = nullptr;
    std::unique_ptr<Trace> local_;
    trace_internal::AmbientTrace saved_;
  };

  /// Splices every queued child trace (closed Defer scopes) under the
  /// captured parent span. Must run on a thread where the parent trace is
  /// quiescent — in practice the thread that just joined the workers.
  void SpliceQueued() EXCLUDES(splice_mu_);

 private:
  Trace* parent_trace_ = nullptr;
  int32_t parent_span_ = -1;
  Mutex splice_mu_;
  std::vector<std::unique_ptr<Trace>> queued_ GUARDED_BY(splice_mu_);
};

/// Process-wide tracing control: the enable flag, the bounded ring buffer
/// of completed traces, the Chrome trace-event exporter, and the
/// slow-query log.
///
/// The ring holds its slots under a mutex taken only when a whole trace
/// completes (Publish) or is exported — never on the per-span hot path,
/// which stays a thread-local pointer chase. A mutex beats
/// std::atomic<shared_ptr> here: libstdc++'s _Sp_atomic is an internal
/// spinlock anyway (so not lock-free either), and its reader path unlocks
/// with relaxed ordering, which ThreadSanitizer correctly reports as a
/// data race against the writer's pointer swap.
///
/// Environment (read once, when Instance() first runs):
///   CUBETREE_TRACE=1              enable tracing at startup
///   CUBETREE_SLOW_QUERY_US=<n>    arm the slow-query log at n microseconds
///   CUBETREE_SLOW_QUERY_PATH=<p>  write slow-trace lines to a rotating
///                                 file at <p> instead of stderr (same
///                                 rotation policy as the query log)
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  /// The process-wide tracer. Tests may construct private instances, but
  /// TraceScope always publishes here.
  static Tracer& Instance();

  explicit Tracer(size_t capacity = kDefaultCapacity);
  ~Tracer();

  /// Disabled-tracer overhead is this one relaxed load (plus a branch) per
  /// would-be trace root.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  uint64_t NextTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Inserts a completed trace, evicting the oldest resident once the ring
  /// is full. Safe from any thread; the mutex is held only for the slot
  /// assignment.
  void Publish(std::shared_ptr<const Trace> trace) EXCLUDES(ring_mu_);

  /// The most recently published trace; nullptr when empty.
  std::shared_ptr<const Trace> LastTrace() const EXCLUDES(ring_mu_);

  /// Every resident trace, oldest first.
  std::vector<std::shared_ptr<const Trace>> AllTraces() const
      EXCLUDES(ring_mu_);

  void Clear() EXCLUDES(ring_mu_);
  size_t capacity() const { return capacity_; }

  /// {"displayTimeUnit": "ms", "traceEvents": [...]} over `traces` —
  /// loadable in Perfetto / chrome://tracing.
  static JsonValue ChromeTraceJson(
      const std::vector<std::shared_ptr<const Trace>>& traces);
  /// Convenience: ChromeTraceJson over the current ring contents.
  JsonValue ExportAllJson() const { return ChromeTraceJson(AllTraces()); }

  // --- Slow-query log ---------------------------------------------------
  /// Traces whose root span exceeds `us` microseconds emit one compact
  /// JSON line (the full span tree) to stderr when published. Negative
  /// disables (the default unless CUBETREE_SLOW_QUERY_US is set).
  void SetSlowTraceThresholdMicros(int64_t us) {
    slow_threshold_us_.store(us, std::memory_order_relaxed);
  }
  int64_t slow_trace_threshold_micros() const {
    return slow_threshold_us_.load(std::memory_order_relaxed);
  }
  /// Rate limit: at most one slow-trace line per interval; the next
  /// emitted line carries a "suppressed" count for the dropped ones.
  /// Reconfiguring restarts the current window, so a new interval takes
  /// effect at the next slow trace rather than after the old window.
  void SetSlowTraceLogIntervalMillis(int64_t ms) {
    slow_interval_us_.store(ms * 1000, std::memory_order_relaxed);
    slow_last_emit_us_.store(0, std::memory_order_relaxed);
  }
  /// Test hook: redirect slow-trace lines away from the file/stderr sinks.
  /// Pass nullptr to restore them.
  void SetSlowTraceSinkForTest(std::function<void(const std::string&)> sink);

  /// Routes slow-trace lines to a rotating file at `path` (empty path
  /// restores stderr). Rotation policy matches the query log: segments of
  /// `max_bytes`, `max_segments` rotated files retained.
  void SetSlowTraceFile(const std::string& path,
                        uint64_t max_bytes = 64ull << 20,
                        int max_segments = 4) EXCLUDES(sink_mu_);

  /// Called by ~TraceScope after Publish. Public for tests.
  void MaybeLogSlowTrace(const Trace& trace);

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  const size_t capacity_;
  mutable Mutex ring_mu_;
  uint64_t next_slot_ GUARDED_BY(ring_mu_) = 0;
  std::vector<std::shared_ptr<const Trace>> slots_ GUARDED_BY(ring_mu_);

  std::atomic<int64_t> slow_threshold_us_{-1};
  std::atomic<int64_t> slow_interval_us_{1000 * 1000};  // 1s default.
  std::atomic<uint64_t> slow_last_emit_us_{0};
  std::atomic<uint64_t> slow_suppressed_{0};
  Mutex sink_mu_;
  std::function<void(const std::string&)> sink_
      GUARDED_BY(sink_mu_);  // Empty = file sink (if set), else stderr.
  std::unique_ptr<RotatingFile> slow_file_ GUARDED_BY(sink_mu_);
  bool slow_file_warned_ GUARDED_BY(sink_mu_) = false;
};

/// Storage-layer attribution hooks: one thread-local load and a branch
/// when no trace is ambient. Called by PageManager::ReadPage (physical
/// read) and the BufferPool::Fetch hit path.
inline void NotePageRead() {
  const trace_internal::AmbientTrace& a = trace_internal::t_ambient;
  if (a.trace != nullptr) a.trace->AddPageRead(a.span);
  if (trace_internal::QueryCounters* q = trace_internal::t_query_counters;
      q != nullptr) {
    ++q->pages_read;
  }
}

inline void NotePoolHit() {
  const trace_internal::AmbientTrace& a = trace_internal::t_ambient;
  if (a.trace != nullptr) a.trace->AddPoolHit(a.span);
  if (trace_internal::QueryCounters* q = trace_internal::t_query_counters;
      q != nullptr) {
    ++q->pool_hits;
  }
}

/// The trace this thread is currently building, or nullptr.
inline Trace* CurrentTrace() { return trace_internal::t_ambient.trace; }

}  // namespace obs
}  // namespace cubetree

#endif  // CUBETREE_OBS_TRACE_H_
