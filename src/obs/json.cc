#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cubetree {
namespace obs {

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  members_.emplace_back(key, std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; degrade to null.
    *out += "null";
    return;
  }
  char buf[32];
  // Counters and byte totals are integral; print them exactly (doubles
  // hold integers exactly up to 2^53, far beyond any bench counter).
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  *out += buf;
}

void Newline(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += indent < 0 ? ":" : ": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser state over the input string.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos));
  }

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (text.compare(pos, n, word) == 0) {
      pos += n;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed
          // by anything we emit; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      *out = JsonValue::MakeObject();
      SkipSpace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipSpace();
        std::string key;
        CT_RETURN_NOT_OK(ParseString(&key));
        SkipSpace();
        if (!Consume(':')) return Fail("expected ':'");
        JsonValue value;
        CT_RETURN_NOT_OK(ParseValue(&value));
        out->Set(key, std::move(value));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      *out = JsonValue::MakeArray();
      SkipSpace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JsonValue value;
        CT_RETURN_NOT_OK(ParseValue(&value));
        out->Append(std::move(value));
        SkipSpace();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      CT_RETURN_NOT_OK(ParseString(&s));
      *out = JsonValue(std::move(s));
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::OK();
    }
    // Number.
    const char* begin = text.c_str() + pos;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    if (end == begin) return Fail("unexpected character");
    pos += static_cast<size_t>(end - begin);
    *out = JsonValue(d);
    return Status::OK();
  }
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser{text};
  JsonValue value;
  CT_RETURN_NOT_OK(parser.ParseValue(&value));
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing characters");
  }
  return value;
}

}  // namespace obs
}  // namespace cubetree
