#ifndef CUBETREE_BTREE_BTREE_H_
#define CUBETREE_BTREE_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Maximum number of uint32 components in a composite key.
inline constexpr size_t kMaxBTreeKeyParts = 8;

/// Configuration of one B+-tree file.
struct BTreeOptions {
  /// Number of uint32 components per key (1..kMaxBTreeKeyParts).
  uint8_t key_parts = 1;
  /// Fixed payload bytes stored with each leaf entry.
  uint32_t value_size = 8;
};

/// Disk-based B+-tree over composite little-endian uint32 keys, compared
/// lexicographically component by component. This is the secondary/covering
/// index of the paper's conventional configuration: entries are inserted one
/// at a time (random I/O through the buffer pool), or bottom-up bulk-built
/// from a sorted stream as a fair stand-in for CREATE INDEX.
///
/// Page 0 is a metadata page; leaves are chained left-to-right for range
/// scans.
class BPlusTree {
 public:
  static Result<std::unique_ptr<BPlusTree>> Create(
      const std::string& path, const BTreeOptions& options, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Opens an existing tree file, reading its options and shape from the
  /// metadata page (valid after Flush()). Used by the offline checker and
  /// by warm restarts.
  static Result<std::unique_ptr<BPlusTree>> Open(
      const std::string& path, BufferPool* pool,
      std::shared_ptr<IoStats> io_stats = nullptr);

  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, value). Fails with AlreadyExists if the key is present.
  Status Insert(const uint32_t* key, const char* value);

  /// Looks up `key`; if found copies value_size bytes into `value_out` (may
  /// be null to test existence only) and returns true.
  Result<bool> Lookup(const uint32_t* key, char* value_out);

  /// Overwrites the value of an existing key; NotFound if absent.
  Status Update(const uint32_t* key, const char* value);

  /// Bottom-up bulk build from entries in strictly ascending key order,
  /// filling leaves to `fill` fraction (1.0 = packed). The tree must be
  /// empty. Each call to `next` yields pointers to the key parts and the
  /// value, or sets them to null at end.
  class EntrySource {
   public:
    virtual ~EntrySource() = default;
    virtual Status Next(const uint32_t** key, const char** value) = 0;
  };
  Status BulkBuild(EntrySource* source, double fill = 1.0);

  /// In-order iterator over keys in [low, high] (inclusive, lexicographic).
  class Iterator {
   public:
    /// Sets *key/*value to the next entry or both to nullptr at end.
    Status Next(const uint32_t** key, const char** value);

   private:
    friend class BPlusTree;
    Iterator(BPlusTree* tree, std::vector<uint32_t> low,
             std::vector<uint32_t> high)
        : tree_(tree), low_(std::move(low)), high_(std::move(high)) {}

    BPlusTree* tree_;
    std::vector<uint32_t> low_;
    std::vector<uint32_t> high_;
    PageHandle handle_;
    uint16_t slot_ = 0;
    bool primed_ = false;
    bool done_ = false;
    std::vector<uint32_t> key_buf_;
    std::vector<char> value_buf_;
  };

  Iterator Scan(const uint32_t* low, const uint32_t* high);

  /// Flushes pool pages and the metadata page.
  Status Flush();

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  uint64_t FileSizeBytes() const { return file_->FileSizeBytes(); }
  const BTreeOptions& options() const { return options_; }
  PageManager* file() { return file_.get(); }

 private:
  struct SplitResult {
    std::vector<uint32_t> separator;  // First key routed to the new page.
    PageId new_page = kInvalidPageId;
  };

  BPlusTree(std::unique_ptr<PageManager> file, BTreeOptions options,
            BufferPool* pool);

  size_t KeyBytes() const { return options_.key_parts * sizeof(uint32_t); }
  size_t LeafEntryBytes() const { return KeyBytes() + options_.value_size; }
  size_t InternalEntryBytes() const { return KeyBytes() + sizeof(PageId); }
  uint16_t LeafCapacity() const;
  uint16_t InternalCapacity() const;

  int CompareKeys(const uint32_t* a, const uint32_t* b) const;

  Status InsertRecursive(PageId node, const uint32_t* key, const char* value,
                         std::optional<SplitResult>* split);
  Status WriteMeta();

  /// Descends to the leaf that would contain `key`; returns its page id.
  Result<PageId> FindLeaf(const uint32_t* key);

  std::unique_ptr<PageManager> file_;
  BTreeOptions options_;
  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;  // 1 = root is a leaf.
  uint64_t num_entries_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_BTREE_BTREE_H_
