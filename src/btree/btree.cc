#include "btree/btree.h"

#include <algorithm>
#include <cstring>

#include "btree/btree_node.h"
#include "common/assert.h"
#include "common/coding.h"

namespace cubetree {

namespace {

// Page layout lives in btree/btree_node.h, shared with the invariant
// checker; local aliases keep the call sites below unchanged.
constexpr size_t kNodeHeaderSize = kBTreeNodeHeaderSize;

bool NodeIsLeaf(const char* page) { return BNodeIsLeaf(page); }
void SetNodeIsLeaf(char* page, bool leaf) { BNodeSetIsLeaf(page, leaf); }
uint16_t NodeCount(const char* page) { return BNodeCount(page); }
void SetNodeCount(char* page, uint16_t count) { BNodeSetCount(page, count); }
PageId NodeLink(const char* page) { return BNodeLink(page); }
void SetNodeLink(char* page, PageId link) { BNodeSetLink(page, link); }

}  // namespace

BPlusTree::BPlusTree(std::unique_ptr<PageManager> file, BTreeOptions options,
                     BufferPool* pool)
    : file_(std::move(file)), options_(options), pool_(pool) {}

BPlusTree::~BPlusTree() {
  if (pool_ != nullptr) (void)pool_->DropFile(file_.get());
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(
    const std::string& path, const BTreeOptions& options, BufferPool* pool,
    std::shared_ptr<IoStats> io_stats) {
  if (options.key_parts == 0 || options.key_parts > kMaxBTreeKeyParts) {
    return Status::InvalidArgument("btree: key_parts out of range");
  }
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(std::move(file), options, pool));
  // Page 0: metadata. Page 1: initial (empty) root leaf.
  CT_ASSIGN_OR_RETURN(PageHandle meta, pool->New(tree->file_.get()));
  meta.Release();
  CT_ASSIGN_OR_RETURN(PageHandle root, pool->New(tree->file_.get()));
  SetNodeIsLeaf(root.data(), true);
  SetNodeCount(root.data(), 0);
  SetNodeLink(root.data(), kInvalidPageId);
  root.MarkDirty();
  tree->root_ = root.id();
  tree->height_ = 1;
  CT_RETURN_NOT_OK(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(
    const std::string& path, BufferPool* pool,
    std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Open(path, std::move(io_stats)));
  Page meta_page;
  CT_RETURN_NOT_OK(file->ReadPage(0, &meta_page));
  BTreeMeta meta;
  if (!BTreeReadMeta(meta_page.data, &meta)) {
    return Status::Corruption("btree: bad magic in " + path);
  }
  if (meta.key_parts == 0 || meta.key_parts > kMaxBTreeKeyParts) {
    return Status::Corruption("btree: key_parts out of range in " + path);
  }
  BTreeOptions options;
  options.key_parts = meta.key_parts;
  options.value_size = meta.value_size;
  auto tree = std::unique_ptr<BPlusTree>(
      new BPlusTree(std::move(file), options, pool));
  tree->root_ = meta.root;
  tree->height_ = meta.height;
  tree->num_entries_ = meta.num_entries;
  return tree;
}

uint16_t BPlusTree::LeafCapacity() const {
  return static_cast<uint16_t>((kPageSize - kNodeHeaderSize) /
                               LeafEntryBytes());
}

uint16_t BPlusTree::InternalCapacity() const {
  return static_cast<uint16_t>((kPageSize - kNodeHeaderSize) /
                               InternalEntryBytes());
}

int BPlusTree::CompareKeys(const uint32_t* a, const uint32_t* b) const {
  for (size_t i = 0; i < options_.key_parts; ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

namespace {

/// Reads the key stored at a raw entry pointer into an aligned buffer.
inline void LoadKey(const char* entry, uint32_t* out, size_t parts) {
  std::memcpy(out, entry, parts * sizeof(uint32_t));
}

}  // namespace

Status BPlusTree::WriteMeta() {
  CT_ASSIGN_OR_RETURN(PageHandle meta, pool_->Fetch(file_.get(), 0));
  BTreeMeta m;
  m.key_parts = options_.key_parts;
  m.value_size = options_.value_size;
  m.root = root_;
  m.height = height_;
  m.num_entries = num_entries_;
  BTreeWriteMeta(meta.data(), m);
  meta.MarkDirty();
  return Status::OK();
}

Result<PageId> BPlusTree::FindLeaf(const uint32_t* key) {
  PageId node = root_;
  uint32_t key_buf[kMaxBTreeKeyParts];
  while (true) {
    CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), node));
    const char* page = handle.data();
    if (NodeIsLeaf(page)) return node;
    const uint16_t count = NodeCount(page);
    // Children: [link, c1..c_count]; keys k1..k_count. Route to the last
    // child whose key is <= search key.
    PageId child = NodeLink(page);
    // Binary search for the last key <= search key.
    size_t lo = 0, hi = count;  // Invariant: keys[0..lo) <= key.
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const char* entry = page + kNodeHeaderSize + mid * InternalEntryBytes();
      LoadKey(entry, key_buf, options_.key_parts);
      if (CompareKeys(key_buf, key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) {
      const char* entry =
          page + kNodeHeaderSize + (lo - 1) * InternalEntryBytes();
      child = DecodeFixed32(entry + KeyBytes());
    }
    node = child;
  }
}

Status BPlusTree::InsertRecursive(PageId node_id, const uint32_t* key,
                                  const char* value,
                                  std::optional<SplitResult>* split) {
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), node_id));
  char* page = handle.data();
  uint32_t key_buf[kMaxBTreeKeyParts];

  if (NodeIsLeaf(page)) {
    const uint16_t count = NodeCount(page);
    CT_DCHECK(count <= LeafCapacity())
        << "corrupt leaf count in " << file_->path();
    const size_t entry_bytes = LeafEntryBytes();
    // Lower bound position for the new key.
    size_t lo = 0, hi = count;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      LoadKey(page + kNodeHeaderSize + mid * entry_bytes, key_buf,
              options_.key_parts);
      if (CompareKeys(key_buf, key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < count) {
      LoadKey(page + kNodeHeaderSize + lo * entry_bytes, key_buf,
              options_.key_parts);
      if (CompareKeys(key_buf, key) == 0) {
        return Status::AlreadyExists("btree: duplicate key");
      }
    }
    if (count < LeafCapacity()) {
      char* base = page + kNodeHeaderSize;
      std::memmove(base + (lo + 1) * entry_bytes, base + lo * entry_bytes,
                   (count - lo) * entry_bytes);
      std::memcpy(base + lo * entry_bytes, key, KeyBytes());
      std::memcpy(base + lo * entry_bytes + KeyBytes(), value,
                  options_.value_size);
      SetNodeCount(page, count + 1);
      handle.MarkDirty();
      return Status::OK();
    }
    // Split: assemble all count+1 entries, distribute half and half.
    std::vector<char> all(static_cast<size_t>(count + 1) * entry_bytes);
    char* base = page + kNodeHeaderSize;
    std::memcpy(all.data(), base, lo * entry_bytes);
    std::memcpy(all.data() + lo * entry_bytes, key, KeyBytes());
    std::memcpy(all.data() + lo * entry_bytes + KeyBytes(), value,
                options_.value_size);
    std::memcpy(all.data() + (lo + 1) * entry_bytes, base + lo * entry_bytes,
                (count - lo) * entry_bytes);
    const size_t total = count + 1;
    const size_t left = total / 2;
    const size_t right = total - left;

    CT_ASSIGN_OR_RETURN(PageHandle new_handle, pool_->New(file_.get()));
    char* new_page = new_handle.data();
    SetNodeIsLeaf(new_page, true);
    SetNodeCount(new_page, static_cast<uint16_t>(right));
    SetNodeLink(new_page, NodeLink(page));
    std::memcpy(new_page + kNodeHeaderSize, all.data() + left * entry_bytes,
                right * entry_bytes);
    new_handle.MarkDirty();

    SetNodeCount(page, static_cast<uint16_t>(left));
    SetNodeLink(page, new_handle.id());
    std::memcpy(base, all.data(), left * entry_bytes);
    handle.MarkDirty();

    SplitResult result;
    result.new_page = new_handle.id();
    result.separator.resize(options_.key_parts);
    LoadKey(all.data() + left * entry_bytes, result.separator.data(),
            options_.key_parts);
    *split = std::move(result);
    return Status::OK();
  }

  // Internal node: find child, recurse, absorb any child split.
  const uint16_t count = NodeCount(page);
  const size_t entry_bytes = InternalEntryBytes();
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    LoadKey(page + kNodeHeaderSize + mid * entry_bytes, key_buf,
            options_.key_parts);
    if (CompareKeys(key_buf, key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  PageId child = NodeLink(page);
  if (lo > 0) {
    child = DecodeFixed32(page + kNodeHeaderSize + (lo - 1) * entry_bytes +
                          KeyBytes());
  }
  // Release before recursing so deep trees do not pin a frame per level
  // beyond what the recursion needs; re-fetch after.
  handle.Release();

  std::optional<SplitResult> child_split;
  CT_RETURN_NOT_OK(InsertRecursive(child, key, value, &child_split));
  if (!child_split.has_value()) return Status::OK();

  CT_ASSIGN_OR_RETURN(handle, pool_->Fetch(file_.get(), node_id));
  page = handle.data();
  const uint16_t cur_count = NodeCount(page);
  // Insert (separator, new_page) at position `lo` (unchanged by the child
  // split: the separator belongs exactly where we descended).
  if (cur_count < InternalCapacity()) {
    char* base = page + kNodeHeaderSize;
    std::memmove(base + (lo + 1) * entry_bytes, base + lo * entry_bytes,
                 (cur_count - lo) * entry_bytes);
    std::memcpy(base + lo * entry_bytes, child_split->separator.data(),
                KeyBytes());
    EncodeFixed32(base + lo * entry_bytes + KeyBytes(),
                  child_split->new_page);
    SetNodeCount(page, cur_count + 1);
    handle.MarkDirty();
    return Status::OK();
  }
  // Internal split with key promotion.
  std::vector<char> all(static_cast<size_t>(cur_count + 1) * entry_bytes);
  char* base = page + kNodeHeaderSize;
  std::memcpy(all.data(), base, lo * entry_bytes);
  std::memcpy(all.data() + lo * entry_bytes, child_split->separator.data(),
              KeyBytes());
  EncodeFixed32(all.data() + lo * entry_bytes + KeyBytes(),
                child_split->new_page);
  std::memcpy(all.data() + (lo + 1) * entry_bytes, base + lo * entry_bytes,
              (cur_count - lo) * entry_bytes);
  const size_t total = cur_count + 1;
  const size_t mid = total / 2;  // Entry `mid` promotes.

  CT_ASSIGN_OR_RETURN(PageHandle new_handle, pool_->New(file_.get()));
  char* new_page = new_handle.data();
  SetNodeIsLeaf(new_page, false);
  const size_t right = total - mid - 1;
  SetNodeCount(new_page, static_cast<uint16_t>(right));
  // New node's leftmost child = promoted entry's child pointer.
  SetNodeLink(new_page,
              DecodeFixed32(all.data() + mid * entry_bytes + KeyBytes()));
  std::memcpy(new_page + kNodeHeaderSize,
              all.data() + (mid + 1) * entry_bytes, right * entry_bytes);
  new_handle.MarkDirty();

  SetNodeCount(page, static_cast<uint16_t>(mid));
  std::memcpy(base, all.data(), mid * entry_bytes);
  handle.MarkDirty();

  SplitResult result;
  result.new_page = new_handle.id();
  result.separator.resize(options_.key_parts);
  LoadKey(all.data() + mid * entry_bytes, result.separator.data(),
          options_.key_parts);
  *split = std::move(result);
  return Status::OK();
}

Status BPlusTree::Insert(const uint32_t* key, const char* value) {
  std::optional<SplitResult> split;
  CT_RETURN_NOT_OK(InsertRecursive(root_, key, value, &split));
  ++num_entries_;
  if (split.has_value()) {
    CT_ASSIGN_OR_RETURN(PageHandle new_root, pool_->New(file_.get()));
    char* page = new_root.data();
    SetNodeIsLeaf(page, false);
    SetNodeCount(page, 1);
    SetNodeLink(page, root_);
    char* entry = page + kNodeHeaderSize;
    std::memcpy(entry, split->separator.data(), KeyBytes());
    EncodeFixed32(entry + KeyBytes(), split->new_page);
    new_root.MarkDirty();
    root_ = new_root.id();
    ++height_;
  }
  return Status::OK();
}

Result<bool> BPlusTree::Lookup(const uint32_t* key, char* value_out) {
  CT_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), leaf_id));
  const char* page = handle.data();
  const uint16_t count = NodeCount(page);
  const size_t entry_bytes = LeafEntryBytes();
  uint32_t key_buf[kMaxBTreeKeyParts];
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    LoadKey(page + kNodeHeaderSize + mid * entry_bytes, key_buf,
            options_.key_parts);
    if (CompareKeys(key_buf, key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= count) return false;
  LoadKey(page + kNodeHeaderSize + lo * entry_bytes, key_buf,
          options_.key_parts);
  if (CompareKeys(key_buf, key) != 0) return false;
  if (value_out != nullptr) {
    std::memcpy(value_out,
                page + kNodeHeaderSize + lo * entry_bytes + KeyBytes(),
                options_.value_size);
  }
  return true;
}

Status BPlusTree::Update(const uint32_t* key, const char* value) {
  CT_ASSIGN_OR_RETURN(PageId leaf_id, FindLeaf(key));
  CT_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(file_.get(), leaf_id));
  char* page = handle.data();
  const uint16_t count = NodeCount(page);
  const size_t entry_bytes = LeafEntryBytes();
  uint32_t key_buf[kMaxBTreeKeyParts];
  size_t lo = 0, hi = count;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    LoadKey(page + kNodeHeaderSize + mid * entry_bytes, key_buf,
            options_.key_parts);
    if (CompareKeys(key_buf, key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < count) {
    LoadKey(page + kNodeHeaderSize + lo * entry_bytes, key_buf,
            options_.key_parts);
    if (CompareKeys(key_buf, key) == 0) {
      std::memcpy(page + kNodeHeaderSize + lo * entry_bytes + KeyBytes(),
                  value, options_.value_size);
      handle.MarkDirty();
      return Status::OK();
    }
  }
  return Status::NotFound("btree: key not present");
}

Status BPlusTree::BulkBuild(EntrySource* source, double fill) {
  if (num_entries_ != 0) {
    return Status::InvalidArgument("btree: BulkBuild requires empty tree");
  }
  fill = std::clamp(fill, 0.1, 1.0);
  const uint16_t leaf_target = std::max<uint16_t>(
      1, static_cast<uint16_t>(LeafCapacity() * fill));
  const uint16_t internal_target = std::max<uint16_t>(
      1, static_cast<uint16_t>(InternalCapacity() * fill));

  struct LevelEntry {
    std::vector<uint32_t> first_key;
    PageId page;
  };
  std::vector<LevelEntry> level;

  // Build the leaf level: pack entries in order.
  const size_t entry_bytes = LeafEntryBytes();
  PageHandle leaf;
  PageId prev_leaf = kInvalidPageId;
  uint16_t in_leaf = 0;
  uint64_t total = 0;
  uint32_t prev_key[kMaxBTreeKeyParts];
  bool have_prev = false;
  while (true) {
    const uint32_t* key = nullptr;
    const char* value = nullptr;
    CT_RETURN_NOT_OK(source->Next(&key, &value));
    if (key == nullptr) break;
    if (have_prev && CompareKeys(prev_key, key) >= 0) {
      return Status::InvalidArgument(
          "btree: BulkBuild input not strictly ascending");
    }
    std::memcpy(prev_key, key, KeyBytes());
    have_prev = true;
    if (!leaf.valid() || in_leaf == leaf_target) {
      if (leaf.valid()) {
        SetNodeCount(leaf.data(), in_leaf);
        prev_leaf = leaf.id();
        leaf.Release();
      }
      CT_ASSIGN_OR_RETURN(leaf, pool_->New(file_.get()));
      SetNodeIsLeaf(leaf.data(), true);
      SetNodeLink(leaf.data(), kInvalidPageId);
      leaf.MarkDirty();
      if (prev_leaf != kInvalidPageId) {
        CT_ASSIGN_OR_RETURN(PageHandle prev,
                            pool_->Fetch(file_.get(), prev_leaf));
        SetNodeLink(prev.data(), leaf.id());
        prev.MarkDirty();
      }
      in_leaf = 0;
      level.push_back(LevelEntry{
          std::vector<uint32_t>(key, key + options_.key_parts), leaf.id()});
    }
    char* dest = leaf.data() + kNodeHeaderSize +
                 static_cast<size_t>(in_leaf) * entry_bytes;
    std::memcpy(dest, key, KeyBytes());
    std::memcpy(dest + KeyBytes(), value, options_.value_size);
    ++in_leaf;
    ++total;
  }
  if (leaf.valid()) {
    SetNodeCount(leaf.data(), in_leaf);
    leaf.Release();
  }
  if (level.empty()) {
    num_entries_ = 0;
    return WriteMeta();
  }
  num_entries_ = total;
  height_ = 1;

  // Build internal levels until a single root remains.
  const size_t ientry_bytes = InternalEntryBytes();
  while (level.size() > 1) {
    std::vector<LevelEntry> next_level;
    size_t i = 0;
    while (i < level.size()) {
      // One node takes up to internal_target+1 children.
      const size_t children =
          std::min<size_t>(static_cast<size_t>(internal_target) + 1,
                           level.size() - i);
      CT_ASSIGN_OR_RETURN(PageHandle node, pool_->New(file_.get()));
      char* page = node.data();
      SetNodeIsLeaf(page, false);
      SetNodeLink(page, level[i].page);
      SetNodeCount(page, static_cast<uint16_t>(children - 1));
      for (size_t c = 1; c < children; ++c) {
        char* entry = page + kNodeHeaderSize + (c - 1) * ientry_bytes;
        std::memcpy(entry, level[i + c].first_key.data(), KeyBytes());
        EncodeFixed32(entry + KeyBytes(), level[i + c].page);
      }
      node.MarkDirty();
      next_level.push_back(LevelEntry{level[i].first_key, node.id()});
      i += children;
    }
    level.swap(next_level);
    ++height_;
  }
  root_ = level[0].page;
  return WriteMeta();
}

BPlusTree::Iterator BPlusTree::Scan(const uint32_t* low,
                                    const uint32_t* high) {
  return Iterator(this,
                  std::vector<uint32_t>(low, low + options_.key_parts),
                  std::vector<uint32_t>(high, high + options_.key_parts));
}

Status BPlusTree::Iterator::Next(const uint32_t** key, const char** value) {
  const size_t parts = tree_->options_.key_parts;
  const size_t entry_bytes = tree_->LeafEntryBytes();
  if (done_) {
    *key = nullptr;
    *value = nullptr;
    return Status::OK();
  }
  if (!primed_) {
    CT_ASSIGN_OR_RETURN(PageId leaf_id, tree_->FindLeaf(low_.data()));
    CT_ASSIGN_OR_RETURN(handle_,
                        tree_->pool_->Fetch(tree_->file_.get(), leaf_id));
    // Lower-bound within the leaf.
    const char* page = handle_.data();
    const uint16_t count = NodeCount(page);
    uint32_t key_buf[kMaxBTreeKeyParts];
    size_t lo = 0, hi = count;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      LoadKey(page + kNodeHeaderSize + mid * entry_bytes, key_buf, parts);
      if (tree_->CompareKeys(key_buf, low_.data()) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    slot_ = static_cast<uint16_t>(lo);
    key_buf_.resize(parts);
    value_buf_.resize(tree_->options_.value_size);
    primed_ = true;
  }
  while (true) {
    const char* page = handle_.data();
    const uint16_t count = NodeCount(page);
    if (slot_ < count) {
      const char* entry = page + kNodeHeaderSize + slot_ * entry_bytes;
      LoadKey(entry, key_buf_.data(), parts);
      if (tree_->CompareKeys(key_buf_.data(), high_.data()) > 0) {
        done_ = true;
        handle_.Release();
        *key = nullptr;
        *value = nullptr;
        return Status::OK();
      }
      std::memcpy(value_buf_.data(), entry + tree_->KeyBytes(),
                  tree_->options_.value_size);
      ++slot_;
      *key = key_buf_.data();
      *value = value_buf_.data();
      return Status::OK();
    }
    const PageId next = NodeLink(page);
    handle_.Release();
    if (next == kInvalidPageId) {
      done_ = true;
      *key = nullptr;
      *value = nullptr;
      return Status::OK();
    }
    CT_ASSIGN_OR_RETURN(handle_, tree_->pool_->Fetch(tree_->file_.get(), next));
    slot_ = 0;
  }
}

Status BPlusTree::Flush() {
  CT_RETURN_NOT_OK(WriteMeta());
  return pool_->FlushAll();
}

}  // namespace cubetree
