#ifndef CUBETREE_BTREE_BTREE_NODE_H_
#define CUBETREE_BTREE_BTREE_NODE_H_

#include <cstdint>
#include <cstring>

#include "common/coding.h"
#include "storage/page.h"

namespace cubetree {

// On-page layouts of B+-tree nodes, shared by the tree implementation and
// the offline invariant checker.
//
// Node header (8 bytes):
//   [0]    uint8  is_leaf
//   [1]    uint8  reserved
//   [2..3] uint16 entry count
//   [4..7] PageId next_leaf (leaves) / leftmost child (internal nodes)
//
// Meta page (page 0):
//   [0..3]   magic "CTBT"
//   [4]      uint8  key_parts
//   [8..11]  uint32 value_size
//   [12..15] PageId root
//   [16..19] uint32 height (1 = root is a leaf)
//   [20..27] uint64 num_entries

inline constexpr size_t kBTreeNodeHeaderSize = 8;
inline constexpr uint32_t kBTreeMetaMagic = 0x43544254;  // "CTBT"

inline bool BNodeIsLeaf(const char* page) { return page[0] != 0; }
inline void BNodeSetIsLeaf(char* page, bool leaf) { page[0] = leaf ? 1 : 0; }

inline uint16_t BNodeCount(const char* page) {
  uint16_t v;
  std::memcpy(&v, page + 2, sizeof(v));
  return v;
}
inline void BNodeSetCount(char* page, uint16_t count) {
  std::memcpy(page + 2, &count, sizeof(count));
}

inline PageId BNodeLink(const char* page) { return DecodeFixed32(page + 4); }
inline void BNodeSetLink(char* page, PageId link) {
  EncodeFixed32(page + 4, link);
}

inline size_t BTreeKeyBytes(uint8_t key_parts) {
  return static_cast<size_t>(key_parts) * sizeof(uint32_t);
}
inline size_t BTreeLeafEntryBytes(uint8_t key_parts, uint32_t value_size) {
  return BTreeKeyBytes(key_parts) + value_size;
}
inline size_t BTreeInternalEntryBytes(uint8_t key_parts) {
  return BTreeKeyBytes(key_parts) + sizeof(PageId);
}
inline uint16_t BTreeLeafCapacity(uint8_t key_parts, uint32_t value_size) {
  return static_cast<uint16_t>((kPageSize - kBTreeNodeHeaderSize) /
                               BTreeLeafEntryBytes(key_parts, value_size));
}
inline uint16_t BTreeInternalCapacity(uint8_t key_parts) {
  return static_cast<uint16_t>((kPageSize - kBTreeNodeHeaderSize) /
                               BTreeInternalEntryBytes(key_parts));
}

/// Decoded image of the B+-tree metadata page.
struct BTreeMeta {
  uint8_t key_parts = 0;
  uint32_t value_size = 0;
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  uint64_t num_entries = 0;
};

inline void BTreeWriteMeta(char* page, const BTreeMeta& meta) {
  EncodeFixed32(page, kBTreeMetaMagic);
  page[4] = static_cast<char>(meta.key_parts);
  EncodeFixed32(page + 8, meta.value_size);
  EncodeFixed32(page + 12, meta.root);
  EncodeFixed32(page + 16, meta.height);
  EncodeFixed64(page + 20, meta.num_entries);
}

/// Returns false if the magic does not match; otherwise decodes into *meta.
inline bool BTreeReadMeta(const char* page, BTreeMeta* meta) {
  if (DecodeFixed32(page) != kBTreeMetaMagic) return false;
  meta->key_parts = static_cast<uint8_t>(page[4]);
  meta->value_size = DecodeFixed32(page + 8);
  meta->root = DecodeFixed32(page + 12);
  meta->height = DecodeFixed32(page + 16);
  meta->num_entries = DecodeFixed64(page + 20);
  return true;
}

}  // namespace cubetree

#endif  // CUBETREE_BTREE_BTREE_NODE_H_
