#ifndef CUBETREE_ENGINE_WAL_H_
#define CUBETREE_ENGINE_WAL_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Minimal write-ahead log emulating the logging the relational engine
/// performs on the conventional configuration's insert/update path (IUS
/// logs every row touched by INSERT/UPDATE). Records are buffered into
/// pages and written sequentially; Force() flushes the partial page and
/// syncs, modeling a commit. The Cubetree Datablade's bulk loader and
/// merge-packer write fresh files and swap them in, so that path runs —
/// as its real counterpart did — without logging.
///
/// On-disk framing: each record is an 8-byte header (4-byte payload length,
/// 4-byte CRC-32C of the payload) followed by the payload. Headers never
/// span a page boundary — if fewer than 8 bytes remain in a page the tail
/// is zero-padded and the record starts on the next page (payloads may
/// still span pages). A zero length+CRC therefore unambiguously marks
/// padding, which also covers the tail of the partial page Force() writes.
class WriteAheadLog {
 public:
  /// Size of the per-record header (length + CRC).
  static constexpr size_t kRecordHeader = 8;

  static Result<std::unique_ptr<WriteAheadLog>> Create(
      const std::string& path, std::shared_ptr<IoStats> io_stats = nullptr);

  /// Appends one log record (a copy of the affected row image plus the
  /// framing header). Writes a page whenever one fills. `size` must be > 0
  /// (a zero length marks padding on disk).
  Status LogRecord(const char* data, size_t size);

  /// Commit: flush the current partial page (zero-padded) and fsync.
  Status Force();

  /// Summary of one replay pass over a log file.
  struct ReplayStats {
    uint64_t records = 0;
    uint64_t payload_bytes = 0;
    /// CRC-32C over the concatenation of all payloads, in order; two
    /// replays of the same log must agree (replay idempotence).
    uint32_t digest = 0;
    /// Tolerant replay only: true when the log ended in a torn record
    /// (crash mid-append). The records counted above are the longest valid
    /// prefix; `torn_bytes` is the length of the discarded tail, measured
    /// from the start of the first invalid record.
    bool torn = false;
    uint64_t torn_bytes = 0;
  };

  /// Reads the log at `path` front to back, verifying record framing and
  /// per-record CRCs, and invokes `apply` (if non-null) with each payload.
  /// Returns Corruption on a bad CRC, malformed length, nonzero padding or
  /// truncated payload. Only fully written pages are visible: records
  /// buffered but never Force()d are not replayed, matching the commit
  /// semantics of the writer.
  static Result<ReplayStats> Replay(
      const std::string& path,
      const std::function<void(const char* data, size_t size)>& apply =
          nullptr,
      std::shared_ptr<IoStats> io_stats = nullptr);

  /// Crash-recovery variant of Replay: recovers the longest valid prefix
  /// of the log and never reports torn framing as an error. A ragged file
  /// tail (crash mid-append left a non-page-aligned file) is read
  /// zero-padded, so records written fully before the cut are still
  /// replayed; the first invalid record (truncated payload, CRC mismatch,
  /// nonzero padding) ends the replay cleanly with `torn` set in the
  /// stats. Real I/O errors still propagate.
  static Result<ReplayStats> ReplayTolerant(
      const std::string& path,
      const std::function<void(const char* data, size_t size)>& apply =
          nullptr,
      std::shared_ptr<IoStats> io_stats = nullptr);

  uint64_t BytesLogged() const { return bytes_logged_; }
  uint64_t records() const { return records_; }

 private:
  explicit WriteAheadLog(std::unique_ptr<PageManager> file)
      : file_(std::move(file)) {
    page_.Zero();
  }

  std::unique_ptr<PageManager> file_;
  Page page_;
  size_t page_used_ = 0;
  uint64_t bytes_logged_ = 0;
  uint64_t records_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_WAL_H_
