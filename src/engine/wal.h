#ifndef CUBETREE_ENGINE_WAL_H_
#define CUBETREE_ENGINE_WAL_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_manager.h"

namespace cubetree {

/// Minimal write-ahead log emulating the logging the relational engine
/// performs on the conventional configuration's insert/update path (IUS
/// logs every row touched by INSERT/UPDATE). Records are buffered into
/// pages and written sequentially; Force() flushes the partial page and
/// syncs, modeling a commit. The Cubetree Datablade's bulk loader and
/// merge-packer write fresh files and swap them in, so that path runs —
/// as its real counterpart did — without logging.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Create(
      const std::string& path, std::shared_ptr<IoStats> io_stats = nullptr);

  /// Appends one log record (a copy of the affected row image plus a small
  /// header). Writes a page whenever one fills.
  Status LogRecord(const char* data, size_t size);

  /// Commit: flush the current partial page and fsync.
  Status Force();

  uint64_t BytesLogged() const { return bytes_logged_; }
  uint64_t records() const { return records_; }

 private:
  explicit WriteAheadLog(std::unique_ptr<PageManager> file)
      : file_(std::move(file)) {
    page_.Zero();
  }

  std::unique_ptr<PageManager> file_;
  Page page_;
  size_t page_used_ = 0;
  uint64_t bytes_logged_ = 0;
  uint64_t records_ = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_WAL_H_
