#include "engine/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace cubetree {

void AdmissionTicket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

AdmissionController::AdmissionController(Options options)
    : options_(options) {}

Status AdmissionController::ShedOrRejectLocked(uint64_t cost_hint) {
  // The queue is full. Someone must go, and it should be whoever loses
  // the least by retrying later — the cheapest request, incoming or
  // queued.
  auto cheapest = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->admitted || (*it)->shed) continue;
    if (cheapest == queue_.end() || (*it)->cost < (*cheapest)->cost) {
      cheapest = it;
    }
  }
  const uint64_t backlog =
      static_cast<uint64_t>(active_) + static_cast<uint64_t>(live_queued_);
  const std::string hint =
      "admission queue full (" + std::to_string(active_) + " active, " +
      std::to_string(live_queued_) + " queued); retry-after-ms=" +
      std::to_string(5 * (backlog + 1));
  if (cheapest == queue_.end() || (*cheapest)->cost >= cost_hint) {
    ++stats_.rejected;
    return Status::ResourceExhausted("query rejected: " + hint);
  }
  (*cheapest)->shed = true;
  --live_queued_;
  ++stats_.shed;
  cv_.NotifyAll();
  return Status::OK();
}

Result<AdmissionTicket> AdmissionController::Admit(uint64_t cost_hint,
                                                   const QueryContext* ctx) {
  MutexLock lock(mu_);
  // Depth checks use live_queued_, not queue_.size(): entries already
  // admitted or shed stay in queue_ until their thread wakes to unlink
  // itself, and those zombies must not count against max_queued (or
  // against the FIFO fast path — an admitted lingerer already holds its
  // slot via active_).
  if (active_ < options_.max_concurrent && live_queued_ == 0) {
    ++active_;
    ++stats_.admitted;
    return AdmissionTicket(this);
  }
  if (live_queued_ >= options_.max_queued) {
    CT_RETURN_NOT_OK(ShedOrRejectLocked(cost_hint));
  }
  Waiter self;
  self.cost = cost_hint;
  queue_.push_back(&self);
  ++live_queued_;
  auto leave_queue = [this, &self] { queue_.remove(&self); };
  while (!self.admitted && !self.shed) {
    if (ctx != nullptr) {
      const Status ctx_status = ctx->Check();
      if (!ctx_status.ok()) {
        --live_queued_;
        leave_queue();
        ++stats_.deadline_exits;
        return ctx_status;
      }
    }
    // Bounded waits double as a cancellation poll: Cancel() does not (and
    // cannot, from an arbitrary thread) signal this cv.
    auto poll = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(5);
    if (ctx != nullptr && ctx->has_deadline() && ctx->deadline() < poll) {
      poll = ctx->deadline();
    }
    cv_.WaitUntil(lock, poll);
  }
  leave_queue();
  if (self.shed) {
    const uint64_t backlog =
        static_cast<uint64_t>(active_) + static_cast<uint64_t>(live_queued_);
    return Status::ResourceExhausted(
        "query shed under overload; retry-after-ms=" +
        std::to_string(5 * (backlog + 1)));
  }
  // ReleaseSlot already transferred the slot to us and counted the
  // admission.
  return AdmissionTicket(this);
}

void AdmissionController::ReleaseSlot() {
  MutexLock lock(mu_);
  --active_;
  for (Waiter* waiter : queue_) {
    if (!waiter->admitted && !waiter->shed) {
      waiter->admitted = true;
      --live_queued_;
      ++active_;
      ++stats_.admitted;
      break;
    }
  }
  cv_.NotifyAll();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int AdmissionController::active() const {
  MutexLock lock(mu_);
  return active_;
}

int AdmissionController::queued() const {
  MutexLock lock(mu_);
  return live_queued_;
}

}  // namespace cubetree
