#ifndef CUBETREE_ENGINE_QUERY_PARSER_H_
#define CUBETREE_ENGINE_QUERY_PARSER_H_

#include <string>

#include "common/result.h"
#include "cubetree/view_def.h"
#include "olap/query_model.h"

namespace cubetree {

/// Aggregate function requested by a parsed query.
enum class AggFn { kSum, kCount, kAvg };

/// A parsed slice query plus the aggregate to report.
struct ParsedQuery {
  SliceQuery query;
  AggFn fn = AggFn::kSum;
};

/// Parses the small SQL dialect of the examples — the shape the paper's
/// Datablade exposes through IUS:
///
///   SELECT partkey, suppkey, SUM(quantity) FROM sales
///     WHERE custkey = 17 GROUP BY partkey, suppkey
///
/// Rules: the select list names the group-by attributes (it must match the
/// GROUP BY clause) plus exactly one aggregate SUM/COUNT/AVG over the
/// measure; WHERE may hold equality predicates on further attributes,
/// conjoined with AND. Attribute names resolve against `schema`. Keywords
/// are case-insensitive.
Result<ParsedQuery> ParseSliceQuery(const std::string& sql,
                                    const CubeSchema& schema);

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_QUERY_PARSER_H_
