#include "engine/degraded.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace cubetree {

namespace {

struct DegradedMetrics {
  obs::Gauge* read_only;
  obs::Counter* entered;
  obs::Counter* recovered;
  obs::Counter* refreshes_rejected;

  static const DegradedMetrics& Get() {
    static const DegradedMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return DegradedMetrics{reg.GetGauge("degraded.read_only"),
                             reg.GetCounter("degraded.entered"),
                             reg.GetCounter("degraded.recovered"),
                             reg.GetCounter("degraded.refreshes_rejected")};
    }();
    return m;
  }
};

}  // namespace

void DegradedModeController::OnWriteStatus(const Status& status) {
  if (!status.IsStorageFull()) return;
  Enter(status);
}

void DegradedModeController::Enter(const Status& cause) {
  {
    MutexLock lock(mu_);
    if (read_only_.load(std::memory_order_relaxed)) return;
    cause_ = cause.ToString();
    read_only_.store(true, std::memory_order_release);
  }
  DegradedMetrics::Get().read_only->Set(1);
  DegradedMetrics::Get().entered->Increment();
  CT_LOG(Warn) << "engine: entering degraded read-only mode: "
               << cause.ToString();
  if (on_mode_change_) on_mode_change_(true);
}

void DegradedModeController::Recover() {
  {
    MutexLock lock(mu_);
    if (!read_only_.load(std::memory_order_relaxed)) return;
    cause_.clear();
    read_only_.store(false, std::memory_order_release);
  }
  DegradedMetrics::Get().read_only->Set(0);
  DegradedMetrics::Get().recovered->Increment();
  CT_LOG(Info) << "engine: disk space recovered, leaving degraded "
                  "read-only mode";
  if (on_mode_change_) on_mode_change_(false);
}

Status DegradedModeController::AdmitWrite(uint64_t estimated_bytes) {
  if (!read_only()) return Status::OK();
  const uint64_t needed = estimated_bytes != 0
                              ? estimated_bytes
                              : options_.recovery_headroom_bytes;
  if (disk_.Preflight(needed).ok()) {
    Recover();
    return Status::OK();
  }
  DegradedMetrics::Get().refreshes_rejected->Increment();
  std::string cause;
  {
    MutexLock lock(mu_);
    cause = cause_;
  }
  return Status::StorageFull(
      "engine is in degraded read-only mode (" + cause +
      "); queries keep serving, retry the refresh after " +
      std::to_string(options_.retry_after_seconds) + "s");
}

bool DegradedModeController::ProbeAndMaybeRecover() {
  if (!read_only()) return true;
  if (disk_.Preflight(options_.recovery_headroom_bytes).ok()) {
    Recover();
    return true;
  }
  return false;
}

}  // namespace cubetree
