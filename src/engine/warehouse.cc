#include "engine/warehouse.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/timer.h"
#include "obs/trace.h"

namespace cubetree {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Warehouse>> Warehouse::Create(
    WarehouseOptions options) {
  auto warehouse = std::unique_ptr<Warehouse>(
      new Warehouse(std::move(options)));
  CT_RETURN_NOT_OK(warehouse->Init());
  return warehouse;
}

Status Warehouse::Init() {
  CT_RETURN_NOT_OK(EnsureDir(options_.dir));
  tpcd::TpcdOptions gen_options;
  gen_options.scale_factor = options_.scale_factor;
  gen_options.seed = options_.seed;
  generator_ = std::make_unique<tpcd::Generator>(gen_options);
  schema_ = generator_->MakeBaseSchema();

  lattice_ = std::make_unique<CubeLattice>(schema_);
  lattice_->EstimateRowCounts(generator_->NumBaseLineitems());
  // Catalog knowledge the Cardenas estimate cannot see: TPC-D associates
  // each part with exactly 4 suppliers, so the {partkey, suppkey} node has
  // ~4 x |part| groups (800k at SF=1), not the independent-draw estimate.
  CT_RETURN_NOT_OK(lattice_->SetRowCount(
      (1u << tpcd::kPartkey) | (1u << tpcd::kSuppkey),
      std::min<uint64_t>(4ull * generator_->sizes().parts,
                         generator_->NumBaseLineitems())));

  GreedyOptions greedy;
  greedy.max_structures = options_.max_structures;
  if (options_.paper_statistics) {
    // Select against the paper's SF=1 statistics so the configuration
    // matches the paper's experiment at any data scale.
    CubeSchema sf1 = schema_;
    sf1.attr_domains = {200000, 10000, 150000};
    CubeLattice selection_lattice(sf1);
    selection_lattice.EstimateRowCounts(6001215);
    CT_RETURN_NOT_OK(selection_lattice.SetRowCount(
        (1u << tpcd::kPartkey) | (1u << tpcd::kSuppkey), 800000));
    CT_ASSIGN_OR_RETURN(selection_, GreedySelect(selection_lattice, greedy));
  } else {
    CT_ASSIGN_OR_RETURN(selection_, GreedySelect(*lattice_, greedy));
  }

  // Cubetree configuration: selected views + one sort-order replica per
  // selected index whose order is not already covered. A Cubetree with
  // projection list (a,b,c) is packed in (c,b,a) order, so the replica for
  // index I{x,y,z} has the reversed projection list (z,y,x).
  cubetree_views_ = selection_.views;
  if (options_.replicate_top_view) {
    uint32_t next_replica_id = 1000;
    for (const IndexDef& index : selection_.indices) {
      std::vector<uint32_t> order(index.key_attrs.rbegin(),
                                  index.key_attrs.rend());
      bool covered = false;
      for (const ViewDef& view : cubetree_views_) {
        covered |= view.attrs == order;
      }
      if (covered) continue;
      ViewDef replica;
      replica.id = next_replica_id++;
      replica.attrs = std::move(order);
      cubetree_views_.push_back(std::move(replica));
    }
  }

  if (options_.scale_memory_with_sf) {
    options_.buffer_pool_pages = std::max<size_t>(
        64, static_cast<size_t>(options_.buffer_pool_pages *
                                options_.scale_factor));
    options_.sort_budget_bytes = std::max<size_t>(
        256u << 10, static_cast<size_t>(options_.sort_budget_bytes *
                                        options_.scale_factor));
  }
  conv_io_ = std::make_shared<IoStats>();
  cbt_io_ = std::make_shared<IoStats>();
  conv_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  cbt_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages);
  return Status::OK();
}

Result<std::unique_ptr<ComputedViews>> Warehouse::Compute(
    const std::vector<ViewDef>& views, FactProvider* facts,
    const std::string& tag, const std::shared_ptr<IoStats>& io) {
  CubeBuilder::Options builder_options;
  builder_options.temp_dir = options_.dir;
  builder_options.sort_budget_bytes = options_.sort_budget_bytes;
  builder_options.io_stats = io;
  CubeBuilder builder(schema_, builder_options);
  return builder.ComputeAll(views, facts, tag);
}

PhaseReport Warehouse::FinishPhase(const std::string& name, double seconds,
                                   const IoStats& before,
                                   const std::shared_ptr<IoStats>& io) const {
  PhaseReport report;
  report.phase = name;
  report.wall_seconds = seconds;
  report.io = *io - before;
  report.modeled_seconds = options_.disk.ModeledSeconds(report.io);
  return report;
}

Result<LoadReport> Warehouse::LoadConventional() {
  LoadReport report;
  auto facts = generator_->BaseFacts();

  IoStats before = *conv_io_;
  Timer timer;
  CT_ASSIGN_OR_RETURN(auto data,
                      Compute(selection_.views, facts.get(), "conv_base",
                              conv_io_));
  ConventionalEngine::Options engine_options;
  engine_options.dir = options_.dir;
  engine_options.name = "conv";
  engine_options.io_stats = conv_io_;
  engine_options.sort_budget_bytes = options_.sort_budget_bytes;
  CT_ASSIGN_OR_RETURN(conventional_, ConventionalEngine::Create(
                                         schema_, engine_options,
                                         conv_pool_.get()));
  CT_RETURN_NOT_OK(conventional_->LoadTables(selection_.views, data.get()));
  report.views =
      FinishPhase("conventional views", timer.ElapsedSeconds(), before,
                  conv_io_);

  before = *conv_io_;
  timer.Reset();
  CT_RETURN_NOT_OK(conventional_->BuildIndices(selection_.indices));
  report.indices =
      FinishPhase("conventional indices", timer.ElapsedSeconds(), before,
                  conv_io_);
  CT_RETURN_NOT_OK(data->Destroy());
  return report;
}

Result<LoadReport> Warehouse::LoadCubetrees() {
  LoadReport report;
  auto facts = generator_->BaseFacts();

  IoStats before = *cbt_io_;
  Timer timer;
  CT_ASSIGN_OR_RETURN(auto data,
                      Compute(cubetree_views_, facts.get(), "cbt_base",
                              cbt_io_));
  CubetreeEngine::Options engine_options;
  engine_options.dir = options_.dir;
  engine_options.name = "cbt";
  engine_options.io_stats = cbt_io_;
  CT_ASSIGN_OR_RETURN(cubetree_, CubetreeEngine::Create(
                                     schema_, engine_options,
                                     cbt_pool_.get()));
  CT_RETURN_NOT_OK(cubetree_->Load(cubetree_views_, data.get()));
  report.views = FinishPhase("cubetree load", timer.ElapsedSeconds(), before,
                             cbt_io_);
  report.indices.phase = "cubetree indices (none needed)";
  CT_RETURN_NOT_OK(data->Destroy());
  return report;
}

Result<PhaseReport> Warehouse::RecoverCubetrees(uint32_t increments_applied,
                                                ForestRecoveryReport* report) {
  ForestRecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  IoStats before = *cbt_io_;
  Timer timer;
  CubetreeEngine::Options engine_options;
  engine_options.dir = options_.dir;
  engine_options.name = "cbt";
  engine_options.io_stats = cbt_io_;
  CT_ASSIGN_OR_RETURN(cubetree_,
                      CubetreeEngine::Recover(schema_, engine_options,
                                              cbt_pool_.get(), report));
  if (cubetree_->forest()->HasQuarantine()) {
    // Fast path first: re-derive the lost views from surviving replicas /
    // superset views — no fact-table recomputation. Falls through to the
    // base-data rebuild when no healthy covering source survives.
    Status replica_repair = cubetree_->RepairFromReplicas();
    if (!replica_repair.ok() && !replica_repair.IsUnavailable()) {
      return replica_repair;
    }
  }
  if (cubetree_->forest()->HasQuarantine()) {
    // Rebuild the lost views from base data: recompute their contents over
    // everything the forest had absorbed before the crash.
    auto facts = increments_applied == 0
                     ? generator_->BaseFacts()
                     : generator_->FactsThroughIncrement(
                           options_.increment_fraction, increments_applied);
    CT_ASSIGN_OR_RETURN(auto data, Compute(cubetree_views_, facts.get(),
                                           "cbt_rebuild", cbt_io_));
    CT_RETURN_NOT_OK(cubetree_->RebuildQuarantined(data.get()));
    CT_RETURN_NOT_OK(data->Destroy());
  }
  return FinishPhase("cubetree recovery", timer.ElapsedSeconds(), before,
                     cbt_io_);
}

Result<PhaseReport> Warehouse::UpdateConventionalIncremental(
    uint32_t increment) {
  if (conventional_ == nullptr) {
    return Status::InvalidArgument("conventional configuration not loaded");
  }
  // The paper's footnote 7: the maintenance indexing exists before the
  // timed window.
  CT_RETURN_NOT_OK(conventional_->BuildMaintenanceIndices());

  auto facts =
      generator_->IncrementFacts(options_.increment_fraction, increment);
  IoStats before = *conv_io_;
  Timer timer;
  CT_ASSIGN_OR_RETURN(
      auto delta,
      Compute(selection_.views, facts.get(),
              "conv_inc" + std::to_string(increment), conv_io_));
  CT_RETURN_NOT_OK(conventional_->ApplyDeltaIncremental(delta.get()));
  PhaseReport report = FinishPhase("conventional incremental update",
                                   timer.ElapsedSeconds(), before, conv_io_);
  CT_RETURN_NOT_OK(delta->Destroy());
  return report;
}

Result<PhaseReport> Warehouse::UpdateConventionalRecompute(
    uint32_t increment) {
  if (conventional_ == nullptr) {
    return Status::InvalidArgument("conventional configuration not loaded");
  }
  auto facts = generator_->FactsThroughIncrement(options_.increment_fraction,
                                                 increment + 1);
  IoStats before = *conv_io_;
  Timer timer;
  CT_ASSIGN_OR_RETURN(
      auto data,
      Compute(selection_.views, facts.get(),
              "conv_full" + std::to_string(increment), conv_io_));
  CT_RETURN_NOT_OK(conventional_->Rebuild(data.get()));
  PhaseReport report = FinishPhase("conventional recompute",
                                   timer.ElapsedSeconds(), before, conv_io_);
  CT_RETURN_NOT_OK(data->Destroy());
  return report;
}

Result<PhaseReport> Warehouse::UpdateCubetreesPartial(uint32_t increment) {
  if (cubetree_ == nullptr) {
    return Status::InvalidArgument("cubetree configuration not loaded");
  }
  obs::TraceScope trace("refresh", cbt_io_.get());
  trace.Annotate("kind", "delta_tree");
  trace.Annotate("increment", static_cast<uint64_t>(increment));
  auto facts =
      generator_->IncrementFacts(options_.increment_fraction, increment);
  IoStats before = *cbt_io_;
  Timer timer;
  std::unique_ptr<ComputedViews> delta;
  {
    // Aggregation + external sort of the increment: the paper's "sort"
    // phase of a refresh.
    obs::Span sort_span("refresh.sort");
    CT_ASSIGN_OR_RETURN(
        delta, Compute(cubetree_views_, facts.get(),
                       "cbt_part" + std::to_string(increment), cbt_io_));
  }
  CT_RETURN_NOT_OK(cubetree_->ApplyDeltaPartial(delta.get()));
  PhaseReport report = FinishPhase("cubetree delta-tree update",
                                   timer.ElapsedSeconds(), before, cbt_io_);
  CT_RETURN_NOT_OK(delta->Destroy());
  return report;
}

Result<PhaseReport> Warehouse::CompactCubetrees() {
  if (cubetree_ == nullptr) {
    return Status::InvalidArgument("cubetree configuration not loaded");
  }
  IoStats before = *cbt_io_;
  Timer timer;
  CT_RETURN_NOT_OK(cubetree_->Compact());
  return FinishPhase("cubetree compaction", timer.ElapsedSeconds(), before,
                     cbt_io_);
}

Result<PhaseReport> Warehouse::UpdateCubetrees(uint32_t increment) {
  if (cubetree_ == nullptr) {
    return Status::InvalidArgument("cubetree configuration not loaded");
  }
  obs::TraceScope trace("refresh", cbt_io_.get());
  trace.Annotate("kind", "merge_pack");
  trace.Annotate("increment", static_cast<uint64_t>(increment));
  auto facts =
      generator_->IncrementFacts(options_.increment_fraction, increment);
  IoStats before = *cbt_io_;
  Timer timer;
  std::unique_ptr<ComputedViews> delta;
  {
    // Aggregation + external sort of the increment: the paper's "sort"
    // phase of a refresh.
    obs::Span sort_span("refresh.sort");
    CT_ASSIGN_OR_RETURN(
        delta, Compute(cubetree_views_, facts.get(),
                       "cbt_inc" + std::to_string(increment), cbt_io_));
  }
  CT_RETURN_NOT_OK(cubetree_->ApplyDelta(delta.get()));
  PhaseReport report = FinishPhase("cubetree merge-pack update",
                                   timer.ElapsedSeconds(), before, cbt_io_);
  CT_RETURN_NOT_OK(delta->Destroy());
  return report;
}

}  // namespace cubetree
