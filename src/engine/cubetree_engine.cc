#include "engine/cubetree_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "obs/workload.h"
#include "sort/external_sorter.h"

namespace cubetree {

namespace {

struct EngineMetrics {
  /// Success-only end-to-end latency: error outcomes land in their
  /// per-outcome counter below instead of skewing the distribution.
  obs::Histogram* query_latency_us;
  obs::Histogram* admission_wait_us;
  obs::Counter* queries;
  obs::Counter* pages_touched;
  obs::Counter* read_repair_reroutes;
  /// Typed query outcomes; `ok` + the rest partition engine.queries.
  obs::Counter* ok;
  obs::Counter* deadline;
  obs::Counter* cancelled;
  obs::Counter* shed;
  obs::Counter* degraded;
  obs::Counter* corruption_rerouted;
  obs::Counter* error;

  obs::Counter* ForOutcome(const char* outcome) const {
    if (std::strcmp(outcome, "ok") == 0) return ok;
    if (std::strcmp(outcome, "deadline") == 0) return deadline;
    if (std::strcmp(outcome, "cancelled") == 0) return cancelled;
    if (std::strcmp(outcome, "shed") == 0) return shed;
    if (std::strcmp(outcome, "degraded") == 0) return degraded;
    if (std::strcmp(outcome, "corruption_rerouted") == 0) {
      return corruption_rerouted;
    }
    return error;
  }

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return EngineMetrics{
          reg.GetHistogram("engine.query_latency_us"),
          reg.GetHistogram("engine.admission_wait_us"),
          reg.GetCounter("engine.queries"),
          reg.GetCounter("engine.pages_touched"),
          reg.GetCounter("engine.read_repair_reroutes"),
          reg.GetCounter("engine.queries.ok"),
          reg.GetCounter("engine.queries.deadline"),
          reg.GetCounter("engine.queries.cancelled"),
          reg.GetCounter("engine.queries.shed"),
          reg.GetCounter("engine.queries.degraded"),
          reg.GetCounter("engine.queries.corruption_rerouted"),
          reg.GetCounter("engine.queries.error")};
    }();
    return m;
  }
};

/// The typed outcome of a finished Execute. Success precedence:
/// corruption_rerouted (the answer needed a read-repair re-route) beats
/// degraded (a quarantined view was routed around) beats plain ok.
const char* OutcomeName(const Status& status, bool rerouted, bool degraded) {
  if (status.ok()) {
    if (rerouted) return "corruption_rerouted";
    if (degraded) return "degraded";
    return "ok";
  }
  if (status.IsDeadlineExceeded()) return "deadline";
  if (status.IsCancelled()) return "cancelled";
  if (status.IsResourceExhausted()) return "shed";
  return "error";
}

/// ViewDataProvider over per-view record buffers derived in memory ahead of
/// the rebuild (from healthy replicas / superset views), already sorted in
/// pack order.
class ReplicaRepairProvider : public CubetreeForest::ViewDataProvider {
 public:
  void Add(uint32_t view_id, std::vector<char> buffer, size_t record_size) {
    buffers_[view_id] = {std::move(buffer), record_size};
  }

  Result<std::unique_ptr<RecordStream>> OpenViewStream(
      const ViewDef& view) override {
    auto it = buffers_.find(view.id);
    if (it == buffers_.end()) {
      return Status::NotFound("replica repair: no derived data for view " +
                              std::to_string(view.id));
    }
    return std::unique_ptr<RecordStream>(std::make_unique<MemoryRecordStream>(
        it->second.first, it->second.second));
  }

 private:
  std::map<uint32_t, std::pair<std::vector<char>, size_t>> buffers_;
};

}  // namespace

Result<std::unique_ptr<CubetreeEngine>> CubetreeEngine::Create(
    const CubeSchema& schema, Options options, BufferPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("cubetree engine: pool required");
  }
  return std::unique_ptr<CubetreeEngine>(
      new CubetreeEngine(schema, std::move(options), pool));
}

Result<std::unique_ptr<CubetreeEngine>> CubetreeEngine::Recover(
    const CubeSchema& schema, Options options, BufferPool* pool,
    ForestRecoveryReport* report) {
  CT_ASSIGN_OR_RETURN(auto engine, Create(schema, std::move(options), pool));
  CubetreeForest::Options forest_options;
  forest_options.dir = engine->options_.dir;
  forest_options.name = engine->options_.name;
  forest_options.rtree = engine->options_.rtree;
  forest_options.one_tree_per_view = engine->options_.one_tree_per_view;
  forest_options.refresh_threads = engine->options_.refresh_threads;
  CT_ASSIGN_OR_RETURN(
      engine->forest_,
      CubetreeForest::Recover(forest_options, engine->pool_,
                              engine->options_.io_stats, report));
  // Row counts were derived from the spools at load time; after a crash
  // the spools are gone, so re-derive them from the trees themselves.
  CT_ASSIGN_OR_RETURN(engine->view_rows_,
                      engine->forest_->CountPointsPerView());
  return engine;
}

Status CubetreeEngine::RebuildQuarantined(ComputedViews* data) {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  CT_RETURN_NOT_OK(
      GatedWrite(EstimateRefreshBytes(0, data->EstimatedInputBytes(),
                                      forest_->RefreshConcurrency()),
                 [&] { return forest_->RebuildQuarantined(data); }));
  CT_ASSIGN_OR_RETURN(view_rows_, forest_->CountPointsPerView());
  return Status::OK();
}

Status CubetreeEngine::RepairFromReplicas() {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  if (!forest_->HasQuarantine()) return Status::OK();
  obs::Span repair_span("repair.replicas");
  ForestSnapshot snapshot = forest_->AcquireSnapshot();
  if (!snapshot.valid()) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  const std::vector<ViewDef>& views = forest_->views();
  ReplicaRepairProvider provider;
  size_t repaired_views = 0;
  for (const ViewDef& view : views) {
    if (!snapshot.IsViewQuarantined(view.id)) continue;
    // Source selection mirrors routing: the cheapest healthy view whose
    // attribute set covers the lost view's — a same-set replica rebuilds
    // 1:1, a superset re-aggregates down.
    const ViewDef* source = nullptr;
    uint64_t source_rows = 0;
    for (const ViewDef& cand : views) {
      if (cand.id == view.id || snapshot.IsViewQuarantined(cand.id)) continue;
      if (!cand.Covers(view.AttrMask())) continue;
      auto it = view_rows_.find(cand.id);
      const uint64_t rows =
          it == view_rows_.end() ? UINT64_MAX : std::max<uint64_t>(it->second, 1);
      if (source == nullptr || rows < source_rows) {
        source = &cand;
        source_rows = rows;
      }
    }
    if (source == nullptr) {
      return Status::Unavailable("replica repair: no healthy view covers " +
                                 view.Name(schema_));
    }
    // Position of each of the lost view's attrs inside the source's
    // projection list, for coordinate remapping.
    std::vector<size_t> pos(view.attrs.size(), 0);
    for (size_t i = 0; i < view.attrs.size(); ++i) {
      for (size_t j = 0; j < source->attrs.size(); ++j) {
        if (source->attrs[j] == view.attrs[i]) {
          pos[i] = j;
          break;
        }
      }
    }
    // Full-box scan of the source, re-aggregated into the lost view's
    // groups. The map's comparator IS pack order (last attr most
    // significant), so iteration yields records already sorted for the
    // bulk rebuild. Merge is required twice over: a superset view folds
    // many source tuples into one group, and QueryBox emits a key once per
    // tree (main + each pending delta).
    const uint8_t arity = view.arity();
    auto pack_less = [arity](const std::vector<Coord>& a,
                             const std::vector<Coord>& b) {
      for (size_t i = arity; i > 0; --i) {
        if (a[i - 1] != b[i - 1]) return a[i - 1] < b[i - 1];
      }
      return false;
    };
    std::map<std::vector<Coord>, AggValue, decltype(pack_less)> groups(
        pack_less);
    std::vector<std::pair<Coord, Coord>> intervals(source->arity(),
                                                   {1, kCoordMax});
    CT_ASSIGN_OR_RETURN(Cubetree * tree, snapshot.TreeForView(source->id));
    std::vector<Coord> key(view.attrs.size());
    CT_RETURN_NOT_OK(tree->QueryBox(
        source->id, intervals,
        [&](const Coord* coords, const AggValue& agg) {
          for (size_t i = 0; i < pos.size(); ++i) key[i] = coords[pos[i]];
          groups[key].Merge(agg);
        }));
    const size_t record_size = ViewRecordBytes(arity);
    std::vector<char> buffer(groups.size() * record_size);
    size_t off = 0;
    for (const auto& [group_key, agg] : groups) {
      EncodeViewRecord(buffer.data() + off, group_key.data(), arity, agg);
      off += record_size;
    }
    provider.Add(view.id, std::move(buffer), record_size);
    ++repaired_views;
  }
  if (repair_span.active()) {
    repair_span.Annotate("views", static_cast<uint64_t>(repaired_views));
  }
  // Drop the pin before the rebuild publishes new generations, so the
  // quarantined files it retires can be reclaimed promptly.
  snapshot.Release();
  CT_RETURN_NOT_OK(GatedWrite(
      0, [&] { return forest_->RebuildQuarantined(&provider); }));
  CT_ASSIGN_OR_RETURN(view_rows_, forest_->CountPointsPerView());
  static obs::Counter* const repairs =
      obs::MetricsRegistry::Instance().GetCounter("engine.replica_repairs");
  repairs->Increment();
  return Status::OK();
}

Status CubetreeEngine::Load(const std::vector<ViewDef>& views,
                            ComputedViews* data) {
  CubetreeForest::Options forest_options;
  forest_options.dir = options_.dir;
  forest_options.name = options_.name;
  forest_options.rtree = options_.rtree;
  forest_options.one_tree_per_view = options_.one_tree_per_view;
  forest_options.refresh_threads = options_.refresh_threads;
  CT_ASSIGN_OR_RETURN(forest_, CubetreeForest::Create(forest_options, pool_,
                                                      options_.io_stats));
  CT_RETURN_NOT_OK(forest_->Build(views, data));
  view_rows_.clear();
  for (const ViewDef& view : views) {
    CT_ASSIGN_OR_RETURN(uint64_t rows, data->row_count(view.id));
    view_rows_[view.id] = rows;
  }
  return Status::OK();
}

Status CubetreeEngine::GatedWrite(uint64_t estimated_bytes,
                                  const std::function<Status()>& write) {
  CT_RETURN_NOT_OK(degraded_.AdmitWrite(estimated_bytes));
  Status status = write();
  // A StorageFull that slipped past the preflight (the volume filled while
  // the refresh ran) flips the engine read-only; queries keep serving the
  // still-published epoch.
  degraded_.OnWriteStatus(status);
  return status;
}

Status CubetreeEngine::ApplyDelta(ComputedViews* delta) {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  // Per-view row counts are not tracked inside the trees after a merge;
  // the stale counts only influence the routing heuristic, which stays
  // stable under proportional growth.
  return GatedWrite(EstimateRefreshBytes(forest_->TotalSizeBytes(),
                                         delta->EstimatedInputBytes(),
                                         forest_->RefreshConcurrency()),
                    [&] { return forest_->ApplyDelta(delta); });
}

Status CubetreeEngine::ApplyDeltaPartial(ComputedViews* delta) {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  return GatedWrite(EstimateRefreshBytes(0, delta->EstimatedInputBytes(),
                                         forest_->RefreshConcurrency()),
                    [&] { return forest_->ApplyDeltaPartial(delta); });
}

Status CubetreeEngine::Compact() {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  return GatedWrite(EstimateRefreshBytes(forest_->TotalSizeBytes(), 0,
                                         forest_->RefreshConcurrency()),
                    [&] { return forest_->Compact(); });
}

double CubetreeEngine::EstimateCost(const ViewDef& view,
                                    const SliceQuery& query,
                                    uint64_t rows) const {
  // Selectivity of the query's constraint on `attr` (1 = unconstrained).
  auto selectivity = [&](uint32_t attr) -> double {
    for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
      if (query.attrs[qi] != attr || !query.AttrConstrained(qi)) continue;
      const auto [lo, hi] = query.AttrInterval(qi);
      const double domain =
          std::max<double>(1.0, schema_.attr_domains[attr]);
      const double span =
          std::min<double>(domain, static_cast<double>(hi) - lo + 1);
      return span / domain;
    }
    return 1.0;
  };
  double cost = static_cast<double>(std::max<uint64_t>(rows, 1));
  // Constrained attrs forming a suffix of the projection list are a
  // prefix of the packing sort order: full pruning at their selectivity.
  size_t i = view.attrs.size();
  while (i > 0 && selectivity(view.attrs[i - 1]) < 1.0) {
    cost *= selectivity(view.attrs[i - 1]);
    --i;
  }
  // Remaining constrained attrs still prune via MBR intersection, but
  // only partially; credit a modest constant factor each.
  for (size_t j = 0; j < i; ++j) {
    if (selectivity(view.attrs[j]) < 1.0) cost /= 2.0;
  }
  return std::max(cost, 1.0);
}

Result<QueryResult> CubetreeEngine::Execute(const SliceQuery& query,
                                            QueryExecStats* stats) {
  return Execute(query, stats, QueryContext::Current());
}

namespace {

/// Builds the durable per-query record from the finished Execute. Only
/// runs when a query log or profiler is attached, so none of the string
/// assembly here touches the default hot path.
obs::QueryLogRecord BuildQueryRecord(
    const CubeSchema& schema, const SliceQuery& query, const char* outcome,
    const CubetreeEngine::AttemptInfo& info,
    const obs::trace_internal::QueryCounters& pages, uint64_t latency_us,
    uint64_t trace_id) {
  obs::QueryLogRecord record;
  record.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  record.outcome = outcome;
  record.route = info.route;
  if (info.view != nullptr) {
    record.view = info.view->Name(schema);
    record.order.reserve(info.view->attrs.size());
    for (uint32_t attr : info.view->attrs) {
      record.order.push_back(schema.attr_names[attr]);
    }
  }
  record.attrs.reserve(query.attrs.size());
  for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
    const uint32_t attr = query.attrs[qi];
    obs::QueryLogAttr out;
    out.name = schema.attr_names[attr];
    out.domain = schema.attr_domains[attr];
    const auto [lo, hi] = query.AttrInterval(qi);
    out.lo = lo;
    out.hi = std::min<uint64_t>(hi, out.domain);
    out.bound = query.bindings[qi].has_value();
    out.grouped = query.IsGrouped(qi);
    record.attrs.push_back(std::move(out));
  }
  record.latency_us = latency_us;
  record.admission_wait_us = info.admission_wait_us;
  record.pages_read = pages.pages_read;
  record.pool_hits = pages.pool_hits;
  record.points_examined = info.points_examined;
  record.rows = info.rows;
  record.trace_id = trace_id;
  return record;
}

}  // namespace

Result<QueryResult> CubetreeEngine::Execute(const SliceQuery& query,
                                            QueryExecStats* stats,
                                            const QueryContext* ctx) {
  if (forest_ == nullptr) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  Timer query_timer;
  obs::TraceScope trace("query", options_.io_stats.get());
  trace.Annotate("engine", "cubetree");
  if (ctx != nullptr && trace.active()) ctx->set_trace_id(trace.trace_id());
  if (ctx != nullptr) CT_RETURN_NOT_OK(ctx->Check());

  // Per-query page accounting: a stack counter fed by the same storage
  // hooks as span attribution. Installing it is two thread-local stores —
  // no allocation — so it is unconditional.
  obs::trace_internal::QueryCounters page_counters;
  obs::QueryAccountingScope accounting_scope(&page_counters);

  // Read-repair retry loop. Each attempt routes against a freshly pinned
  // snapshot; a Corruption from the search quarantines the routed tree
  // (publishing a new epoch, so the next attempt's routing skips it) and
  // re-runs against the next-cheapest healthy covering view. Every retry
  // quarantines one more tree, so the number of views bounds the loop.
  Status first_corruption;
  bool rerouted = false;
  AttemptInfo info;
  std::optional<Result<QueryResult>> final_result;
  const size_t max_attempts = forest_->views().size() + 1;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    info = AttemptInfo();
    Result<QueryResult> result = ExecuteAttempt(query, stats, ctx, &info);
    if (result.ok()) {
      final_result = std::move(result);
      break;
    }
    if (result.status().IsCorruption()) {
      if (first_corruption.ok()) first_corruption = result.status();
      rerouted = true;
      EngineMetrics::Get().read_repair_reroutes->Increment();
      // Empty file_path: the engine saw the corruption through the routed
      // tree itself, no staleness to guard against.
      auto q = forest_->QuarantineForCorruption(info.routed_view, "",
                                               result.status());
      if (q.ok()) continue;  // Re-route (also when already quarantined).
      final_result = std::move(result);
      break;
    }
    if (result.status().IsNotFound() && !first_corruption.ok()) {
      // Routing ran dry because corruption quarantined the only covering
      // views; surface the typed root cause, not "no view".
      final_result = Result<QueryResult>(first_corruption);
      break;
    }
    final_result = std::move(result);
    break;
  }
  if (!final_result.has_value()) {
    // Loop exhausted: every attempt hit corruption; surface the first.
    final_result = Result<QueryResult>(
        first_corruption.ok()
            ? Status::Internal("cubetree engine: retry loop exhausted")
            : first_corruption);
  }

  const uint64_t latency_us = query_timer.ElapsedMicros();
  const char* outcome =
      OutcomeName(final_result->status(), rerouted, info.degraded);
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.ForOutcome(outcome)->Increment();
  if (final_result->ok()) metrics.query_latency_us->Record(latency_us);

  // Record assembly is gated on an attached consumer: with neither a query
  // log nor a profiler, the whole block is two pointer loads.
  obs::QueryLog* log = obs::QueryLog::Default();
  obs::WorkloadProfiler* profiler = obs::WorkloadProfiler::Default();
  if (log != nullptr || profiler != nullptr) {
    obs::QueryLogRecord record =
        BuildQueryRecord(schema_, query, outcome, info, page_counters,
                         latency_us, trace.trace_id());
    if (profiler != nullptr) profiler->Observe(record);
    if (log != nullptr) log->Append(std::move(record));
  }
  return std::move(*final_result);
}

Result<QueryResult> CubetreeEngine::ExecuteAttempt(const SliceQuery& query,
                                                   QueryExecStats* stats,
                                                   const QueryContext* ctx,
                                                   AttemptInfo* info) {
  // Pin one committed generation for the whole attempt. Concurrent
  // refreshes publish new generations; this one stays intact (retired
  // files included) until the snapshot is released on return.
  ForestSnapshot snapshot = forest_->AcquireSnapshot();
  if (!snapshot.valid()) {
    return Status::InvalidArgument("cubetree engine: not loaded");
  }
  // Route: cheapest covering view (replicas compete here too).
  const ViewDef* best = nullptr;
  double best_cost = 0;
  // Routing-family bookkeeping for the accounting record: whether a
  // covering view was quarantined out of contention (degraded service),
  // and the lowest view id sharing the query node's exact attribute set
  // (its family primary — routing to any other same-set member means a
  // replica sort order won).
  bool exact_family_seen = false;
  uint32_t exact_family_primary = 0;
  {
    obs::Span route_span("route");
    for (const ViewDef& view : forest_->views()) {
      if (!view.Covers(query.node_mask)) continue;
      // Graceful degradation after recovery: a quarantined view is out of
      // service, but a covering superset view (or replica) can still answer.
      if (snapshot.IsViewQuarantined(view.id)) {
        info->degraded = true;
        continue;
      }
      if (view.AttrMask() == query.node_mask &&
          (!exact_family_seen || view.id < exact_family_primary)) {
        exact_family_seen = true;
        exact_family_primary = view.id;
      }
      auto it = view_rows_.find(view.id);
      const uint64_t rows = it == view_rows_.end() ? 1 : it->second;
      const double cost = EstimateCost(view, query, rows);
      if (best == nullptr || cost < best_cost) {
        best = &view;
        best_cost = cost;
      }
    }
    if (best != nullptr && route_span.active()) {
      route_span.Annotate("view", best->Name(schema_));
      route_span.Annotate("estimated_cost", best_cost);
    }
  }
  if (best == nullptr) {
    return Status::NotFound("no materialized view answers this query");
  }
  info->routed_view = best->id;
  info->view = best;
  if (best->AttrMask() != query.node_mask) {
    info->route = "superset";
  } else {
    info->route = best->id == exact_family_primary ? "exact" : "replica";
  }

  // The routing estimate doubles as the admission cost hint: under
  // overload, the gate sheds the cheapest (least lost work) queries first.
  AdmissionTicket ticket;
  {
    // The span exists even without a gate so every query trace carries an
    // explicit admission phase (gate=none ≡ nothing to wait on).
    obs::Span admit_span("admission");
    if (options_.admission != nullptr) {
      Timer admit_timer;
      Result<AdmissionTicket> admitted =
          options_.admission->Admit(static_cast<uint64_t>(best_cost), ctx);
      // The wait is recorded whether or not the gate admitted: a shed or
      // deadline-expired query waited too, and hiding that wait from the
      // histogram would understate queueing under exactly the overload the
      // gate exists for.
      const uint64_t wait_us = admit_timer.ElapsedMicros();
      info->admission_wait_us = wait_us;
      EngineMetrics::Get().admission_wait_us->Record(wait_us);
      admit_span.Annotate("wait_us", wait_us);
      if (!admitted.ok()) return admitted.status();
      ticket = std::move(*admitted);
    } else {
      admit_span.Annotate("gate", "none");
    }
  }
  // Install the ambient context so BufferPool::Fetch / PageManager::ReadPage
  // check deadline + cancellation at page granularity for the whole scan.
  QueryContext::Scope context_scope(ctx);

  // Per-attribute intervals in the chosen view's projection order
  // (equality = degenerate interval, range = band, open = full).
  std::vector<std::pair<Coord, Coord>> intervals(
      best->arity(), {1, kCoordMax});
  for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
    for (size_t vi = 0; vi < best->attrs.size(); ++vi) {
      if (best->attrs[vi] == query.attrs[qi]) {
        intervals[vi] = query.AttrInterval(qi);
      }
    }
  }

  QueryResult result;
  for (size_t i = 0; i < query.attrs.size(); ++i) {
    if (query.IsGrouped(i)) {
      result.group_attrs.push_back(query.attrs[i]);
    }
  }
  // Positions (within the view) of the query's unbound attrs, in query
  // order, to build group keys.
  std::vector<size_t> group_positions;
  for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
    if (!query.IsGrouped(qi)) continue;
    for (size_t vi = 0; vi < best->attrs.size(); ++vi) {
      if (best->attrs[vi] == query.attrs[qi]) {
        group_positions.push_back(vi);
        break;
      }
    }
  }

  CT_ASSIGN_OR_RETURN(Cubetree * tree, snapshot.TreeForView(best->id));
  bool exact = best->AttrMask() == query.node_mask && !tree->HasDeltas();
  for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
    // A collapsed (ungrouped) attr without an equality binding folds
    // several points into one group: the direct path no longer applies.
    if (!query.IsGrouped(qi) && !query.bindings[qi].has_value()) {
      exact = false;
    }
  }
  SearchStats search_stats;
  {
    obs::Span search_span("search");
    if (exact) {
      // Every qualifying point is exactly one result group.
      CT_RETURN_NOT_OK(tree->QueryBox(
          best->id, intervals,
          [&](const Coord* coords, const AggValue& agg) {
            ResultRow row;
            row.group.reserve(group_positions.size());
            for (size_t pos : group_positions) row.group.push_back(coords[pos]);
            row.agg = agg;
            result.rows.push_back(std::move(row));
          },
          &search_stats));
    } else {
      // Superset view: re-aggregate over the extra attributes on the fly
      // (the paper's "additional aggregate step").
      std::map<std::vector<Coord>, AggValue> groups;
      std::vector<Coord> key;
      CT_RETURN_NOT_OK(tree->QueryBox(
          best->id, intervals,
          [&](const Coord* coords, const AggValue& agg) {
            key.clear();
            for (size_t pos : group_positions) key.push_back(coords[pos]);
            groups[key].Merge(agg);
          },
          &search_stats));
      for (auto& [key2, agg] : groups) {
        result.rows.push_back(ResultRow{key2, agg});
      }
    }
    if (search_span.active()) {
      search_span.Annotate("plan", exact ? "slice" : "reaggregate");
      search_span.Annotate("tuples", search_stats.points_examined);
      search_span.Annotate("rows", static_cast<uint64_t>(result.rows.size()));
    }
  }
  if (stats != nullptr) {
    stats->tuples_accessed += search_stats.points_examined;
    stats->pages_accessed +=
        search_stats.internal_pages + search_stats.leaf_pages;
    stats->plan = std::string(exact ? "cubetree slice " : "cubetree agg ") +
                  best->Name(schema_);
  }
  info->points_examined = search_stats.points_examined;
  info->rows = result.rows.size();
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.queries->Increment();
  metrics.pages_touched->Increment(search_stats.internal_pages +
                                   search_stats.leaf_pages);
  return result;
}

uint64_t CubetreeEngine::StorageBytes() const {
  return forest_ == nullptr ? 0 : forest_->TotalSizeBytes();
}

}  // namespace cubetree
