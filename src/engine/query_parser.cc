#include "engine/query_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace cubetree {

namespace {

enum class TokenKind { kIdent, kNumber, kComma, kLParen, kRParen, kEq, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifiers (lower-cased) and numbers.
  uint64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<Token> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    Token token;
    if (pos_ >= input_.size()) return token;
    const char c = input_[pos_];
    if (c == ',') {
      ++pos_;
      token.kind = TokenKind::kComma;
    } else if (c == '(') {
      ++pos_;
      token.kind = TokenKind::kLParen;
    } else if (c == ')') {
      ++pos_;
      token.kind = TokenKind::kRParen;
    } else if (c == '=') {
      ++pos_;
      token.kind = TokenKind::kEq;
    } else if (c == '*') {
      // Only valid as COUNT(*)'s argument; treated as an identifier.
      ++pos_;
      token.kind = TokenKind::kIdent;
      token.text = "*";
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      token.kind = TokenKind::kNumber;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        token.text += input_[pos_++];
      }
      token.number = std::stoull(token.text);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      token.kind = TokenKind::kIdent;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '.')) {
        token.text += static_cast<char>(
            std::tolower(static_cast<unsigned char>(input_[pos_])));
        ++pos_;
      }
    } else {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in query");
    }
    return token;
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const std::string& sql, const CubeSchema& schema)
      : lexer_(sql), schema_(&schema) {}

  Result<ParsedQuery> Parse() {
    CT_RETURN_NOT_OK(Advance());
    CT_RETURN_NOT_OK(ExpectKeyword("select"));

    ParsedQuery parsed;
    std::vector<uint32_t> select_attrs;
    bool saw_aggregate = false;
    // Select list: idents and one aggregate call.
    while (true) {
      if (current_.kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected column or aggregate");
      }
      const std::string name = current_.text;
      CT_RETURN_NOT_OK(Advance());
      if (current_.kind == TokenKind::kLParen) {
        if (saw_aggregate) {
          return Status::InvalidArgument("only one aggregate is supported");
        }
        if (name == "sum") {
          parsed.fn = AggFn::kSum;
        } else if (name == "count") {
          parsed.fn = AggFn::kCount;
        } else if (name == "avg") {
          parsed.fn = AggFn::kAvg;
        } else {
          return Status::InvalidArgument("unknown aggregate '" + name + "'");
        }
        CT_RETURN_NOT_OK(Advance());  // Consume '('.
        if (current_.kind != TokenKind::kIdent ||
            (current_.text != schema_->measure_name &&
             current_.text != "*")) {
          return Status::InvalidArgument(
              "aggregate must be over the measure '" +
              schema_->measure_name + "'");
        }
        CT_RETURN_NOT_OK(Advance());
        if (current_.kind != TokenKind::kRParen) {
          return Status::InvalidArgument("expected ')'");
        }
        CT_RETURN_NOT_OK(Advance());
        saw_aggregate = true;
      } else {
        CT_ASSIGN_OR_RETURN(uint32_t attr, ResolveAttr(name));
        select_attrs.push_back(attr);
      }
      if (current_.kind == TokenKind::kComma) {
        CT_RETURN_NOT_OK(Advance());
        continue;
      }
      break;
    }
    if (!saw_aggregate) {
      return Status::InvalidArgument("select list needs an aggregate");
    }
    CT_RETURN_NOT_OK(ExpectKeyword("from"));
    if (current_.kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected table name after FROM");
    }
    CT_RETURN_NOT_OK(Advance());

    // WHERE: conjunction of equality and BETWEEN predicates.
    std::vector<std::pair<uint32_t, Coord>> predicates;
    std::vector<std::pair<uint32_t, std::pair<Coord, Coord>>> range_preds;
    if (IsKeyword("where")) {
      CT_RETURN_NOT_OK(Advance());
      while (true) {
        if (current_.kind != TokenKind::kIdent) {
          return Status::InvalidArgument("expected attribute in WHERE");
        }
        CT_ASSIGN_OR_RETURN(uint32_t attr, ResolveAttr(current_.text));
        CT_RETURN_NOT_OK(Advance());
        if (current_.kind == TokenKind::kEq) {
          CT_RETURN_NOT_OK(Advance());
          if (current_.kind != TokenKind::kNumber) {
            return Status::InvalidArgument("expected key value");
          }
          predicates.emplace_back(attr, static_cast<Coord>(current_.number));
          CT_RETURN_NOT_OK(Advance());
        } else if (IsKeyword("between")) {
          CT_RETURN_NOT_OK(Advance());
          if (current_.kind != TokenKind::kNumber) {
            return Status::InvalidArgument("expected BETWEEN lower bound");
          }
          const Coord lo = static_cast<Coord>(current_.number);
          CT_RETURN_NOT_OK(Advance());
          CT_RETURN_NOT_OK(ExpectKeyword("and"));
          if (current_.kind != TokenKind::kNumber) {
            return Status::InvalidArgument("expected BETWEEN upper bound");
          }
          const Coord hi = static_cast<Coord>(current_.number);
          if (hi < lo) {
            return Status::InvalidArgument("empty BETWEEN interval");
          }
          range_preds.emplace_back(attr, std::make_pair(lo, hi));
          CT_RETURN_NOT_OK(Advance());
        } else {
          return Status::InvalidArgument(
              "only '=' and BETWEEN predicates are supported");
        }
        if (IsKeyword("and")) {
          CT_RETURN_NOT_OK(Advance());
          continue;
        }
        break;
      }
    }

    // GROUP BY must equal the non-aggregate select list.
    std::vector<uint32_t> group_attrs;
    if (IsKeyword("group")) {
      CT_RETURN_NOT_OK(Advance());
      CT_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        if (current_.kind != TokenKind::kIdent) {
          return Status::InvalidArgument("expected attribute in GROUP BY");
        }
        CT_ASSIGN_OR_RETURN(uint32_t attr, ResolveAttr(current_.text));
        group_attrs.push_back(attr);
        CT_RETURN_NOT_OK(Advance());
        if (current_.kind == TokenKind::kComma) {
          CT_RETURN_NOT_OK(Advance());
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kEnd) {
      return Status::InvalidArgument("unexpected trailing tokens");
    }
    if (group_attrs != select_attrs) {
      return Status::InvalidArgument(
          "GROUP BY must list exactly the selected attributes");
    }

    // Assemble the slice query: node = group attrs + predicate attrs, in
    // canonical ascending order. A range-restricted attribute may or may
    // not be grouped; an equality-bound one must not be.
    SliceQuery& query = parsed.query;
    std::vector<uint32_t> node_attrs = select_attrs;
    for (const auto& [attr, value] : predicates) {
      if (std::find(node_attrs.begin(), node_attrs.end(), attr) !=
          node_attrs.end()) {
        return Status::InvalidArgument(
            "attribute cannot be both grouped and bound");
      }
      node_attrs.push_back(attr);
    }
    for (const auto& [attr, interval] : range_preds) {
      if (std::find(node_attrs.begin(), node_attrs.end(), attr) ==
          node_attrs.end()) {
        node_attrs.push_back(attr);
      }
    }
    std::sort(node_attrs.begin(), node_attrs.end());
    query.attrs = node_attrs;
    query.node_mask = 0;
    for (uint32_t a : node_attrs) query.node_mask |= (1u << a);
    query.bindings.assign(node_attrs.size(), std::nullopt);
    query.ranges.assign(node_attrs.size(), std::nullopt);
    query.grouped.assign(node_attrs.size(), false);
    for (size_t i = 0; i < node_attrs.size(); ++i) {
      query.grouped[i] =
          std::find(select_attrs.begin(), select_attrs.end(),
                    node_attrs[i]) != select_attrs.end();
      for (const auto& [attr, value] : predicates) {
        if (node_attrs[i] == attr) query.bindings[i] = value;
      }
      for (const auto& [attr, interval] : range_preds) {
        if (node_attrs[i] == attr) query.ranges[i] = interval;
      }
    }
    return parsed;
  }

 private:
  Status Advance() {
    CT_ASSIGN_OR_RETURN(current_, lexer_.Next());
    return Status::OK();
  }

  bool IsKeyword(const std::string& word) const {
    return current_.kind == TokenKind::kIdent && current_.text == word;
  }

  Status ExpectKeyword(const std::string& word) {
    if (!IsKeyword(word)) {
      return Status::InvalidArgument("expected keyword '" + word + "'");
    }
    return Advance();
  }

  Result<uint32_t> ResolveAttr(const std::string& name) const {
    const int index = schema_->AttrIndex(name);
    if (index < 0) {
      return Status::InvalidArgument("unknown attribute '" + name + "'");
    }
    return static_cast<uint32_t>(index);
  }

  Lexer lexer_;
  const CubeSchema* schema_;
  Token current_;
};

}  // namespace

Result<ParsedQuery> ParseSliceQuery(const std::string& sql,
                                    const CubeSchema& schema) {
  Parser parser(sql, schema);
  return parser.Parse();
}

}  // namespace cubetree
