#ifndef CUBETREE_ENGINE_DIMENSIONS_H_
#define CUBETREE_ENGINE_DIMENSIONS_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "table/heap_table.h"
#include "tpcd/dbgen.h"

namespace cubetree {

/// The warehouse's dimension tables (Figure 1 of the paper): part,
/// supplier and customer heap tables with their descriptive attributes.
/// They are common to both storage organizations (the comparison is about
/// the aggregate views), but they make the system end-to-end real: query
/// results resolve key values back to names, and the part hierarchy
/// (partkey -> brand -> type) comes from here.
///
/// Dimension keys are dense (1..N), so a row is addressed in O(1) via
/// HeapTable::OrdinalToRowId — no index needed.
class DimensionTables {
 public:
  static Result<std::unique_ptr<DimensionTables>> Load(
      const std::string& dir, const tpcd::Generator& generator,
      BufferPool* pool, std::shared_ptr<IoStats> io_stats = nullptr);

  Result<tpcd::PartRow> GetPart(uint32_t partkey);
  Result<tpcd::SupplierRow> GetSupplier(uint32_t suppkey);
  Result<tpcd::CustomerRow> GetCustomer(uint32_t custkey);
  Result<tpcd::TimeRow> GetTime(uint32_t timekey);

  uint64_t TotalBytes() const {
    return part_->FileSizeBytes() + supplier_->FileSizeBytes() +
           customer_->FileSizeBytes() + time_->FileSizeBytes();
  }
  HeapTable* part_table() { return part_.get(); }
  HeapTable* supplier_table() { return supplier_.get(); }
  HeapTable* customer_table() { return customer_.get(); }
  HeapTable* time_table() { return time_.get(); }

 private:
  DimensionTables() = default;

  Result<RowId> RidFor(HeapTable* table, uint32_t key) const;

  Schema part_schema_;
  Schema supplier_schema_;
  Schema customer_schema_;
  Schema time_schema_;
  std::unique_ptr<HeapTable> part_;
  std::unique_ptr<HeapTable> supplier_;
  std::unique_ptr<HeapTable> customer_;
  std::unique_ptr<HeapTable> time_;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_DIMENSIONS_H_
