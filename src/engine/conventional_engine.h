#ifndef CUBETREE_ENGINE_CONVENTIONAL_ENGINE_H_
#define CUBETREE_ENGINE_CONVENTIONAL_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "cubetree/view_def.h"
#include "engine/view_store.h"
#include "engine/wal.h"
#include "olap/cube_builder.h"
#include "olap/selection.h"
#include "storage/buffer_pool.h"
#include "table/heap_table.h"
#include "table/schema.h"

namespace cubetree {

/// The paper's "conventional" configuration: every materialized view is a
/// relational heap table (attrs + SUM + COUNT columns), query acceleration
/// comes from composite-key B-trees whose entries point at heap rows, and
/// incremental maintenance touches one group row at a time through a
/// primary key index. This is a faithful stand-in for the IUS tables +
/// B-tree setup the paper measures against.
class ConventionalEngine : public ViewStore {
 public:
  struct Options {
    std::string dir = ".";
    std::string name = "conv";
    /// Shared physical-I/O accounting.
    std::shared_ptr<IoStats> io_stats;
    /// In-memory budget for index-build sorts.
    size_t sort_budget_bytes = 16u << 20;
    /// Optional process-wide memory budget shared with the buffer pool;
    /// index-build sorts reserve from it and spill earlier under pressure.
    MemoryBudget* memory_budget = nullptr;
    /// Log every inserted/updated row through a write-ahead log, as the
    /// relational engine the paper measured does on its SQL insert/update
    /// path. (The Cubetree bulk loader writes fresh files and swaps them,
    /// so its path carries no log — same as the real Datablade.)
    bool enable_wal = true;
    /// Slotted-page emulation: bytes a relational engine spends per heap
    /// row beyond the column data (row header + slot entry).
    uint32_t row_overhead_bytes = 8;
    /// Per-index-entry overhead (slot entry) and the default CREATE INDEX
    /// fill factor (IUS: FILLFACTOR 90).
    uint32_t index_entry_overhead_bytes = 4;
    double index_fill = 0.9;
  };

  static Result<std::unique_ptr<ConventionalEngine>> Create(
      const CubeSchema& schema, Options options, BufferPool* pool);

  ~ConventionalEngine() override;

  /// Materializes `views` from the computed spools (appending rows to fresh
  /// heap tables). Indices are built separately — see BuildIndices — so
  /// the two load phases can be timed apart, as in the paper's Table 6.
  Status LoadTables(const std::vector<ViewDef>& views, ComputedViews* data);

  /// Builds the selected secondary indices (CREATE INDEX equivalent:
  /// scan + external sort + bottom-up B-tree build).
  Status BuildIndices(const std::vector<IndexDef>& indices);

  /// Builds one primary-key B-tree per view (full group key -> RowId).
  /// These are the paper's footnote-7 "additional indexing" that makes
  /// per-tuple incremental maintenance possible at all.
  Status BuildMaintenanceIndices();

  /// Per-tuple incremental view maintenance (Table 7, row 1): for every
  /// delta group of every view, look up the existing row via the primary
  /// index and update it in place, or insert a new row and fix every index.
  Status ApplyDeltaIncremental(ComputedViews* delta);

  /// Recompute-from-scratch refresh (Table 7, row 2): drops all tables and
  /// indices and reloads from freshly computed full data.
  Status Rebuild(ComputedViews* full_data);

  Result<QueryResult> Execute(const SliceQuery& query,
                              QueryExecStats* stats) override;

  uint64_t StorageBytes() const override;
  uint64_t TableBytes() const;
  uint64_t IndexBytes() const;
  const std::vector<ViewDef>& views() const { return views_; }

 private:
  struct ViewState {
    ViewDef def;
    Schema table_schema;
    std::unique_ptr<HeapTable> table;
    /// Secondary (selected) indices: RowId payload.
    std::vector<std::pair<IndexDef, std::unique_ptr<BPlusTree>>> indices;
    /// Primary maintenance index on the full group key.
    std::unique_ptr<BPlusTree> primary;
    /// Row of the arity-0 view (which has no B-tree-indexable key).
    RowId scalar_row{kInvalidPageId, 0};
  };

  ConventionalEngine(const CubeSchema& schema, Options options,
                     BufferPool* pool)
      : schema_(schema), options_(std::move(options)), pool_(pool) {}

  Schema MakeTableSchema(const ViewDef& view) const;
  Status LoadOneTable(ViewState* state, ComputedViews* data);
  Status BuildOneIndex(ViewState* state, const IndexDef& def);
  Result<ViewState*> StateForView(uint32_t view_id);

  /// Chooses the cheapest (view, index-or-scan) plan for `query` using the
  /// GHRU tuple-cost model, then runs it.
  Status ExecuteScan(ViewState* state, const SliceQuery& query,
                     QueryResult* result, QueryExecStats* stats);
  Status ExecuteIndex(ViewState* state, size_t index_pos,
                      const SliceQuery& query, QueryResult* result,
                      QueryExecStats* stats);

  CubeSchema schema_;
  Options options_;
  BufferPool* pool_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::vector<ViewDef> views_;
  std::map<uint32_t, ViewState> states_;
  std::vector<IndexDef> selected_indices_;
  bool maintenance_ready_ = false;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_CONVENTIONAL_ENGINE_H_
