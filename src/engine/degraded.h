#ifndef CUBETREE_ENGINE_DEGRADED_H_
#define CUBETREE_ENGINE_DEGRADED_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_space.h"

namespace cubetree {

/// Disk-full circuit breaker for the serving engine. A write that surfaces
/// StorageFull flips the engine into degraded read-only mode: queries keep
/// serving off the published epoch, refreshes are rejected up front with a
/// retry-after hint instead of failing halfway through, and the scrubber's
/// repair callback is paused (rebuilding a tree writes a fresh generation,
/// which a full volume cannot take). Every admission attempt in degraded
/// mode re-probes the volume, so the engine recovers automatically — no
/// restart — as soon as space frees up.
///
/// The `degraded.read_only` gauge mirrors the mode (1 = read-only) for
/// operators; `degraded.entered` / `degraded.recovered` count transitions
/// and `degraded.refreshes_rejected` counts the writes turned away.
class DegradedModeController {
 public:
  struct Options {
    /// Directory whose volume the recovery probe examines.
    std::string dir = ".";
    /// Same reserve the refresh preflight honors.
    uint64_t reserve_bytes = DiskSpaceManager::ReserveBytesFromEnv();
    /// Seconds the rejection message tells callers to wait before retrying.
    uint64_t retry_after_seconds = 30;
    /// Usable bytes the recovery probe requires before leaving read-only
    /// mode when the caller supplies no size estimate of its own: a
    /// hysteresis margin so a few freed kilobytes do not flap the mode.
    uint64_t recovery_headroom_bytes = 4ull << 20;
  };

  explicit DegradedModeController(Options options)
      : options_(std::move(options)),
        disk_(DiskSpaceManager::Options{options_.dir,
                                        options_.reserve_bytes}) {}

  /// Write-path feedback: a StorageFull status enters degraded read-only
  /// mode (idempotent, recording the cause); anything else is ignored.
  void OnWriteStatus(const Status& status);

  /// Gate for mutating operations. OK in normal mode. In degraded mode the
  /// volume is probed first — room for `estimated_bytes` (or the recovery
  /// headroom when 0) recovers the engine and admits the write — otherwise
  /// the write is rejected with a typed StorageFull naming the original
  /// cause and a retry-after hint. Queries never pass through here.
  Status AdmitWrite(uint64_t estimated_bytes);

  /// The periodic recovery probe alone, with no write to admit. Returns
  /// true when the engine is in normal mode after the probe.
  bool ProbeAndMaybeRecover();

  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Invoked (outside any lock) on every mode transition with the new
  /// read_only value — the hook that pauses and resumes the scrubber's
  /// repair callback. Set once at wiring time, before writes can fail.
  void SetOnModeChange(std::function<void(bool read_only)> hook) {
    on_mode_change_ = std::move(hook);
  }

 private:
  void Enter(const Status& cause) EXCLUDES(mu_);
  void Recover() EXCLUDES(mu_);

  Options options_;
  DiskSpaceManager disk_;
  std::atomic<bool> read_only_{false};
  std::function<void(bool)> on_mode_change_;
  mutable Mutex mu_;
  /// Human-readable cause of the current degraded episode.
  std::string cause_ GUARDED_BY(mu_);
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_DEGRADED_H_
