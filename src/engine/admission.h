#ifndef CUBETREE_ENGINE_ADMISSION_H_
#define CUBETREE_ENGINE_ADMISSION_H_

#include <cstdint>
#include <list>

#include "common/query_context.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cubetree {

class AdmissionController;

/// RAII concurrency slot handed out by AdmissionController::Admit. The slot
/// is returned (and the next waiter woken) when the ticket is destroyed or
/// Release()d. Move-only; an invalid ticket releases nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }

  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool valid() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}

  AdmissionController* controller_ = nullptr;
};

/// Semaphore-style admission gate in front of query execution: at most
/// `max_concurrent` queries run at once, at most `max_queued` wait for a
/// slot, and everything beyond that is load-shed with a retriable
/// ResourceExhausted carrying a retry-after hint. Shedding evicts the
/// *cheapest* request first (by the caller-supplied cost hint): cheap
/// queries lose the least progress when retried, so under overload the
/// expensive scans the system has already committed to keep their place.
///
/// Waiting respects the ambient deadline/cancel semantics of the supplied
/// QueryContext: a queued query whose deadline expires leaves the queue
/// with DeadlineExceeded rather than occupying it until admitted.
class AdmissionController {
 public:
  struct Options {
    /// Queries running concurrently before new arrivals queue.
    int max_concurrent = 8;
    /// Bounded wait queue; arrivals beyond this shed load.
    int max_queued = 16;
  };

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;  // Queue full, this request was the cheapest.
    uint64_t shed = 0;      // Evicted from the queue by a pricier arrival.
    uint64_t deadline_exits = 0;  // Left the queue on deadline/cancel.
  };

  explicit AdmissionController(Options options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot is granted, the context expires, or the request
  /// is shed. `cost_hint` is the estimated execution cost (the engine
  /// passes its optimizer estimate); it only orders shedding, cheapest
  /// first. `ctx` may be nullptr for an uncancellable wait.
  Result<AdmissionTicket> Admit(uint64_t cost_hint, const QueryContext* ctx)
      EXCLUDES(mu_);

  Stats stats() const EXCLUDES(mu_);
  int active() const EXCLUDES(mu_);
  /// Effective queue depth: waiters that are neither admitted nor shed.
  int queued() const EXCLUDES(mu_);

 private:
  friend class AdmissionTicket;

  struct Waiter {
    uint64_t cost = 0;
    bool admitted = false;
    bool shed = false;
  };

  /// Returns a slot and hands it to the longest-waiting live waiter.
  void ReleaseSlot() EXCLUDES(mu_);
  Status ShedOrRejectLocked(uint64_t cost_hint) REQUIRES(mu_);

  const Options options_;
  mutable Mutex mu_;
  CondVar cv_;
  int active_ GUARDED_BY(mu_) = 0;
  /// FIFO for admission; shedding scans by cost.
  std::list<Waiter*> queue_ GUARDED_BY(mu_);
  /// Waiters that are neither admitted nor shed. Admitted/shed entries
  /// linger in queue_ until their thread wakes to remove them, so
  /// queue_.size() overstates pressure; all admission decisions and
  /// backlog hints use this effective depth instead.
  int live_queued_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_ADMISSION_H_
