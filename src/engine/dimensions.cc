#include "engine/dimensions.h"

namespace cubetree {

namespace {

Schema MakePartSchema() {
  return Schema({Schema::UInt32("partkey"), Schema::Char("name", 24),
                 Schema::UInt32("brand"), Schema::UInt32("type"),
                 Schema::UInt32("size"), Schema::Char("container", 12)});
}

Schema MakeSupplierSchema() {
  return Schema({Schema::UInt32("suppkey"), Schema::Char("name", 28),
                 Schema::Char("address", 16), Schema::Char("phone", 16)});
}

Schema MakeCustomerSchema() {
  return Schema({Schema::UInt32("custkey"), Schema::Char("name", 28),
                 Schema::Char("address", 16), Schema::Char("phone", 16)});
}

Schema MakeTimeSchema() {
  return Schema({Schema::UInt32("timekey"), Schema::UInt32("day"),
                 Schema::UInt32("month"), Schema::UInt32("year")});
}

}  // namespace

Result<std::unique_ptr<DimensionTables>> DimensionTables::Load(
    const std::string& dir, const tpcd::Generator& generator,
    BufferPool* pool, std::shared_ptr<IoStats> io_stats) {
  auto tables = std::unique_ptr<DimensionTables>(new DimensionTables());
  tables->part_schema_ = MakePartSchema();
  tables->supplier_schema_ = MakeSupplierSchema();
  tables->customer_schema_ = MakeCustomerSchema();

  CT_ASSIGN_OR_RETURN(
      tables->part_,
      HeapTable::Create(dir + "/dim_part.tbl", &tables->part_schema_, pool,
                        io_stats, /*row_overhead_bytes=*/8));
  for (uint32_t key = 1; key <= generator.sizes().parts; ++key) {
    const tpcd::PartRow row = generator.MakePart(key);
    RowBuffer buf(&tables->part_schema_);
    RowRef ref = buf.ref();
    ref.SetUInt32(0, row.partkey);
    ref.SetString(1, row.name);
    ref.SetUInt32(2, row.brand);
    ref.SetUInt32(3, row.type);
    ref.SetUInt32(4, row.size);
    ref.SetString(5, row.container);
    CT_RETURN_NOT_OK(tables->part_->Append(buf.data()).status());
  }

  CT_ASSIGN_OR_RETURN(
      tables->supplier_,
      HeapTable::Create(dir + "/dim_supplier.tbl",
                        &tables->supplier_schema_, pool, io_stats, 8));
  for (uint32_t key = 1; key <= generator.sizes().suppliers; ++key) {
    const tpcd::SupplierRow row = generator.MakeSupplier(key);
    RowBuffer buf(&tables->supplier_schema_);
    RowRef ref = buf.ref();
    ref.SetUInt32(0, row.suppkey);
    ref.SetString(1, row.name);
    ref.SetString(2, row.address);
    ref.SetString(3, row.phone);
    CT_RETURN_NOT_OK(tables->supplier_->Append(buf.data()).status());
  }

  CT_ASSIGN_OR_RETURN(
      tables->customer_,
      HeapTable::Create(dir + "/dim_customer.tbl",
                        &tables->customer_schema_, pool, io_stats, 8));
  for (uint32_t key = 1; key <= generator.sizes().customers; ++key) {
    const tpcd::CustomerRow row = generator.MakeCustomer(key);
    RowBuffer buf(&tables->customer_schema_);
    RowRef ref = buf.ref();
    ref.SetUInt32(0, row.custkey);
    ref.SetString(1, row.name);
    ref.SetString(2, row.address);
    ref.SetString(3, row.phone);
    CT_RETURN_NOT_OK(tables->customer_->Append(buf.data()).status());
  }
  tables->time_schema_ = MakeTimeSchema();
  CT_ASSIGN_OR_RETURN(
      tables->time_,
      HeapTable::Create(dir + "/dim_time.tbl", &tables->time_schema_, pool,
                        io_stats, 8));
  for (uint32_t key = 1; key <= tpcd::kNumTimekeys; ++key) {
    const tpcd::TimeRow row = tpcd::Generator::MakeTime(key);
    RowBuffer buf(&tables->time_schema_);
    RowRef ref = buf.ref();
    ref.SetUInt32(0, row.timekey);
    ref.SetUInt32(1, row.day);
    ref.SetUInt32(2, row.month);
    ref.SetUInt32(3, row.year);
    CT_RETURN_NOT_OK(tables->time_->Append(buf.data()).status());
  }
  CT_RETURN_NOT_OK(pool->FlushAll());
  return tables;
}

Result<tpcd::TimeRow> DimensionTables::GetTime(uint32_t timekey) {
  CT_ASSIGN_OR_RETURN(RowId rid, RidFor(time_.get(), timekey));
  std::vector<char> buf(time_schema_.row_size());
  CT_RETURN_NOT_OK(time_->Get(rid, buf.data()));
  RowRef ref(&time_schema_, buf.data());
  tpcd::TimeRow row;
  row.timekey = ref.GetUInt32(0);
  row.day = ref.GetUInt32(1);
  row.month = ref.GetUInt32(2);
  row.year = ref.GetUInt32(3);
  return row;
}

Result<RowId> DimensionTables::RidFor(HeapTable* table, uint32_t key) const {
  if (key == 0 || key > table->num_rows()) {
    return Status::NotFound("dimension key out of range");
  }
  return table->OrdinalToRowId(key - 1);
}

Result<tpcd::PartRow> DimensionTables::GetPart(uint32_t partkey) {
  CT_ASSIGN_OR_RETURN(RowId rid, RidFor(part_.get(), partkey));
  std::vector<char> buf(part_schema_.row_size());
  CT_RETURN_NOT_OK(part_->Get(rid, buf.data()));
  RowRef ref(&part_schema_, buf.data());
  tpcd::PartRow row;
  row.partkey = ref.GetUInt32(0);
  row.name = ref.GetString(1);
  row.brand = ref.GetUInt32(2);
  row.type = ref.GetUInt32(3);
  row.size = ref.GetUInt32(4);
  row.container = ref.GetString(5);
  return row;
}

Result<tpcd::SupplierRow> DimensionTables::GetSupplier(uint32_t suppkey) {
  CT_ASSIGN_OR_RETURN(RowId rid, RidFor(supplier_.get(), suppkey));
  std::vector<char> buf(supplier_schema_.row_size());
  CT_RETURN_NOT_OK(supplier_->Get(rid, buf.data()));
  RowRef ref(&supplier_schema_, buf.data());
  tpcd::SupplierRow row;
  row.suppkey = ref.GetUInt32(0);
  row.name = ref.GetString(1);
  row.address = ref.GetString(2);
  row.phone = ref.GetString(3);
  return row;
}

Result<tpcd::CustomerRow> DimensionTables::GetCustomer(uint32_t custkey) {
  CT_ASSIGN_OR_RETURN(RowId rid, RidFor(customer_.get(), custkey));
  std::vector<char> buf(customer_schema_.row_size());
  CT_RETURN_NOT_OK(customer_->Get(rid, buf.data()));
  RowRef ref(&customer_schema_, buf.data());
  tpcd::CustomerRow row;
  row.custkey = ref.GetUInt32(0);
  row.name = ref.GetString(1);
  row.address = ref.GetString(2);
  row.phone = ref.GetString(3);
  return row;
}

}  // namespace cubetree
