#ifndef CUBETREE_ENGINE_VIEW_STORE_H_
#define CUBETREE_ENGINE_VIEW_STORE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "olap/query_model.h"

namespace cubetree {

/// Execution counters of one query.
struct QueryExecStats {
  /// Tuples read from storage (view rows or index entries + row fetches).
  uint64_t tuples_accessed = 0;
  /// Logical pages touched (leaf/internal/heap), before buffer-pool caching.
  uint64_t pages_accessed = 0;
  /// Human-readable access path, e.g. "scan V{partkey,suppkey}" or
  /// "index I{custkey,suppkey,partkey} -> heap".
  std::string plan;
};

/// Common interface of the two storage organizations under comparison: the
/// conventional one (heap tables + B-trees) and the Cubetree forest. Both
/// materialize the same set of ROLAP views and answer the same slice
/// queries.
class ViewStore {
 public:
  virtual ~ViewStore() = default;

  /// Answers a slice query from the best materialized view available.
  virtual Result<QueryResult> Execute(const SliceQuery& query,
                                      QueryExecStats* stats) = 0;

  /// Total bytes of the organization (data + indexing).
  virtual uint64_t StorageBytes() const = 0;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_VIEW_STORE_H_
