#ifndef CUBETREE_ENGINE_CUBETREE_ENGINE_H_
#define CUBETREE_ENGINE_CUBETREE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "cubetree/forest.h"
#include "cubetree/view_def.h"
#include "engine/admission.h"
#include "engine/degraded.h"
#include "engine/view_store.h"
#include "olap/cube_builder.h"
#include "storage/buffer_pool.h"

namespace cubetree {

/// The paper's proposed configuration: all materialized views live in a
/// forest of packed, compressed R-trees planned by SelectMapping. Loading
/// is a sort + sequential pack; refresh is a merge-pack; queries are range
/// boxes over the index space. Sort-order replicas of a view (the
/// Datablade's replication feature) are simply additional ViewDefs with
/// permuted projection lists, routed to like any other view.
class CubetreeEngine : public ViewStore {
 public:
  struct Options {
    std::string dir = ".";
    std::string name = "cbt";
    RTreeOptions rtree;
    /// Ablation: bypass SelectMapping and give every view its own tree.
    bool one_tree_per_view = false;
    /// Refresh worker-pool width, forwarded to CubetreeForest::Options.
    /// 0 resolves from CUBETREE_REFRESH_THREADS / hardware_concurrency.
    unsigned refresh_threads = 0;
    std::shared_ptr<IoStats> io_stats;
    /// Optional admission gate every Execute passes through (caller-owned,
    /// shared across engines if desired). The routing cost estimate is the
    /// admission cost hint, so overload sheds the cheapest queries first.
    AdmissionController* admission = nullptr;
  };

  static Result<std::unique_ptr<CubetreeEngine>> Create(
      const CubeSchema& schema, Options options, BufferPool* pool);

  /// Reopens a persisted forest after an unclean shutdown via
  /// CubetreeForest::Recover and re-derives the router's per-view row
  /// counts by scanning the surviving trees. Views whose tree was
  /// quarantined are skipped by the router (queries fall back to a
  /// covering superset view when one survives) until RebuildQuarantined
  /// restores them.
  static Result<std::unique_ptr<CubetreeEngine>> Recover(
      const CubeSchema& schema, Options options, BufferPool* pool,
      ForestRecoveryReport* report = nullptr);

  /// Rebuilds every quarantined tree from recomputed view contents (the
  /// same spool set Load consumes) and refreshes the router statistics.
  Status RebuildQuarantined(ComputedViews* data);

  /// Rebuilds every quarantined tree from the surviving healthy views
  /// instead of recomputed base data: each quarantined view is re-derived
  /// by scanning the cheapest healthy covering view (typically its sort
  /// order replica — same tuples, different physical order — or a superset
  /// view re-aggregated down). No access to the fact table is needed, so
  /// this is the fast path after a corruption quarantine. Unavailable when
  /// some quarantined view has no healthy covering source; the forest is
  /// left unchanged in that case and the caller falls back to
  /// RebuildQuarantined with recomputed base data.
  Status RepairFromReplicas();

  /// Plans and bulk-builds the forest from the computed view spools.
  /// `views` must include any replicas, and `data` must have spools for all
  /// of them.
  Status Load(const std::vector<ViewDef>& views, ComputedViews* data);

  /// Bulk-incremental refresh by merge-packing every tree with the sorted
  /// delta spools (pending delta trees are folded in too).
  Status ApplyDelta(ComputedViews* delta);

  /// Fast refresh extension: packs the increment into small delta trees
  /// (refresh cost ~ increment size); queries search them alongside the
  /// mains until Compact() merge-packs everything.
  Status ApplyDeltaPartial(ComputedViews* delta);

  /// Folds all pending delta trees into the main trees.
  Status Compact();

  /// Executes under the ambient QueryContext (QueryContext::Current()), if
  /// any. Safe to call from many threads concurrently with ApplyDelta /
  /// Compact refreshes: each call pins one forest generation snapshot, so
  /// it sees entirely-pre- or entirely-post-refresh state, never a mix.
  Result<QueryResult> Execute(const SliceQuery& query,
                              QueryExecStats* stats) override;

  /// Execute under an explicit query session: `ctx` carries the deadline
  /// and cancellation token (checked at page-read granularity inside the
  /// storage layer) and is also respected while queued at the admission
  /// gate. `ctx` may be nullptr.
  ///
  /// Read-repair: when the search surfaces Corruption (a checksum mismatch
  /// that survived the storage layer's re-reads), the affected tree is
  /// quarantined and the query transparently re-routes to the next-cheapest
  /// healthy covering view — a replica or superset — against a fresh
  /// snapshot. Only when no healthy route remains does the caller see the
  /// typed Corruption; a wrong answer is never returned silently.
  Result<QueryResult> Execute(const SliceQuery& query, QueryExecStats* stats,
                              const QueryContext* ctx);

  uint64_t StorageBytes() const override;
  CubetreeForest* forest() { return forest_.get(); }

  /// Disk-full circuit breaker. Every mutator above passes through it:
  /// after a StorageFull the engine serves queries read-only, rejects
  /// refreshes with a retry-after hint, and recovers automatically when a
  /// probe sees usable space again. Wire its SetOnModeChange hook to the
  /// scrubber's SetRepairPaused so repairs pause while read-only.
  DegradedModeController* degraded() { return &degraded_; }

  /// Per-attempt accounting, filled by ExecuteAttempt whether it succeeds
  /// or fails: which view served (or would have served) the query — so the
  /// retry loop in Execute can quarantine it on Corruption — plus what the
  /// attempt cost, for the query-log record. Strings are avoided here so a
  /// failed/disabled path allocates nothing; `route` is a literal.
  struct AttemptInfo {
    uint32_t routed_view = 0;
    const ViewDef* view = nullptr;  // Into forest_->views(); may be null.
    const char* route = "none";     // exact | replica | superset | none.
    uint64_t admission_wait_us = 0;
    uint64_t points_examined = 0;
    uint64_t rows = 0;
    /// A covering view was skipped during routing because it is
    /// quarantined: the answer is correct but served by a fallback route.
    bool degraded = false;
  };

 private:
  CubetreeEngine(const CubeSchema& schema, Options options, BufferPool* pool)
      : schema_(schema),
        options_(std::move(options)),
        pool_(pool),
        degraded_(DegradedModeController::Options{options_.dir}) {}

  /// Shared mutator gate: admit through the degraded-mode controller, run
  /// the refresh, and feed its outcome back (a StorageFull flips the
  /// engine read-only).
  Status GatedWrite(uint64_t estimated_bytes,
                    const std::function<Status()>& write);

  /// Estimated tuples touched answering `query` from `view`: the packing
  /// sort order is (last attr, ..., first attr), so predicates binding a
  /// suffix of the projection list prune contiguous leaf ranges; other
  /// bound attrs prune partially via MBRs.
  double EstimateCost(const ViewDef& view, const SliceQuery& query,
                      uint64_t rows) const;

  /// One routing + search attempt against a freshly pinned snapshot.
  Result<QueryResult> ExecuteAttempt(const SliceQuery& query,
                                     QueryExecStats* stats,
                                     const QueryContext* ctx,
                                     AttemptInfo* info);

  CubeSchema schema_;
  Options options_;
  BufferPool* pool_;
  DegradedModeController degraded_;
  std::unique_ptr<CubetreeForest> forest_;
  std::map<uint32_t, uint64_t> view_rows_;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_CUBETREE_ENGINE_H_
