#include "engine/conventional_engine.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/coding.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"

namespace cubetree {

namespace {

/// Positions of `attrs` (schema attribute indices) inside a view's
/// projection list. Fails if the view does not project one of them.
Result<std::vector<size_t>> PositionsInView(const ViewDef& view,
                                            const std::vector<uint32_t>& attrs) {
  std::vector<size_t> positions;
  positions.reserve(attrs.size());
  for (uint32_t attr : attrs) {
    size_t pos = view.attrs.size();
    for (size_t i = 0; i < view.attrs.size(); ++i) {
      if (view.attrs[i] == attr) {
        pos = i;
        break;
      }
    }
    if (pos == view.attrs.size()) {
      return Status::Internal("attribute not projected by view");
    }
    positions.push_back(pos);
  }
  return positions;
}

/// EntrySource over a sorted stream of (composite key, RowId) records. The
/// emitted value is the 8-byte encoded RowId zero-padded to the index's
/// value width (the pad models the slot-entry overhead).
class SortedIndexEntrySource : public BPlusTree::EntrySource {
 public:
  SortedIndexEntrySource(RecordStream* stream, size_t key_parts,
                         size_t value_size)
      : stream_(stream), key_parts_(key_parts), key_(key_parts),
        value_(value_size, '\0') {}

  Status Next(const uint32_t** key, const char** value) override {
    const char* record = nullptr;
    CT_RETURN_NOT_OK(stream_->Next(&record));
    if (record == nullptr) {
      *key = nullptr;
      *value = nullptr;
      return Status::OK();
    }
    for (size_t i = 0; i < key_parts_; ++i) {
      key_[i] = DecodeFixed32(record + i * sizeof(uint32_t));
    }
    std::memcpy(value_.data(), record + key_parts_ * sizeof(uint32_t),
                sizeof(uint64_t));
    *key = key_.data();
    *value = value_.data();
    return Status::OK();
  }

 private:
  RecordStream* stream_;
  size_t key_parts_;
  std::vector<uint32_t> key_;
  std::vector<char> value_;
};

}  // namespace

ConventionalEngine::~ConventionalEngine() = default;

Result<std::unique_ptr<ConventionalEngine>> ConventionalEngine::Create(
    const CubeSchema& schema, Options options, BufferPool* pool) {
  if (pool == nullptr) {
    return Status::InvalidArgument("conventional engine: pool required");
  }
  auto engine = std::unique_ptr<ConventionalEngine>(
      new ConventionalEngine(schema, std::move(options), pool));
  engine->options_.index_entry_overhead_bytes =
      std::min<uint32_t>(8, engine->options_.index_entry_overhead_bytes);
  if (engine->options_.enable_wal) {
    CT_ASSIGN_OR_RETURN(
        engine->wal_,
        WriteAheadLog::Create(engine->options_.dir + "/" +
                                  engine->options_.name + ".wal",
                              engine->options_.io_stats));
  }
  return engine;
}

Schema ConventionalEngine::MakeTableSchema(const ViewDef& view) const {
  std::vector<Column> columns;
  for (uint32_t attr : view.attrs) {
    columns.push_back(Schema::UInt32(schema_.attr_names[attr]));
  }
  columns.push_back(Schema::Int64("sum_" + schema_.measure_name));
  columns.push_back(Schema::UInt32("cnt"));
  return Schema(std::move(columns));
}

Status ConventionalEngine::LoadOneTable(ViewState* state,
                                        ComputedViews* data) {
  const ViewDef& view = state->def;
  const std::string path = options_.dir + "/" + options_.name + "_v" +
                           std::to_string(view.id) + ".tbl";
  CT_ASSIGN_OR_RETURN(state->table,
                      HeapTable::Create(path, &state->table_schema, pool_,
                                        options_.io_stats,
                                        options_.row_overhead_bytes));
  CT_ASSIGN_OR_RETURN(auto stream, data->OpenViewStream(view));
  const uint8_t arity = view.arity();
  RowBuffer row(&state->table_schema);
  Coord coords[kMaxDims];
  AggValue agg;
  const char* record = nullptr;
  while (true) {
    CT_RETURN_NOT_OK(stream->Next(&record));
    if (record == nullptr) break;
    DecodeViewRecord(record, arity, coords, &agg);
    RowRef ref = row.ref();
    for (size_t i = 0; i < arity; ++i) ref.SetUInt32(i, coords[i]);
    ref.SetInt64(arity, agg.sum);
    ref.SetUInt32(arity + 1, agg.count);
    if (wal_ != nullptr) {
      CT_RETURN_NOT_OK(wal_->LogRecord(row.data(), row.size()));
    }
    CT_ASSIGN_OR_RETURN(RowId rid, state->table->Append(row.data()));
    if (arity == 0) state->scalar_row = rid;
  }
  if (wal_ != nullptr) {
    CT_RETURN_NOT_OK(wal_->Force());  // Commit the view's load transaction.
  }
  return state->table->Flush();
}

Status ConventionalEngine::LoadTables(const std::vector<ViewDef>& views,
                                      ComputedViews* data) {
  states_.clear();
  views_ = views;
  selected_indices_.clear();
  maintenance_ready_ = false;
  for (const ViewDef& view : views_) {
    ViewState& state = states_[view.id];
    state.def = view;
    state.table_schema = MakeTableSchema(view);
    CT_RETURN_NOT_OK(LoadOneTable(&state, data));
  }
  return Status::OK();
}

Status ConventionalEngine::BuildOneIndex(ViewState* state,
                                         const IndexDef& def) {
  const size_t key_parts = def.key_attrs.size();
  if (key_parts == 0 || key_parts > kMaxBTreeKeyParts) {
    return Status::InvalidArgument("index: unsupported key arity");
  }
  CT_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      PositionsInView(state->def, def.key_attrs));

  // CREATE INDEX: scan the table, sort (key, rid) entries, build bottom-up.
  const size_t record_bytes = key_parts * sizeof(uint32_t) + sizeof(uint64_t);
  ExternalSorter::Options sort_options;
  sort_options.record_size = record_bytes;
  sort_options.memory_budget_bytes = options_.sort_budget_bytes;
  sort_options.temp_dir = options_.dir;
  sort_options.io_stats = options_.io_stats;
  sort_options.process_budget = options_.memory_budget;
  // Compare decoded components: the on-record encoding is little-endian,
  // so memcmp would not give numeric order.
  ExternalSorter sorter(
      sort_options, [key_parts](const char* a, const char* b) {
        for (size_t i = 0; i < key_parts; ++i) {
          const uint32_t ka = DecodeFixed32(a + i * sizeof(uint32_t));
          const uint32_t kb = DecodeFixed32(b + i * sizeof(uint32_t));
          if (ka != kb) return ka < kb;
        }
        return false;
      });

  HeapTable::Iterator it = state->table->Scan();
  std::vector<char> record(record_bytes);
  const char* row = nullptr;
  while (true) {
    CT_RETURN_NOT_OK(it.Next(&row));
    if (row == nullptr) break;
    RowRef ref(&state->table_schema, const_cast<char*>(row));
    for (size_t i = 0; i < key_parts; ++i) {
      EncodeFixed32(record.data() + i * sizeof(uint32_t),
                    ref.GetUInt32(positions[i]));
    }
    EncodeFixed64(record.data() + key_parts * sizeof(uint32_t),
                  it.current_rid().Encode());
    CT_RETURN_NOT_OK(sorter.Add(record.data()));
  }
  CT_ASSIGN_OR_RETURN(auto sorted, sorter.Finish());

  BTreeOptions tree_options;
  tree_options.key_parts = static_cast<uint8_t>(key_parts);
  // Slot-entry overhead rides in the value so leaf capacity matches what a
  // slotted index page holds.
  tree_options.value_size =
      sizeof(uint64_t) + options_.index_entry_overhead_bytes;
  const std::string path = options_.dir + "/" + options_.name + "_i" +
                           std::to_string(def.id) + "_v" +
                           std::to_string(def.view_id) + ".idx";
  CT_ASSIGN_OR_RETURN(auto tree, BPlusTree::Create(path, tree_options, pool_,
                                                   options_.io_stats));
  SortedIndexEntrySource source(sorted.get(), key_parts,
                                tree_options.value_size);
  CT_RETURN_NOT_OK(tree->BulkBuild(&source, options_.index_fill));
  CT_RETURN_NOT_OK(tree->Flush());
  state->indices.emplace_back(def, std::move(tree));
  return Status::OK();
}

Status ConventionalEngine::BuildIndices(
    const std::vector<IndexDef>& indices) {
  for (const IndexDef& def : indices) {
    CT_ASSIGN_OR_RETURN(ViewState * state, StateForView(def.view_id));
    CT_RETURN_NOT_OK(BuildOneIndex(state, def));
    selected_indices_.push_back(def);
  }
  return Status::OK();
}

Status ConventionalEngine::BuildMaintenanceIndices() {
  uint32_t next_id = 1000;  // Distinct id space from selected indices.
  for (auto& [view_id, state] : states_) {
    if (state.primary != nullptr || state.def.arity() == 0) continue;
    IndexDef def;
    def.id = next_id++;
    def.view_id = view_id;
    def.key_attrs = state.def.attrs;
    // Reuse the bulk path, then move the built tree into the primary slot.
    CT_RETURN_NOT_OK(BuildOneIndex(&state, def));
    state.primary = std::move(state.indices.back().second);
    state.indices.pop_back();
  }
  maintenance_ready_ = true;
  return Status::OK();
}

Status ConventionalEngine::ApplyDeltaIncremental(ComputedViews* delta) {
  if (!maintenance_ready_) {
    return Status::InvalidArgument(
        "conventional engine: call BuildMaintenanceIndices first");
  }
  for (const ViewDef& view : views_) {
    CT_ASSIGN_OR_RETURN(ViewState * state, StateForView(view.id));
    CT_ASSIGN_OR_RETURN(auto stream, delta->OpenViewStream(view));
    const uint8_t arity = view.arity();
    Coord coords[kMaxDims];
    AggValue agg;
    RowBuffer row(&state->table_schema);
    std::vector<char> existing(state->table_schema.row_size());
    const char* record = nullptr;
    // Sized for the RowId plus the slot-overhead pad the indices carry.
    char rid_value[sizeof(uint64_t) + 8] = {0};
    while (true) {
      CT_RETURN_NOT_OK(stream->Next(&record));
      if (record == nullptr) break;
      DecodeViewRecord(record, arity, coords, &agg);

      if (arity == 0) {
        CT_RETURN_NOT_OK(state->table->Get(state->scalar_row,
                                           existing.data()));
        RowRef ref(&state->table_schema, existing.data());
        ref.SetInt64(0, ref.GetInt64(0) + agg.sum);
        ref.SetUInt32(1, ref.GetUInt32(1) + agg.count);
        if (wal_ != nullptr) {
          CT_RETURN_NOT_OK(wal_->LogRecord(existing.data(),
                                           existing.size()));
        }
        CT_RETURN_NOT_OK(state->table->Update(state->scalar_row,
                                              existing.data()));
        continue;
      }

      // One-at-a-time: look up the group row via the primary index.
      CT_ASSIGN_OR_RETURN(bool found,
                          state->primary->Lookup(coords, rid_value));
      if (found) {
        const RowId rid = RowId::Decode(DecodeFixed64(rid_value));
        CT_RETURN_NOT_OK(state->table->Get(rid, existing.data()));
        RowRef ref(&state->table_schema, existing.data());
        ref.SetInt64(arity, ref.GetInt64(arity) + agg.sum);
        ref.SetUInt32(arity + 1, ref.GetUInt32(arity + 1) + agg.count);
        if (wal_ != nullptr) {
          CT_RETURN_NOT_OK(wal_->LogRecord(existing.data(),
                                           existing.size()));
        }
        CT_RETURN_NOT_OK(state->table->Update(rid, existing.data()));
      } else {
        RowRef ref = row.ref();
        for (size_t i = 0; i < arity; ++i) ref.SetUInt32(i, coords[i]);
        ref.SetInt64(arity, agg.sum);
        ref.SetUInt32(arity + 1, agg.count);
        if (wal_ != nullptr) {
          CT_RETURN_NOT_OK(wal_->LogRecord(row.data(), row.size()));
        }
        CT_ASSIGN_OR_RETURN(RowId rid, state->table->Append(row.data()));
        EncodeFixed64(rid_value, rid.Encode());
        CT_RETURN_NOT_OK(state->primary->Insert(coords, rid_value));
        // Every secondary index on the view gains an entry too.
        uint32_t key[kMaxBTreeKeyParts];
        for (auto& [def, tree] : state->indices) {
          CT_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                              PositionsInView(view, def.key_attrs));
          for (size_t i = 0; i < positions.size(); ++i) {
            key[i] = coords[positions[i]];
          }
          CT_RETURN_NOT_OK(tree->Insert(key, rid_value));
        }
      }
    }
    if (wal_ != nullptr) {
      CT_RETURN_NOT_OK(wal_->Force());  // Commit the view's delta batch.
    }
    CT_RETURN_NOT_OK(state->table->Flush());
  }
  return pool_->FlushAll();
}

Status ConventionalEngine::Rebuild(ComputedViews* full_data) {
  const std::vector<ViewDef> views = views_;
  const std::vector<IndexDef> indices = selected_indices_;
  const bool had_maintenance = maintenance_ready_;
  CT_RETURN_NOT_OK(LoadTables(views, full_data));
  CT_RETURN_NOT_OK(BuildIndices(indices));
  if (had_maintenance) {
    CT_RETURN_NOT_OK(BuildMaintenanceIndices());
  }
  return Status::OK();
}

Result<ConventionalEngine::ViewState*> ConventionalEngine::StateForView(
    uint32_t view_id) {
  auto it = states_.find(view_id);
  if (it == states_.end()) {
    return Status::NotFound("conventional engine: view not materialized");
  }
  return &it->second;
}

Status ConventionalEngine::ExecuteScan(ViewState* state,
                                       const SliceQuery& query,
                                       QueryResult* result,
                                       QueryExecStats* stats) {
  const ViewDef& view = state->def;
  CT_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      PositionsInView(view, query.attrs));
  std::map<std::vector<Coord>, AggValue> groups;
  HeapTable::Iterator it = state->table->Scan();
  const char* row = nullptr;
  std::vector<Coord> group;
  uint64_t accessed = 0;
  while (true) {
    CT_RETURN_NOT_OK(it.Next(&row));
    if (row == nullptr) break;
    ++accessed;
    RowRef ref(&state->table_schema, const_cast<char*>(row));
    bool match = true;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      const auto [lo, hi] = query.AttrInterval(i);
      const Coord value = ref.GetUInt32(positions[i]);
      if (value < lo || value > hi) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    group.clear();
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      if (query.IsGrouped(i)) {
        group.push_back(ref.GetUInt32(positions[i]));
      }
    }
    AggValue& agg = groups[group];
    agg.sum += ref.GetInt64(view.arity());
    agg.count += ref.GetUInt32(view.arity() + 1);
  }
  if (stats != nullptr) {
    stats->tuples_accessed += accessed;
    stats->plan = "scan " + view.Name(schema_);
  }
  for (auto& [key, agg] : groups) {
    result->rows.push_back(ResultRow{key, agg});
  }
  return Status::OK();
}

Status ConventionalEngine::ExecuteIndex(ViewState* state, size_t index_pos,
                                        const SliceQuery& query,
                                        QueryResult* result,
                                        QueryExecStats* stats) {
  const ViewDef& view = state->def;
  const IndexDef& def = state->indices[index_pos].first;
  BPlusTree* tree = state->indices[index_pos].second.get();
  CT_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      PositionsInView(view, query.attrs));

  // Constrained prefix of the index key: equality predicates extend the
  // prefix; the first range predicate bounds the scan and ends it (the
  // classic composite-key range rule).
  const size_t key_parts = def.key_attrs.size();
  std::vector<uint32_t> low(key_parts, 0), high(key_parts, 0xFFFFFFFFu);
  size_t prefix = 0;
  for (uint32_t attr : def.key_attrs) {
    bool is_equality = false;
    std::optional<std::pair<Coord, Coord>> interval;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      if (query.attrs[i] != attr || !query.AttrConstrained(i)) continue;
      interval = query.AttrInterval(i);
      is_equality = query.bindings[i].has_value();
    }
    if (!interval.has_value()) break;
    low[prefix] = interval->first;
    high[prefix] = interval->second;
    ++prefix;
    if (!is_equality) break;  // Range predicate ends the usable prefix.
  }

  std::map<std::vector<Coord>, AggValue> groups;
  std::vector<char> row(state->table_schema.row_size());
  std::vector<Coord> group;
  uint64_t accessed = 0;
  BPlusTree::Iterator it = tree->Scan(low.data(), high.data());
  while (true) {
    const uint32_t* key = nullptr;
    const char* value = nullptr;
    CT_RETURN_NOT_OK(it.Next(&key, &value));
    if (key == nullptr) break;
    ++accessed;
    const RowId rid = RowId::Decode(DecodeFixed64(value));
    CT_RETURN_NOT_OK(state->table->Get(rid, row.data()));
    ++accessed;
    RowRef ref(&state->table_schema, row.data());
    bool match = true;
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      const auto [lo, hi] = query.AttrInterval(i);
      const Coord attr_value = ref.GetUInt32(positions[i]);
      if (attr_value < lo || attr_value > hi) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    group.clear();
    for (size_t i = 0; i < query.attrs.size(); ++i) {
      if (query.IsGrouped(i)) {
        group.push_back(ref.GetUInt32(positions[i]));
      }
    }
    AggValue& agg = groups[group];
    agg.sum += ref.GetInt64(view.arity());
    agg.count += ref.GetUInt32(view.arity() + 1);
  }
  if (stats != nullptr) {
    stats->tuples_accessed += accessed;
    stats->plan = "index " + def.Name(schema_) + " -> " + view.Name(schema_);
  }
  for (auto& [key, agg] : groups) {
    result->rows.push_back(ResultRow{key, agg});
  }
  return Status::OK();
}

Result<QueryResult> ConventionalEngine::Execute(const SliceQuery& query,
                                                QueryExecStats* stats) {
  obs::TraceScope trace("query", options_.io_stats.get());
  trace.Annotate("engine", "conventional");
  // Plan: cheapest (view, access path) by the GHRU tuple-cost model.
  // Fraction of the key space attr is restricted to (1 = unconstrained),
  // plus whether the restriction is an equality (ranges end an index
  // prefix).
  auto selectivity = [&](uint32_t attr, bool* is_equality) -> double {
    *is_equality = false;
    for (size_t qi = 0; qi < query.attrs.size(); ++qi) {
      if (query.attrs[qi] != attr || !query.AttrConstrained(qi)) continue;
      *is_equality = query.bindings[qi].has_value();
      const auto [lo, hi] = query.AttrInterval(qi);
      const double domain =
          std::max<double>(1.0, schema_.attr_domains[attr]);
      return std::min(domain, static_cast<double>(hi) - lo + 1) / domain;
    }
    return 1.0;
  };

  ViewState* best_state = nullptr;
  int best_index = -1;  // -1 = scan.
  double best_cost = 0;
  {
    obs::Span route_span("route");
    for (auto& [view_id, state] : states_) {
      if (!state.def.Covers(query.node_mask)) continue;
      const double rows =
          static_cast<double>(std::max<uint64_t>(state.table->num_rows(), 1));
      // Scan path.
      if (best_state == nullptr || rows < best_cost) {
        best_state = &state;
        best_index = -1;
        best_cost = rows;
      }
      // Indexed paths (an index entry + a heap fetch per matching tuple).
      for (size_t i = 0; i < state.indices.size(); ++i) {
        double fraction = 1.0;
        for (uint32_t attr : state.indices[i].first.key_attrs) {
          bool is_equality = false;
          const double s = selectivity(attr, &is_equality);
          if (s >= 1.0) break;
          fraction *= s;
          if (!is_equality) break;
        }
        const double cost = std::max(1.0, 2.0 * rows * fraction);
        if (cost < best_cost) {
          best_state = &state;
          best_index = static_cast<int>(i);
          best_cost = cost;
        }
      }
    }
    if (best_state != nullptr && route_span.active()) {
      route_span.Annotate("view", best_state->def.Name(schema_));
      route_span.Annotate("access_path",
                          best_index < 0 ? "scan" : "index");
      route_span.Annotate("estimated_cost", best_cost);
    }
  }
  if (best_state == nullptr) {
    return Status::NotFound("no materialized view answers this query");
  }

  QueryResult result;
  for (size_t i = 0; i < query.attrs.size(); ++i) {
    if (query.IsGrouped(i)) {
      result.group_attrs.push_back(query.attrs[i]);
    }
  }
  if (best_index < 0) {
    obs::Span scan_span("scan");
    CT_RETURN_NOT_OK(ExecuteScan(best_state, query, &result, stats));
  } else {
    obs::Span index_span("index");
    CT_RETURN_NOT_OK(ExecuteIndex(best_state, static_cast<size_t>(best_index),
                                  query, &result, stats));
  }
  return result;
}

uint64_t ConventionalEngine::TableBytes() const {
  uint64_t total = 0;
  for (const auto& [id, state] : states_) {
    if (state.table != nullptr) total += state.table->FileSizeBytes();
  }
  return total;
}

uint64_t ConventionalEngine::IndexBytes() const {
  uint64_t total = 0;
  for (const auto& [id, state] : states_) {
    for (const auto& [def, tree] : state.indices) {
      total += tree->FileSizeBytes();
    }
    if (state.primary != nullptr) total += state.primary->FileSizeBytes();
  }
  return total;
}

uint64_t ConventionalEngine::StorageBytes() const {
  return TableBytes() + IndexBytes();
}

}  // namespace cubetree
