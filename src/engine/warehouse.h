#ifndef CUBETREE_ENGINE_WAREHOUSE_H_
#define CUBETREE_ENGINE_WAREHOUSE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/conventional_engine.h"
#include "engine/cubetree_engine.h"
#include "olap/cube_builder.h"
#include "olap/lattice.h"
#include "olap/query_model.h"
#include "olap/selection.h"
#include "storage/io_stats.h"
#include "tpcd/dbgen.h"

namespace cubetree {

/// Configuration of one end-to-end experiment, mirroring the paper's
/// platform: TPC-D data at a scale factor, a 32 MB-class buffer pool, and a
/// late-90s disk cost model.
struct WarehouseOptions {
  double scale_factor = 0.02;
  uint64_t seed = 19980601;
  /// Working directory for all files (created if missing).
  std::string dir = "ctwh_data";
  /// Buffer pool size in pages per configuration (4096 x 8 KiB = 32 MiB,
  /// the paper machine's total memory).
  size_t buffer_pool_pages = 4096;
  size_t sort_budget_bytes = 16u << 20;
  /// Scale buffer pool and sort memory by the scale factor, preserving the
  /// paper's memory-to-data ratio (32 MB machine vs ~600 MB of views at
  /// SF=1). Without this, small benchmark datasets fit entirely in memory
  /// and the I/O asymmetries the paper measures disappear.
  bool scale_memory_with_sf = true;
  /// Structures (views+indices) the greedy selection keeps; 9 reproduces
  /// the paper's configuration.
  size_t max_structures = 9;
  /// Refresh increment size as a fraction of the base data (paper: 10%).
  double increment_fraction = 0.10;
  /// Materialize sort-order replicas of the top view in the Cubetree
  /// configuration, one per selected index order (the paper's replication
  /// feature, used "to compensate for the additional indices").
  bool replicate_top_view = true;
  /// Run view/index selection against the paper's SF=1 statistics so the
  /// materialized configuration (6 views + 3 indices / 2 replicas) matches
  /// the paper at any benchmark scale factor. When false, selection uses
  /// the actual scaled statistics (the lattice shape genuinely changes at
  /// tiny scales: e.g. |suppkey x custkey| stops being ~|F|).
  bool paper_statistics = true;
  DiskModel disk;
};

/// Timing + I/O accounting of one load/update phase.
struct PhaseReport {
  std::string phase;
  double wall_seconds = 0;
  IoStats io;
  /// The phase's I/O replayed through the 1997 disk model.
  double modeled_seconds = 0;
};

/// Table 6-style load report.
struct LoadReport {
  PhaseReport views;    // Compute + materialize the views.
  PhaseReport indices;  // Build the selected B-trees (conventional only).
  double TotalWallSeconds() const {
    return views.wall_seconds + indices.wall_seconds;
  }
  double TotalModeledSeconds() const {
    return views.modeled_seconds + indices.modeled_seconds;
  }
};

/// Orchestrates the paper's full experimental protocol: generate TPC-D
/// data, run view+index selection on the lattice, materialize the same
/// view set under both storage organizations, refresh both with the same
/// increments, and answer the same slice queries from both.
class Warehouse {
 public:
  static Result<std::unique_ptr<Warehouse>> Create(WarehouseOptions options);

  const WarehouseOptions& options() const { return options_; }
  const CubeSchema& schema() const { return schema_; }
  const CubeLattice& lattice() const { return *lattice_; }
  const SelectionResult& selection() const { return selection_; }
  tpcd::Generator& generator() { return *generator_; }

  /// Selected views (conventional configuration materializes exactly
  /// these).
  const std::vector<ViewDef>& selected_views() const {
    return selection_.views;
  }
  /// Selected views plus the sort-order replicas of the top view that
  /// stand in for the selected indices (Cubetree configuration).
  const std::vector<ViewDef>& cubetree_views() const {
    return cubetree_views_;
  }

  /// Loads the conventional configuration (tables, then indices).
  Result<LoadReport> LoadConventional();

  /// Loads the Cubetree configuration (sort + compute + pack in one phase).
  Result<LoadReport> LoadCubetrees();

  /// Reopens a previously persisted Cubetree configuration after an
  /// unclean shutdown (crash-consistent recovery instead of a fresh
  /// load). Quarantined trees are rebuilt from base data recomputed over
  /// base plus the first `increments_applied` increments — the state the
  /// forest held before the crash.
  Result<PhaseReport> RecoverCubetrees(uint32_t increments_applied = 0,
                                       ForestRecoveryReport* report =
                                           nullptr);

  /// Table 7 row 1: per-tuple incremental maintenance of the relational
  /// views (maintenance indices are built beforehand and not charged).
  Result<PhaseReport> UpdateConventionalIncremental(uint32_t increment);

  /// Table 7 row 2: recompute the relational views from scratch over base
  /// plus all increments up to and including `increment`.
  Result<PhaseReport> UpdateConventionalRecompute(uint32_t increment);

  /// Table 7 row 3: merge-pack the Cubetrees with the sorted delta.
  Result<PhaseReport> UpdateCubetrees(uint32_t increment);

  /// Extension: delta-tree refresh — pack the increment into small delta
  /// trees without rewriting the mains (refresh window ~ increment size).
  Result<PhaseReport> UpdateCubetreesPartial(uint32_t increment);

  /// Extension: fold all pending delta trees into the main trees.
  Result<PhaseReport> CompactCubetrees();

  ConventionalEngine* conventional() { return conventional_.get(); }
  CubetreeEngine* cubetrees() { return cubetree_.get(); }

  /// Fresh query generator (deterministic per seed).
  SliceQueryGenerator MakeQueryGenerator(uint64_t seed) const {
    return SliceQueryGenerator(schema_, seed);
  }

  const std::shared_ptr<IoStats>& conventional_io() const { return conv_io_; }
  const std::shared_ptr<IoStats>& cubetree_io() const { return cbt_io_; }
  BufferPool* conventional_pool() { return conv_pool_.get(); }
  BufferPool* cubetree_pool() { return cbt_pool_.get(); }

 private:
  explicit Warehouse(WarehouseOptions options)
      : options_(std::move(options)) {}

  Status Init();
  Result<std::unique_ptr<ComputedViews>> Compute(
      const std::vector<ViewDef>& views, FactProvider* facts,
      const std::string& tag, const std::shared_ptr<IoStats>& io);
  PhaseReport FinishPhase(const std::string& name, double seconds,
                          const IoStats& before,
                          const std::shared_ptr<IoStats>& io) const;

  WarehouseOptions options_;
  std::unique_ptr<tpcd::Generator> generator_;
  CubeSchema schema_;
  std::unique_ptr<CubeLattice> lattice_;
  SelectionResult selection_;
  std::vector<ViewDef> cubetree_views_;

  std::shared_ptr<IoStats> conv_io_;
  std::shared_ptr<IoStats> cbt_io_;
  std::unique_ptr<BufferPool> conv_pool_;
  std::unique_ptr<BufferPool> cbt_pool_;
  std::unique_ptr<ConventionalEngine> conventional_;
  std::unique_ptr<CubetreeEngine> cubetree_;
};

}  // namespace cubetree

#endif  // CUBETREE_ENGINE_WAREHOUSE_H_
