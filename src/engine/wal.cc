#include "engine/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"

namespace cubetree {

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    const std::string& path, std::shared_ptr<IoStats> io_stats) {
  CT_FAULT("wal.create");
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file)));
}

Status WriteAheadLog::LogRecord(const char* data, size_t size) {
  if (size == 0) {
    return Status::InvalidArgument(
        "wal: empty records are not loggable (zero length marks padding)");
  }
  CT_DCHECK(page_used_ < kPageSize);
  // Keep the header within one page so a reader can always parse it from a
  // contiguous range: pad the tail (already zeroed) and open a new page.
  if (kPageSize - page_used_ < kRecordHeader) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  char header[kRecordHeader];
  EncodeFixed32(header, static_cast<uint32_t>(size));
  EncodeFixed32(header + 4, Crc32c(data, size));
  std::memcpy(page_.data + page_used_, header, kRecordHeader);
  page_used_ += kRecordHeader;

  // The payload may span any number of page boundaries.
  const char* cursor = data;
  size_t left = size;
  while (left > 0) {
    if (page_used_ == kPageSize) {
      CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
      page_.Zero();
      page_used_ = 0;
    }
    const size_t n = std::min(kPageSize - page_used_, left);
    std::memcpy(page_.data + page_used_, cursor, n);
    page_used_ += n;
    cursor += n;
    left -= n;
  }
  if (page_used_ == kPageSize) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  bytes_logged_ += size + kRecordHeader;
  ++records_;
  return Status::OK();
}

Status WriteAheadLog::Force() {
  CT_FAULT("wal.force");
  if (page_used_ > 0) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  return file_->Sync();
}

namespace {

Status WalCorruption(const std::string& path, PageId page, size_t offset,
                     const std::string& what) {
  return Status::Corruption("wal " + path + ": " + what + " at page " +
                            std::to_string(page) + " offset " +
                            std::to_string(offset));
}

/// One parse pass over a framed log, shared by strict and tolerant replay.
/// Pages come from `read_page` (which may synthesize a zero-padded final
/// partial page); `file_bytes` is the real on-disk size, used to size the
/// discarded tail when a torn record ends a tolerant replay.
Result<WriteAheadLog::ReplayStats> ReplayFromSource(
    const std::string& path,
    const std::function<Status(PageId, Page*)>& read_page, PageId num_pages,
    uint64_t file_bytes, bool tolerant,
    const std::function<void(const char* data, size_t size)>& apply) {
  obs::Span replay_span("wal.replay");
  replay_span.Annotate("pages", static_cast<uint64_t>(num_pages));
  replay_span.Annotate("mode", tolerant ? "tolerant" : "strict");
  WriteAheadLog::ReplayStats stats;
  Page page;
  PageId page_id = 0;
  size_t offset = 0;
  bool loaded = false;
  std::string payload;
  // Byte position of the record currently being parsed; everything from
  // here on is discarded when tolerant replay hits a torn record.
  uint64_t record_start = 0;
  const auto torn_tail = [&]() {
    stats.torn = true;
    stats.torn_bytes =
        file_bytes > record_start ? file_bytes - record_start : 0;
    return stats;
  };
  while (true) {
    if (!loaded) {
      if (page_id >= num_pages) break;  // Clean end of log.
      CT_RETURN_NOT_OK(read_page(page_id, &page));
      loaded = true;
      offset = 0;
    }
    record_start = static_cast<uint64_t>(page_id) * kPageSize + offset;
    // A header never spans pages; fewer than kRecordHeader bytes of room
    // means the writer padded the tail with zeros.
    if (kPageSize - offset < WriteAheadLog::kRecordHeader) {
      for (size_t i = offset; i < kPageSize; ++i) {
        if (page.data[i] != 0) {
          if (tolerant) return torn_tail();
          return WalCorruption(path, page_id, i, "nonzero header padding");
        }
      }
      ++page_id;
      loaded = false;
      continue;
    }
    const uint32_t length = DecodeFixed32(page.data + offset);
    const uint32_t crc = DecodeFixed32(page.data + offset + 4);
    if (length == 0) {
      // Padding from Force(): the rest of this page must be zero.
      if (crc != 0) {
        if (tolerant) return torn_tail();
        return WalCorruption(path, page_id, offset, "nonzero CRC in padding");
      }
      for (size_t i = offset; i < kPageSize; ++i) {
        if (page.data[i] != 0) {
          if (tolerant) return torn_tail();
          return WalCorruption(path, page_id, i, "nonzero tail padding");
        }
      }
      ++page_id;
      loaded = false;
      continue;
    }
    offset += WriteAheadLog::kRecordHeader;
    payload.clear();
    payload.reserve(length);
    size_t left = length;
    while (left > 0) {
      if (offset == kPageSize) {
        ++page_id;
        if (page_id >= num_pages) {
          if (tolerant) return torn_tail();
          return WalCorruption(path, page_id, 0,
                               "truncated record payload (length " +
                                   std::to_string(length) + ")");
        }
        CT_RETURN_NOT_OK(read_page(page_id, &page));
        offset = 0;
      }
      const size_t n = std::min(kPageSize - offset, left);
      payload.append(page.data + offset, n);
      offset += n;
      left -= n;
    }
    if (offset == kPageSize) {
      ++page_id;
      loaded = false;
    }
    const uint32_t actual = Crc32c(payload.data(), payload.size());
    if (actual != crc) {
      if (tolerant) return torn_tail();
      return WalCorruption(path, page_id, offset,
                           "record CRC mismatch (stored " +
                               std::to_string(crc) + ", computed " +
                               std::to_string(actual) + ")");
    }
    if (apply) apply(payload.data(), payload.size());
    ++stats.records;
    stats.payload_bytes += payload.size();
    stats.digest = Crc32c(payload.data(), payload.size(), stats.digest);
  }
  replay_span.Annotate("records", stats.records);
  return stats;
}

}  // namespace

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<void(const char* data, size_t size)>& apply,
    std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Open(path, std::move(io_stats)));
  PageManager* pm = file.get();
  return ReplayFromSource(
      path, [pm](PageId id, Page* page) { return pm->ReadPage(id, page); },
      file->NumPages(), file->FileSizeBytes(), /*tolerant=*/false, apply);
}

Result<WriteAheadLog::ReplayStats> WriteAheadLog::ReplayTolerant(
    const std::string& path,
    const std::function<void(const char* data, size_t size)>& apply,
    std::shared_ptr<IoStats> io_stats) {
  uint64_t trailing = 0;
  CT_ASSIGN_OR_RETURN(
      auto file, PageManager::OpenPrefix(path, std::move(io_stats), &trailing));
  const PageId full_pages = file->NumPages();
  const PageId total_pages = full_pages + (trailing > 0 ? 1 : 0);
  const uint64_t file_bytes =
      static_cast<uint64_t>(full_pages) * kPageSize + trailing;
  PageManager* pm = file.get();
  const auto read_page = [pm, &path, full_pages, trailing](PageId id,
                                                           Page* page) {
    if (id < full_pages) return pm->ReadPage(id, page);
    // The ragged tail a crash mid-append left behind, zero-padded to a
    // full page so records written entirely before the cut still parse.
    page->Zero();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("open " + path);
    Status status = PreadFully(fd, page->data, trailing,
                               static_cast<off_t>(id) * kPageSize,
                               "pread tail of " + path);
    ::close(fd);
    return status;
  };
  return ReplayFromSource(path, read_page, total_pages, file_bytes,
                          /*tolerant=*/true, apply);
}

}  // namespace cubetree
