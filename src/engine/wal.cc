#include "engine/wal.h"

#include <cstring>

#include "common/coding.h"

namespace cubetree {

namespace {
// Per-record header: 4-byte length. A real log adds LSN/txn ids; the
// length-prefixed row image is enough to model the I/O volume.
constexpr size_t kRecordHeader = 4;
}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    const std::string& path, std::shared_ptr<IoStats> io_stats) {
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file)));
}

Status WriteAheadLog::LogRecord(const char* data, size_t size) {
  size_t remaining = size;
  const char* src = data;
  // Header, possibly split across a page boundary like the payload.
  char header[kRecordHeader];
  EncodeFixed32(header, static_cast<uint32_t>(size));
  const char* pieces[2] = {header, src};
  size_t lens[2] = {kRecordHeader, remaining};
  for (int p = 0; p < 2; ++p) {
    const char* cursor = pieces[p];
    size_t left = lens[p];
    while (left > 0) {
      const size_t room = kPageSize - page_used_;
      const size_t n = std::min(room, left);
      std::memcpy(page_.data + page_used_, cursor, n);
      page_used_ += n;
      cursor += n;
      left -= n;
      if (page_used_ == kPageSize) {
        CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
        page_.Zero();
        page_used_ = 0;
      }
    }
  }
  bytes_logged_ += size + kRecordHeader;
  ++records_;
  return Status::OK();
}

Status WriteAheadLog::Force() {
  if (page_used_ > 0) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  return file_->Sync();
}

}  // namespace cubetree
