#include "engine/wal.h"

#include <algorithm>
#include <cstring>

#include "common/assert.h"
#include "common/coding.h"
#include "common/crc32.h"

namespace cubetree {

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Create(
    const std::string& path, std::shared_ptr<IoStats> io_stats) {
  CT_RETURN_NOT_OK(RemoveFileIfExists(path));
  CT_ASSIGN_OR_RETURN(auto file,
                      PageManager::Create(path, std::move(io_stats)));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(std::move(file)));
}

Status WriteAheadLog::LogRecord(const char* data, size_t size) {
  if (size == 0) {
    return Status::InvalidArgument(
        "wal: empty records are not loggable (zero length marks padding)");
  }
  CT_DCHECK(page_used_ < kPageSize);
  // Keep the header within one page so a reader can always parse it from a
  // contiguous range: pad the tail (already zeroed) and open a new page.
  if (kPageSize - page_used_ < kRecordHeader) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  char header[kRecordHeader];
  EncodeFixed32(header, static_cast<uint32_t>(size));
  EncodeFixed32(header + 4, Crc32c(data, size));
  std::memcpy(page_.data + page_used_, header, kRecordHeader);
  page_used_ += kRecordHeader;

  // The payload may span any number of page boundaries.
  const char* cursor = data;
  size_t left = size;
  while (left > 0) {
    if (page_used_ == kPageSize) {
      CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
      page_.Zero();
      page_used_ = 0;
    }
    const size_t n = std::min(kPageSize - page_used_, left);
    std::memcpy(page_.data + page_used_, cursor, n);
    page_used_ += n;
    cursor += n;
    left -= n;
  }
  if (page_used_ == kPageSize) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  bytes_logged_ += size + kRecordHeader;
  ++records_;
  return Status::OK();
}

Status WriteAheadLog::Force() {
  if (page_used_ > 0) {
    CT_RETURN_NOT_OK(file_->AppendPage(page_).status());
    page_.Zero();
    page_used_ = 0;
  }
  return file_->Sync();
}

namespace {

Status WalCorruption(const std::string& path, PageId page, size_t offset,
                     const std::string& what) {
  return Status::Corruption("wal " + path + ": " + what + " at page " +
                            std::to_string(page) + " offset " +
                            std::to_string(offset));
}

}  // namespace

Result<WriteAheadLog::ReplayStats> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<void(const char* data, size_t size)>& apply,
    std::shared_ptr<IoStats> io_stats) {
  CT_ASSIGN_OR_RETURN(auto file, PageManager::Open(path, std::move(io_stats)));
  ReplayStats stats;
  Page page;
  PageId page_id = 0;
  size_t offset = 0;
  bool loaded = false;
  std::string payload;
  while (true) {
    if (!loaded) {
      if (page_id >= file->NumPages()) break;  // Clean end of log.
      CT_RETURN_NOT_OK(file->ReadPage(page_id, &page));
      loaded = true;
      offset = 0;
    }
    // A header never spans pages; fewer than kRecordHeader bytes of room
    // means the writer padded the tail with zeros.
    if (kPageSize - offset < kRecordHeader) {
      for (size_t i = offset; i < kPageSize; ++i) {
        if (page.data[i] != 0) {
          return WalCorruption(path, page_id, i, "nonzero header padding");
        }
      }
      ++page_id;
      loaded = false;
      continue;
    }
    const uint32_t length = DecodeFixed32(page.data + offset);
    const uint32_t crc = DecodeFixed32(page.data + offset + 4);
    if (length == 0) {
      // Padding from Force(): the rest of this page must be zero.
      if (crc != 0) {
        return WalCorruption(path, page_id, offset, "nonzero CRC in padding");
      }
      for (size_t i = offset; i < kPageSize; ++i) {
        if (page.data[i] != 0) {
          return WalCorruption(path, page_id, i, "nonzero tail padding");
        }
      }
      ++page_id;
      loaded = false;
      continue;
    }
    offset += kRecordHeader;
    payload.clear();
    payload.reserve(length);
    size_t left = length;
    while (left > 0) {
      if (offset == kPageSize) {
        ++page_id;
        if (page_id >= file->NumPages()) {
          return WalCorruption(path, page_id, 0,
                               "truncated record payload (length " +
                                   std::to_string(length) + ")");
        }
        CT_RETURN_NOT_OK(file->ReadPage(page_id, &page));
        offset = 0;
      }
      const size_t n = std::min(kPageSize - offset, left);
      payload.append(page.data + offset, n);
      offset += n;
      left -= n;
    }
    if (offset == kPageSize) {
      ++page_id;
      loaded = false;
    }
    const uint32_t actual = Crc32c(payload.data(), payload.size());
    if (actual != crc) {
      return WalCorruption(path, page_id, offset,
                           "record CRC mismatch (stored " +
                               std::to_string(crc) + ", computed " +
                               std::to_string(actual) + ")");
    }
    if (apply) apply(payload.data(), payload.size());
    ++stats.records;
    stats.payload_bytes += payload.size();
    stats.digest = Crc32c(payload.data(), payload.size(), stats.digest);
  }
  return stats;
}

}  // namespace cubetree
