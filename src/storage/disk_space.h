#ifndef CUBETREE_STORAGE_DISK_SPACE_H_
#define CUBETREE_STORAGE_DISK_SPACE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace cubetree {

/// One observation of the volume backing a directory.
struct DiskSpaceInfo {
  /// Bytes available to unprivileged writers (statvfs f_bavail * f_frsize).
  uint64_t free_bytes = 0;
  /// Configured reserve the store refuses to dip into.
  uint64_t reserve_bytes = 0;
  /// Free space the store may actually consume.
  uint64_t usable_bytes() const {
    return free_bytes > reserve_bytes ? free_bytes - reserve_bytes : 0;
  }
};

/// Space accounting for refreshes. A bulk-incremental refresh transiently
/// needs the old AND the new generation on disk (plus sort runs and
/// checksum sidecars); running into ENOSPC halfway through wastes the whole
/// merge-pack and stresses every error path at once. The manager preflights
/// each refresh instead: probe the volume, subtract a configurable reserve
/// (CUBETREE_DISK_RESERVE_BYTES), and refuse with a typed StorageFull —
/// naming the bytes still needed — while the old generation keeps serving.
class DiskSpaceManager {
 public:
  struct Options {
    /// Directory whose backing volume is probed.
    std::string dir = ".";
    /// Bytes of free space left untouched on the volume. The default comes
    /// from CUBETREE_DISK_RESERVE_BYTES (16 MiB when unset): headroom for
    /// logs, manifests and the operator's own tooling once the store backs
    /// off.
    uint64_t reserve_bytes = ReserveBytesFromEnv();
  };

  /// Parses CUBETREE_DISK_RESERVE_BYTES; 16 MiB when unset or malformed.
  static uint64_t ReserveBytesFromEnv();

  explicit DiskSpaceManager(Options options) : options_(std::move(options)) {}

  /// Current free space on the volume backing options.dir. Consults the
  /// `disk.probe` failpoint so harnesses can fail the probe itself.
  Result<DiskSpaceInfo> Probe() const;

  /// OK when `estimated_bytes` fit into the usable (free minus reserve)
  /// space, else StorageFull naming the estimate, the usable space and the
  /// shortfall. Consults the `disk.preflight` failpoint first, so tests can
  /// force a refusal on a volume with plenty of room.
  Status Preflight(uint64_t estimated_bytes) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Per-packer transient slack a parallel refresh adds beyond the serial
/// estimate: each extra concurrent tree packer holds its own in-flight
/// checksum-sidecar draft and a page-write frontier that land on disk
/// before the serial accounting would have charged them.
inline constexpr uint64_t kRefreshPackerSlackBytes = 64 * 1024;

/// Projected peak footprint of one bulk-incremental refresh:
///
///   packed   = live_tree_bytes + delta_input_bytes   (merge-pack output:
///              old generation's pages plus roughly the delta's pages)
///   sidecars = 4 bytes per packed page + header      (.crc files)
///   runs     = 2 * delta_input_bytes                 (external-sort spill
///              plus one merge pass, both transient)
///   slack    = (concurrent_packs - 1) * kRefreshPackerSlackBytes
///
/// Deliberately conservative: the old generation is retired only after the
/// new one commits, so the peak holds both. `concurrent_packs` is the
/// refresh worker-pool width: with K workers the temp-file peak is the sum
/// of all K packers' in-flight output, not one packer's at a time, so the
/// preflight must reserve the extra per-worker slack or a mid-refresh
/// StorageFull can slip past. K <= 1 reproduces the serial estimate.
uint64_t EstimateRefreshBytes(uint64_t live_tree_bytes,
                              uint64_t delta_input_bytes,
                              unsigned concurrent_packs = 1);

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_DISK_SPACE_H_
