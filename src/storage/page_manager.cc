#include "storage/page_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>

#include "common/assert.h"
#include "common/crc32.h"
#include "common/query_context.h"
#include "common/rng.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/checksum.h"

namespace cubetree {

namespace {

/// Immediate re-reads after a checksum mismatch before it is surfaced as
/// Corruption (see VerifyPageChecksum).
constexpr int kChecksumRereads = 2;

struct IntegrityMetrics {
  obs::Counter* pages_verified;
  obs::Counter* mismatches;
  obs::Counter* reread_healed;
  obs::Counter* corruption_errors;

  static const IntegrityMetrics& Get() {
    static const IntegrityMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return IntegrityMetrics{
          reg.GetCounter("integrity.pages_verified"),
          reg.GetCounter("integrity.checksum_mismatches"),
          reg.GetCounter("integrity.reread_healed"),
          reg.GetCounter("integrity.corruption_errors")};
    }();
    return m;
  }
};

Status ErrnoStatus(const std::string& context) {
  return ErrnoToStatus(errno, context);
}

// Read-path retry policy (see PageManager::SetReadRetryPolicy). Transient
// I/O errors — injected ones, or real hiccups of a loaded device — are
// retried with jittered exponential backoff before the error is surfaced,
// so a multi-hour load does not abort on a blip and concurrent readers do
// not synchronize into retry storms.
std::atomic<int> g_read_retry_attempts{4};
std::atomic<int> g_read_retry_backoff_us{100};

/// Per-thread generator for backoff jitter, seeded so that no two threads
/// (and no two processes) draw the same sequence. Deliberately separate
/// from the workload Rng: jitter must differ across threads, experiments
/// must not.
Rng& JitterRng() {
  thread_local Rng rng([] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    static thread_local int stack_marker;
    return static_cast<uint64_t>(now.count()) ^
           reinterpret_cast<uint64_t>(&stack_marker);
  }());
  return rng;
}

void BackoffBeforeRetry(int attempt, const QueryContext* ctx) {
  const int base = g_read_retry_backoff_us.load(std::memory_order_relaxed);
  if (base <= 0) return;
  // attempt is 1-based: the ceiling doubles each retry (capped so the
  // shift cannot overflow), and the actual sleep is a uniform draw from
  // [ceiling/2, ceiling] — "equal jitter", which keeps the expected wait
  // growing exponentially while decorrelating concurrent retriers.
  const int shift = attempt - 1 < 10 ? attempt - 1 : 10;
  const uint64_t ceiling = static_cast<uint64_t>(base) << shift;
  const uint64_t floor = ceiling / 2;
  uint64_t sleep_us = floor + JitterRng().Uniform(ceiling - floor + 1);
  if (ctx != nullptr && ctx->has_deadline()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        ctx->deadline() - QueryContext::Clock::now());
    if (remaining.count() <= 0) return;  // Caller re-checks and fails.
    if (sleep_us > static_cast<uint64_t>(remaining.count())) {
      sleep_us = static_cast<uint64_t>(remaining.count());
    }
  }
  ::usleep(static_cast<useconds_t>(sleep_us));
}

}  // namespace

Status ErrnoToStatus(int err, const std::string& context) {
  // A full volume (or exhausted quota) is not a broken one: keep it typed
  // so refresh orchestration can back off and retry once space returns.
  if (err == ENOSPC || err == EDQUOT) {
    return Status::StorageFull(context + ": " + std::strerror(err));
  }
  return Status::IOError(context + ": " + std::strerror(err));
}

Status PwriteFully(int fd, const void* buf, size_t count, off_t offset,
                   const std::string& context) {
  const off_t start_offset = offset;
  const char* cursor = static_cast<const char*>(buf);
  size_t left = count;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd, cursor, left, offset);
    if (n < 0) {
      if (errno == EINTR) continue;  // A signal is not a disk failure.
      return ErrnoStatus(context + " (offset " +
                         std::to_string(static_cast<long long>(offset)) + ")");
    }
    if (n == 0) {
      // pwrite accepting zero bytes with room left means the volume has
      // nothing more to give. Name the file and exact byte range, same
      // shape as PreadFully's short-read finding.
      return Status::StorageFull(
          "short write to " + context + ": wanted " + std::to_string(count) +
          " bytes at offset " +
          std::to_string(static_cast<long long>(start_offset)) + ", got " +
          std::to_string(count - left));
    }
    // A partial write is not an error from the kernel's point of view;
    // keep writing the remainder rather than failing a multi-hour load.
    cursor += n;
    offset += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PreadFully(int fd, void* buf, size_t count, off_t offset,
                  const std::string& context) {
  const off_t start_offset = offset;
  char* cursor = static_cast<char*>(buf);
  size_t left = count;
  while (left > 0) {
    const ssize_t n = ::pread(fd, cursor, left, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(context + " (offset " +
                         std::to_string(static_cast<long long>(offset)) + ")");
    }
    if (n == 0) {
      // Always name the file and the exact byte range: a short read is a
      // structural finding (truncated or mis-sized file) and the operator
      // needs to know where without re-running under a debugger.
      return Status::Corruption(
          "short read from " + context + ": wanted " + std::to_string(count) +
          " bytes at offset " +
          std::to_string(static_cast<long long>(start_offset)) + ", got " +
          std::to_string(count - left));
    }
    cursor += n;
    offset += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& context) {
  // The fsync primitive itself; callers place CT_FAULT at their own
  // commit points before calling in.
  // ct-lint: allow(fault-pair)
  if (::fsync(fd) != 0) return ErrnoStatus("fsync " + context);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  Status status = SyncFd(fd, dir);
  ::close(fd);
  return status;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

PageManager::PageManager(std::string path, int fd, PageId num_pages,
                         std::shared_ptr<IoStats> stats)
    : path_(std::move(path)),
      fd_(fd),
      num_pages_(num_pages),
      stats_(std::move(stats)) {
  if (!stats_) stats_ = std::make_shared<IoStats>();
}

PageManager::~PageManager() {
  if (fd_ >= 0) ::close(fd_);
}

void PageManager::SetReadRetryPolicy(int max_attempts, int base_backoff_us) {
  g_read_retry_attempts.store(max_attempts < 1 ? 1 : max_attempts,
                              std::memory_order_relaxed);
  g_read_retry_backoff_us.store(base_backoff_us < 0 ? 0 : base_backoff_us,
                                std::memory_order_relaxed);
}

Result<std::unique_ptr<PageManager>> PageManager::Create(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  CT_FAULT("storage.page.create");
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create " + path);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, 0, std::move(stats)));
}

Result<std::unique_ptr<PageManager>> PageManager::Open(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  CT_FAULT("storage.page.open");
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("open " + path +
                                              ": no such file")
                           : ErrnoStatus("open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("stat " + path);
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("page file " + path +
                              " size is not page-aligned");
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, pages, std::move(stats)));
}

Result<std::unique_ptr<PageManager>> PageManager::OpenPrefix(
    const std::string& path, std::shared_ptr<IoStats> stats,
    uint64_t* trailing_bytes) {
  CT_FAULT("storage.page.open");
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("open " + path +
                                              ": no such file")
                           : ErrnoStatus("open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("stat " + path);
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  if (trailing_bytes != nullptr) {
    *trailing_bytes = static_cast<uint64_t>(st.st_size) -
                      static_cast<uint64_t>(pages) * kPageSize;
  }
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, pages, std::move(stats)));
}

void PageManager::RecordRead(PageId id) {
  const PageId prev = last_read_page_.exchange(id, std::memory_order_relaxed);
  if (prev != kInvalidPageId && id == prev + 1) {
    ++stats_->sequential_reads;
  } else {
    ++stats_->random_reads;
  }
}

void PageManager::RecordWrite(PageId id) {
  const PageId prev =
      last_write_page_.exchange(id, std::memory_order_relaxed);
  if ((prev != kInvalidPageId && id == prev + 1) ||
      (prev == kInvalidPageId && id == 0)) {
    ++stats_->sequential_writes;
  } else {
    ++stats_->random_writes;
  }
}

Result<PageId> PageManager::AllocatePage() {
  Page zero;
  zero.Zero();
  return AppendPage(zero);
}

Status PageManager::ReadPageOnce(PageId id, Page* page) {
  bool flip_bit = false;
  bool trash_page = false;
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome =
        FaultInjector::Instance().Check("storage.page.read");
    if (outcome.fail) return outcome.ToStatus();
    flip_bit = outcome.bitflip;
    trash_page = outcome.corrupt_page;
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  CT_RETURN_NOT_OK(
      PreadFully(fd_, page->data, kPageSize, offset, "pread " + path_));
  if (trash_page) {
    // Misdirected read: the transfer "succeeded" but delivered another
    // block's contents. Only checksum verification can tell.
    std::memset(page->data, 0xA5, kPageSize);
  } else if (flip_bit) {
    // One deterministic flipped bit per page id (Knuth-hash position), so
    // repeated reads of the same page reproduce the same damage while
    // different pages are hit in different bytes.
    const size_t bit =
        (static_cast<size_t>(id) * 2654435761u) % (kPageSize * 8);
    page->data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
  return Status::OK();
}

Status PageManager::ReadPage(PageId id, Page* page) {
  CT_DCHECK(page != nullptr);
  CT_DCHECK(fd_ >= 0) << "page file " << path_ << " not open";
  if (id >= NumPages()) {
    return Status::InvalidArgument("read past end of page file " + path_);
  }
  // Every physical page read is a cancellation point: a query session's
  // deadline/cancel token is honored here, so even a cold full-tree scan
  // aborts within one page of the deadline.
  const QueryContext* ctx = QueryContext::Current();
  if (ctx != nullptr) CT_RETURN_NOT_OK(ctx->Check());
  const int max_attempts =
      g_read_retry_attempts.load(std::memory_order_relaxed);
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = ReadPageOnce(id, page);
    // Retry only transient-looking I/O errors; Corruption (short read,
    // torn file) will not heal by itself.
    if (status.ok() || !status.IsIOError()) break;
    if (ctx != nullptr) {
      // The caller's budget, not a fixed attempt count, bounds retries:
      // keep going until the deadline expires or the query is cancelled.
      // Without a deadline the fixed cap still applies — an uncancellable
      // context must not retry forever.
      CT_RETURN_NOT_OK(ctx->Check());
      if (!ctx->has_deadline() && attempt >= max_attempts) break;
    } else if (attempt >= max_attempts) {
      break;
    }
    BackoffBeforeRetry(attempt, ctx);
  }
  if (!status.ok()) return status;
  if (crc_mode_.load(std::memory_order_acquire) == kCrcVerify) {
    CT_RETURN_NOT_OK(VerifyPageChecksum(id, page));
  }
  RecordRead(id);
  // Attribute the physical read to the innermost span of the ambient trace
  // (one thread-local load when no trace is active).
  obs::NotePageRead();
  return Status::OK();
}

Status PageManager::VerifyPageChecksum(PageId id, Page* page) {
  if (id >= page_crcs_.size()) return Status::OK();
  const uint32_t expected = page_crcs_[id];
  uint32_t actual = Crc32c(page->data, kPageSize);
  if (actual == expected) {
    IntegrityMetrics::Get().pages_verified->Increment();
    return Status::OK();
  }
  IntegrityMetrics::Get().mismatches->Increment();
  // A mismatch can be transient (bad DMA/bus transfer, a flipped bit in
  // flight): a fresh transfer of the same sector heals it. Bad bytes on
  // the platter do not, so after a bounded number of immediate re-reads
  // the mismatch is promoted to Corruption for the repair path.
  for (int attempt = 0; attempt < kChecksumRereads; ++attempt) {
    const Status reread = ReadPageOnce(id, page);
    if (reread.ok()) {
      actual = Crc32c(page->data, kPageSize);
      if (actual == expected) {
        IntegrityMetrics::Get().reread_healed->Increment();
        return Status::OK();
      }
    }
  }
  IntegrityMetrics::Get().corruption_errors->Increment();
  char crcs[64];
  std::snprintf(crcs, sizeof(crcs), "stored 0x%08x, computed 0x%08x",
                expected, actual);
  return Status::Corruption(
      "checksum mismatch on page " + std::to_string(id) + " of " + path_ +
      " (offset " + std::to_string(static_cast<uint64_t>(id) * kPageSize) +
      ", " + std::to_string(kPageSize) + " bytes): " + crcs);
}

void PageManager::StartChecksumTracking() {
  page_crcs_.assign(NumPages(), 0);
  crc_mode_.store(kCrcTrack, std::memory_order_release);
}

Status PageManager::FinalizeChecksums() {
  if (crc_mode_.load(std::memory_order_relaxed) != kCrcTrack) {
    return Status::InvalidArgument("FinalizeChecksums on " + path_ +
                                   " without StartChecksumTracking");
  }
  if (page_crcs_.size() != NumPages()) {
    return Status::Internal("checksum table for " + path_ + " covers " +
                            std::to_string(page_crcs_.size()) + " of " +
                            std::to_string(NumPages()) + " pages");
  }
  CT_RETURN_NOT_OK(WriteChecksumSidecar(path_, page_crcs_));
  crc_mode_.store(kCrcVerify, std::memory_order_release);
  return Status::OK();
}

Status PageManager::LoadChecksums() {
  std::vector<uint32_t> table;
  CT_RETURN_NOT_OK(LoadChecksumSidecar(path_, &table));
  if (table.size() != NumPages()) {
    return Status::Corruption(
        "checksum sidecar " + ChecksumSidecarPath(path_) + " covers " +
        std::to_string(table.size()) + " pages but " + path_ + " has " +
        std::to_string(NumPages()));
  }
  page_crcs_ = std::move(table);
  crc_mode_.store(kCrcVerify, std::memory_order_release);
  return Status::OK();
}

Status PageManager::WritePageAt(PageId id, const Page& page,
                                const char* failpoint) {
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome = FaultInjector::Instance().Check(failpoint);
    if (outcome.torn) {
      // Persist a prefix of the page, then report failure: the user-space
      // analog of a power cut mid-sector-write. Downstream readers must
      // treat the tail as garbage.
      (void)PwriteFully(fd_, page.data, kPageSize / 3, offset,
                        "torn pwrite " + path_);
      return outcome.ToStatus();
    }
    if (outcome.short_write) {
      // The volume filled up mid-page: the kernel accepted a prefix and
      // the retry loop got nothing more. Persist the prefix (the damage a
      // real ENOSPC leaves behind), then report the exact byte range the
      // way PwriteFully would.
      const size_t persisted = kPageSize / 3;
      (void)PwriteFully(fd_, page.data, persisted, offset,
                        "short pwrite " + path_);
      return Status::StorageFull(
          "short write to pwrite " + path_ + ": wanted " +
          std::to_string(kPageSize) + " bytes at offset " +
          std::to_string(static_cast<long long>(offset)) + ", got " +
          std::to_string(persisted));
    }
    if (outcome.fail) return outcome.ToStatus();
  }
  CT_RETURN_NOT_OK(
      PwriteFully(fd_, page.data, kPageSize, offset, "pwrite " + path_));
  if (crc_mode_.load(std::memory_order_relaxed) == kCrcTrack) {
    // Single-writer build thread (same discipline as appends): fold the
    // page into the table that FinalizeChecksums persists.
    if (page_crcs_.size() <= id) page_crcs_.resize(id + 1, 0);
    page_crcs_[id] = Crc32c(page.data, kPageSize);
  }
  return Status::OK();
}

Status PageManager::WritePage(PageId id, const Page& page) {
  if (id >= NumPages()) {
    return Status::InvalidArgument("write past end of page file " + path_);
  }
  CT_RETURN_NOT_OK(WritePageAt(id, page, "storage.page.write"));
  RecordWrite(id);
  return Status::OK();
}

Result<PageId> PageManager::AppendPage(const Page& page) {
  // Appends are single-writer per file (one build or refresh thread); the
  // atomic only keeps concurrent NumPages() probes race-free.
  const PageId id = NumPages();
  CT_RETURN_NOT_OK(WritePageAt(id, page, "storage.page.append"));
  num_pages_.store(id + 1, std::memory_order_relaxed);
  RecordWrite(id);
  return id;
}

Status PageManager::Sync() {
  CT_FAULT("storage.page.sync");
  return SyncFd(fd_, path_);
}

Status RemoveFileIfExists(const std::string& path) {
  CT_FAULT("storage.file.remove");
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

}  // namespace cubetree
