#include "storage/page_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <sys/stat.h>

#include "common/assert.h"
#include "fault/fault_injector.h"

namespace cubetree {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

// Read-path retry policy (see PageManager::SetReadRetryPolicy). Transient
// I/O errors — injected ones, or real hiccups of a loaded device — are
// retried a bounded number of times with exponential backoff before the
// error is surfaced, so a multi-hour load does not abort on a blip.
int g_read_retry_attempts = 4;
int g_read_retry_backoff_us = 100;

void BackoffBeforeRetry(int attempt) {
  if (g_read_retry_backoff_us <= 0) return;
  // attempt is 1-based: 1 -> base, 2 -> 2x base, 3 -> 4x base, ...
  ::usleep(static_cast<useconds_t>(g_read_retry_backoff_us) << (attempt - 1));
}

}  // namespace

Status PwriteFully(int fd, const void* buf, size_t count, off_t offset,
                   const std::string& context) {
  const char* cursor = static_cast<const char*>(buf);
  size_t left = count;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd, cursor, left, offset);
    if (n < 0) {
      if (errno == EINTR) continue;  // A signal is not a disk failure.
      return ErrnoStatus(context);
    }
    // A short write is not an error from the kernel's point of view;
    // keep writing the remainder rather than failing a multi-hour load.
    cursor += n;
    offset += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PreadFully(int fd, void* buf, size_t count, off_t offset,
                  const std::string& context) {
  char* cursor = static_cast<char*>(buf);
  size_t left = count;
  while (left > 0) {
    const ssize_t n = ::pread(fd, cursor, left, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus(context);
    }
    if (n == 0) {
      return Status::Corruption("short read from " + context);
    }
    cursor += n;
    offset += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd, const std::string& context) {
  if (::fsync(fd) != 0) return ErrnoStatus("fsync " + context);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir " + dir);
  Status status = SyncFd(fd, dir);
  ::close(fd);
  return status;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

PageManager::PageManager(std::string path, int fd, PageId num_pages,
                         std::shared_ptr<IoStats> stats)
    : path_(std::move(path)),
      fd_(fd),
      num_pages_(num_pages),
      stats_(std::move(stats)) {
  if (!stats_) stats_ = std::make_shared<IoStats>();
}

PageManager::~PageManager() {
  if (fd_ >= 0) ::close(fd_);
}

void PageManager::SetReadRetryPolicy(int max_attempts, int base_backoff_us) {
  g_read_retry_attempts = max_attempts < 1 ? 1 : max_attempts;
  g_read_retry_backoff_us = base_backoff_us < 0 ? 0 : base_backoff_us;
}

Result<std::unique_ptr<PageManager>> PageManager::Create(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  CT_FAULT("storage.page.create");
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create " + path);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, 0, std::move(stats)));
}

Result<std::unique_ptr<PageManager>> PageManager::Open(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  CT_FAULT("storage.page.open");
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("open " + path +
                                              ": no such file")
                           : ErrnoStatus("open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("stat " + path);
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("page file " + path +
                              " size is not page-aligned");
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, pages, std::move(stats)));
}

Result<std::unique_ptr<PageManager>> PageManager::OpenPrefix(
    const std::string& path, std::shared_ptr<IoStats> stats,
    uint64_t* trailing_bytes) {
  CT_FAULT("storage.page.open");
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return errno == ENOENT ? Status::NotFound("open " + path +
                                              ": no such file")
                           : ErrnoStatus("open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("stat " + path);
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  if (trailing_bytes != nullptr) {
    *trailing_bytes = static_cast<uint64_t>(st.st_size) -
                      static_cast<uint64_t>(pages) * kPageSize;
  }
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, pages, std::move(stats)));
}

void PageManager::RecordRead(PageId id) {
  if (last_read_page_ != kInvalidPageId && id == last_read_page_ + 1) {
    ++stats_->sequential_reads;
  } else {
    ++stats_->random_reads;
  }
  last_read_page_ = id;
}

void PageManager::RecordWrite(PageId id) {
  if ((last_write_page_ != kInvalidPageId && id == last_write_page_ + 1) ||
      (last_write_page_ == kInvalidPageId && id == 0)) {
    ++stats_->sequential_writes;
  } else {
    ++stats_->random_writes;
  }
  last_write_page_ = id;
}

Result<PageId> PageManager::AllocatePage() {
  Page zero;
  zero.Zero();
  return AppendPage(zero);
}

Status PageManager::ReadPageOnce(PageId id, Page* page) {
  CT_FAULT("storage.page.read");
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  return PreadFully(fd_, page->data, kPageSize, offset, "pread " + path_);
}

Status PageManager::ReadPage(PageId id, Page* page) {
  CT_DCHECK(page != nullptr);
  CT_DCHECK(fd_ >= 0) << "page file " << path_ << " not open";
  if (id >= num_pages_) {
    return Status::InvalidArgument("read past end of page file " + path_);
  }
  Status status;
  for (int attempt = 1; attempt <= g_read_retry_attempts; ++attempt) {
    if (attempt > 1) BackoffBeforeRetry(attempt - 1);
    status = ReadPageOnce(id, page);
    // Retry only transient-looking I/O errors; Corruption (short read,
    // torn file) will not heal by itself.
    if (status.ok() || !status.IsIOError()) break;
  }
  if (!status.ok()) return status;
  RecordRead(id);
  return Status::OK();
}

Status PageManager::WritePageAt(PageId id, const Page& page,
                                const char* failpoint) {
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome = FaultInjector::Instance().Check(failpoint);
    if (outcome.torn) {
      // Persist a prefix of the page, then report failure: the user-space
      // analog of a power cut mid-sector-write. Downstream readers must
      // treat the tail as garbage.
      (void)PwriteFully(fd_, page.data, kPageSize / 3, offset,
                        "torn pwrite " + path_);
      return outcome.ToStatus();
    }
    if (outcome.fail) return outcome.ToStatus();
  }
  return PwriteFully(fd_, page.data, kPageSize, offset, "pwrite " + path_);
}

Status PageManager::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_) {
    return Status::InvalidArgument("write past end of page file " + path_);
  }
  CT_RETURN_NOT_OK(WritePageAt(id, page, "storage.page.write"));
  RecordWrite(id);
  return Status::OK();
}

Result<PageId> PageManager::AppendPage(const Page& page) {
  const PageId id = num_pages_;
  CT_RETURN_NOT_OK(WritePageAt(id, page, "storage.page.append"));
  ++num_pages_;
  RecordWrite(id);
  return id;
}

Status PageManager::Sync() {
  CT_FAULT("storage.page.sync");
  return SyncFd(fd_, path_);
}

Status RemoveFileIfExists(const std::string& path) {
  CT_FAULT("storage.file.remove");
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

}  // namespace cubetree
