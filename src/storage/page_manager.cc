#include "storage/page_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <sys/stat.h>

#include "common/assert.h"

namespace cubetree {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

}  // namespace

PageManager::PageManager(std::string path, int fd, PageId num_pages,
                         std::shared_ptr<IoStats> stats)
    : path_(std::move(path)),
      fd_(fd),
      num_pages_(num_pages),
      stats_(std::move(stats)) {
  if (!stats_) stats_ = std::make_shared<IoStats>();
}

PageManager::~PageManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageManager>> PageManager::Create(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create " + path);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, 0, std::move(stats)));
}

Result<std::unique_ptr<PageManager>> PageManager::Open(
    const std::string& path, std::shared_ptr<IoStats> stats) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("stat " + path);
  }
  if (st.st_size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("page file " + path +
                              " size is not page-aligned");
  }
  PageId pages = static_cast<PageId>(st.st_size / kPageSize);
  return std::unique_ptr<PageManager>(
      new PageManager(path, fd, pages, std::move(stats)));
}

void PageManager::RecordRead(PageId id) {
  if (last_read_page_ != kInvalidPageId && id == last_read_page_ + 1) {
    ++stats_->sequential_reads;
  } else {
    ++stats_->random_reads;
  }
  last_read_page_ = id;
}

void PageManager::RecordWrite(PageId id) {
  if ((last_write_page_ != kInvalidPageId && id == last_write_page_ + 1) ||
      (last_write_page_ == kInvalidPageId && id == 0)) {
    ++stats_->sequential_writes;
  } else {
    ++stats_->random_writes;
  }
  last_write_page_ = id;
}

Result<PageId> PageManager::AllocatePage() {
  Page zero;
  zero.Zero();
  return AppendPage(zero);
}

Status PageManager::ReadPage(PageId id, Page* page) {
  CT_DCHECK(page != nullptr);
  CT_DCHECK(fd_ >= 0) << "page file " << path_ << " not open";
  if (id >= num_pages_) {
    return Status::InvalidArgument("read past end of page file " + path_);
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, page->data, kPageSize, offset);
  if (n < 0) return ErrnoStatus("pread " + path_);
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::Corruption("short read from " + path_);
  }
  RecordRead(id);
  return Status::OK();
}

Status PageManager::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_) {
    return Status::InvalidArgument("write past end of page file " + path_);
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, page.data, kPageSize, offset);
  if (n < 0) return ErrnoStatus("pwrite " + path_);
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IOError("short write to " + path_);
  }
  RecordWrite(id);
  return Status::OK();
}

Result<PageId> PageManager::AppendPage(const Page& page) {
  const PageId id = num_pages_;
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, page.data, kPageSize, offset);
  if (n < 0) return ErrnoStatus("append " + path_);
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IOError("short append to " + path_);
  }
  ++num_pages_;
  RecordWrite(id);
  return id;
}

Status PageManager::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_);
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink " + path);
  }
  return Status::OK();
}

}  // namespace cubetree
