#ifndef CUBETREE_STORAGE_CHECKSUM_H_
#define CUBETREE_STORAGE_CHECKSUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cubetree {

/// Checksum sidecar files: per-page CRC-32C tables for immutable page
/// files. A packed Cubetree is written once per epoch (merge-pack), so its
/// checksums are computed during the build and persisted next to the data
/// file as `<path>.crc`; every subsequent ReadPage verifies against the
/// table. The sidecar follows its data file through the whole lifecycle:
/// it is fsynced before the manifest names the tree, renamed aside on
/// quarantine, swept as an orphan during recovery, and unlinked by the
/// same GC token that unlinks the data file.
///
/// On-disk layout (little-endian):
///   u32 magic      'CTCK'
///   u32 version    1
///   u32 page_count N
///   u32 table_crc  CRC-32C over the N-entry table bytes
///   u32 crc[N]     per-page CRC-32C of the 8 KiB page image
///
/// The table_crc makes the sidecar self-verifying: a corrupt sidecar is
/// reported as Corruption (and quarantines the tree), never silently
/// trusted.

/// `<data_path>.crc`.
std::string ChecksumSidecarPath(const std::string& data_path);

/// Writes and fsyncs the sidecar for `data_path`. Consults the
/// `storage.checksum.finalize` failpoint before the durable write, so the
/// crash harness covers a crash between data-file sync and sidecar sync.
Status WriteChecksumSidecar(const std::string& data_path,
                            const std::vector<uint32_t>& page_crcs);

/// Loads the sidecar for `data_path` into `*page_crcs`. NotFound when no
/// sidecar exists (a pre-checksum file); Corruption — with path context —
/// when the sidecar is present but fails its own validation.
Status LoadChecksumSidecar(const std::string& data_path,
                           std::vector<uint32_t>* page_crcs);

/// Removes the sidecar of `data_path` if present.
Status RemoveChecksumSidecar(const std::string& data_path);

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_CHECKSUM_H_
