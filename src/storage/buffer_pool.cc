#include "storage/buffer_pool.h"

#include "common/assert.h"
#include "common/logging.h"
#include "common/query_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cubetree {

namespace {

/// Registry hooks for the pool's hot path; pointers resolved once.
struct PoolMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* budget_denied;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return PoolMetrics{reg.GetCounter("bufferpool.hits"),
                         reg.GetCounter("bufferpool.misses"),
                         reg.GetCounter("bufferpool.evictions"),
                         reg.GetCounter("bufferpool.budget_denied")};
    }();
    return m;
  }
};

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  CT_ASSERT(pool_ != nullptr) << "MarkDirty on an invalid PageHandle";
  pool_->MarkFrameDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    page_ = nullptr;
  }
}

BufferPool::BufferPool(size_t capacity_pages, MemoryBudget* memory_budget)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      memory_budget_(memory_budget) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  uint64_t charged = 0;
  {
    MutexLock lock(mu_);
    // A frame still pinned here means a PageHandle outlived the pool: its
    // page pointer is about to dangle. Surface the leak instead of
    // silently tearing down.
    const size_t pinned = PinnedPagesLocked();
    if (pinned > 0) {
      for (const Frame& f : frames_) {
        if (f.pin_count > 0) {
          CT_LOG(Error) << "buffer pool: page " << f.page_id << " of "
                        << (f.file != nullptr ? f.file->path() : "<none>")
                        << " still pinned " << f.pin_count
                        << " time(s) at pool shutdown";
        }
      }
      CT_DCHECK(pinned == 0)
          << pinned << " frame(s) still pinned at BufferPool shutdown";
    }
    charged = charged_bytes_;
  }
  // Best effort: write back whatever is dirty. Errors here cannot be
  // reported; production callers should FlushAll() explicitly.
  (void)FlushAll();
  if (memory_budget_ != nullptr && charged > 0) {
    memory_budget_->Release(charged);
  }
}

size_t BufferPool::PinnedPagesLocked() const {
  size_t pinned = 0;
  for (const Frame& f : frames_) {
    if (f.file != nullptr && f.pin_count > 0) ++pinned;
  }
  return pinned;
}

size_t BufferPool::PinnedPages() const {
  MutexLock lock(mu_);
  return PinnedPagesLocked();
}

void BufferPool::Unpin(size_t frame_index) {
  MutexLock lock(mu_);
  Frame& f = frames_[frame_index];
  CT_ASSERT(f.pin_count > 0) << "unpin of page " << f.page_id
                             << " with zero pin count";
  --f.pin_count;
  if (f.pin_count == 0 && !f.in_lru) {
    lru_.push_front(frame_index);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

void BufferPool::MarkFrameDirty(size_t frame_index) {
  MutexLock lock(mu_);
  frames_[frame_index].dirty = true;
}

Status BufferPool::EvictFrame(size_t frame_index, bool write_back) {
  Frame& f = frames_[frame_index];
  CT_DCHECK(f.pin_count == 0) << "evicting pinned page " << f.page_id;
  if (f.dirty && write_back) {
    CT_RETURN_NOT_OK(f.file->WritePage(f.page_id, *f.page));
    ++stats_.dirty_writebacks;
  }
  if (f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  page_table_.erase({f.file, f.page_id});
  f.file = nullptr;
  f.page_id = kInvalidPageId;
  f.dirty = false;
  return Status::OK();
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    if (frames_[idx].page) {
      free_frames_.pop_back();
      return idx;
    }
    // Frames allocate lazily; each first-time allocation is charged to the
    // process memory budget. When the budget denies a new frame the pool
    // degrades to its already-charged footprint by evicting instead, and
    // only surfaces the (retriable) denial when nothing is evictable.
    Status reserved =
        memory_budget_ == nullptr
            ? Status::OK()
            : memory_budget_->TryReserve(kPageSize, "buffer pool frame");
    if (reserved.ok()) {
      if (memory_budget_ != nullptr) charged_bytes_ += kPageSize;
      frames_[idx].page = std::make_unique<Page>();
      free_frames_.pop_back();
      return idx;
    }
    if (!reserved.ok()) PoolMetrics::Get().budget_denied->Increment();
    if (lru_.empty()) return reserved;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool: all frames pinned, cannot evict");
  }
  size_t victim = lru_.back();
  CT_RETURN_NOT_OK(EvictFrame(victim, /*write_back=*/true));
  ++stats_.evictions;
  PoolMetrics::Get().evictions->Increment();
  return victim;
}

Result<PageHandle> BufferPool::Fetch(PageManager* file, PageId id) {
  // Cancellation point even on the hit path: a hot query whose pages are
  // all cached must still notice its deadline within one page touch.
  if (const QueryContext* ctx = QueryContext::Current()) {
    CT_RETURN_NOT_OK(ctx->Check());
  }
  MutexLock lock(mu_);
  auto it = page_table_.find({file, id});
  if (it != page_table_.end()) {
    ++stats_.hits;
    PoolMetrics::Get().hits->Increment();
    obs::NotePoolHit();
    size_t idx = it->second;
    Frame& f = frames_[idx];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageHandle(this, idx, f.page.get(), id);
  }
  ++stats_.misses;
  PoolMetrics::Get().misses->Increment();
  CT_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  Status read = file->ReadPage(id, f.page.get());
  if (!read.ok()) {
    // Failed-read invariant: the frame must return to the free list fully
    // disassociated. GrabFrame hands out frames with f.file == nullptr
    // (fresh ones start that way; evicted ones were cleared by EvictFrame),
    // the page-table entry is only inserted after a successful read, and
    // f.file/page_id/pin_count are only assigned below — so pushing the
    // frame back leaks nothing and leaves no stale mapping for this (file,
    // id) or the evicted predecessor. Exercised by the
    // FetchReadError* regression tests under an armed storage.page.read
    // failpoint.
    free_frames_.push_back(idx);
    return read;
  }
  f.file = file;
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  page_table_[{file, id}] = idx;
  return PageHandle(this, idx, f.page.get(), id);
}

Result<PageHandle> BufferPool::New(PageManager* file) {
  MutexLock lock(mu_);
  CT_ASSIGN_OR_RETURN(PageId id, file->AllocatePage());
  CT_ASSIGN_OR_RETURN(size_t idx, GrabFrame());
  Frame& f = frames_[idx];
  f.page->Zero();
  f.file = file;
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  page_table_[{file, id}] = idx;
  return PageHandle(this, idx, f.page.get(), id);
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  for (Frame& f : frames_) {
    if (f.file != nullptr && f.dirty) {
      CT_RETURN_NOT_OK(f.file->WritePage(f.page_id, *f.page));
      ++stats_.dirty_writebacks;
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::DropFile(PageManager* file, bool write_back) {
  MutexLock lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.file == file) {
      if (f.pin_count != 0) {
        return Status::Internal("DropFile: page still pinned");
      }
      CT_RETURN_NOT_OK(EvictFrame(i, write_back));
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

}  // namespace cubetree
