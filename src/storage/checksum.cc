#include "storage/checksum.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include <sys/stat.h>

#include "common/coding.h"
#include "common/crc32.h"
#include "fault/fault_injector.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

constexpr uint32_t kSidecarMagic = 0x4B435443;  // 'CTCK'
constexpr uint32_t kSidecarVersion = 1;
constexpr size_t kSidecarHeaderBytes = 16;

}  // namespace

std::string ChecksumSidecarPath(const std::string& data_path) {
  return data_path + ".crc";
}

Status WriteChecksumSidecar(const std::string& data_path,
                            const std::vector<uint32_t>& page_crcs) {
  const std::string path = ChecksumSidecarPath(data_path);
  std::string blob(kSidecarHeaderBytes + page_crcs.size() * 4, '\0');
  char* table = blob.data() + kSidecarHeaderBytes;
  for (size_t i = 0; i < page_crcs.size(); ++i) {
    EncodeFixed32(table + i * 4, page_crcs[i]);
  }
  EncodeFixed32(blob.data(), kSidecarMagic);
  EncodeFixed32(blob.data() + 4, kSidecarVersion);
  EncodeFixed32(blob.data() + 8, static_cast<uint32_t>(page_crcs.size()));
  EncodeFixed32(blob.data() + 12, Crc32c(table, page_crcs.size() * 4));

  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoToStatus(errno, "create " + path);
  }
  Status status = PwriteFully(fd, blob.data(), blob.size(), 0, path);
  if (status.ok()) {
    // The sidecar must be durable before the manifest names its tree:
    // otherwise a crash could leave a committed tree whose checksums are
    // lost, which the loader would treat as corruption.
    status = FaultInjector::AnyArmed()
                 ? FaultInjector::Instance().MaybeFail(
                       "storage.checksum.finalize")
                 : Status::OK();
    if (status.ok()) status = SyncFd(fd, path);
  }
  ::close(fd);
  if (!status.ok()) (void)RemoveFileIfExists(path);
  return status;
}

Status LoadChecksumSidecar(const std::string& data_path,
                           std::vector<uint32_t>* page_crcs) {
  const std::string path = ChecksumSidecarPath(data_path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no checksum sidecar at " + path);
    }
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status =
        Status::IOError("stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  Status status;
  std::string blob;
  if (st.st_size < static_cast<off_t>(kSidecarHeaderBytes)) {
    status = Status::Corruption("checksum sidecar " + path +
                                " truncated: " + std::to_string(st.st_size) +
                                " bytes, header needs " +
                                std::to_string(kSidecarHeaderBytes));
  } else {
    blob.resize(static_cast<size_t>(st.st_size));
    status = PreadFully(fd, blob.data(), blob.size(), 0, "pread " + path);
  }
  ::close(fd);
  CT_RETURN_NOT_OK(status);

  if (DecodeFixed32(blob.data()) != kSidecarMagic) {
    return Status::Corruption("checksum sidecar " + path + ": bad magic");
  }
  if (DecodeFixed32(blob.data() + 4) != kSidecarVersion) {
    return Status::Corruption(
        "checksum sidecar " + path + ": unsupported version " +
        std::to_string(DecodeFixed32(blob.data() + 4)));
  }
  const uint32_t count = DecodeFixed32(blob.data() + 8);
  if (blob.size() != kSidecarHeaderBytes + static_cast<size_t>(count) * 4) {
    return Status::Corruption(
        "checksum sidecar " + path + ": size " + std::to_string(blob.size()) +
        " does not match page count " + std::to_string(count));
  }
  const char* table = blob.data() + kSidecarHeaderBytes;
  const uint32_t table_crc = Crc32c(table, static_cast<size_t>(count) * 4);
  if (table_crc != DecodeFixed32(blob.data() + 12)) {
    return Status::Corruption("checksum sidecar " + path +
                              ": table checksum mismatch");
  }
  page_crcs->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    (*page_crcs)[i] = DecodeFixed32(table + static_cast<size_t>(i) * 4);
  }
  return Status::OK();
}

Status RemoveChecksumSidecar(const std::string& data_path) {
  return RemoveFileIfExists(ChecksumSidecarPath(data_path));
}

}  // namespace cubetree
