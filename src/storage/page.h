#ifndef CUBETREE_STORAGE_PAGE_H_
#define CUBETREE_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace cubetree {

/// All persistent structures (heap tables, B+-trees, packed R-trees) are laid
/// out in fixed-size pages; this is the unit of I/O and of buffer-pool
/// caching.
inline constexpr size_t kPageSize = 8192;

/// Page number within one file, starting at 0.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// A raw page image. Callers overlay their own layouts on `data`.
struct Page {
  char data[kPageSize];

  void Zero() { std::memset(data, 0, sizeof(data)); }
};

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_PAGE_H_
