#ifndef CUBETREE_STORAGE_IO_STATS_H_
#define CUBETREE_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

#include "storage/page.h"

namespace cubetree {

/// Physical I/O counters, split by access pattern. The split matters because
/// the paper's headline ratios (16:1 load, 100:1 refresh) are dominated by
/// the sequential-vs-random asymmetry of late-90s disks; DiskModel converts
/// these counters into modeled seconds on such a disk.
///
/// One IoStats is shared (via shared_ptr) by every PageManager of a
/// configuration, and with online serving those PageManagers run on many
/// threads at once, so the counters are relaxed atomics: increments never
/// tear, while copies taken for before/after deltas are per-field snapshots
/// (exact once the measured phase has quiesced, which is how every bench
/// uses them). The struct stays copyable so call sites keep treating it as
/// a value type.
struct IoStats {
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> random_reads{0};
  std::atomic<uint64_t> sequential_writes{0};
  std::atomic<uint64_t> random_writes{0};

  IoStats() = default;
  IoStats(uint64_t seq_reads, uint64_t rand_reads, uint64_t seq_writes,
          uint64_t rand_writes)
      : sequential_reads(seq_reads),
        random_reads(rand_reads),
        sequential_writes(seq_writes),
        random_writes(rand_writes) {}
  IoStats(const IoStats& other) { *this = other; }
  IoStats& operator=(const IoStats& other) {
    sequential_reads.store(
        other.sequential_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    random_reads.store(other.random_reads.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    sequential_writes.store(
        other.sequential_writes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    random_writes.store(other.random_writes.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  uint64_t TotalReads() const { return sequential_reads + random_reads; }
  uint64_t TotalWrites() const { return sequential_writes + random_writes; }
  uint64_t TotalOps() const { return TotalReads() + TotalWrites(); }
  uint64_t TotalBytes() const { return TotalOps() * kPageSize; }

  void Clear() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    sequential_reads += other.sequential_reads.load(std::memory_order_relaxed);
    random_reads += other.random_reads.load(std::memory_order_relaxed);
    sequential_writes +=
        other.sequential_writes.load(std::memory_order_relaxed);
    random_writes += other.random_writes.load(std::memory_order_relaxed);
    return *this;
  }

  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.sequential_reads -= b.sequential_reads.load(std::memory_order_relaxed);
    a.random_reads -= b.random_reads.load(std::memory_order_relaxed);
    a.sequential_writes -=
        b.sequential_writes.load(std::memory_order_relaxed);
    a.random_writes -= b.random_writes.load(std::memory_order_relaxed);
    return a;
  }
};

/// Cost model of the storage device the paper ran on (single disk on an
/// Ultra Sparc I, 1997): a random page access pays a seek+rotation penalty,
/// a sequential page access streams at the transfer rate.
struct DiskModel {
  /// Average positioning time (seek + rotational latency) per random access.
  double seek_seconds = 0.010;
  /// Sustained sequential transfer rate in bytes/second.
  double transfer_bytes_per_second = 8.0 * 1024 * 1024;

  double PageTransferSeconds() const {
    return static_cast<double>(kPageSize) / transfer_bytes_per_second;
  }

  /// Modeled elapsed seconds to perform the accesses in `stats`.
  double ModeledSeconds(const IoStats& stats) const {
    const double transfers =
        static_cast<double>(stats.TotalOps()) * PageTransferSeconds();
    const double seeks =
        static_cast<double>(stats.random_reads + stats.random_writes) *
        seek_seconds;
    return transfers + seeks;
  }
};

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_IO_STATS_H_
