#ifndef CUBETREE_STORAGE_IO_STATS_H_
#define CUBETREE_STORAGE_IO_STATS_H_

#include <cstdint>

#include "storage/page.h"

namespace cubetree {

/// Physical I/O counters, split by access pattern. The split matters because
/// the paper's headline ratios (16:1 load, 100:1 refresh) are dominated by
/// the sequential-vs-random asymmetry of late-90s disks; DiskModel converts
/// these counters into modeled seconds on such a disk.
struct IoStats {
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_writes = 0;
  uint64_t random_writes = 0;

  uint64_t TotalReads() const { return sequential_reads + random_reads; }
  uint64_t TotalWrites() const { return sequential_writes + random_writes; }
  uint64_t TotalOps() const { return TotalReads() + TotalWrites(); }
  uint64_t TotalBytes() const { return TotalOps() * kPageSize; }

  void Clear() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    sequential_reads += other.sequential_reads;
    random_reads += other.random_reads;
    sequential_writes += other.sequential_writes;
    random_writes += other.random_writes;
    return *this;
  }

  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.sequential_reads -= b.sequential_reads;
    a.random_reads -= b.random_reads;
    a.sequential_writes -= b.sequential_writes;
    a.random_writes -= b.random_writes;
    return a;
  }
};

/// Cost model of the storage device the paper ran on (single disk on an
/// Ultra Sparc I, 1997): a random page access pays a seek+rotation penalty,
/// a sequential page access streams at the transfer rate.
struct DiskModel {
  /// Average positioning time (seek + rotational latency) per random access.
  double seek_seconds = 0.010;
  /// Sustained sequential transfer rate in bytes/second.
  double transfer_bytes_per_second = 8.0 * 1024 * 1024;

  double PageTransferSeconds() const {
    return static_cast<double>(kPageSize) / transfer_bytes_per_second;
  }

  /// Modeled elapsed seconds to perform the accesses in `stats`.
  double ModeledSeconds(const IoStats& stats) const {
    const double transfers =
        static_cast<double>(stats.TotalOps()) * PageTransferSeconds();
    const double seeks =
        static_cast<double>(stats.random_reads + stats.random_writes) *
        seek_seconds;
    return transfers + seeks;
  }
};

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_IO_STATS_H_
