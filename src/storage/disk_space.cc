#include "storage/disk_space.h"

#include <sys/statvfs.h>

#include <cerrno>
#include <cstdlib>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace cubetree {

namespace {

/// Headroom left on the volume when CUBETREE_DISK_RESERVE_BYTES is unset:
/// enough for manifests, journals and operator tooling, small enough not
/// to matter on any volume a store would actually run on.
constexpr uint64_t kDefaultReserveBytes = 16ull << 20;

struct DiskMetrics {
  obs::Gauge* free_bytes;
  obs::Counter* preflight_refusals;

  static const DiskMetrics& Get() {
    static const DiskMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Instance();
      return DiskMetrics{reg.GetGauge("disk.free_bytes"),
                         reg.GetCounter("disk.preflight_refusals")};
    }();
    return m;
  }
};

}  // namespace

uint64_t DiskSpaceManager::ReserveBytesFromEnv() {
  const char* env = std::getenv("CUBETREE_DISK_RESERVE_BYTES");
  if (env == nullptr || env[0] == '\0') return kDefaultReserveBytes;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') {
    CT_LOG(Warn) << "CUBETREE_DISK_RESERVE_BYTES ignored: '" << env
                 << "' is not a byte count";
    return kDefaultReserveBytes;
  }
  return static_cast<uint64_t>(n);
}

Result<DiskSpaceInfo> DiskSpaceManager::Probe() const {
  if (FaultInjector::AnyArmed()) {
    CT_RETURN_NOT_OK(FaultInjector::Instance().MaybeFail("disk.probe"));
  }
  struct statvfs vfs;
  if (::statvfs(options_.dir.c_str(), &vfs) != 0) {
    return ErrnoToStatus(errno, "statvfs " + options_.dir);
  }
  DiskSpaceInfo info;
  // f_bavail is what an unprivileged writer can actually use; f_frsize is
  // the fragment size those counts are denominated in (f_bsize on
  // filesystems that do not distinguish the two).
  const uint64_t unit =
      vfs.f_frsize != 0 ? vfs.f_frsize : static_cast<uint64_t>(vfs.f_bsize);
  info.free_bytes = static_cast<uint64_t>(vfs.f_bavail) * unit;
  info.reserve_bytes = options_.reserve_bytes;
  DiskMetrics::Get().free_bytes->Set(static_cast<int64_t>(info.free_bytes));
  return info;
}

Status DiskSpaceManager::Preflight(uint64_t estimated_bytes) const {
  // The failpoint makes "a volume with no room" reproducible on a test
  // machine with terabytes free; an injected refusal is indistinguishable
  // from a real one to every caller.
  if (FaultInjector::AnyArmed()) {
    FaultOutcome outcome = FaultInjector::Instance().Check("disk.preflight");
    if (outcome.fail) {
      return Status::StorageFull(
          "refresh needs an estimated " + std::to_string(estimated_bytes) +
          " bytes but the volume under " + options_.dir +
          " has no usable space (injected at disk.preflight); need " +
          std::to_string(estimated_bytes) + " more bytes");
    }
  }
  CT_ASSIGN_OR_RETURN(DiskSpaceInfo info, Probe());
  if (estimated_bytes <= info.usable_bytes()) return Status::OK();
  DiskMetrics::Get().preflight_refusals->Increment();
  const uint64_t shortfall = estimated_bytes - info.usable_bytes();
  return Status::StorageFull(
      "refresh needs an estimated " + std::to_string(estimated_bytes) +
      " bytes but the volume under " + options_.dir + " has only " +
      std::to_string(info.usable_bytes()) + " usable (" +
      std::to_string(info.free_bytes) + " free minus " +
      std::to_string(info.reserve_bytes) + " reserve); need " +
      std::to_string(shortfall) + " more bytes");
}

uint64_t EstimateRefreshBytes(uint64_t live_tree_bytes,
                              uint64_t delta_input_bytes,
                              unsigned concurrent_packs) {
  const uint64_t packed = live_tree_bytes + delta_input_bytes;
  const uint64_t packed_pages = (packed + kPageSize - 1) / kPageSize;
  const uint64_t sidecars = packed_pages * 4 + 1024;
  const uint64_t runs = 2 * delta_input_bytes;
  const uint64_t packs = concurrent_packs > 1 ? concurrent_packs : 1;
  const uint64_t slack = (packs - 1) * kRefreshPackerSlackBytes;
  return packed + sidecars + runs + slack;
}

}  // namespace cubetree
