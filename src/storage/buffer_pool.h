#ifndef CUBETREE_STORAGE_BUFFER_POOL_H_
#define CUBETREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace cubetree {

class BufferPool;

/// RAII pin on a buffered page. While a handle is alive the frame cannot be
/// evicted. Call MarkDirty() after mutating the page image so the pool
/// writes it back on eviction/flush.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  Page* page() const { return page_; }
  char* data() const { return page_->data; }
  PageId id() const { return id_; }
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, Page* page, PageId id)
      : pool_(pool), frame_(frame), page_(page), id_(id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  Page* page_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// Cache hit/miss accounting for the pool.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  void Clear() { *this = BufferPoolStats{}; }
};

/// Fixed-capacity LRU buffer pool shared by every paged structure of one
/// engine configuration. Capacity is given in pages; the default benchmark
/// configuration sizes it to the paper's 32 MB machine.
///
/// Thread-safe: one internal mutex serializes all frame bookkeeping,
/// including the disk read of a miss (the pool is an LRU cache, not a
/// parallel I/O scheduler — see DESIGN.md §9). Fetch is additionally a
/// cancellation point for the ambient QueryContext, so queries observing a
/// deadline abort even when every page they touch is already cached.
///
/// When constructed with a MemoryBudget, each lazily allocated frame
/// charges one page against it; a denied charge surfaces as
/// ResourceExhausted (retriable) instead of growing past the budget.
class BufferPool {
 public:
  explicit BufferPool(size_t capacity_pages,
                      MemoryBudget* memory_budget = nullptr);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle on page (file, id), reading it from disk on a
  /// miss. Fails with ResourceExhausted if every frame is pinned.
  Result<PageHandle> Fetch(PageManager* file, PageId id) EXCLUDES(mu_);

  /// Allocates a fresh zeroed page in `file` and returns it pinned and
  /// dirty.
  Result<PageHandle> New(PageManager* file) EXCLUDES(mu_);

  /// Writes back all dirty pages (keeps them cached).
  Status FlushAll() EXCLUDES(mu_);

  /// Writes back and evicts every cached page of `file`. Must be called
  /// before closing or replacing a file that went through the pool.
  Status DropFile(PageManager* file, bool write_back = true) EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  /// Number of frames currently pinned by live PageHandles. Nonzero at
  /// shutdown means a handle leaked (the destructor logs and, under
  /// CT_DCHECK, aborts); the invariant checker reports it as a finding.
  size_t PinnedPages() const EXCLUDES(mu_);
  /// Counter reads are safe only once concurrent pool activity has
  /// quiesced (how every bench and checker uses them) — hence the analysis
  /// opt-out rather than a lock acquisition.
  const BufferPoolStats& stats() const NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  BufferPoolStats* mutable_stats() NO_THREAD_SAFETY_ANALYSIS {
    return &stats_;
  }

 private:
  friend class PageHandle;

  struct Frame {
    PageManager* file = nullptr;
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<Page> page;
    // Position in lru_ when unpinned; lru_.end() while pinned.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  using Key = std::pair<const PageManager*, PageId>;

  void Unpin(size_t frame_index) EXCLUDES(mu_);
  void MarkFrameDirty(size_t frame_index) EXCLUDES(mu_);
  // The private helpers below expect mu_ held by the caller.
  size_t PinnedPagesLocked() const REQUIRES(mu_);
  /// Finds a frame to (re)use, evicting the LRU unpinned page if needed.
  Result<size_t> GrabFrame() REQUIRES(mu_);
  Status EvictFrame(size_t frame_index, bool write_back) REQUIRES(mu_);

  size_t capacity_;
  MemoryBudget* memory_budget_;
  uint64_t charged_bytes_ GUARDED_BY(mu_) = 0;
  mutable Mutex mu_;
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ GUARDED_BY(mu_);
  std::map<Key, size_t> page_table_ GUARDED_BY(mu_);
  /// Front = most recent, back = eviction victim.
  std::list<size_t> lru_ GUARDED_BY(mu_);
  BufferPoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_BUFFER_POOL_H_
