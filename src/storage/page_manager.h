#ifndef CUBETREE_STORAGE_PAGE_MANAGER_H_
#define CUBETREE_STORAGE_PAGE_MANAGER_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace cubetree {

/// A PageManager owns one on-disk page file: it allocates, reads and writes
/// fixed-size pages, and classifies each physical access as sequential
/// (follows the previously accessed page) or random, feeding a shared
/// IoStats. All structures in the library do their physical I/O through this
/// class so benchmarks can account for every page touched.
///
/// Thread-safe for concurrent reads and appends: pread/pwrite carry their
/// own offsets, the page count and the sequential-vs-random classification
/// heads are atomics, and the shared IoStats counters are relaxed atomics.
/// Concurrent readers may skew the sequential/random *classification* of
/// each other's accesses (the heads are heuristic), but never the totals.
class PageManager {
 public:
  /// Creates (truncating) a new page file at `path`. `stats` may be shared
  /// across files to aggregate I/O for a whole configuration; pass nullptr
  /// for private stats.
  static Result<std::unique_ptr<PageManager>> Create(
      const std::string& path, std::shared_ptr<IoStats> stats = nullptr);

  /// Opens an existing page file. Fails if the size is not page-aligned.
  static Result<std::unique_ptr<PageManager>> Open(
      const std::string& path, std::shared_ptr<IoStats> stats = nullptr);

  /// Opens an existing page file tolerantly: a non-page-aligned size (the
  /// aftermath of a crash mid-append) is not an error. Only the whole-page
  /// prefix is visible through NumPages(); the length of the ragged tail is
  /// reported through `trailing_bytes` (may be nullptr). Used by tolerant
  /// WAL replay during recovery.
  static Result<std::unique_ptr<PageManager>> OpenPrefix(
      const std::string& path, std::shared_ptr<IoStats> stats,
      uint64_t* trailing_bytes);

  /// Configures the retry loop on the read path (process-wide). A
  /// transient IOError from pread — injected or real — is retried with
  /// jittered exponential backoff: before retry k the thread sleeps a
  /// uniform draw from [2^(k-1)·base/2, 2^(k-1)·base] microseconds, so
  /// concurrent readers hitting the same transient fault do not
  /// re-converge into a synchronized retry storm. Callers without an
  /// ambient QueryContext deadline get at most `max_attempts` attempts;
  /// under a deadline the attempt count is unbounded and the loop instead
  /// retries until the deadline expires (sleeps are clipped to the time
  /// remaining). Tests set the backoff to 0 to keep fault sweeps fast.
  /// Defaults: 4 attempts, 100us.
  static void SetReadRetryPolicy(int max_attempts, int base_backoff_us);

  ~PageManager();

  PageManager(const PageManager&) = delete;
  PageManager& operator=(const PageManager&) = delete;

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at page `id`; `id` must be < NumPages().
  Status WritePage(PageId id, const Page& page);

  /// Appends `page` at the end of the file (always a sequential write) and
  /// returns its id. This is the packed-structure bulk-write path.
  Result<PageId> AppendPage(const Page& page);

  /// Flushes the file to stable storage.
  Status Sync();

  /// --- Per-page checksums (end-to-end integrity) ----------------------
  /// Packed structures are immutable once built, so their checksums are
  /// computed exactly once: the builder calls StartChecksumTracking()
  /// right after Create(), every WritePage/AppendPage folds the page into
  /// an in-memory CRC-32C table, and FinalizeChecksums() persists the
  /// table to the `<path>.crc` sidecar and arms verify-on-read. Readers
  /// re-open with LoadChecksums(). Verification happens inside ReadPage —
  /// beneath the buffer pool — so every physical page entering the process
  /// is checked, whether it came through the pool or a direct scan.
  ///
  /// Single-writer like appends: tracking happens on the one build thread;
  /// once verify mode is published (release store) the table is immutable
  /// and concurrent readers verify lock-free.

  /// Begins tracking per-page checksums of subsequent writes.
  void StartChecksumTracking();

  /// Persists the tracked table as the `<path>.crc` sidecar (durably) and
  /// switches this manager to verify-on-read. Call after Sync().
  Status FinalizeChecksums();

  /// Loads the sidecar written by FinalizeChecksums and arms
  /// verify-on-read. NotFound when no sidecar exists (a pre-checksum
  /// file: reads stay unverified); Corruption when the sidecar is present
  /// but invalid.
  Status LoadChecksums();

  /// True when ReadPage verifies every page against a checksum table.
  bool checksums_enabled() const {
    return crc_mode_.load(std::memory_order_acquire) == kCrcVerify;
  }

  PageId NumPages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  uint64_t FileSizeBytes() const {
    return static_cast<uint64_t>(NumPages()) * kPageSize;
  }
  const std::string& path() const { return path_; }
  const IoStats& stats() const { return *stats_; }
  const std::shared_ptr<IoStats>& shared_stats() const { return stats_; }

 private:
  PageManager(std::string path, int fd, PageId num_pages,
              std::shared_ptr<IoStats> stats);

  enum CrcMode : int { kCrcOff = 0, kCrcTrack = 1, kCrcVerify = 2 };

  Status ReadPageOnce(PageId id, Page* page);
  Status WritePageAt(PageId id, const Page& page, const char* failpoint);
  /// Verifies `*page` against the loaded table; on mismatch performs a
  /// small number of immediate re-reads (transient transfer corruption
  /// heals, bad bytes on the platter do not) before surfacing Corruption.
  Status VerifyPageChecksum(PageId id, Page* page);
  void RecordRead(PageId id);
  void RecordWrite(PageId id);

  std::string path_;
  int fd_;
  std::atomic<PageId> num_pages_;
  std::shared_ptr<IoStats> stats_;
  /// kCrcOff -> kCrcTrack -> kCrcVerify, transitions on the single build
  /// thread; the release store of kCrcVerify publishes page_crcs_ to
  /// readers, which from then on treat it as immutable.
  std::atomic<int> crc_mode_{kCrcOff};
  std::vector<uint32_t> page_crcs_;
  // Heads used to classify accesses as sequential vs random. Atomic so
  // concurrent readers stay race-free; the classification itself remains a
  // single-stream heuristic.
  std::atomic<PageId> last_read_page_{kInvalidPageId};
  std::atomic<PageId> last_write_page_{kInvalidPageId};
};

/// Deletes the file at `path` if it exists. Used by tests and benches to
/// reset workspaces.
Status RemoveFileIfExists(const std::string& path);

/// Maps an errno from a write-side syscall to a typed Status: ENOSPC and
/// EDQUOT become the retriable StorageFull, everything else IOError.
/// `context` labels the message (usually the operation plus file path).
Status ErrnoToStatus(int err, const std::string& context);

/// pwrite(2) the full buffer at `offset`, looping over partial writes and
/// retrying EINTR. `context` labels errors (usually the file path).
/// ENOSPC/EDQUOT — and a pwrite that accepts zero bytes with data left —
/// surface as StorageFull naming the path, offset, wanted and got bytes.
Status PwriteFully(int fd, const void* buf, size_t count, off_t offset,
                   const std::string& context);

/// pread(2) the full buffer at `offset`, looping over short reads and
/// retrying EINTR. Hitting EOF before `count` bytes is Corruption.
Status PreadFully(int fd, void* buf, size_t count, off_t offset,
                  const std::string& context);

/// fsync(2) with a Status result; `context` labels errors.
Status SyncFd(int fd, const std::string& context);

/// Opens and fsyncs a directory, making preceding renames/creates/unlinks
/// within it durable. Required between the steps of an atomic-rename commit.
Status SyncDir(const std::string& dir);

bool FileExists(const std::string& path);

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_PAGE_MANAGER_H_
