#ifndef CUBETREE_STORAGE_PAGE_MANAGER_H_
#define CUBETREE_STORAGE_PAGE_MANAGER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace cubetree {

/// A PageManager owns one on-disk page file: it allocates, reads and writes
/// fixed-size pages, and classifies each physical access as sequential
/// (follows the previously accessed page) or random, feeding a shared
/// IoStats. All structures in the library do their physical I/O through this
/// class so benchmarks can account for every page touched.
///
/// Single-threaded by design, like the single-CPU/single-disk platform the
/// paper evaluates on.
class PageManager {
 public:
  /// Creates (truncating) a new page file at `path`. `stats` may be shared
  /// across files to aggregate I/O for a whole configuration; pass nullptr
  /// for private stats.
  static Result<std::unique_ptr<PageManager>> Create(
      const std::string& path, std::shared_ptr<IoStats> stats = nullptr);

  /// Opens an existing page file. Fails if the size is not page-aligned.
  static Result<std::unique_ptr<PageManager>> Open(
      const std::string& path, std::shared_ptr<IoStats> stats = nullptr);

  ~PageManager();

  PageManager(const PageManager&) = delete;
  PageManager& operator=(const PageManager&) = delete;

  /// Extends the file by one zeroed page and returns its id.
  Result<PageId> AllocatePage();

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at page `id`; `id` must be < NumPages().
  Status WritePage(PageId id, const Page& page);

  /// Appends `page` at the end of the file (always a sequential write) and
  /// returns its id. This is the packed-structure bulk-write path.
  Result<PageId> AppendPage(const Page& page);

  /// Flushes the file to stable storage.
  Status Sync();

  PageId NumPages() const { return num_pages_; }
  uint64_t FileSizeBytes() const {
    return static_cast<uint64_t>(num_pages_) * kPageSize;
  }
  const std::string& path() const { return path_; }
  const IoStats& stats() const { return *stats_; }
  const std::shared_ptr<IoStats>& shared_stats() const { return stats_; }

 private:
  PageManager(std::string path, int fd, PageId num_pages,
              std::shared_ptr<IoStats> stats);

  void RecordRead(PageId id);
  void RecordWrite(PageId id);

  std::string path_;
  int fd_;
  PageId num_pages_;
  std::shared_ptr<IoStats> stats_;
  // Heads used to classify accesses as sequential vs random.
  PageId last_read_page_ = kInvalidPageId;
  PageId last_write_page_ = kInvalidPageId;
};

/// Deletes the file at `path` if it exists. Used by tests and benches to
/// reset workspaces.
Status RemoveFileIfExists(const std::string& path);

}  // namespace cubetree

#endif  // CUBETREE_STORAGE_PAGE_MANAGER_H_
