#include "fault/fault_injector.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/result.h"

namespace cubetree {

namespace {

/// Every failpoint in the codebase, with the operation it interrupts. Call
/// sites consult these names through CT_FAULT / FaultInjector::Check; the
/// crash-recovery harness enumerates this table and crashes a refresh at
/// each entry.
const FaultInjector::PointInfo kRegistry[] = {
    {"storage.page.create", "creating (truncating) a page file"},
    {"storage.page.open", "opening an existing page file"},
    {"storage.page.read", "reading one page (retried with backoff)"},
    {"storage.page.write", "writing one page in place (torn-capable)"},
    {"storage.page.append", "appending one page (torn-capable)"},
    {"storage.page.sync", "fsync of a page file"},
    {"storage.file.remove", "unlinking a file"},
    {"wal.create", "creating a write-ahead log"},
    {"wal.force", "WAL commit: flush partial page + fsync"},
    {"sort.spill", "spilling a sorted run to disk"},
    {"sort.merge", "merging spilled runs"},
    {"sort.finish", "finalizing the external sort"},
    {"spool.seal", "sealing a record spool (flushing its tail page)"},
    {"rtree.build.start", "start of a packed R-tree bulk build"},
    {"rtree.build.sync", "fsync of a freshly built R-tree file"},
    {"storage.checksum.finalize", "writing a page file's checksum sidecar"},
    {"obs.querylog.rotate", "rotating a query/slow-trace log segment"},
    {"disk.probe", "statvfs free-space probe of the store's volume"},
    {"disk.preflight", "refresh disk-space preflight (forced refusal)"},
    {"forest.manifest.create", "creating the manifest tmp file"},
    {"forest.manifest.write", "writing the manifest tmp contents"},
    {"forest.manifest.sync", "fsync of the manifest tmp file"},
    {"forest.manifest.rename", "renaming manifest tmp into place"},
    {"forest.manifest.dirsync", "fsync of the forest directory"},
    {"forest.journal.append", "appending to the refresh journal"},
    {"forest.refresh.begin", "after the refresh journal's begin record"},
    {"forest.refresh.build", "after building one tree's next generation"},
    {"forest.refresh.commit", "after the durable manifest swap"},
    {"forest.refresh.gc", "before unlinking one retired tree file"},
    {"forest.recover.gc", "before unlinking one orphaned file in recovery"},
};

Status BadSpec(const std::string& failpoint, const std::string& spec,
               const char* why) {
  return Status::InvalidArgument("failpoint " + failpoint + ": bad spec '" +
                                 spec + "' (" + why + ")");
}

Result<FaultSpec> ParseSpec(const std::string& failpoint,
                            const std::string& text) {
  FaultSpec spec;
  std::string body = text;
  // Optional trailing @N selects the triggering hit.
  if (const size_t at = body.find('@'); at != std::string::npos) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(body.c_str() + at + 1, &end, 10);
    if (end == nullptr || *end != '\0' || n == 0) {
      return BadSpec(failpoint, text, "@N needs a positive hit index");
    }
    spec.trigger_on_hit = static_cast<uint32_t>(n);
    body.resize(at);
  }
  // Optional (K) bounds the number of triggers (transient faults).
  if (const size_t paren = body.find('('); paren != std::string::npos) {
    if (body.back() != ')') {
      return BadSpec(failpoint, text, "unbalanced parenthesis");
    }
    char* end = nullptr;
    const unsigned long k = std::strtoul(body.c_str() + paren + 1, &end, 10);
    if (end == nullptr || *end != ')' || k == 0) {
      return BadSpec(failpoint, text, "(K) needs a positive trigger count");
    }
    spec.max_triggers = static_cast<uint32_t>(k);
    body.resize(paren);
  }
  if (body == "error") {
    spec.action = FaultAction::kError;
  } else if (body == "torn") {
    spec.action = FaultAction::kTorn;
  } else if (body == "crash") {
    spec.action = FaultAction::kCrash;
  } else if (body == "throw") {
    spec.action = FaultAction::kThrow;
  } else if (body == "bitflip") {
    spec.action = FaultAction::kBitflip;
  } else if (body == "corrupt_page") {
    spec.action = FaultAction::kCorruptPage;
  } else if (body == "enospc") {
    spec.action = FaultAction::kEnospc;
  } else if (body == "short_write") {
    spec.action = FaultAction::kShortWrite;
  } else {
    return BadSpec(failpoint, text,
                   "action must be error, torn, crash, throw, bitflip, "
                   "corrupt_page, enospc or short_write");
  }
  return spec;
}

/// CT_FAULT's fast path never calls Instance() while armed_count() is
/// zero, so the CUBETREE_FAILPOINTS parse inside Instance() would never
/// run in a binary that only arms through the environment. Force it at
/// static-initialization time instead; arming bumps armed_count(), which
/// is all the fast path looks at.
[[maybe_unused]] const bool g_env_failpoints_loaded =
    (FaultInjector::Instance(), true);

}  // namespace

Status FaultOutcome::ToStatus() const {
  if (!fail) return Status::OK();
  if (enospc || short_write) {
    return Status::StorageFull("injected disk full at " + failpoint +
                               (short_write ? " (short write)" : ""));
  }
  return Status::IOError("injected fault at " + failpoint +
                         (torn ? " (torn write)" : ""));
}

std::atomic<int>& FaultInjector::armed_count() {
  static std::atomic<int> count{0};
  return count;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = [] {
    // ct-lint: allow(no-naked-new)
    auto* injector = new FaultInjector();  // Intentionally leaked singleton.
    if (const char* env = std::getenv("CUBETREE_FAILPOINTS");
        env != nullptr && env[0] != '\0') {
      Status status = injector->ParseAndArm(env);
      if (!status.ok()) {
        CT_LOG(Warn) << "CUBETREE_FAILPOINTS ignored: " << status.ToString();
        injector->DisarmAll();
      }
    }
    return injector;
  }();
  return *instance;
}

const std::vector<FaultInjector::PointInfo>& FaultInjector::RegisteredPoints() {
  static const std::vector<PointInfo> points(std::begin(kRegistry),
                                             std::end(kRegistry));
  return points;
}

bool FaultInjector::IsRegistered(const std::string& failpoint) {
  for (const PointInfo& point : RegisteredPoints()) {
    if (failpoint == point.name) return true;
  }
  return false;
}

Status FaultInjector::Arm(const std::string& failpoint, FaultSpec spec) {
  if (!IsRegistered(failpoint)) {
    return Status::InvalidArgument("unknown failpoint: " + failpoint);
  }
  MutexLock lock(mu_);
  auto [it, inserted] = armed_.insert_or_assign(failpoint, Armed{spec, 0, 0});
  (void)it;
  if (inserted) armed_count().fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjector::Arm(const std::string& failpoint,
                          const std::string& spec) {
  CT_ASSIGN_OR_RETURN(FaultSpec parsed, ParseSpec(failpoint, spec));
  return Arm(failpoint, parsed);
}

void FaultInjector::Disarm(const std::string& failpoint) {
  MutexLock lock(mu_);
  if (armed_.erase(failpoint) > 0) {
    armed_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  MutexLock lock(mu_);
  armed_count().fetch_sub(static_cast<int>(armed_.size()),
                          std::memory_order_relaxed);
  armed_.clear();
}

Status FaultInjector::ParseAndArm(const std::string& config) {
  size_t begin = 0;
  while (begin < config.size()) {
    size_t end = config.find_first_of(";,", begin);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry '" + entry +
                                     "' is not name=spec");
    }
    CT_RETURN_NOT_OK(Arm(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

uint64_t FaultInjector::HitCount(const std::string& failpoint) const {
  MutexLock lock(mu_);
  auto it = hits_.find(failpoint);
  return it == hits_.end() ? 0 : it->second;
}

FaultOutcome FaultInjector::Check(const char* failpoint) {
  FaultOutcome outcome;
  outcome.failpoint = failpoint;
  MutexLock lock(mu_);
  ++hits_[outcome.failpoint];
  auto it = armed_.find(outcome.failpoint);
  if (it == armed_.end()) return outcome;
  Armed& armed = it->second;
  const uint64_t hit = ++armed.hits;
  if (hit < armed.spec.trigger_on_hit) return outcome;
  if (armed.spec.max_triggers != 0 &&
      armed.triggered >= armed.spec.max_triggers) {
    return outcome;
  }
  ++armed.triggered;
  switch (armed.spec.action) {
    case FaultAction::kCrash: {
      // Mimic a power cut as closely as user space allows: no unwinding,
      // no atexit handlers, no stream flushing. The note uses write(2)
      // directly so it cannot be lost in a stdio buffer.
      char note[160];
      const int len =
          std::snprintf(note, sizeof(note),
                        "cubetree: simulated crash at failpoint %s\n",
                        failpoint);
      if (len > 0) {
        (void)!::write(STDERR_FILENO, note, static_cast<size_t>(len));
      }
      std::_Exit(kCrashExitCode);
    }
    case FaultAction::kThrow:
      throw SimulatedCrash(outcome.failpoint);
    case FaultAction::kTorn:
      outcome.torn = true;
      outcome.fail = true;
      return outcome;
    case FaultAction::kError:
      outcome.fail = true;
      return outcome;
    case FaultAction::kBitflip:
      outcome.bitflip = true;
      return outcome;
    case FaultAction::kCorruptPage:
      outcome.corrupt_page = true;
      return outcome;
    case FaultAction::kEnospc:
      outcome.enospc = true;
      outcome.fail = true;
      return outcome;
    case FaultAction::kShortWrite:
      outcome.short_write = true;
      outcome.fail = true;
      return outcome;
  }
  return outcome;
}

}  // namespace cubetree
