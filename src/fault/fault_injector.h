#ifndef CUBETREE_FAULT_FAULT_INJECTOR_H_
#define CUBETREE_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace cubetree {

/// Thrown by a failpoint armed with the `throw` action: an in-process,
/// catchable stand-in for a crash. The library itself never catches it, so
/// it unwinds out of whatever refresh/load was running — exactly like a
/// crash from the storage layer's point of view — while letting a test
/// reopen and recover the store in the same process (fork-free, and clean
/// under the sanitizers).
class SimulatedCrash : public std::exception {
 public:
  explicit SimulatedCrash(std::string failpoint)
      : failpoint_(std::move(failpoint)),
        message_("simulated crash at failpoint " + failpoint_) {}

  const char* what() const noexcept override { return message_.c_str(); }
  const std::string& failpoint() const { return failpoint_; }

 private:
  std::string failpoint_;
  std::string message_;
};

/// What an armed failpoint does once its trigger condition is met.
enum class FaultAction : int {
  /// Return an injected IOError from the instrumented call.
  kError,
  /// Torn page write: the storage layer persists only a prefix of the page
  /// before returning an injected IOError — the user-space analog of a
  /// power loss in the middle of a sector write.
  kTorn,
  /// Exit the process immediately (_Exit, no unwinding, no flushing) with
  /// FaultInjector::kCrashExitCode. Pair with a fork-based driver.
  kCrash,
  /// Throw SimulatedCrash (recoverable, in-process crash).
  kThrow,
  /// Flip one deterministic bit in the page buffer after a successful read:
  /// the user-space analog of media decay or a bad bus transfer. The
  /// instrumented call itself succeeds — only checksum verification can
  /// tell the data is wrong.
  kBitflip,
  /// Overwrite the whole page buffer with a garbage pattern after a
  /// successful read: the analog of a misdirected read returning another
  /// block's contents.
  kCorruptPage,
  /// Return an injected StorageFull from the instrumented call, as if the
  /// syscall had failed with ENOSPC before writing anything.
  kEnospc,
  /// Short page write: the storage layer persists only a prefix of the
  /// page before returning StorageFull — the volume filled up mid-page.
  kShortWrite,
};

/// When and how often a failpoint fires.
struct FaultSpec {
  FaultAction action = FaultAction::kError;
  /// 1-based hit index on which the fault first triggers, counted from the
  /// moment the failpoint was armed (default: first hit).
  uint32_t trigger_on_hit = 1;
  /// Number of times the fault triggers before auto-disarming; 0 means
  /// forever. `error(2)` — a transient error — sets this to 2, so the
  /// bounded retry loops on the read path can succeed on a later attempt.
  uint32_t max_triggers = 0;
};

/// Outcome of consulting one failpoint. Crash/throw actions never produce
/// an outcome — they do not return.
struct FaultOutcome {
  bool fail = false;
  bool torn = false;
  /// Corruption actions: the call succeeds but the caller must corrupt the
  /// data it just produced (one flipped bit / whole-page garbage). Never
  /// combined with `fail` — silent corruption is the point.
  bool bitflip = false;
  bool corrupt_page = false;
  /// Disk-full actions: `enospc` fails with nothing persisted;
  /// `short_write` asks the storage layer to persist a page prefix first
  /// (both set `fail` and map to StorageFull).
  bool enospc = false;
  bool short_write = false;
  std::string failpoint;

  /// OK, or the injected error for this failpoint: StorageFull for the
  /// disk-full actions, IOError otherwise. Bitflip/corrupt_page outcomes
  /// map to OK: the injected damage is silent by design.
  Status ToStatus() const;
};

/// Process-wide registry of named failpoints. Every instrumented call site
/// consults its failpoint through the CT_FAULT macro; with nothing armed
/// the cost is one relaxed atomic load. Failpoints are armed through the
/// API or the CUBETREE_FAILPOINTS environment variable, parsed on first
/// use:
///
///   CUBETREE_FAILPOINTS='forest.manifest.rename=crash;storage.page.read=error(2)'
///
/// Spec grammar per failpoint: ACTION[(MAX_TRIGGERS)][@TRIGGER_ON_HIT]
/// with ACTION one of error | torn | crash | throw | bitflip |
/// corrupt_page | enospc | short_write. Examples:
///   error        every hit fails
///   error(2)     transient: the first two hits fail, later hits succeed
///   torn         half a page is persisted, then an IOError is returned
///   crash        _Exit(43) on the first hit
///   crash@3      _Exit(43) on the third hit
///   throw        throw SimulatedCrash on the first hit
///   bitflip      every read silently returns one flipped bit
///   bitflip(1)@4 the fourth read is silently corrupted, once
///   corrupt_page every read silently returns a whole-page garbage pattern
///   enospc       every hit fails with StorageFull, nothing persisted
///   enospc(1)@2  the second hit fails with StorageFull, once
///   short_write  a page prefix is persisted, then StorageFull is returned
///
/// Thread-safe: hit counters and the armed map are guarded by an internal
/// mutex, so the stress harness can arm failpoints while reader and
/// refresh threads trip them. The nothing-armed fast path stays one
/// relaxed atomic load with no lock.
class FaultInjector {
 public:
  /// Exit code of a kCrash action — distinguishable from real failures in
  /// fork-based harnesses.
  static constexpr int kCrashExitCode = 43;

  static FaultInjector& Instance();

  /// Fast path for the CT_FAULT macro: true when at least one failpoint is
  /// armed anywhere in the process.
  static bool AnyArmed() {
    return armed_count().load(std::memory_order_relaxed) > 0;
  }

  /// Arms `failpoint` with `spec`. The name must be registered.
  Status Arm(const std::string& failpoint, FaultSpec spec) EXCLUDES(mu_);
  /// Arms from the textual spec grammar above, e.g. Arm("wal.force",
  /// "error(2)").
  Status Arm(const std::string& failpoint, const std::string& spec);
  void Disarm(const std::string& failpoint) EXCLUDES(mu_);
  void DisarmAll() EXCLUDES(mu_);

  /// Parses and arms a full CUBETREE_FAILPOINTS-style config string
  /// ("name=spec;name=spec", ',' also accepted as a separator).
  Status ParseAndArm(const std::string& config);

  /// Consults one failpoint: bumps its hit counter and returns the action
  /// to apply now. kCrash exits the process; kThrow throws SimulatedCrash;
  /// kError/kTorn are reported through the outcome for the caller to
  /// translate (torn writes need storage-layer cooperation).
  FaultOutcome Check(const char* failpoint) EXCLUDES(mu_);

  /// Check() collapsed to a Status for call sites with nothing to tear.
  Status MaybeFail(const char* failpoint) { return Check(failpoint).ToStatus(); }

  /// Times `failpoint` was consulted while any failpoint was armed.
  uint64_t HitCount(const std::string& failpoint) const EXCLUDES(mu_);

  struct PointInfo {
    const char* name;
    const char* description;
  };
  /// Catalog of every registered failpoint (stable order). The crash
  /// harness enumerates this; ctfsck --failpoints prints it.
  static const std::vector<PointInfo>& RegisteredPoints();
  static bool IsRegistered(const std::string& failpoint);

 private:
  FaultInjector() = default;
  static std::atomic<int>& armed_count();

  struct Armed {
    FaultSpec spec;
    /// Hits since arming — the basis for trigger_on_hit, so `crash@3`
    /// means "the third time this operation runs after arming" regardless
    /// of how often it ran before.
    uint64_t hits = 0;
    uint32_t triggered = 0;
  };

  mutable Mutex mu_;
  std::map<std::string, Armed> armed_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> hits_ GUARDED_BY(mu_);
};

/// Consults a failpoint and propagates an injected error to the caller.
/// Near-zero cost when nothing is armed. Crash/throw actions never return.
#define CT_FAULT(name)                                                   \
  do {                                                                   \
    if (::cubetree::FaultInjector::AnyArmed()) {                         \
      CT_RETURN_NOT_OK(::cubetree::FaultInjector::Instance().MaybeFail(name)); \
    }                                                                    \
  } while (0)

}  // namespace cubetree

#endif  // CUBETREE_FAULT_FAULT_INJECTOR_H_
