#ifndef CUBETREE_COMMON_RNG_H_
#define CUBETREE_COMMON_RNG_H_

#include <cstdint>

namespace cubetree {

/// Deterministic xoshiro256** pseudo-random generator. Every workload
/// generator and query generator in the repository draws from this so that
/// experiments are reproducible from a seed, independent of the platform's
/// std::mt19937 implementation details.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; a SplitMix64 pass expands the single seed word
  /// into the four state words, as recommended by the xoshiro authors.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cubetree

#endif  // CUBETREE_COMMON_RNG_H_
